//! Workspace umbrella crate for the MPI4Spark reproduction.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency root. See `README.md` for the architecture overview.

pub use fabric;
pub use mpi4spark;
pub use netz;
pub use rdma_spark;
pub use rmpi;
pub use simt;
pub use sparklet;
pub use workloads;
