//! Deterministic Chrome-trace / Perfetto JSON export.
//!
//! The exporter is hand-rolled (the workspace deliberately carries no JSON
//! dependency) and deterministic by construction: events are sorted by
//! `(start_ns, span id)`, all maps render in BTreeMap key order, and
//! timestamps are formatted from integers — no float formatting is involved.
//! Re-running the same seed therefore produces byte-identical output, which
//! CI asserts with `cmp`.
//!
//! Open the file at `ui.perfetto.dev` or `chrome://tracing`. Timestamps are
//! virtual microseconds (`ts`/`dur` carry the simulated nanoseconds at
//! 1/1000 scale with three decimals preserved).

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// Render `records` (plus a metrics snapshot) as a Chrome-trace JSON string.
///
/// Layout: one `traceEvents` entry per line (stable diffs), `pid` 0 for
/// everything (one simulation = one "process"; simulated processes are told
/// apart by task names), `tid` = `simt` task id (engine-thread records get
/// the pseudo-tid 0, real tasks are offset by 1). Span ids, parents, and
/// causal links ride in `args`.
pub fn chrome_trace(records: &[SpanRecord], metrics: &MetricsSnapshot) -> String {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.start_ns, r.id));

    // tid -> thread name, first record wins (names are stable per task).
    let mut threads: BTreeMap<u64, &str> = BTreeMap::new();
    for r in &sorted {
        threads.entry(chrome_tid(r.tid)).or_insert(if r.task.is_empty() {
            "engine"
        } else {
            r.task.as_str()
        });
    }

    let mut lines: Vec<String> = Vec::with_capacity(sorted.len() + threads.len());
    for (tid, name) in &threads {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_string(name)
        ));
    }
    for r in &sorted {
        lines.push(event_line(r));
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\n\"metrics\":");
    out.push_str(&metrics_json(metrics));
    out.push_str(",\n\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn chrome_tid(tid: usize) -> u64 {
    if tid == usize::MAX {
        0
    } else {
        tid as u64 + 1
    }
}

/// Category = taxonomy prefix up to the first dot ("netz.msg.send" -> "netz").
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Virtual ns rendered as microseconds with three decimals, from integers.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn event_line(r: &SpanRecord) -> String {
    let mut args = String::new();
    args.push_str(&format!("\"id\":{}", r.id));
    if r.parent != 0 {
        args.push_str(&format!(",\"parent\":{}", r.parent));
    }
    if r.link != 0 {
        args.push_str(&format!(",\"link\":{}", r.link));
    }
    for (k, v) in &r.kvs {
        args.push_str(&format!(",{}:{}", json_string(k), json_string(v)));
    }
    let common = format!(
        "\"name\":{},\"cat\":{},\"pid\":0,\"tid\":{},\"ts\":{}",
        json_string(r.name),
        json_string(category(r.name)),
        chrome_tid(r.tid),
        fmt_us(r.start_ns),
    );
    if r.instant {
        format!("{{{common},\"ph\":\"i\",\"s\":\"t\",\"args\":{{{args}}}}}")
    } else {
        format!("{{{common},\"ph\":\"X\",\"dur\":{},\"args\":{{{args}}}}}", fmt_us(r.duration_ns()))
    }
}

fn metrics_json(m: &MetricsSnapshot) -> String {
    let counters: Vec<String> =
        m.counters().map(|(k, v)| format!("{}:{v}", json_string(k))).collect();
    let gauges: Vec<String> = m.gauges().map(|(k, v)| format!("{}:{v}", json_string(k))).collect();
    format!("{{\"counters\":{{{}}},\"gauges\":{{{}}}}}", counters.join(","), gauges.join(","))
}

/// JSON-escape `s` into a quoted string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON well-formedness check (objects, arrays, strings, numbers,
/// literals). Used by CI to prove the exporter's output parses without
/// pulling a JSON dependency into the workspace.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::Tracer;

    fn sample() -> (Vec<SpanRecord>, MetricsSnapshot) {
        let t = Tracer::enabled();
        {
            let _a = t.span("spark.task", vec![("part".to_string(), "3".to_string())]);
            let _b = t.span("netz.msg.send", vec![]);
            t.event("fabric.chaos.drop", vec![("dst".to_string(), "n1".to_string())]);
        }
        let reg = Registry::new();
        reg.counter("fabric.delivered_msgs").add(7);
        reg.gauge("fabric.link.busy").set(2);
        (t.records(), reg.snapshot())
    }

    #[test]
    fn export_is_valid_json() {
        let (recs, snap) = sample();
        let json = chrome_trace(&recs, &snap);
        validate_json(&json).unwrap();
        assert!(json.contains("\"name\":\"netz.msg.send\""));
        assert!(json.contains("\"cat\":\"fabric\""));
        assert!(json.contains("\"fabric.delivered_msgs\":7"));
    }

    #[test]
    fn export_is_deterministic_for_same_records() {
        let (recs, snap) = sample();
        assert_eq!(chrome_trace(&recs, &snap), chrome_trace(&recs, &snap));
        // Record order must not matter: the exporter sorts.
        let mut reversed = recs.clone();
        reversed.reverse();
        assert_eq!(chrome_trace(&recs, &snap), chrome_trace(&reversed, &snap));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e2,\"x\\n\",true,null]}").unwrap();
        validate_json("  [ ]  ").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{}extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01abc").is_err());
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        validate_json(&json_string("quote\" back\\ nl\n tab\t ctl\u{1}")).unwrap();
    }
}
