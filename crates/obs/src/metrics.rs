//! One metrics surface for the whole stack.
//!
//! Components register typed handles (`Counter`, `Gauge`, `Histogram`) by
//! name on a [`Registry`]; readers never touch component structs — they take
//! a [`MetricsSnapshot`] (BTreeMap-keyed, so iteration order is
//! deterministic) and query it by key. Snapshots are plain data: they can be
//! shipped inside simulated RPC messages (task → scheduler) and merged.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing counter handle. Cheap to clone; all clones share
/// the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle (u64; the virtual clock never goes
/// negative and neither do our occupancy figures).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Power-of-two buckets: bucket `i` counts values whose bit length is
    /// `i` (bucket 0 holds zeros), i.e. upper bound `2^i - 1`.
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Power-of-two-bucketed histogram handle (virtual durations, sizes).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        let idx = (64 - v.leading_zeros()) as usize;
        h.buckets[idx.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        let count = h.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { h.min.load(Ordering::Relaxed) },
            max: h.max.load(Ordering::Relaxed),
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (upper_bound(i), n))
                })
                .collect(),
        }
    }
}

fn upper_bound(bucket: usize) -> u64 {
    if bucket >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Frozen view of one histogram: only non-empty buckets, keyed by their
/// inclusive upper bound.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// `(inclusive upper bound, observation count)` for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(ub, n) in &other.buckets {
            *merged.entry(ub).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The single metrics registration/read surface. Cloning shares the
/// underlying store; `snapshot()` is the only sanctioned read path for
/// consumers outside the owning component.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Freeze every registered instrument into a deterministic,
    /// BTreeMap-keyed snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self.inner.gauges.lock().iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Frozen, mergeable view of a [`Registry`]. All maps are `BTreeMap`s so
/// iteration (and any rendering built on it) is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 if never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, or 0 if never registered.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`: counters add, gauges keep the maximum
    /// (peak semantics — the merge targets are per-task snapshots folded
    /// into a stage), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = Registry::new();
        reg.counter("a.msgs").add(3);
        reg.counter("a.msgs").inc();
        reg.gauge("a.depth").set(7);
        reg.histogram("a.lat").observe(0);
        reg.histogram("a.lat").observe(5);
        reg.histogram("a.lat").observe(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.msgs"), 4);
        assert_eq!(snap.gauge("a.depth"), 7);
        let h = snap.histogram("a.lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1005);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_merges_histograms() {
        let a = Registry::new();
        a.counter("x").add(2);
        a.gauge("g").set(5);
        a.histogram("h").observe(10);
        let b = Registry::new();
        b.counter("x").add(40);
        b.counter("y").inc();
        b.gauge("g").set(3);
        b.histogram("h").observe(100);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("x"), 42);
        assert_eq!(snap.counter("y"), 1);
        assert_eq!(snap.gauge("g"), 5, "merge keeps the peak gauge value");
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 110);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 100);
    }

    #[test]
    fn snapshot_iteration_is_key_ordered() {
        let reg = Registry::new();
        reg.counter("z").inc();
        reg.counter("a").inc();
        reg.counter("m").inc();
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.counters().map(|(k, _)| k).collect::<Vec<_>>();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }
}
