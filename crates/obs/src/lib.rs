//! # obs — virtual-time observability for the MPI4Spark reproduction
//!
//! One observability surface for every layer of the stack:
//!
//! * **Spans** ([`span::Tracer`] / [`span::Span`]): RAII guards stamped with
//!   `simt` virtual timestamps and task identity, nesting per green thread,
//!   with cross-process causality links (the send span id rides inside
//!   `netz` message headers; the matching recv span records it as `link`).
//! * **Metrics** ([`metrics::Registry`]): typed `Counter`/`Gauge`/`Histogram`
//!   handles behind a single registration surface. `Registry::snapshot()` is
//!   the one sanctioned read path — scheduler, bench reports, and chaos
//!   tests consume [`metrics::MetricsSnapshot`]s instead of poking fields on
//!   per-component structs.
//! * **Timeline export** ([`timeline::chrome_trace`]): deterministic
//!   Chrome-trace/Perfetto JSON keyed by virtual time, byte-identical across
//!   re-runs of the same seed.
//!
//! An [`Obs`] value bundles one tracer and one registry; it is threaded
//! through `fabric::Net` so every layer that can see the network can see the
//! observability context. Each `Sim` gets its own `Obs` — nothing here is
//! process-global, so concurrent simulations (e.g. `cargo test`) cannot
//! contaminate each other's timelines.

pub mod metrics;
pub mod span;
pub mod timeline;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::{current_send_span, SendScope, Span, SpanId, SpanRecord, Tracer};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Build a `Vec<(String, String)>` of span attributes:
/// `kv!{"part" => part, "bytes" => n}`.
#[macro_export]
macro_rules! kv {
    () => { ::std::vec::Vec::new() };
    ($($k:expr => $v:expr),+ $(,)?) => {
        ::std::vec![ $( ($k.to_string(), $v.to_string()) ),+ ]
    };
}

/// Canonical metric key names. Components register under these so readers
/// (scheduler, bench, chaos tests) never need to know which struct used to
/// own a number.
pub mod keys {
    /// Virtual ns a task spent blocked on shuffle fetches.
    pub const TASK_FETCH_WAIT_NS: &str = "task.shuffle_fetch_wait_ns";
    /// Shuffle bytes fetched from remote executors.
    pub const TASK_REMOTE_BYTES: &str = "task.remote_bytes";
    /// Shuffle bytes read locally.
    pub const TASK_LOCAL_BYTES: &str = "task.local_bytes";
    /// Records emitted by the task's final operator.
    pub const TASK_RECORDS_OUT: &str = "task.records_out";
    /// Serialized result size shipped back to the driver.
    pub const TASK_RESULT_BYTES: &str = "task.result_bytes";
    /// Virtual ns from task launch to completion.
    pub const TASK_RUN_NS: &str = "task.run_ns";

    /// Shuffle-fetch re-requests issued by the retry layer (process-wide;
    /// 0 on a healthy run).
    pub const SPARK_FETCH_RETRIES: &str = "spark.fetch_retries";
    /// Blocks whose fetch exhausted the whole retry budget and surfaced a
    /// terminal error to the reader (each one becomes a `FetchFailed`).
    pub const SPARK_FETCH_EXHAUSTED: &str = "spark.fetch_exhausted_blocks";
    /// Stage attempts resubmitted after a `FetchFailed` (driver-side).
    pub const SPARK_STAGE_RESUBMITS: &str = "spark.stage_resubmits";
    /// Speculative task copies launched by the straggler policy.
    pub const SPARK_SPECULATIVE_TASKS: &str = "spark.speculative_tasks";
    /// Tasks planned by AQE for adaptive result stages (coalesced runs,
    /// singletons, and split slices all count once).
    pub const SPARK_AQE_TASKS: &str = "spark.aqe_tasks";
    /// Map-range slice tasks produced by AQE skew splitting.
    pub const SPARK_AQE_SPLIT_SLICES: &str = "spark.aqe_split_slices";
    /// AQE tasks that coalesce more than one reduce bucket.
    pub const SPARK_AQE_COALESCED_TASKS: &str = "spark.aqe_coalesced_tasks";
    /// Jobs submitted on the partial/approximate path (an evaluator or a
    /// deadline was attached at submission).
    pub const SPARK_PARTIAL_JOBS: &str = "spark.partial_jobs";
    /// Job deadlines that fired before completion (each one returned a
    /// partial answer).
    pub const SPARK_PARTIAL_DEADLINES_FIRED: &str = "spark.partial_deadline_fired";
    /// Per-partition result-task outputs folded into approximate
    /// evaluators as they completed.
    pub const SPARK_PARTIAL_PARTITIONS_SEEN: &str = "spark.partial_partitions_seen";

    /// Messages delivered by the fabric.
    pub const NET_DELIVERED_MSGS: &str = "fabric.delivered_msgs";
    /// Payload bytes delivered by the fabric.
    pub const NET_DELIVERED_BYTES: &str = "fabric.delivered_bytes";
    /// Messages dropped for structural reasons (unbound port, dead node).
    pub const NET_DROPPED_MSGS: &str = "fabric.dropped_msgs";
    /// Messages swallowed by the chaos fault plan.
    pub const NET_CHAOS_DROPPED_MSGS: &str = "fabric.chaos_dropped_msgs";
    /// Messages delayed by the chaos fault plan.
    pub const NET_CHAOS_DELAYED_MSGS: &str = "fabric.chaos_delayed_msgs";

    /// netz frames written to channels.
    pub const NETZ_MSGS_SENT: &str = "netz.msgs_sent";
    /// netz bytes written to channels (virtual wire size).
    pub const NETZ_BYTES_SENT: &str = "netz.bytes_sent";
    /// netz frames received on channels.
    pub const NETZ_MSGS_RECEIVED: &str = "netz.msgs_received";
    /// netz bytes received on channels (virtual wire size).
    pub const NETZ_BYTES_RECEIVED: &str = "netz.bytes_received";
    /// Channels opened (client connects + server accepts).
    pub const NETZ_CHANNELS_OPENED: &str = "netz.channels_opened";
    /// Connect retry attempts across all channels.
    pub const NETZ_CONNECT_RETRIES: &str = "netz.connect_retries";
}

struct ObsInner {
    registry: Registry,
    tracer: Tracer,
}

/// Per-simulation observability context: one tracer + one metrics registry.
/// Cheap to clone; threaded through `fabric::Net` so every layer above the
/// fabric shares the same context.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

impl Obs {
    /// Metrics only; span calls are no-ops. The default for production runs.
    pub fn disabled() -> Obs {
        Obs { inner: Arc::new(ObsInner { registry: Registry::new(), tracer: Tracer::disabled() }) }
    }

    /// Metrics plus span recording (timeline export possible).
    pub fn traced() -> Obs {
        Obs { inner: Arc::new(ObsInner { registry: Registry::new(), tracer: Tracer::enabled() }) }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// True when spans are being recorded.
    pub fn is_traced(&self) -> bool {
        self.inner.tracer.is_enabled()
    }

    /// Open a span (see [`Tracer::span`]).
    pub fn span(&self, name: &'static str, kvs: Vec<(String, String)>) -> Span {
        self.inner.tracer.span(name, kvs)
    }

    /// Record an instant event (see [`Tracer::event`]).
    pub fn event(&self, name: &'static str, kvs: Vec<(String, String)>) {
        self.inner.tracer.event(name, kvs)
    }

    /// Export the timeline recorded so far as Chrome-trace JSON.
    pub fn export_timeline(&self) -> String {
        timeline::chrome_trace(&self.inner.tracer.records(), &self.inner.registry.snapshot())
    }
}

/// [`simt::TaskObserver`] adapter: opens a `simt.task` span when a green
/// thread starts and closes it when the thread finishes. Because both
/// callbacks run on the green thread itself, spans opened inside the task
/// body nest under the task span automatically.
pub struct TaskSpans {
    tracer: Tracer,
    open: Mutex<BTreeMap<usize, Span>>,
}

impl TaskSpans {
    /// Build an observer recording into `obs`'s tracer.
    pub fn new(obs: &Obs) -> TaskSpans {
        TaskSpans { tracer: obs.tracer().clone(), open: Mutex::new(BTreeMap::new()) }
    }
}

impl simt::TaskObserver for TaskSpans {
    fn task_started(&self, tid: simt::TaskId, name: &str, daemon: bool) {
        let span = self.tracer.span("simt.task", kv! {"task" => name, "daemon" => daemon});
        self.open.lock().insert(tid.0, span);
    }

    fn task_finished(&self, tid: simt::TaskId) {
        // Dropping the span ends and records it; the drop runs on the same
        // green thread that opened it, so the span stack stays consistent.
        self.open.lock().remove(&tid.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_macro_builds_string_pairs() {
        let kvs = kv! {"a" => 1, "b" => "two"};
        assert_eq!(
            kvs,
            vec![("a".to_string(), "1".to_string()), ("b".to_string(), "two".to_string())]
        );
        let empty: Vec<(String, String)> = kv! {};
        assert!(empty.is_empty());
    }

    #[test]
    fn task_spans_observer_records_task_lifecycle() {
        let obs = Obs::traced();
        let sim = simt::Sim::new();
        sim.set_observer(Arc::new(TaskSpans::new(&obs)));
        let obs2 = obs.clone();
        sim.spawn("outer", move || {
            simt::sleep(5);
            let _inner = obs2.span("work.step", kv! {});
            simt::sleep(3);
        });
        sim.run().unwrap().assert_clean();
        let recs = obs.tracer().records();
        let task = recs.iter().find(|r| r.name == "simt.task").expect("task span");
        let step = recs.iter().find(|r| r.name == "work.step").expect("work span");
        assert_eq!(task.start_ns, 0);
        assert_eq!(task.end_ns, 8);
        assert_eq!(step.parent, task.id, "body spans nest under the task span");
        assert!(task.kvs.contains(&("task".to_string(), "outer".to_string())));
    }

    #[test]
    fn disabled_obs_still_counts_metrics() {
        let obs = Obs::disabled();
        obs.registry().counter(keys::NET_DELIVERED_MSGS).add(2);
        assert!(!obs.is_traced());
        assert_eq!(obs.registry().snapshot().counter(keys::NET_DELIVERED_MSGS), 2);
        assert!(obs.tracer().records().is_empty());
    }
}
