//! Virtual-time tracing spans.
//!
//! A [`Tracer`] hands out RAII [`Span`] guards stamped with `simt` virtual
//! timestamps and task identity. Spans nest via a per-OS-thread stack (each
//! green thread is its own OS thread, so the stack is naturally per-task),
//! and cross-process causality is expressed with *links*: the sender's span
//! id travels inside the `netz` message header, and the receive span records
//! it as its `link`.
//!
//! Determinism: span ids come from a per-`Tracer` counter starting at 1.
//! Because the simulation serializes green threads (exactly one runs at a
//! time), id assignment order — and therefore the exported timeline — is a
//! pure function of the simulated schedule, not of OS scheduling.

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a span within one [`Tracer`]. `0` means "no span".
pub type SpanId = u64;

/// One finished span (or instant event) as recorded by a [`Tracer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the tracer, assigned in start order from 1.
    pub id: SpanId,
    /// Enclosing span on the same task (0 for roots).
    pub parent: SpanId,
    /// Cross-task/cross-process causal predecessor (0 when none) — e.g. the
    /// send span whose message this recv span is handling.
    pub link: SpanId,
    /// Span name from the dotted taxonomy (`layer.component.action`).
    pub name: &'static str,
    /// Name of the green thread that opened the span ("" outside the sim).
    pub task: String,
    /// `simt` task id of that thread (usize::MAX outside the sim).
    pub tid: usize,
    /// Virtual start time in nanoseconds.
    pub start_ns: u64,
    /// Virtual end time in nanoseconds (== `start_ns` for instant events).
    pub end_ns: u64,
    /// True for zero-duration point events.
    pub instant: bool,
    /// Attached key/value attributes, in call order.
    pub kvs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in virtual nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

struct TracerInner {
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

thread_local! {
    /// Stack of open span ids on this OS thread (== this green thread).
    static SPAN_STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
    /// Span id to stamp into message headers encoded on this thread.
    static SEND_SCOPE: Cell<SpanId> = const { Cell::new(0) };
}

/// Span id the calling thread is currently sending under, or 0. Read by
/// `netz::Message::encode_header` so the id survives header re-encoding in
/// transport pipelines (the MPI-Optimized path re-builds headers deep inside
/// `on_write` handlers, far from where the span was opened).
pub fn current_send_span() -> SpanId {
    SEND_SCOPE.with(|s| s.get())
}

/// RAII guard installing `id` as the thread's send scope; restores the
/// previous scope on drop.
pub struct SendScope {
    prev: SpanId,
}

impl SendScope {
    /// Install `id` as the current send scope.
    pub fn enter(id: SpanId) -> SendScope {
        let prev = SEND_SCOPE.with(|s| s.replace(id));
        SendScope { prev }
    }
}

impl Drop for SendScope {
    fn drop(&mut self) {
        SEND_SCOPE.with(|s| s.set(self.prev));
    }
}

/// Per-run tracing context. Cloning shares the record store. A disabled
/// tracer (the default in production runs) records nothing and hands out
/// no-op spans; the instrumentation cost is a branch.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer that records spans.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                next_id: AtomicU64::new(1),
                records: Mutex::new(Vec::new()),
            })),
        }
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span. The span ends (and is recorded) when the guard drops.
    pub fn span(&self, name: &'static str, kvs: Vec<(String, String)>) -> Span {
        self.span_linked(name, 0, kvs)
    }

    /// Open a span causally linked to `link` (a span id received from
    /// another task or simulated process).
    pub fn span_linked(
        &self,
        name: &'static str,
        link: SpanId,
        kvs: Vec<(String, String)>,
    ) -> Span {
        let Some(inner) = &self.inner else { return Span { ctx: None } };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        let (task, tid, now) = identity();
        Span {
            ctx: Some(SpanCtx {
                tracer: inner.clone(),
                id,
                parent,
                link,
                name,
                task,
                tid,
                start_ns: now,
                kvs,
            }),
        }
    }

    /// Record an instant (zero-duration) event at the current virtual time.
    pub fn event(&self, name: &'static str, kvs: Vec<(String, String)>) {
        let Some(inner) = &self.inner else { return };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        let (task, tid, now) = identity();
        inner.records.lock().push(SpanRecord {
            id,
            parent,
            link: 0,
            name,
            task,
            tid,
            start_ns: now,
            end_ns: now,
            instant: true,
            kvs,
        });
    }

    /// Record an already-delimited span (used from engine-thread closures —
    /// e.g. wire occupancy — where no green-thread span stack exists). Does
    /// not nest under or into the thread's span stack.
    pub fn record_complete(
        &self,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        kvs: Vec<(String, String)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (task, tid, _) = identity();
        inner.records.lock().push(SpanRecord {
            id,
            parent: 0,
            link: 0,
            name,
            task,
            tid,
            start_ns,
            end_ns,
            instant: false,
            kvs,
        });
    }

    /// Id of the innermost open span on the calling thread (0 when none or
    /// when tracing is disabled).
    pub fn current_span(&self) -> SpanId {
        if self.inner.is_none() {
            return 0;
        }
        SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
    }

    /// Copy of everything recorded so far, in record-completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.records.lock().clone(),
            None => Vec::new(),
        }
    }
}

fn identity() -> (String, usize, u64) {
    if simt::in_sim() {
        (simt::current_name(), simt::current_task().0, simt::now())
    } else {
        (String::new(), usize::MAX, 0)
    }
}

struct SpanCtx {
    tracer: Arc<TracerInner>,
    id: SpanId,
    parent: SpanId,
    link: SpanId,
    name: &'static str,
    task: String,
    tid: usize,
    start_ns: u64,
    kvs: Vec<(String, String)>,
}

/// RAII span guard. Records itself on drop; safe to hold across blocking
/// calls (virtual time advancing inside the span is the point).
pub struct Span {
    ctx: Option<SpanCtx>,
}

impl Span {
    /// This span's id (0 when tracing is disabled).
    pub fn id(&self) -> SpanId {
        self.ctx.as_ref().map_or(0, |c| c.id)
    }

    /// Attach another key/value attribute after opening.
    pub fn kv(&mut self, key: &str, value: impl ToString) {
        if let Some(ctx) = &mut self.ctx {
            ctx.kvs.push((key.to_string(), value.to_string()));
        }
    }

    /// Enter this span as the thread's send scope (see
    /// [`current_send_span`]); the scope lasts until the returned guard
    /// drops.
    pub fn send_scope(&self) -> SendScope {
        SendScope::enter(self.id())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(ctx) = self.ctx.take() else { return };
        // Pop our id off this thread's stack. Normally we are the top; a
        // span dropped out of order (e.g. task spans closed by an observer)
        // is removed wherever it sits.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&ctx.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&v| v == ctx.id) {
                stack.remove(pos);
            }
        });
        let end_ns = if simt::in_sim() { simt::now() } else { ctx.start_ns };
        ctx.tracer.records.lock().push(SpanRecord {
            id: ctx.id,
            parent: ctx.parent,
            link: ctx.link,
            name: ctx.name,
            task: ctx.task,
            tid: ctx.tid,
            start_ns: ctx.start_ns,
            end_ns,
            instant: false,
            kvs: ctx.kvs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let mut s = t.span("a.b", vec![]);
            s.kv("k", 1);
            t.event("a.ev", vec![]);
        }
        assert!(!t.is_enabled());
        assert!(t.records().is_empty());
        assert_eq!(t.current_span(), 0);
    }

    #[test]
    fn spans_nest_via_thread_stack() {
        let t = Tracer::enabled();
        {
            let outer = t.span("outer", vec![]);
            assert_eq!(t.current_span(), outer.id());
            {
                let inner = t.span("inner", vec![]);
                assert_eq!(t.current_span(), inner.id());
            }
            assert_eq!(t.current_span(), outer.id());
        }
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        let inner = recs.iter().find(|r| r.name == "inner").unwrap();
        let outer = recs.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
    }

    #[test]
    fn span_ids_assigned_from_one_in_start_order() {
        let t = Tracer::enabled();
        let a = t.span("a", vec![]);
        let b = t.span("b", vec![]);
        assert_eq!(a.id(), 1);
        assert_eq!(b.id(), 2);
    }

    #[test]
    fn send_scope_restores_previous_value() {
        let t = Tracer::enabled();
        assert_eq!(current_send_span(), 0);
        let s = t.span("send", vec![]);
        {
            let _g = s.send_scope();
            assert_eq!(current_send_span(), s.id());
            {
                let _g2 = SendScope::enter(99);
                assert_eq!(current_send_span(), 99);
            }
            assert_eq!(current_send_span(), s.id());
        }
        assert_eq!(current_send_span(), 0);
    }

    #[test]
    fn spans_stamp_virtual_time_and_task_identity() {
        let sim = simt::Sim::new();
        let t = Tracer::enabled();
        let t2 = t.clone();
        sim.spawn("worker", move || {
            simt::sleep(10);
            let _s = t2.span("work", vec![]);
            simt::sleep(25);
        });
        sim.run().unwrap().assert_clean();
        let recs = t.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].task, "worker");
        assert_eq!(recs[0].start_ns, 10);
        assert_eq!(recs[0].end_ns, 35);
        assert_eq!(recs[0].duration_ns(), 25);
    }
}
