//! Criterion benches: wall-clock performance of the simulator running
//! small-scale versions of the paper's experiments. These guard the
//! engineering performance of the reproduction itself; the *virtual-time*
//! results that regenerate the paper's figures come from the harness
//! binaries in `src/bin/` (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use mpi4spark_bench::ohb_runner::{run_cell, OhbBench};
use mpi4spark_bench::pingpong::{run_pingpong, PingPongTransport};
use workloads::System;

fn bench_simt_engine(c: &mut Criterion) {
    c.bench_function("simt_spawn_wake_10k", |b| {
        b.iter(|| {
            let sim = simt::Sim::new();
            sim.spawn("main", || {
                for i in 0..100u64 {
                    simt::spawn(format!("t{i}"), move || {
                        for _ in 0..100 {
                            simt::sleep(10);
                        }
                    });
                }
            });
            sim.run().unwrap();
            sim.shutdown();
        })
    });
}

fn bench_pingpong(c: &mut Criterion) {
    c.bench_function("fig08_pingpong_nio_64k", |b| {
        b.iter(|| run_pingpong(PingPongTransport::Nio, 64 << 10, 5))
    });
    c.bench_function("fig08_pingpong_mpi_64k", |b| {
        b.iter(|| run_pingpong(PingPongTransport::NettyMpi, 64 << 10, 5))
    });
}

fn bench_ohb_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("ohb_groupby_small");
    g.sample_size(10);
    for (name, system) in [
        ("vanilla", System::Vanilla),
        ("rdma", System::RdmaSpark),
        ("mpi", System::Mpi4Spark),
        ("mpi_basic", System::Mpi4SparkBasic),
    ] {
        g.bench_function(name, |b| b.iter(|| run_cell(system, OhbBench::GroupBy, 2, 4, 1)));
    }
    g.finish();

    let mut g = c.benchmark_group("ohb_sortby_small");
    g.sample_size(10);
    g.bench_function("mpi", |b| b.iter(|| run_cell(System::Mpi4Spark, OhbBench::SortBy, 2, 4, 1)));
    g.finish();
}

fn bench_mpi_collectives(c: &mut Criterion) {
    c.bench_function("rmpi_allgather_8ranks", |b| {
        b.iter(|| {
            let sim = simt::Sim::new();
            sim.spawn("launcher", || {
                let net = fabric::Net::new(&fabric::ClusterSpec::test(4));
                let placements: Vec<usize> = (0..8).map(|i| i % 4).collect();
                rmpi::mpiexec(&net, &placements, |comm| {
                    for _ in 0..10 {
                        comm.allgather(u64::from(comm.rank()), 1024).unwrap();
                    }
                });
            });
            sim.run().unwrap();
            sim.shutdown();
        })
    });
}

criterion_group!(
    benches,
    bench_simt_engine,
    bench_pingpong,
    bench_ohb_small,
    bench_mpi_collectives
);
criterion_main!(benches);
