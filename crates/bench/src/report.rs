//! Plain-text table rendering for harness output.

/// Render a table with a header row; columns auto-sized.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        s
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format nanoseconds as seconds with 2 decimals.
pub fn secs(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e9)
}

/// Format nanoseconds as microseconds with 1 decimal.
pub fn micros(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

/// Format a speedup ratio like the paper ("4.23x").
pub fn ratio(baseline_ns: u64, other_ns: u64) -> String {
    if other_ns == 0 {
        return "-".to_string();
    }
    format!("{:.2}x", baseline_ns as f64 / other_ns as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formats_like_the_paper() {
        assert_eq!(ratio(4230, 1000), "4.23x");
        assert_eq!(ratio(100, 0), "-");
    }

    #[test]
    fn secs_and_micros() {
        assert_eq!(secs(2_500_000_000), "2.50");
        assert_eq!(micros(12_345), "12.3");
    }
}
