//! Benchmark harness support: experiment runners shared by the per-figure
//! binaries, the criterion benches, and the calibration tests.
//!
//! Every figure/table of the paper's evaluation (§VII) has a binary in
//! `src/bin/` that prints the same rows/series the paper reports, built on
//! the runners here. `REPRO_SCALE=small` (or `--scale small`) shrinks the
//! clusters and data volumes for quick smoke runs; the default reproduces
//! the paper's sizes.

pub mod hibench;
pub mod ohb_runner;
pub mod pingpong;
pub mod report;

use fabric::ClusterSpec;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale clusters and data volumes.
    Full,
    /// Shrunk for smoke tests and criterion runs.
    Small,
}

impl Scale {
    /// Resolve from `--scale` argv or the `REPRO_SCALE` env var.
    pub fn from_env_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1) {
                    return Scale::parse(v);
                }
            }
        }
        match std::env::var("REPRO_SCALE") {
            Ok(v) => Scale::parse(&v),
            Err(_) => Scale::Full,
        }
    }

    fn parse(v: &str) -> Scale {
        match v {
            "small" | "smoke" => Scale::Small,
            _ => Scale::Full,
        }
    }

    /// Cores per worker to simulate (the paper's 56 on Frontera).
    pub fn frontera_cores(&self) -> u32 {
        match self {
            Scale::Full => 56,
            Scale::Small => 4,
        }
    }

    /// Scale a paper worker count.
    pub fn workers(&self, paper: usize) -> usize {
        match self {
            Scale::Full => paper,
            Scale::Small => 2.max(paper / 8),
        }
    }

    /// Scale a per-worker data volume in GiB.
    pub fn gb(&self, paper: u64) -> u64 {
        match self {
            Scale::Full => paper,
            Scale::Small => 1.max(paper / 16),
        }
    }
}

/// A Frontera-like cluster hosting `workers` workers (plus master+driver
/// nodes).
pub fn frontera_cluster(workers: usize) -> ClusterSpec {
    ClusterSpec::frontera(workers + 2)
}

/// A Stampede2-like cluster hosting `workers` workers.
pub fn stampede2_cluster(workers: usize) -> ClusterSpec {
    ClusterSpec::stampede2(workers + 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Scale::Small);
        assert_eq!(Scale::parse("full"), Scale::Full);
        assert_eq!(Scale::parse("anything"), Scale::Full);
    }

    #[test]
    fn small_scale_shrinks() {
        assert!(Scale::Small.workers(32) < 32);
        assert!(Scale::Small.gb(14) < 14);
        assert_eq!(Scale::Full.workers(32), 32);
    }
}
