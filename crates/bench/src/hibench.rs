//! Fig. 12 runner: Intel HiBench workloads at the Huge data size on
//! Frontera-like (16 workers, 896 cores) and Stampede2-like (8 workers,
//! 384 cores / 768 threads) clusters.

use fabric::ClusterSpec;
use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::graph::{nweight_app, NWeightConfig};
use workloads::micro::{repartition_app, terasort_app, MicroConfig};
use workloads::ml::{gmm_app, lda_app, lr_app, svm_app, MlConfig};
use workloads::System;

/// The HiBench workloads of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HiBenchWorkload {
    /// Latent Dirichlet Allocation.
    Lda,
    /// Support Vector Machine.
    Svm,
    /// Gaussian Mixture Model.
    Gmm,
    /// Logistic Regression.
    Lr,
    /// Repartition micro-benchmark.
    Repartition,
    /// TeraSort micro-benchmark.
    TeraSort,
    /// NWeight graph workload.
    NWeight,
}

impl HiBenchWorkload {
    /// Display name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            HiBenchWorkload::Lda => "LDA",
            HiBenchWorkload::Svm => "SVM",
            HiBenchWorkload::Gmm => "GMM",
            HiBenchWorkload::Lr => "LR",
            HiBenchWorkload::Repartition => "Repartition",
            HiBenchWorkload::TeraSort => "TeraSort",
            HiBenchWorkload::NWeight => "NWeight",
        }
    }

    /// The Fig. 12(a)/(b) set (Frontera).
    pub fn frontera_set() -> Vec<HiBenchWorkload> {
        use HiBenchWorkload::*;
        vec![Lda, Svm, Gmm, Repartition, NWeight, TeraSort]
    }

    /// The Fig. 12(c) set (Stampede2).
    pub fn stampede2_set() -> Vec<HiBenchWorkload> {
        use HiBenchWorkload::*;
        vec![Lr, Gmm, Svm, Repartition]
    }
}

/// HiBench-Huge sizing used by the Fig. 12 cells.
#[derive(Debug, Clone, Copy)]
pub struct HiBenchParams {
    /// Worker count.
    pub workers: usize,
    /// Cores (task slots) per worker.
    pub cores: u32,
    /// Shrink factor for smoke runs (1 = Huge).
    pub shrink: u64,
}

impl HiBenchParams {
    fn ml_config(&self, pad_bytes: u32, virtual_samples: u64, iterations: usize) -> MlConfig {
        let partitions = self.workers * self.cores as usize;
        MlConfig {
            partitions,
            samples_per_partition: 128,
            virtual_samples_per_partition: (virtual_samples / self.shrink).max(128),
            dim: 12,
            iterations,
            agg_partitions: (partitions / 8).max(2),
            pad_bytes: (u64::from(pad_bytes) / self.shrink).max(64) as u32,
            seed: 0xF1612,
        }
    }
}

/// Run one Fig. 12 cell; returns the total virtual runtime in nanoseconds.
pub fn run_hibench(
    system: System,
    spec: &ClusterSpec,
    params: HiBenchParams,
    workload: HiBenchWorkload,
) -> u64 {
    let conf = SparkConf::paper_defaults(params.cores);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let partitions = params.workers * params.cores as usize;
    let shrink = params.shrink;
    match workload {
        HiBenchWorkload::Lda => {
            // Heaviest per-iteration shuffle: per-token topic vectors across
            // the vocabulary; communication ≈ half of Vanilla's runtime.
            let cfg = params.ml_config(6 * 1024, 2_800_000, 4);
            system.run(spec, cluster, move |sc| lda_app(sc, cfg, 2048, 8)).total_ns()
        }
        HiBenchWorkload::Svm => {
            // Light aggregates: gradients only (~16% comm under Vanilla).
            let cfg = params.ml_config(384 * 1024, 14_000_000, 6);
            system.run(spec, cluster, move |sc| svm_app(sc, cfg)).total_ns()
        }
        HiBenchWorkload::Gmm => {
            // Medium: per-component sufficient statistics (~36% comm).
            let cfg = params.ml_config(1024 * 1024, 1_200_000, 6);
            system.run(spec, cluster, move |sc| gmm_app(sc, cfg, 4)).total_ns()
        }
        HiBenchWorkload::Lr => {
            let cfg = params.ml_config(1024 * 1024, 2_700_000, 6);
            system.run(spec, cluster, move |sc| lr_app(sc, cfg)).total_ns()
        }
        HiBenchWorkload::Repartition => {
            let gb = (params.workers as u64 * 8 / shrink).max(1);
            let cfg = MicroConfig::huge(params.workers, params.cores, gb);
            system.run(spec, cluster, move |sc| repartition_app(sc, cfg)).total_ns()
        }
        HiBenchWorkload::TeraSort => {
            let gb = (params.workers as u64 * 8 / shrink).max(1);
            let cfg = MicroConfig::huge(params.workers, params.cores, gb);
            system.run(spec, cluster, move |sc| terasort_app(sc, cfg)).total_ns()
        }
        HiBenchWorkload::NWeight => {
            let cfg = NWeightConfig {
                vertices: (params.workers as u64 * 2000 / shrink).max(200),
                degree: 4,
                hops: 2,
                partitions,
                payload_pad: 4096,
                seed: 0x9E1_647,
            };
            system.run(spec, cluster, move |sc| nweight_app(sc, cfg)).total_ns()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_hibench_cells_run_on_all_systems() {
        let spec = crate::frontera_cluster(2);
        let params = HiBenchParams { workers: 2, cores: 4, shrink: 64 };
        for w in [HiBenchWorkload::Gmm, HiBenchWorkload::Repartition] {
            let van = run_hibench(System::Vanilla, &spec, params, w);
            let mpi = run_hibench(System::Mpi4Spark, &spec, params, w);
            assert!(van > 0 && mpi > 0);
        }
    }

    #[test]
    fn workload_sets_match_figure_12() {
        assert_eq!(HiBenchWorkload::frontera_set().len(), 6);
        assert_eq!(HiBenchWorkload::stampede2_set().len(), 4);
        assert!(!HiBenchWorkload::stampede2_set().contains(&HiBenchWorkload::NWeight));
    }
}
