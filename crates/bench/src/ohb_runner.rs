//! Runner for the OHB RDD benchmark cells (Figs. 9, 10, 11).

use fabric::ClusterSpec;
use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::ohb::{group_by_app, sort_by_app, OhbConfig, StageBreakdown};
use workloads::System;

/// Which OHB benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OhbBench {
    /// GroupByTest.
    GroupBy,
    /// SortByTest.
    SortBy,
}

impl OhbBench {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OhbBench::GroupBy => "GroupByTest",
            OhbBench::SortBy => "SortByTest",
        }
    }
}

/// One experiment cell's outcome.
#[derive(Debug, Clone, Copy)]
pub struct OhbCell {
    /// Stage breakdown (paper Fig. 10/11 bars).
    pub breakdown: StageBreakdown,
    /// Total virtual runtime over all jobs.
    pub total_ns: u64,
    /// Workload sanity value (group/record count).
    pub check: u64,
}

/// Run one OHB cell: `bench` under `system` with `workers` workers of
/// `cores` cores each and `gb_per_worker` GiB of generated data.
pub fn run_cell(
    system: System,
    bench: OhbBench,
    workers: usize,
    cores: u32,
    gb_per_worker: u64,
) -> OhbCell {
    let spec = crate::frontera_cluster(workers);
    run_cell_on(&spec, system, bench, workers, cores, gb_per_worker)
}

/// [`run_cell`] on an explicit cluster spec.
pub fn run_cell_on(
    spec: &ClusterSpec,
    system: System,
    bench: OhbBench,
    workers: usize,
    cores: u32,
    gb_per_worker: u64,
) -> OhbCell {
    run_cell_routed(spec, system, bench, workers, cores, gb_per_worker, None)
}

/// [`run_cell_on`] with a body-routing policy override for the MPI systems
/// (§VI-E ablations; `None` keeps the design default).
#[allow(clippy::too_many_arguments)]
pub fn run_cell_routed(
    spec: &ClusterSpec,
    system: System,
    bench: OhbBench,
    workers: usize,
    cores: u32,
    gb_per_worker: u64,
    route: Option<netz::RoutePolicy>,
) -> OhbCell {
    let mut conf = SparkConf::paper_defaults(cores);
    // SPARK_TRACE_DIR=<dir> turns on the deterministic timeline for every
    // cell and dumps one Chrome-trace JSON per cell into <dir>. Tracing
    // costs host memory only, never virtual time, so the reported figures
    // are unchanged.
    let trace_dir = std::env::var_os("SPARK_TRACE_DIR");
    conf.trace_timeline = trace_dir.is_some();
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    assert_eq!(cluster.worker_nodes.len(), workers);
    let cfg = OhbConfig::paper(workers, cores, gb_per_worker);
    let outcome = match bench {
        OhbBench::GroupBy => {
            system.run_with_route(spec, cluster, route, move |sc| group_by_app(sc, cfg))
        }
        OhbBench::SortBy => {
            system.run_with_route(spec, cluster, route, move |sc| sort_by_app(sc, cfg))
        }
    };
    if let (Some(dir), Some(json)) = (trace_dir, &outcome.timeline) {
        let name = format!("{}-{}-{}w.json", bench.name(), system.label(), workers);
        let path = std::path::Path::new(&dir).join(name);
        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)).unwrap_or_else(
            |e| panic!("SPARK_TRACE_DIR: cannot write timeline {}: {e}", path.display()),
        );
    }
    let breakdown = StageBreakdown::from_jobs(&outcome.jobs);
    OhbCell { breakdown, total_ns: outcome.total_ns(), check: outcome.result }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_groupby_cell_runs_all_systems() {
        for system in [System::Vanilla, System::RdmaSpark, System::Mpi4Spark] {
            let cell = run_cell(system, OhbBench::GroupBy, 2, 4, 1);
            assert!(cell.check > 0);
            assert!(cell.breakdown.shuffle_read_ns > 0);
        }
    }

    #[test]
    fn groupby_ordering_holds_at_small_scale() {
        let van = run_cell(System::Vanilla, OhbBench::GroupBy, 2, 4, 1);
        let rdma = run_cell(System::RdmaSpark, OhbBench::GroupBy, 2, 4, 1);
        let mpi = run_cell(System::Mpi4Spark, OhbBench::GroupBy, 2, 4, 1);
        assert!(van.breakdown.shuffle_read_ns > rdma.breakdown.shuffle_read_ns);
        assert!(rdma.breakdown.shuffle_read_ns > mpi.breakdown.shuffle_read_ns);
        assert!(van.total_ns > mpi.total_ns);
    }
}
