//! Fig. 8 runner: Netty-level ping-pong latency, NIO vs. Netty+MPI, on the
//! internal cluster (IB-EDR).
//!
//! The measured exchange is a chunk fetch: a tiny `ChunkFetchRequest` and a
//! `ChunkFetchSuccess` of the probed size — the message pair the shuffle
//! lives on. The "Netty+MPI" series runs the Basic transport (every message
//! over MPI), matching the paper's transport-level microbenchmark, which
//! predates the Optimized split.

use std::sync::Arc;

use fabric::{ClusterSpec, Net, Payload};
use mpi4spark::transport::MpiTransportBasic;
use mpi4spark::MpiProcCtx;
use netz::{ChannelCore, RpcHandler, StreamManager, TransportConf, TransportContext};
use simt::sync::OnceCell;
use simt::Sim;

/// Which transport the ping-pong exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingPongTransport {
    /// Netty NIO over Java sockets (Vanilla).
    Nio,
    /// Netty+MPI (the paper's MPI transport).
    NettyMpi,
}

/// Serves chunks whose size equals the stream id (the client encodes the
/// probe size there).
struct SizeChunks;

impl RpcHandler for SizeChunks {
    fn receive(
        &self,
        _chan: &Arc<ChannelCore>,
        _body: Payload,
        reply: netz::context::RpcResponseCallback,
    ) {
        reply(Err("ping-pong server only serves chunks".into()));
    }

    fn stream_manager(&self) -> Arc<dyn StreamManager> {
        Arc::new(SizeStreams)
    }
}

struct SizeStreams;

impl StreamManager for SizeStreams {
    fn get_chunk(&self, stream_id: u64, _chunk_index: u32) -> Result<Payload, String> {
        Ok(Payload::bytes_scaled(bytes::Bytes::from_static(b"p"), stream_id.max(1)))
    }
}

const WARMUP: u32 = 3;

fn measure(client: &netz::TransportClient, size: u64, iters: u32) -> u64 {
    for _ in 0..WARMUP {
        client.fetch_chunk(size, 0).expect("warmup fetch");
    }
    let t0 = simt::now();
    for _ in 0..iters {
        client.fetch_chunk(size, 0).expect("measured fetch");
    }
    let rtt = (simt::now() - t0) / u64::from(iters);
    rtt / 2
}

/// One-way latency (ns) for `size`-byte messages over `transport` on the
/// internal cluster, averaged over `iters` round trips.
pub fn run_pingpong(transport: PingPongTransport, size: u64, iters: u32) -> u64 {
    let sim = Sim::new();
    let out: OnceCell<u64> = OnceCell::new();
    let out2 = out.clone();
    sim.spawn("main", move || {
        let net = Net::new(&ClusterSpec::internal(2));
        match transport {
            PingPongTransport::Nio => {
                let conf = TransportConf::default_sockets();
                let server = TransportContext::new(net.clone(), conf, Arc::new(SizeChunks))
                    .create_server("pp-server", 0, 500);
                let ep = TransportContext::new(net.clone(), conf, Arc::new(netz::NoOpRpcHandler))
                    .create_client_endpoint("pp-client", 1);
                let client = ep.connect(server.addr()).expect("connect");
                out2.put(measure(&client, size, iters));
            }
            PingPongTransport::NettyMpi => {
                let done: OnceCell<()> = OnceCell::new();
                let done_server = done.clone();
                let result = out2.clone();
                let net_server = net.clone();
                let net_client = net.clone();
                rmpi::mpiexec_with(
                    &net,
                    &[0, 1],
                    vec![
                        Box::new(move |world: rmpi::Comm| {
                            let ctx = MpiProcCtx::world_proc(world);
                            let conf = TransportConf::default_sockets();
                            let server = TransportContext::with_transport(
                                net_server,
                                conf,
                                Arc::new(SizeChunks),
                                Arc::new(MpiTransportBasic::new(ctx)),
                            )
                            .create_server("pp-server", 0, 500);
                            done_server.take();
                            server.shutdown();
                        }),
                        Box::new(move |world: rmpi::Comm| {
                            simt::sleep(simt::time::millis(1)); // server binds first
                            let ctx = MpiProcCtx::world_proc(world);
                            let conf = TransportConf::default_sockets();
                            let ep = TransportContext::with_transport(
                                net_client,
                                conf,
                                Arc::new(netz::NoOpRpcHandler),
                                Arc::new(MpiTransportBasic::new(ctx)),
                            )
                            .create_client_endpoint("pp-client", 1);
                            let client = ep
                                .connect(fabric::PortAddr { node: 0, port: 500 })
                                .expect("connect");
                            result.put(measure(&client, size, iters));
                            done.put(());
                        }),
                    ],
                );
            }
        }
    });
    sim.run().expect("simulation completes");
    let v = out.try_take().expect("measurement finished");
    sim.shutdown();
    v
}

/// The message sizes of the paper's Fig. 8 (small panel: 1 B–8 KiB;
/// large panel: 16 KiB–4 MiB).
pub fn fig8_sizes() -> (Vec<u64>, Vec<u64>) {
    let small: Vec<u64> = (0..=13).map(|i| 1u64 << i).collect();
    let large: Vec<u64> = (14..=22).map(|i| 1u64 << i).collect();
    (small, large)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_beats_nio_at_4mb() {
        let nio = run_pingpong(PingPongTransport::Nio, 4 << 20, 3);
        let mpi = run_pingpong(PingPongTransport::NettyMpi, 4 << 20, 3);
        let speedup = nio as f64 / mpi as f64;
        assert!(
            (5.0..=14.0).contains(&speedup),
            "expected ≈9x at 4MB (paper Fig. 8), got {speedup:.1}x (nio={nio} mpi={mpi})"
        );
    }

    #[test]
    fn mpi_beats_nio_at_small_sizes_too() {
        let nio = run_pingpong(PingPongTransport::Nio, 64, 5);
        let mpi = run_pingpong(PingPongTransport::NettyMpi, 64, 5);
        assert!(mpi < nio, "nio={nio} mpi={mpi}");
    }

    #[test]
    fn latency_grows_with_size() {
        let a = run_pingpong(PingPongTransport::Nio, 1 << 10, 3);
        let b = run_pingpong(PingPongTransport::Nio, 1 << 20, 3);
        assert!(b > a);
    }
}
