//! Traced smoke cell for the CI gate: run one small OHB GroupBy cell with
//! the deterministic timeline enabled, dump the Chrome-trace JSON into
//! `SPARK_TRACE_DIR`, and validate it in-process. CI runs this twice into
//! two directories and `cmp`s the outputs — the export must be
//! byte-identical across same-seed re-runs.
//!
//! Run: `SPARK_TRACE_DIR=/tmp/trace cargo run --release -p mpi4spark-bench
//! --bin traced_smoke`

use mpi4spark_bench::ohb_runner::{run_cell, OhbBench};
use workloads::System;

fn main() {
    let dir = std::env::var("SPARK_TRACE_DIR").unwrap_or_else(|_| {
        eprintln!("SPARK_TRACE_DIR not set; defaulting to target/trace-smoke");
        "target/trace-smoke".to_string()
    });
    std::env::set_var("SPARK_TRACE_DIR", &dir);

    let system = System::Mpi4Spark;
    let bench = OhbBench::GroupBy;
    let workers = 2;
    let cell = run_cell(system, bench, workers, 4, 1);
    assert!(cell.check > 0, "workload sanity value must be positive");

    let path = std::path::Path::new(&dir).join(format!(
        "{}-{}-{}w.json",
        bench.name(),
        system.label(),
        workers
    ));
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("timeline missing at {}: {e}", path.display()));
    obs::timeline::validate_json(&json)
        .unwrap_or_else(|e| panic!("invalid timeline JSON at {}: {e}", path.display()));
    for name in ["simt.task", "netz.msg.send", "spark.stage", "rmpi.coll.bcast"] {
        assert!(json.contains(&format!("\"name\":\"{name}\"")), "timeline lacks {name} spans");
    }
    println!("traced smoke: {} ({} bytes, valid JSON)", path.display(), json.len());
}
