//! Ablation: shuffle fetch batching (`spark.reducer.maxSizeInFlight`).
//!
//! Sweeps the in-flight byte cap of the `ShuffleBlockFetcherIterator` and
//! the chunk-per-block vs merged-chunk protocol mode, showing how request
//! windowing interacts with each transport's per-message overhead.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin ablation_batching`

use mpi4spark_bench::report::{print_table, secs};
use mpi4spark_bench::Scale;
use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::ohb::{group_by_app, OhbConfig};
use workloads::System;

fn run_with(conf: SparkConf, workers: usize, cores: u32, gb: u64, system: System) -> u64 {
    let spec = mpi4spark_bench::frontera_cluster(workers);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let cfg = OhbConfig::paper(workers, cores, gb);
    system.run(&spec, cluster, move |sc| group_by_app(sc, cfg)).total_ns()
}

fn main() {
    let scale = Scale::from_env_args();
    let (workers, cores, gb) = match scale {
        Scale::Full => (4, 56, 14),
        Scale::Small => (2, 4, 1),
    };

    let mut rows = Vec::new();
    for mb in [12u64, 24, 48, 96, 192] {
        let mut conf = SparkConf::paper_defaults(cores);
        conf.max_bytes_in_flight = mb << 20;
        conf.target_request_size = conf.max_bytes_in_flight / 5;
        let v = run_with(conf, workers, cores, gb, System::Vanilla);
        let m = run_with(conf, workers, cores, gb, System::Mpi4Spark);
        rows.push(vec![
            format!("{mb}MB"),
            secs(v),
            secs(m),
            format!("{:.2}x", v as f64 / m as f64),
        ]);
    }
    print_table(
        "Ablation — maxBytesInFlight sweep, OHB GroupBy",
        &["maxBytesInFlight", "IPoIB total(s)", "MPI total(s)", "speedup"],
        &rows,
    );

    let mut rows = Vec::new();
    for merged in [true, false] {
        let mut conf = SparkConf::paper_defaults(cores);
        conf.merge_chunks_per_request = merged;
        let v = run_with(conf, workers, cores, gb, System::Vanilla);
        let m = run_with(conf, workers, cores, gb, System::Mpi4Spark);
        rows.push(vec![
            if merged { "merged-per-request" } else { "chunk-per-block" }.to_string(),
            secs(v),
            secs(m),
            format!("{:.2}x", v as f64 / m as f64),
        ]);
    }
    print_table(
        "Ablation — chunk granularity (merged vs Spark's chunk-per-block)",
        &["mode", "IPoIB total(s)", "MPI total(s)", "speedup"],
        &rows,
    );
}
