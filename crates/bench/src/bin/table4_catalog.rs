//! Table IV: the benchmark catalog — every workload of both suites runs
//! (at smoke scale) and reports its category and a sanity value.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin table4_catalog`

use mpi4spark_bench::report::print_table;
use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::graph::{nweight_app, NWeightConfig};
use workloads::micro::{repartition_app, terasort_app, MicroConfig};
use workloads::ml::{gmm_app, lda_app, lr_app, svm_app, MlConfig};
use workloads::ohb::{group_by_app, sort_by_app, OhbConfig};
use workloads::System;

fn main() {
    let spec = mpi4spark_bench::frontera_cluster(2);
    let conf = SparkConf::paper_defaults(4);
    let cluster = || ClusterConfig::paper_layout(spec.len(), conf);
    let ohb = OhbConfig {
        partitions: 8,
        records_per_partition: 32,
        value_bytes: 1 << 14,
        key_range: 64,
        seed: 4,
    };
    let micro =
        MicroConfig { partitions: 8, records_per_partition: 24, record_bytes: 1 << 13, seed: 4 };
    let ml = MlConfig {
        partitions: 8,
        samples_per_partition: 96,
        virtual_samples_per_partition: 96,
        dim: 8,
        iterations: 3,
        agg_partitions: 4,
        pad_bytes: 2048,
        seed: 4,
    };
    let nw = NWeightConfig {
        vertices: 64,
        degree: 3,
        hops: 2,
        partitions: 8,
        payload_pad: 256,
        seed: 4,
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let sys = System::Mpi4Spark;
    let mut add = |suite: &str, name: &str, desc: &str, cat: &str, value: String| {
        rows.push(vec![
            suite.to_string(),
            name.to_string(),
            desc.to_string(),
            cat.to_string(),
            value,
        ]);
    };

    let r = sys.run(&spec, cluster(), move |sc| svm_app(sc, ml));
    add(
        "HiBench",
        "SVM",
        "large-scale classification",
        "Machine Learning",
        format!("loss={:.3}", r.result.final_loss),
    );
    let r = sys.run(&spec, cluster(), move |sc| lda_app(sc, ml, 32, 4));
    add(
        "HiBench",
        "LDA",
        "topic model over documents",
        "Machine Learning",
        format!("nll={:.1}", r.result.final_loss),
    );
    let r = sys.run(&spec, cluster(), move |sc| gmm_app(sc, ml, 2));
    add(
        "HiBench",
        "GMM",
        "k-Gaussian mixture via EM",
        "Machine Learning",
        format!("nll={:.3}", r.result.final_loss),
    );
    let r = sys.run(&spec, cluster(), move |sc| lr_app(sc, ml));
    add(
        "HiBench",
        "LR",
        "categorical response prediction",
        "Machine Learning",
        format!("loss={:.3}", r.result.final_loss),
    );
    let r = sys.run(&spec, cluster(), move |sc| repartition_app(sc, micro));
    add(
        "HiBench",
        "Repartition",
        "shuffle performance",
        "Micro Benchmarks",
        format!("records={}", r.result),
    );
    let r = sys.run(&spec, cluster(), move |sc| terasort_app(sc, micro));
    add(
        "HiBench",
        "TeraSort",
        "standard sort of input data",
        "Micro Benchmarks",
        format!("records={}", r.result),
    );
    let r = sys.run(&spec, cluster(), move |sc| nweight_app(sc, nw));
    add("HiBench", "NWeight", "n-hop vertex associations", "Graph", format!("pairs={}", r.result));
    let r = sys.run(&spec, cluster(), move |sc| group_by_app(sc, ohb));
    add("OHB", "GroupBy", "group values per key", "RDD Benchmarks", format!("groups={}", r.result));
    let r = sys.run(&spec, cluster(), move |sc| sort_by_app(sc, ohb));
    add("OHB", "SortBy", "sort the RDD by key", "RDD Benchmarks", format!("records={}", r.result));

    print_table(
        "Table IV — Benchmark suites, workloads, and categories (all runnable under MPI4Spark)",
        &["suite", "workload", "description", "category", "check"],
        &rows,
    );
}
