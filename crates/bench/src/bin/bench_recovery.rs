//! Recovery-overhead bench: the event-driven stage engine under faults.
//!
//! Measures a GroupBy job on MPI4Spark-Optimized across five cells:
//!
//! * **fault-free** with speculation off and on — the speculation tick loop
//!   must cost (virtually) nothing when nothing straggles;
//! * **crash-map** — the victim node dies as the map stage launches, and
//!   the stranded tasks are re-run by straggler speculation;
//! * **crash-reduce** — the victim dies after writing its map outputs, so
//!   fetch retries exhaust and the scheduler quarantines it, recomputes the
//!   lost partitions by lineage, and resubmits the reduce attempt;
//! * **slowdown** with speculation off and on — duplicates on healthy
//!   executors must beat waiting out the slow node.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin bench_recovery`
//! JSON artifact: `... --bin bench_recovery -- --json` writes
//! `BENCH_recovery.json` (virtual job totals, recovery counters, and host
//! wall-clock simulator throughput per cell).

use fabric::{ClusterSpec, FaultPlan};
use mpi4spark_bench::report::{print_table, secs};
use mpi4spark_bench::Scale;
use sparklet::deploy::ClusterConfig;
use sparklet::scheduler::SparkContext;
use sparklet::{SparkConf, SpeculationConf};
use workloads::System;

const MS: u64 = 1_000_000;
/// Worker node the faults target (workers 0..3, master 3, driver 4).
const VICTIM: usize = 1;

fn conf(speculation: bool) -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.merge_chunks_per_request = false;
    conf.connect_timeout_ns = 50 * MS;
    conf.request_timeout_ns = 100 * MS;
    conf.fetch_timeout_ns = 150 * MS;
    conf.fetch_max_retries = 1;
    conf.fetch_retry_base_ns = 20 * MS;
    conf.fetch_retry_max_ns = 100 * MS;
    conf.speculation = SpeculationConf {
        enabled: speculation,
        interval_ns: MS,
        multiplier: 2.0,
        quantile: 0.5,
        min_runtime_ns: MS,
    };
    conf
}

fn groupby(pairs: u64) -> impl Fn(&SparkContext) -> usize + Send + Clone {
    move |sc| {
        let data: Vec<(u64, u64)> = (0..pairs).map(|i| (i % 97, i)).collect();
        sc.parallelize(data, 9).group_by_key(9).collect().len()
    }
}

/// One measured cell.
struct Cell {
    fault: &'static str,
    speculation: bool,
    virtual_ns: u64,
    wall_ms: u64,
    resubmits: u64,
    speculative: u64,
}

impl Cell {
    fn sim_rate(&self) -> f64 {
        self.virtual_ns as f64 / (self.wall_ms as f64 * 1e6).max(1.0)
    }
}

fn run_cell(
    fault: &'static str,
    speculation: bool,
    spec: &ClusterSpec,
    plan: Option<FaultPlan>,
    linger_ns: u64,
    pairs: u64,
) -> Cell {
    let cluster = ClusterConfig::paper_layout(spec.len(), conf(speculation));
    let app = groupby(pairs);
    // detlint: allow(D1, reason = "host wall-clock times the simulator itself, not simulated events")
    let wall = std::time::Instant::now();
    let out = match plan {
        Some(plan) => System::Mpi4Spark.run_with_chaos(spec, cluster, plan, move |sc| {
            let n = app(sc);
            simt::sleep(linger_ns);
            n
        }),
        None => System::Mpi4Spark.run(spec, cluster, move |sc| app(sc)),
    };
    assert_eq!(out.result, 97, "{fault}: wrong group count");
    Cell {
        fault,
        speculation,
        virtual_ns: out.total_ns(),
        wall_ms: wall.elapsed().as_millis() as u64,
        resubmits: out.stage_resubmits(),
        speculative: out.speculative_tasks(),
    }
}

/// `start_ns` of the named stage in the fault-free speculation-on run.
fn stage_start(spec: &ClusterSpec, fragment: &str, pairs: u64) -> u64 {
    let cluster = ClusterConfig::paper_layout(spec.len(), conf(true));
    let out = System::Mpi4Spark.run(spec, cluster, groupby(pairs));
    out.jobs
        .iter()
        .flat_map(|j| j.stages.iter())
        .find(|s| s.name == fragment)
        .unwrap_or_else(|| panic!("no stage named {fragment}"))
        .start_ns
}

fn write_json(path: &str, scale: Scale, cells: &[Cell]) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"fault\":{:?},\"speculation\":{},\"virtual_total_ns\":{},\
                 \"stage_resubmits\":{},\"speculative_tasks\":{},\"wall_ms\":{},\
                 \"sim_ns_per_host_ns\":{:.3}}}",
                c.fault,
                c.speculation,
                c.virtual_ns,
                c.resubmits,
                c.speculative,
                c.wall_ms,
                c.sim_rate()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"bench_recovery\",\n  \"workload\": \"GroupBy 9x9\",\n  \
         \"system\": \"MPI\",\n  \"scale\": {:?},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if scale == Scale::Full { "full" } else { "small" },
        rows.join(",\n")
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn main() {
    let scale = Scale::from_env_args();
    let json = std::env::args().any(|a| a == "--json");
    let pairs: u64 = match scale {
        Scale::Full => 40_000,
        Scale::Small => 2_000,
    };
    let spec = ClusterSpec::test(5);

    let map_start = stage_start(&spec, "Job0-ShuffleMapStage", pairs);
    let reduce_start = stage_start(&spec, "Job0-ResultStage", pairs);
    let crash = |start: u64, dur: u64| {
        FaultPlan::seeded(31).crash_node(VICTIM, start.saturating_sub(50_000), dur).build()
    };
    let slow = || {
        FaultPlan::seeded(32)
            .slow_node(VICTIM, map_start.saturating_sub(50_000), 10_000 * MS, 20 * MS)
            .build()
    };

    let cells = vec![
        run_cell("fault-free", false, &spec, None, 0, pairs),
        run_cell("fault-free", true, &spec, None, 0, pairs),
        run_cell("crash-map", true, &spec, Some(crash(map_start, 50 * MS)), 100 * MS, pairs),
        run_cell(
            "crash-reduce",
            true,
            &spec,
            Some(crash(reduce_start, 600 * MS)),
            1_200 * MS,
            pairs,
        ),
        run_cell("slowdown", false, &spec, Some(slow()), 0, pairs),
        run_cell("slowdown", true, &spec, Some(slow()), 0, pairs),
    ];

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.fault.to_string(),
                if c.speculation { "on" } else { "off" }.to_string(),
                secs(c.virtual_ns),
                format!("{}", c.resubmits),
                format!("{}", c.speculative),
                format!("{:.0}", c.sim_rate()),
            ]
        })
        .collect();
    print_table(
        "Recovery overhead — event-driven stage engine under faults (MPI, GroupBy)",
        &["fault", "speculation", "job total(s)", "resubmits", "spec tasks", "sim ns/host ns"],
        &rows,
    );

    // Contracts the recovery machinery must honour, checked on every run.
    let get = |fault: &str, spec_on: bool| {
        cells.iter().find(|c| c.fault == fault && c.speculation == spec_on).expect("cell present")
    };
    let (clean_off, clean_on) = (get("fault-free", false), get("fault-free", true));
    assert_eq!(
        clean_on.virtual_ns, clean_off.virtual_ns,
        "the speculation tick loop must not change a straggler-free job's virtual time"
    );
    assert!(get("crash-map", true).speculative >= 1, "crash-map must speculate stranded tasks");
    assert!(get("crash-reduce", true).resubmits >= 1, "crash-reduce must resubmit a stage");
    let (slow_off, slow_on) = (get("slowdown", false), get("slowdown", true));
    assert!(
        2 * slow_on.virtual_ns < slow_off.virtual_ns,
        "speculation must measurably cut the slowdown cell's virtual job time \
         ({} vs {} ns)",
        slow_on.virtual_ns,
        slow_off.virtual_ns
    );

    if json {
        write_json("BENCH_recovery.json", scale, &cells);
    }
}
