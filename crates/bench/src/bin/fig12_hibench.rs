//! Fig. 12: Intel HiBench workloads at the Huge size.
//!
//! * `--system frontera` (default): 16 workers × 56 cores (896 cores),
//!   IB-HDR; systems IPoIB / RDMA / MPI; workloads LDA, SVM, GMM,
//!   Repartition (panel a) and NWeight, TeraSort (panel b).
//!   Paper targets: LDA 1.74x/1.66x, SVM 1.17x/1.10x, GMM 1.50x,
//!   Repartition 1.49x, NWeight 1.61x (≈RDMA), TeraSort ≈par.
//! * `--system stampede2`: 8 workers × 48 cores (384 cores / 768 threads),
//!   Omni-Path; no RDMA-Spark (IB-only); workloads LR, GMM, SVM,
//!   Repartition. Paper targets: 2.17x, 1.09x, 1.16x, 1.48x.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin fig12_hibench -- --system frontera`

use mpi4spark_bench::hibench::{run_hibench, HiBenchParams, HiBenchWorkload};
use mpi4spark_bench::report::{print_table, ratio, secs};
use mpi4spark_bench::Scale;
use workloads::System;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let system_name = args
        .iter()
        .position(|a| a == "--system")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str().to_string())
        .unwrap_or_else(|| "frontera".to_string());
    let scale = Scale::from_env_args();
    let shrink = match scale {
        Scale::Full => 1,
        Scale::Small => 32,
    };

    let (spec, params, workloads_list, title) = match system_name.as_str() {
        "stampede2" => {
            let workers = scale.workers(8).max(2);
            let cores = match scale {
                Scale::Full => 96, // 48 cores × 2 HT, per §VII-C
                Scale::Small => 4,
            };
            (
                mpi4spark_bench::stampede2_cluster(workers),
                HiBenchParams { workers, cores, shrink },
                HiBenchWorkload::stampede2_set(),
                "Fig. 12(c) — HiBench Huge on Stampede2 (OPA, 384 cores / 768 threads)",
            )
        }
        _ => {
            let workers = scale.workers(16).max(2);
            let cores = scale.frontera_cores();
            (
                mpi4spark_bench::frontera_cluster(workers),
                HiBenchParams { workers, cores, shrink },
                HiBenchWorkload::frontera_set(),
                "Fig. 12(a,b) — HiBench Huge on Frontera (IB-HDR, 896 cores)",
            )
        }
    };

    let systems = System::available_on(&spec);
    let mut rows = Vec::new();
    for w in workloads_list {
        let mut cells = Vec::new();
        for s in &systems {
            cells.push((*s, run_hibench(*s, &spec, params, w)));
        }
        let vanilla = cells[0].1;
        for (s, total) in &cells {
            rows.push(vec![
                w.name().to_string(),
                s.label().to_string(),
                secs(*total),
                ratio(vanilla, *total),
            ]);
        }
    }
    print_table(title, &["workload", "system", "total(s)", "speedup-vs-IPoIB"], &rows);
}
