//! Fig. 10: weak-scaling stage breakdown for OHB GroupByTest and SortByTest
//! on TACC Frontera (14 GB/worker; 8, 16, 32 workers; IPoIB vs RDMA vs MPI).
//!
//! Paper targets at 448 cores (8 workers): GroupBy total 4.23x vs IPoIB and
//! 2.04x vs RDMA; shuffle-read 13.08x / 5.56x. At 1792 cores (32 workers):
//! total 3.78x / 2.07x.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin fig10_weak_scaling`
//! (add `--scale small` for a smoke run).

use mpi4spark_bench::ohb_runner::{run_cell, OhbBench, OhbCell};
use mpi4spark_bench::report::{print_table, ratio, secs};
use mpi4spark_bench::Scale;
use workloads::System;

fn main() {
    let scale = Scale::from_env_args();
    let cores = scale.frontera_cores();
    let gb = scale.gb(14);
    let workers_list: Vec<usize> = [8usize, 16, 32].iter().map(|w| scale.workers(*w)).collect();
    let systems = [System::Vanilla, System::RdmaSpark, System::Mpi4Spark];

    for bench in [OhbBench::GroupBy, OhbBench::SortBy] {
        let mut rows = Vec::new();
        for &workers in &workers_list {
            let mut cells: Vec<(System, OhbCell)> = Vec::new();
            for system in systems {
                let cell = run_cell(system, bench, workers, cores, gb);
                cells.push((system, cell));
            }
            let vanilla = cells[0].1;
            for (system, cell) in &cells {
                rows.push(vec![
                    format!("{workers}w/{}c", workers * cores as usize),
                    format!("{}GB", gb * workers as u64),
                    system.label().to_string(),
                    secs(cell.breakdown.datagen_ns),
                    secs(cell.breakdown.shuffle_write_ns),
                    secs(cell.breakdown.shuffle_read_ns),
                    secs(cell.total_ns),
                    ratio(vanilla.total_ns, cell.total_ns),
                    ratio(vanilla.breakdown.shuffle_read_ns, cell.breakdown.shuffle_read_ns),
                ]);
            }
        }
        print_table(
            &format!("Fig. 10 — Weak scaling, OHB {} (Frontera, {gb} GB/worker)", bench.name()),
            &[
                "scale",
                "data",
                "system",
                "datagen(s)",
                "write(s)",
                "read(s)",
                "total(s)",
                "total-speedup",
                "read-speedup",
            ],
            &rows,
        );
    }
}
