//! Ablation: the Basic design's polling cost (§VI-D / §VII-B).
//!
//! Sweeps the modeled selector-spin load and per-message probe cost to show
//! the mechanism behind Fig. 9: as polling burns more CPU, Basic's runtime
//! degrades while Optimized (no spinning) is unaffected.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin ablation_polling`

use std::sync::Arc;

use fabric::Net;
use mpi4spark::transport::BasicTuning;
use mpi4spark::{Design, MpiBackend};
use mpi4spark_bench::report::{print_table, secs};
use mpi4spark_bench::Scale;
use simt::sync::OnceCell;
use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::ohb::{group_by_app, OhbConfig};

fn run_basic_with(tuning: BasicTuning, workers: usize, cores: u32, gb: u64) -> u64 {
    let spec = mpi4spark_bench::frontera_cluster(workers);
    let conf = SparkConf::paper_defaults(cores);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let cfg = OhbConfig::paper(workers, cores, gb);
    let sim = simt::Sim::new();
    let out: OnceCell<u64> = OnceCell::new();
    let out2 = out.clone();
    sim.spawn("launcher", move || {
        let net = Net::new(&spec);
        let backend = Arc::new(MpiBackend::new(Design::Basic).with_basic_tuning(tuning));
        let (_r, jobs) =
            mpi4spark::launch::run_app_with_backend(&net, &cluster, backend, move |sc| {
                group_by_app(sc, cfg)
            });
        out2.put(jobs.iter().map(|j| j.duration_ns()).sum());
    });
    sim.run().expect("sim").assert_clean();
    let v = out.try_take().expect("done");
    sim.shutdown();
    v
}

fn main() {
    let scale = Scale::from_env_args();
    let (workers, cores, gb) = match scale {
        Scale::Full => (2, 56, 14),
        Scale::Small => (2, 4, 1),
    };

    let mut rows = Vec::new();
    for load in [0.0, 2.0, 4.0, 8.0, 16.0] {
        let tuning = BasicTuning { poll_load_per_endpoint: load, ..Default::default() };
        let total = run_basic_with(tuning, workers, cores, gb);
        rows.push(vec![format!("{load:.0}"), secs(total)]);
    }
    print_table(
        "Ablation — Basic design: selector spin load per endpoint vs GroupBy runtime",
        &["spin threads/endpoint", "total(s)"],
        &rows,
    );

    let mut rows = Vec::new();
    for poll_ns in [0u64, 3_000, 6_000, 12_000, 24_000] {
        let tuning = BasicTuning { per_message_poll_ns: poll_ns, ..Default::default() };
        let total = run_basic_with(tuning, workers, cores, gb);
        rows.push(vec![format!("{:.0}us", poll_ns as f64 / 1e3), secs(total)]);
    }
    print_table(
        "Ablation — Basic design: per-message iprobe cost vs GroupBy runtime",
        &["probe cost/msg", "total(s)"],
        &rows,
    );
}
