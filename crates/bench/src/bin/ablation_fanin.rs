//! Ablation: body-completion strategy under shuffle fan-in.
//!
//! Compares the Optimized design's two body-completion paths — the legacy
//! one-blocking-recv-at-a-time event loop (`Blocking`) and the request-based
//! batched completion pump (`Batched`, the default) — on an OHB GroupBy
//! cell, sweeping the worker count so every reducer fans in over more and
//! more concurrent chunk fetches.
//!
//! Two sweeps:
//!
//! * **Clean fabric.** Bodies ride a healthy MPI plane, so each one has
//!   arrived by the time the endpoint loop finishes the previous dispatch:
//!   both paths complete in (virtually) identical time, pinning that the
//!   pump adds no overhead.
//! * **Degraded MPI plane.** An MPI-stack-scoped drop window lands
//!   mid-shuffle on a straggler's links (headers keep flowing on sockets,
//!   bodies vanish). The blocking path pins the *entire* endpoint event
//!   loop on each lost body until the bounded timeout fires — fetches from
//!   healthy peers stall behind it, serially. The batched pump keeps every
//!   other fetch completing while only the lost chunks wait, so the
//!   missing-chunk escalation overlaps instead of accumulating.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin ablation_fanin`
//! JSON artifact: `... --bin ablation_fanin -- --json` writes
//! `BENCH_fanin.json` (virtual-time job duration and host wall-clock
//! simulator throughput per cell).

use std::sync::Arc;

use fabric::{FaultPlan, Net};
use mpi4spark::{BodyCompletion, Design, MpiBackend};
use mpi4spark_bench::report::{print_table, secs};
use mpi4spark_bench::Scale;
use simt::sync::OnceCell;
use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::ohb::{group_by_app, OhbConfig};

const MS: u64 = 1_000_000;

/// One measured cell: virtual job time plus host wall time for the run.
struct Cell {
    workers: usize,
    fabric: &'static str,
    mode: &'static str,
    virtual_ns: u64,
    wall_ms: u64,
}

impl Cell {
    /// Simulated nanoseconds advanced per host nanosecond.
    fn sim_rate(&self) -> f64 {
        self.virtual_ns as f64 / (self.wall_ms as f64 * 1e6).max(1.0)
    }
}

/// `(total virtual ns, wall ms, shuffle-read stage window)` for one run.
struct RunStats {
    virtual_ns: u64,
    wall_ms: u64,
    read_stage: (u64, u64),
}

/// Timeouts shrunk to the chaos-matrix scale, so a lost body is declared
/// missing in virtual milliseconds rather than the paper's 120 s default.
fn degraded_conf(cores: u32) -> SparkConf {
    let mut conf = SparkConf::paper_defaults(cores);
    conf.merge_chunks_per_request = false;
    conf.connect_timeout_ns = 50 * MS;
    conf.request_timeout_ns = 200 * MS;
    conf.fetch_timeout_ns = 300 * MS;
    conf.fetch_max_retries = 8;
    conf.fetch_retry_base_ns = 20 * MS;
    conf.fetch_retry_max_ns = 200 * MS;
    conf
}

fn run_fanin(
    mode: BodyCompletion,
    conf: SparkConf,
    plan: Option<FaultPlan>,
    workers: usize,
    cores: u32,
    gb: u64,
) -> RunStats {
    let spec = mpi4spark_bench::frontera_cluster(workers);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let cfg = OhbConfig::paper(workers, cores, gb);
    // detlint: allow(D1, reason = "host wall-clock times the simulator itself, not simulated events")
    let wall = std::time::Instant::now();
    let sim = simt::Sim::new();
    let out: OnceCell<(u64, (u64, u64))> = OnceCell::new();
    let out2 = out.clone();
    sim.spawn("launcher", move || {
        let net = Net::new(&spec);
        if let Some(plan) = plan {
            net.install_chaos(plan);
        }
        let backend =
            Arc::new(MpiBackend::with_conf(Design::Optimized, &conf).with_body_completion(mode));
        let (_r, jobs) =
            mpi4spark::launch::run_app_with_backend(&net, &cluster, backend, move |sc| {
                group_by_app(sc, cfg)
            });
        let total: u64 = jobs.iter().map(|j| j.duration_ns()).sum();
        // The GroupBy shuffle read is the *action* job's ResultStage (the
        // last job; job 0 is datagen, whose ResultStage is far longer).
        let read = jobs
            .last()
            .and_then(|j| j.stages.iter().find(|s| s.name.ends_with("ResultStage")))
            .map(|s| (s.start_ns, s.duration_ns()))
            .expect("GroupBy runs a ResultStage");
        out2.put((total, read));
    });
    sim.run().expect("sim").assert_clean();
    let (virtual_ns, read_stage) = out.try_take().expect("done");
    sim.shutdown();
    RunStats { virtual_ns, wall_ms: wall.elapsed().as_millis() as u64, read_stage }
}

/// An MPI-plane outage on the straggler's worker↔worker links, opening as
/// the shuffle-read stage begins (the chunk fetches all issue in the
/// stage's first moments): socket headers keep flowing, chunk bodies vanish
/// until the window clears.
fn degraded_plan(read_stage: (u64, u64), workers: usize) -> FaultPlan {
    let (start, dur) = read_stage;
    let span = (dur / 2).clamp(MS, 100 * MS);
    let mut plan = FaultPlan::seeded(6);
    for peer in 1..workers.min(4) {
        plan = plan.drop_link_stack(0, peer, start.saturating_sub(MS), span, "MPI");
    }
    plan.build()
}

fn write_json(path: &str, scale: Scale, cells: &[Cell]) {
    let mut rows = Vec::new();
    for c in cells {
        rows.push(format!(
            "    {{\"workers\":{},\"fabric\":{:?},\"mode\":{:?},\"virtual_total_ns\":{},\
             \"wall_ms\":{},\"sim_ns_per_host_ns\":{:.3}}}",
            c.workers,
            c.fabric,
            c.mode,
            c.virtual_ns,
            c.wall_ms,
            c.sim_rate()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"ablation_fanin\",\n  \"workload\": \"OHB GroupByTest\",\n  \
         \"scale\": {:?},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if scale == Scale::Full { "full" } else { "small" },
        rows.join(",\n")
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn main() {
    let scale = Scale::from_env_args();
    let json = std::env::args().any(|a| a == "--json");
    let (worker_cells, cores, gb): (&[usize], u32, u64) = match scale {
        Scale::Full => (&[8, 16, 32], 4, 1),
        Scale::Small => (&[2, 4], 2, 1),
    };

    let mut cells: Vec<Cell> = Vec::new();

    // Sweep 1: clean fabric. The pump must cost nothing.
    let mut rows = Vec::new();
    let mut clean_last: Option<(u64, u64)> = None;
    for &workers in worker_cells {
        let conf = SparkConf::paper_defaults(cores);
        let blocking = run_fanin(BodyCompletion::Blocking, conf, None, workers, cores, gb);
        let batched = run_fanin(BodyCompletion::Batched, conf, None, workers, cores, gb);
        cells.push(Cell {
            workers,
            fabric: "clean",
            mode: "blocking",
            virtual_ns: blocking.virtual_ns,
            wall_ms: blocking.wall_ms,
        });
        cells.push(Cell {
            workers,
            fabric: "clean",
            mode: "batched",
            virtual_ns: batched.virtual_ns,
            wall_ms: batched.wall_ms,
        });
        rows.push(vec![
            format!("{workers}"),
            secs(blocking.virtual_ns),
            secs(batched.virtual_ns),
            format!("{:.3}x", blocking.virtual_ns as f64 / batched.virtual_ns as f64),
        ]);
        clean_last = Some((blocking.virtual_ns, batched.virtual_ns));
    }
    print_table(
        &format!(
            "Ablation — body completion at shuffle fan-in, clean fabric \
             ({gb}GB/worker, {cores}c)"
        ),
        &["workers", "blocking total(s)", "batched total(s)", "speedup"],
        &rows,
    );

    // Sweep 2: degraded MPI plane. Batched must win by overlapping the
    // missing-chunk waits that serialise the blocking event loop.
    let mut rows = Vec::new();
    let mut degraded_last: Option<(u64, u64)> = None;
    for &workers in worker_cells {
        let conf = degraded_conf(cores);
        let probe = run_fanin(BodyCompletion::Batched, conf, None, workers, cores, gb);
        let plan = || Some(degraded_plan(probe.read_stage, workers));
        let blocking = run_fanin(BodyCompletion::Blocking, conf, plan(), workers, cores, gb);
        let batched = run_fanin(BodyCompletion::Batched, conf, plan(), workers, cores, gb);
        cells.push(Cell {
            workers,
            fabric: "degraded-mpi-plane",
            mode: "blocking",
            virtual_ns: blocking.virtual_ns,
            wall_ms: blocking.wall_ms,
        });
        cells.push(Cell {
            workers,
            fabric: "degraded-mpi-plane",
            mode: "batched",
            virtual_ns: batched.virtual_ns,
            wall_ms: batched.wall_ms,
        });
        rows.push(vec![
            format!("{workers}"),
            secs(blocking.virtual_ns),
            secs(batched.virtual_ns),
            format!("{:.3}x", blocking.virtual_ns as f64 / batched.virtual_ns as f64),
        ]);
        degraded_last = Some((blocking.virtual_ns, batched.virtual_ns));
    }
    print_table(
        &format!(
            "Ablation — body completion at shuffle fan-in, MPI plane dropped \
             mid-shuffle on the straggler's links ({gb}GB/worker, {cores}c)"
        ),
        &["workers", "blocking total(s)", "batched total(s)", "speedup"],
        &rows,
    );

    // The request path's contract, checked at the widest fan-in: free when
    // the fabric is clean, strictly faster when bodies go missing.
    let (clean_blocking, clean_batched) = clean_last.expect("at least one cell");
    assert!(
        clean_batched as f64 <= clean_blocking as f64 * 1.02,
        "batched completion regressed on a clean fabric: batched {clean_batched}ns vs \
         blocking {clean_blocking}ns"
    );
    let (deg_blocking, deg_batched) = degraded_last.expect("at least one cell");
    assert!(
        deg_batched < deg_blocking,
        "batched completion did not beat the blocking event loop under a degraded MPI \
         plane: batched {deg_batched}ns vs blocking {deg_blocking}ns"
    );

    if json {
        write_json("BENCH_fanin.json", scale, &cells);
    }
}
