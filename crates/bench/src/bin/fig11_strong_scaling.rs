//! Fig. 11: strong-scaling stage breakdown for OHB GroupByTest and
//! SortByTest on Frontera — 224 GB total across 8, 16, and 32 workers.
//!
//! Paper targets at 448 cores: GroupBy 3.72x vs IPoIB / 2.06x vs RDMA;
//! SortBy 3.51x / 1.41x.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin fig11_strong_scaling`

use mpi4spark_bench::ohb_runner::{run_cell, OhbBench, OhbCell};
use mpi4spark_bench::report::{print_table, ratio, secs};
use mpi4spark_bench::Scale;
use workloads::System;

fn main() {
    let scale = Scale::from_env_args();
    let cores = scale.frontera_cores();
    let total_gb = scale.gb(224);
    let workers_list: Vec<usize> = [8usize, 16, 32].iter().map(|w| scale.workers(*w)).collect();
    let systems = [System::Vanilla, System::RdmaSpark, System::Mpi4Spark];

    for bench in [OhbBench::GroupBy, OhbBench::SortBy] {
        let mut rows = Vec::new();
        for &workers in &workers_list {
            let gb_per_worker = (total_gb / workers as u64).max(1);
            let mut cells: Vec<(System, OhbCell)> = Vec::new();
            for system in systems {
                cells.push((system, run_cell(system, bench, workers, cores, gb_per_worker)));
            }
            let vanilla = cells[0].1;
            for (system, cell) in &cells {
                rows.push(vec![
                    format!("{workers}w/{}c", workers * cores as usize),
                    system.label().to_string(),
                    secs(cell.breakdown.datagen_ns),
                    secs(cell.breakdown.shuffle_write_ns),
                    secs(cell.breakdown.shuffle_read_ns),
                    secs(cell.total_ns),
                    ratio(vanilla.total_ns, cell.total_ns),
                ]);
            }
        }
        print_table(
            &format!(
                "Fig. 11 — Strong scaling, OHB {} (Frontera, {total_gb} GB total)",
                bench.name()
            ),
            &["scale", "system", "datagen(s)", "write(s)", "read(s)", "total(s)", "speedup"],
            &rows,
        );
    }
}
