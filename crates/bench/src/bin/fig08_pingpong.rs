//! Fig. 8: Netty ping-pong latency (µs), NIO vs Netty+MPI, small and large
//! message panels, on the internal cluster (IB-EDR).
//!
//! Paper target: "Netty+MPI performs considerably better with speedups of
//! up to 9× for 4MB messages."
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin fig08_pingpong`

use mpi4spark_bench::pingpong::{fig8_sizes, run_pingpong, PingPongTransport};
use mpi4spark_bench::report::{micros, print_table};

fn main() {
    let iters = 10;
    let (small, large) = fig8_sizes();
    for (panel, sizes) in [("Small", small), ("Large", large)] {
        let mut rows = Vec::new();
        for size in sizes {
            let nio = run_pingpong(PingPongTransport::Nio, size, iters);
            let mpi = run_pingpong(PingPongTransport::NettyMpi, size, iters);
            rows.push(vec![
                if size < 1024 { format!("{size}B") } else { format!("{}K", size / 1024) },
                micros(nio),
                micros(mpi),
                format!("{:.2}x", nio as f64 / mpi as f64),
            ]);
        }
        print_table(
            &format!(
                "Fig. 8 — Netty ping-pong latency, {panel} messages (internal cluster, IB-EDR)"
            ),
            &["size", "NIO (us)", "Netty+MPI (us)", "speedup"],
            &rows,
        );
    }
}
