//! Ablation: which message types ride MPI (paper §VI-E's routing choice).
//!
//! The paper's Optimized design sends only `ChunkFetchSuccess` and
//! `StreamResponse` bodies over MPI, keeping headers and small RPCs on the
//! socket path. This sweep re-runs the OHB GroupBy cell under
//! MPI4Spark-Optimized with every named `RoutePolicy` — the policy is plain
//! backend data, so each variant is a flag flip, not a code change.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin ablation_routing`
//! One policy only: `... --bin ablation_routing -- --route-policy all-bodies`

use mpi4spark_bench::ohb_runner::{run_cell_routed, OhbBench};
use mpi4spark_bench::report::{print_table, ratio, secs};
use mpi4spark_bench::{frontera_cluster, Scale};
use netz::RoutePolicy;
use workloads::System;

fn route_policy_arg() -> Option<RoutePolicy> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--route-policy" {
            let v = args.get(i + 1).expect("--route-policy needs a value");
            return Some(RoutePolicy::from_flag(v).unwrap_or_else(|| {
                panic!(
                    "unknown route policy '{v}' (expected none, chunk-bodies, \
                     shuffle-bodies, all-bodies, or all-messages)"
                )
            }));
        }
    }
    None
}

fn main() {
    let scale = Scale::from_env_args();
    let cores = scale.frontera_cores();
    let gb = scale.gb(14);
    let workers = scale.workers(4).max(2);
    let spec = frontera_cluster(workers);

    let policies: Vec<RoutePolicy> = match route_policy_arg() {
        Some(p) => vec![p],
        None => vec![
            RoutePolicy::NONE,
            RoutePolicy::CHUNK_BODIES,
            RoutePolicy::SHUFFLE_BODIES,
            RoutePolicy::ALL_BODIES,
        ],
    };

    let baseline = run_cell_routed(
        &spec,
        System::Mpi4Spark,
        OhbBench::GroupBy,
        workers,
        cores,
        gb,
        Some(RoutePolicy::SHUFFLE_BODIES),
    );

    let mut rows = Vec::new();
    for policy in policies {
        let cell = run_cell_routed(
            &spec,
            System::Mpi4Spark,
            OhbBench::GroupBy,
            workers,
            cores,
            gb,
            Some(policy),
        );
        rows.push(vec![
            policy.flag_name().to_string(),
            secs(cell.total_ns),
            secs(cell.breakdown.shuffle_read_ns),
            ratio(cell.breakdown.shuffle_read_ns, baseline.breakdown.shuffle_read_ns),
        ]);
    }
    print_table(
        &format!(
            "Ablation — body-routing policy, OHB GroupByTest {}GB/{}c (Frontera)",
            gb * workers as u64,
            workers * cores as usize
        ),
        &["policy", "total(s)", "read(s)", "read-vs-shuffle-bodies"],
        &rows,
    );
}
