//! Fig. 9: MPI4Spark-Basic vs MPI4Spark-Optimized vs Vanilla Spark, OHB
//! GroupByTest and SortByTest, 28 GB @ 112 cores and 56 GB @ 224 cores on
//! Frontera.
//!
//! Paper target: Optimized beats Basic because Basic's selector loop spins
//! in non-blocking `select()` + `MPI_Iprobe`, "consuming CPU time hence
//! starving the actual compute tasks" (§VII-B).
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin fig09_basic_vs_opt`

use mpi4spark_bench::ohb_runner::{run_cell, OhbBench};
use mpi4spark_bench::report::{print_table, ratio, secs};
use mpi4spark_bench::Scale;
use workloads::System;

fn main() {
    let scale = Scale::from_env_args();
    let cores = scale.frontera_cores();
    let gb = scale.gb(14);
    let systems = [System::Vanilla, System::Mpi4SparkBasic, System::Mpi4Spark];

    for bench in [OhbBench::GroupBy, OhbBench::SortBy] {
        let mut rows = Vec::new();
        for workers in [scale.workers(2).max(2), scale.workers(4).max(2)] {
            let cells: Vec<_> =
                systems.iter().map(|s| (*s, run_cell(*s, bench, workers, cores, gb))).collect();
            let vanilla = cells[0].1;
            for (system, cell) in &cells {
                rows.push(vec![
                    format!("{}GB/{}c", gb * workers as u64, workers * cores as usize),
                    system.label().to_string(),
                    secs(cell.total_ns),
                    secs(cell.breakdown.shuffle_read_ns),
                    ratio(vanilla.total_ns, cell.total_ns),
                ]);
            }
        }
        print_table(
            &format!("Fig. 9 — Basic vs Optimized, OHB {} (Frontera)", bench.name()),
            &["config", "system", "total(s)", "read(s)", "speedup-vs-IPoIB"],
            &rows,
        );
    }
}
