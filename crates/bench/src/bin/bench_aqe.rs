//! Adaptive-execution bench: zipfian GroupBy, static vs adaptive plans.
//!
//! Runs the OHB GroupByTest over zipf(2.5)-keyed data on all four systems,
//! once with AQE off (the static oracle) and once with AQE on. The hot key
//! concentrates a large fraction of the shuffle in one reduce bucket; the
//! adaptive plan splits that bucket into map-range slices (two-phase
//! aggregation) and coalesces the near-empty tail, so the reduce stage's
//! critical path drops from "the one hot task" to "the widest slice".
//!
//! Reported per cell: virtual GroupBy-job time, whole-app virtual time,
//! AQE task/slice/coalesce counters, and host wall-clock throughput.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin bench_aqe`
//! JSON artifact: `... --bin bench_aqe -- --json` writes `BENCH_aqe.json`.

use fabric::ClusterSpec;
use mpi4spark_bench::report::{print_table, ratio, secs};
use mpi4spark_bench::Scale;
use sparklet::deploy::ClusterConfig;
use sparklet::{AqeConf, SparkConf};
use workloads::ohb::{group_by_zipf_app, OhbConfig};
use workloads::System;

/// Zipf exponent for the key distribution: the head key carries ~75% of all
/// records, the canonical "one hot reducer" shape.
const EXPONENT: f64 = 2.5;

fn ohb_config(scale: Scale, partitions: usize) -> OhbConfig {
    let (records_per_partition, value_bytes) = match scale {
        Scale::Full => (8_000, 100),
        Scale::Small => (2_000, 100),
    };
    OhbConfig { partitions, records_per_partition, value_bytes, key_range: 1_000, seed: 0xA0E }
}

fn conf(aqe: Option<AqeConf>) -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    if let Some(aqe) = aqe {
        conf.aqe = aqe;
    }
    conf
}

/// One measured cell: one system, AQE on or off.
struct Cell {
    system: System,
    adaptive: bool,
    /// Distinct groups the job returned (equality across cells is the
    /// correctness contract).
    groups: u64,
    /// Virtual duration of the GroupBy job alone (job 1; job 0 is datagen).
    groupby_ns: u64,
    /// Virtual duration summed over both jobs.
    total_ns: u64,
    aqe_tasks: u64,
    split_slices: u64,
    coalesced: u64,
    wall_ms: u64,
}

impl Cell {
    fn sim_rate(&self) -> f64 {
        self.total_ns as f64 / (self.wall_ms as f64 * 1e6).max(1.0)
    }
}

fn run_cell(system: System, spec: &ClusterSpec, cfg: OhbConfig, aqe: Option<AqeConf>) -> Cell {
    let cluster = ClusterConfig::paper_layout(spec.len(), conf(aqe));
    // detlint: allow(D1, reason = "host wall-clock times the simulator itself, not simulated events")
    let wall = std::time::Instant::now();
    let out = system.run(spec, cluster, move |sc| group_by_zipf_app(sc, cfg, EXPONENT));
    Cell {
        system,
        adaptive: aqe.is_some(),
        groups: out.result,
        groupby_ns: out.jobs[1].duration_ns(),
        total_ns: out.total_ns(),
        aqe_tasks: out.aqe_tasks(),
        split_slices: out.aqe_split_slices(),
        coalesced: out.aqe_coalesced_tasks(),
        wall_ms: wall.elapsed().as_millis() as u64,
    }
}

fn write_json(path: &str, scale: Scale, cfg: &OhbConfig, cells: &[Cell]) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"system\":{:?},\"adaptive\":{},\"groups\":{},\"groupby_ns\":{},\
                 \"total_ns\":{},\"aqe_tasks\":{},\"aqe_split_slices\":{},\
                 \"aqe_coalesced_tasks\":{},\"wall_ms\":{},\"sim_ns_per_host_ns\":{:.3}}}",
                c.system.label(),
                c.adaptive,
                c.groups,
                c.groupby_ns,
                c.total_ns,
                c.aqe_tasks,
                c.split_slices,
                c.coalesced,
                c.wall_ms,
                c.sim_rate()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"bench_aqe\",\n  \"workload\": \"GroupBy zipf({EXPONENT})\",\n  \
         \"records\": {},\n  \"value_bytes\": {},\n  \"partitions\": {},\n  \
         \"scale\": {:?},\n  \"cells\": [\n{}\n  ]\n}}\n",
        cfg.partitions as u64 * cfg.records_per_partition,
        cfg.value_bytes,
        cfg.partitions,
        if scale == Scale::Full { "full" } else { "small" },
        rows.join(",\n")
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn main() {
    let scale = Scale::from_env_args();
    let json = std::env::args().any(|a| a == "--json");
    let spec = ClusterSpec::test(10);
    let partitions = 32;
    let cfg = ohb_config(scale, partitions);
    // Target ≈ the average bucket: the hot bucket (~24× the average) splits
    // into map-range slices, the zipf tail coalesces.
    let aqe = AqeConf {
        enabled: true,
        target_bytes: cfg.total_bytes() / partitions as u64,
        skew_factor: 2.0,
        max_slices: 32,
    };

    let systems = [System::Vanilla, System::RdmaSpark, System::Mpi4SparkBasic, System::Mpi4Spark];
    let mut cells = Vec::new();
    for system in systems {
        cells.push(run_cell(system, &spec, cfg, None));
        cells.push(run_cell(system, &spec, cfg, Some(aqe)));
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.system.label().to_string(),
                if c.adaptive { "adaptive" } else { "static" }.to_string(),
                secs(c.groupby_ns),
                secs(c.total_ns),
                format!("{}", c.aqe_tasks),
                format!("{}", c.split_slices),
                format!("{}", c.coalesced),
                format!("{:.0}", c.sim_rate()),
            ]
        })
        .collect();
    print_table(
        "Adaptive execution — zipfian GroupBy, static vs AQE plans",
        &[
            "system",
            "plan",
            "groupby(s)",
            "app total(s)",
            "aqe tasks",
            "slices",
            "coalesced",
            "sim ns/host ns",
        ],
        &rows,
    );

    // Contracts checked on every run.
    for pair in cells.chunks(2) {
        let (stat, adap) = (&pair[0], &pair[1]);
        let label = stat.system.label();
        assert_eq!(stat.aqe_tasks, 0, "{label}: AQE off must never plan");
        assert!(adap.aqe_tasks > 0, "{label}: AQE on never engaged");
        assert!(adap.split_slices > 0, "{label}: the hot bucket was never split");
        assert_eq!(stat.groups, adap.groups, "{label}: adaptive changed the job's result");
    }
    let mpi_static = cells.iter().find(|c| c.system == System::Mpi4Spark && !c.adaptive).unwrap();
    let mpi_adaptive = cells.iter().find(|c| c.system == System::Mpi4Spark && c.adaptive).unwrap();
    assert!(
        mpi_static.groupby_ns >= 2 * mpi_adaptive.groupby_ns,
        "AQE must cut the zipfian GroupBy job's virtual time at least 2x on MPI \
         (static {} vs adaptive {} — {})",
        mpi_static.groupby_ns,
        mpi_adaptive.groupby_ns,
        ratio(mpi_static.groupby_ns, mpi_adaptive.groupby_ns),
    );

    if json {
        write_json("BENCH_aqe.json", scale, &cfg, &cells);
    }
}
