//! Bounded-latency bench: deadline sweep over a straggler-afflicted GroupBy.
//!
//! One worker node's links turn slow for the whole run (speculation off, so
//! nothing rescues the stragglers) and `count_approx` runs under a sweep of
//! virtual-clock budgets: 25/50/75% of the unbounded straggler job's time,
//! plus unbounded on both a clean and a slow fabric. Each budget trades
//! coverage for latency; the report shows the accuracy the evaluator buys
//! at each point — the confidence interval must bracket the true group
//! count wherever at least two partitions were folded.
//!
//! Reported per cell: deadline (fraction of the unbounded slow run),
//! partitions folded / total, the `[low, high]` interval, virtual job time,
//! and host wall-clock throughput.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin bench_partial`
//! JSON artifact: `... --bin bench_partial -- --json` writes
//! `BENCH_partial.json`.

use fabric::{ClusterSpec, FaultPlan};
use mpi4spark_bench::report::{print_table, ratio, secs};
use mpi4spark_bench::Scale;
use sparklet::deploy::ClusterConfig;
use sparklet::scheduler::SparkContext;
use sparklet::{BoundedDouble, PartialResult, SparkConf};
use workloads::System;

const MS: u64 = 1_000_000;
/// A budget no job reaches (~17 virtual minutes).
const NEVER: u64 = 1_000_000 * MS;
/// Worker node whose links slow down (`ClusterSpec::test(5)` +
/// `paper_layout`: workers on 0..2, master on 3, driver on 4).
const VICTIM: usize = 1;
/// Distinct keys — the true answer every interval must bracket.
const KEYS: u64 = 500;
const MAP_PARTS: usize = 12;
const REDUCE_PARTS: usize = 48;
/// Per-message delay on the victim's links.
const SLOW_NS: u64 = 2 * MS;

fn records(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 48_000,
        Scale::Small => 12_000,
    }
}

fn conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.with_partial_enabled()
}

/// The bounded action: GroupBy over uniform keys, approximate group count.
fn approx_count(sc: &SparkContext, n: u64, timeout_ns: u64) -> PartialResult<BoundedDouble> {
    let pairs: Vec<(u64, u64)> = (0..n).map(|i| (i % KEYS, i)).collect();
    sc.parallelize(pairs, MAP_PARTS).group_by_key(REDUCE_PARTS).count_approx(timeout_ns, None)
}

struct Cell {
    system: System,
    slow: bool,
    /// Budget as a fraction of the unbounded slow run's job time (`None`:
    /// unbounded).
    frac: Option<f64>,
    timeout_ns: u64,
    result: PartialResult<BoundedDouble>,
    job_ns: u64,
    wall_ms: u64,
}

impl Cell {
    fn sim_rate(&self) -> f64 {
        self.job_ns as f64 / (self.wall_ms as f64 * 1e6).max(1.0)
    }
}

fn run_cell(system: System, scale: Scale, slow: bool, frac: Option<f64>, timeout_ns: u64) -> Cell {
    let spec = ClusterSpec::test(5);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf());
    let n = records(scale);
    let app = move |sc: &SparkContext| approx_count(sc, n, timeout_ns);
    // detlint: allow(D1, reason = "host wall-clock times the simulator itself, not simulated events")
    let wall = std::time::Instant::now();
    let out = if slow {
        let plan = FaultPlan::seeded(41).slow_node(VICTIM, 0, 100_000_000 * MS, SLOW_NS).build();
        system.run_with_chaos(&spec, cluster, plan, app)
    } else {
        system.run(&spec, cluster, app)
    };
    Cell {
        system,
        slow,
        frac,
        timeout_ns,
        result: out.result,
        job_ns: out.jobs[0].duration_ns(),
        wall_ms: wall.elapsed().as_millis() as u64,
    }
}

fn bound(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.1}")
    } else {
        "inf".into()
    }
}

fn write_json(path: &str, scale: Scale, cells: &[Cell]) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"system\":{:?},\"fabric\":{:?},\"deadline_frac\":{},\
                 \"timeout_ns\":{},\"seen\":{},\"total\":{},\"mean\":{:.3},\
                 \"low\":{:?},\"high\":{:?},\"contains_truth\":{},\"final\":{},\
                 \"job_ns\":{},\"wall_ms\":{},\"sim_ns_per_host_ns\":{:.3}}}",
                c.system.label(),
                if c.slow { "slow" } else { "clean" },
                c.frac.map_or("null".into(), |f| format!("{f:.2}")),
                c.timeout_ns,
                c.result.partitions_seen,
                c.result.total_partitions,
                c.result.value.mean,
                bound(c.result.value.low),
                bound(c.result.value.high),
                c.result.value.contains(KEYS as f64),
                c.result.is_final,
                c.job_ns,
                c.wall_ms,
                c.sim_rate()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"bench_partial\",\n  \"workload\": \"GroupBy uniform({KEYS} keys), \
         count_approx deadline sweep\",\n  \"records\": {},\n  \"map_partitions\": {MAP_PARTS},\n  \
         \"reduce_partitions\": {REDUCE_PARTS},\n  \"slow_ns_per_msg\": {SLOW_NS},\n  \
         \"scale\": {:?},\n  \"cells\": [\n{}\n  ]\n}}\n",
        records(scale),
        if scale == Scale::Full { "full" } else { "small" },
        rows.join(",\n")
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn main() {
    let scale = Scale::from_env_args();
    let json = std::env::args().any(|a| a == "--json");
    let systems = [System::Vanilla, System::RdmaSpark, System::Mpi4SparkBasic, System::Mpi4Spark];
    let fracs = [0.25, 0.5, 0.75];

    let mut cells = Vec::new();
    for system in systems {
        let clean = run_cell(system, scale, false, None, NEVER);
        let unbounded = run_cell(system, scale, true, None, NEVER);
        let t = unbounded.job_ns;
        cells.push(clean);
        cells.push(unbounded);
        for f in fracs {
            cells.push(run_cell(system, scale, true, Some(f), (t as f64 * f) as u64));
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.system.label().to_string(),
                if c.slow { "slow" } else { "clean" }.to_string(),
                c.frac.map_or("unbounded".into(), |f| format!("{:.0}%", f * 100.0)),
                format!("{}/{}", c.result.partitions_seen, c.result.total_partitions),
                format!("[{}, {}]", bound(c.result.value.low), bound(c.result.value.high)),
                format!("{}", c.result.value.contains(KEYS as f64)),
                secs(c.job_ns),
                format!("{:.0}", c.sim_rate()),
            ]
        })
        .collect();
    print_table(
        "Bounded-latency count — deadline sweep on a straggler fabric",
        &[
            "system",
            "fabric",
            "budget",
            "seen",
            "interval",
            "brackets truth",
            "job(s)",
            "sim ns/host ns",
        ],
        &rows,
    );

    // Contracts checked on every run.
    for per_system in cells.chunks(2 + fracs.len()) {
        let label = per_system[0].system.label();
        let (clean, unbounded, swept) = (&per_system[0], &per_system[1], &per_system[2..]);
        for c in [clean, unbounded] {
            assert!(c.result.is_final, "{label}: unbounded run must complete");
            assert_eq!(
                c.result.value,
                BoundedDouble::exact(KEYS as f64),
                "{label}: unbounded run must count exactly"
            );
        }
        assert!(
            2 * clean.job_ns < unbounded.job_ns,
            "{label}: the straggler never bit (clean {} vs slow {} — {})",
            clean.job_ns,
            unbounded.job_ns,
            ratio(unbounded.job_ns, clean.job_ns),
        );
        let mut prev_seen = 0;
        for c in swept {
            assert!(!c.result.is_final, "{label}: budgeted run must expire");
            assert!(
                c.result.partitions_seen < c.result.total_partitions,
                "{label}: expired run cannot have full coverage"
            );
            assert!(
                c.result.partitions_seen >= prev_seen,
                "{label}: coverage must grow with the budget"
            );
            prev_seen = c.result.partitions_seen;
            // The deadline actually bounds the job: it ends within the
            // budget (plus the submission-to-start skew of one task
            // overhead) instead of waiting out the stragglers.
            assert!(
                c.job_ns <= c.timeout_ns + MS && c.job_ns < unbounded.job_ns,
                "{label}: job ran past its budget ({} vs {})",
                c.job_ns,
                c.timeout_ns
            );
            if c.result.partitions_seen >= 2 {
                assert!(
                    c.result.value.contains(KEYS as f64),
                    "{label}: interval [{}, {}] misses the true {KEYS} groups",
                    c.result.value.low,
                    c.result.value.high
                );
            }
        }
        assert!(
            swept.last().unwrap().result.partitions_seen > 0,
            "{label}: the 75% budget saw nothing"
        );
    }

    // Same seed, same budget, same bytes: the bounded run is deterministic.
    let mid = &cells[2 + fracs.len() + 3]; // RDMA's 50% cell
    let again = run_cell(mid.system, scale, true, mid.frac, mid.timeout_ns);
    assert_eq!(mid.result, again.result, "same-seed bounded re-run must be byte-identical");

    if json {
        write_json("BENCH_partial.json", scale, &cells);
    }
}
