//! detlint throughput bench: the two-pass workspace analysis (symbol index +
//! D/L/P rules) run against this repository itself.
//!
//! The warmup pass doubles as a correctness gate — the tree must be clean or
//! the bench exits nonzero, so a regression in either the code or the
//! analyzer shows up here as well as in CI.
//!
//! Run: `cargo run --release -p mpi4spark-bench --bin bench_detlint`
//! JSON artifact: `BENCH_detlint.json` (index sizes and host wall-clock per
//! full analysis; median + min over the timed runs).

use std::path::Path;

const RUNS: usize = 7;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();

    // Warmup pass; also the gate that the tree is clean.
    let first = detlint::analyze_workspace(root).expect("workspace analysis");
    if !first.diagnostics.is_empty() {
        for d in &first.diagnostics {
            eprintln!("{}", d.render());
        }
        eprintln!("bench_detlint: the workspace must be clean to benchmark");
        std::process::exit(1);
    }

    let mut wall_us: Vec<u128> = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        // detlint: allow(D1, reason = "host wall-clock times the analyzer itself, not simulated events")
        let t = std::time::Instant::now();
        let a = detlint::analyze_workspace(root).expect("workspace analysis");
        wall_us.push(t.elapsed().as_micros());
        assert_eq!(a.stats.files, first.stats.files, "analysis must be stable across runs");
        assert!(a.diagnostics.is_empty(), "analysis must stay clean across runs");
    }
    wall_us.sort_unstable();
    let ms = |us: u128| us as f64 / 1000.0;
    let (median, min) = (ms(wall_us[RUNS / 2]), ms(wall_us[0]));

    let s = &first.stats;
    println!(
        "bench_detlint: {} files, {} fns, {} call sites, {} lock sites, {} rmpi sites",
        s.files, s.fns, s.call_sites, s.lock_sites, s.rmpi_sites
    );
    println!("bench_detlint: full analysis median {median:.1} ms, min {min:.1} ms ({RUNS} runs)");

    let json = format!(
        "{{\n  \"bench\": \"bench_detlint\",\n  \"target\": \"whole workspace\",\n  \
         \"runs\": {RUNS},\n  \"files\": {},\n  \"fns\": {},\n  \"call_sites\": {},\n  \
         \"lock_sites\": {},\n  \"rmpi_sites\": {},\n  \"diagnostics\": 0,\n  \
         \"wall_ms_median\": {median:.3},\n  \"wall_ms_min\": {min:.3}\n}}\n",
        s.files, s.fns, s.call_sites, s.lock_sites, s.rmpi_sites
    );
    let path = root.join("BENCH_detlint.json");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}
