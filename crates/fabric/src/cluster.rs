//! Node and cluster specifications, with presets matching the paper's
//! Table III.

use crate::model::Interconnect;

/// Index of a node within a [`ClusterSpec`].
pub type NodeId = usize;

/// Hardware description of a single node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable name, e.g. `frontera-03`.
    pub name: String,
    /// CPU sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core (2 when hyper-threading).
    pub threads_per_core: u32,
    /// Memory in GiB (capacity checks for worker/executor sizing).
    pub mem_gb: u32,
    /// Nominal clock in GHz (scales per-record compute costs).
    pub clock_ghz: f64,
}

impl NodeSpec {
    /// Physical cores on the node.
    pub fn cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Schedulable hardware threads on the node.
    pub fn hw_threads(&self) -> u32 {
        self.cores() * self.threads_per_core
    }
}

/// A homogeneous cluster: a set of nodes and the interconnect joining them.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Cluster label used in reports (`frontera`, `stampede2`, `internal`).
    pub name: String,
    /// Node specifications; `NodeId` indexes this vector.
    pub nodes: Vec<NodeSpec>,
    /// The network joining the nodes.
    pub interconnect: Interconnect,
}

impl ClusterSpec {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Build a homogeneous cluster of `n` copies of `proto`.
    pub fn homogeneous(
        name: impl Into<String>,
        n: usize,
        proto: NodeSpec,
        interconnect: Interconnect,
    ) -> Self {
        let name = name.into();
        let nodes =
            (0..n).map(|i| NodeSpec { name: format!("{name}-{i:02}"), ..proto.clone() }).collect();
        ClusterSpec { name, nodes, interconnect }
    }

    /// TACC Frontera (paper Table III): Xeon Platinum 8280, 2 sockets × 28
    /// cores @ 2.7 GHz, 192 GB, no hyper-threading, InfiniBand HDR-100.
    /// The paper uses up to 18 nodes.
    pub fn frontera(n: usize) -> Self {
        Self::homogeneous(
            "frontera",
            n,
            NodeSpec {
                name: String::new(),
                sockets: 2,
                cores_per_socket: 28,
                threads_per_core: 1,
                mem_gb: 192,
                clock_ghz: 2.7,
            },
            Interconnect::ib_hdr100(),
        )
    }

    /// TACC Stampede2 (paper Table III + §VII-D): Skylake 2 sockets × 24
    /// cores @ 2.1 GHz with 2 threads/core (48 cores / 96 threads per node,
    /// matching the paper's "384 cores — 768 threads" for 8 workers), 192 GB,
    /// Intel Omni-Path 100. Table III lists 28 cores/socket, which
    /// contradicts the paper's own core counts in §VII-D; we follow the
    /// operative numbers.
    pub fn stampede2(n: usize) -> Self {
        Self::homogeneous(
            "stampede2",
            n,
            NodeSpec {
                name: String::new(),
                sockets: 2,
                cores_per_socket: 24,
                threads_per_core: 2,
                mem_gb: 192,
                clock_ghz: 2.1,
            },
            Interconnect::omni_path100(),
        )
    }

    /// OSU internal cluster (paper Table III): Xeon Broadwell, 2 sockets ×
    /// 14 cores @ 2.1 GHz, 128 GB, InfiniBand EDR-100, 2 nodes.
    pub fn internal(n: usize) -> Self {
        Self::homogeneous(
            "internal",
            n,
            NodeSpec {
                name: String::new(),
                sockets: 2,
                cores_per_socket: 14,
                threads_per_core: 1,
                mem_gb: 128,
                clock_ghz: 2.1,
            },
            Interconnect::ib_edr100(),
        )
    }

    /// A small generic test cluster (4 cores per node, fast wire) for unit
    /// and integration tests that do not model a specific paper system.
    pub fn test(n: usize) -> Self {
        Self::homogeneous(
            "test",
            n,
            NodeSpec {
                name: String::new(),
                sockets: 1,
                cores_per_socket: 4,
                threads_per_core: 1,
                mem_gb: 16,
                clock_ghz: 2.5,
            },
            Interconnect::ib_hdr100(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontera_matches_table_iii() {
        let c = ClusterSpec::frontera(18);
        assert_eq!(c.len(), 18);
        let n = &c.nodes[0];
        assert_eq!(n.sockets, 2);
        assert_eq!(n.cores_per_socket, 28);
        assert_eq!(n.cores(), 56);
        assert_eq!(n.threads_per_core, 1);
        assert_eq!(n.mem_gb, 192);
        assert!((n.clock_ghz - 2.7).abs() < 1e-9);
        assert_eq!(c.interconnect.name, "IB-HDR (100G)");
    }

    #[test]
    fn stampede2_matches_paper_core_counts() {
        let c = ClusterSpec::stampede2(10);
        let n = &c.nodes[0];
        // 8 workers => 384 cores / 768 threads as in §VII-D.
        assert_eq!(n.cores() * 8, 384);
        assert_eq!(n.hw_threads() * 8, 768);
        assert_eq!(c.interconnect.name, "OPA (100G)");
    }

    #[test]
    fn internal_matches_table_iii() {
        let c = ClusterSpec::internal(2);
        let n = &c.nodes[0];
        assert_eq!(n.cores(), 28);
        assert_eq!(n.mem_gb, 128);
        assert_eq!(c.interconnect.name, "IB-EDR (100G)");
    }

    #[test]
    fn homogeneous_names_nodes() {
        let c = ClusterSpec::test(3);
        assert_eq!(c.nodes[0].name, "test-00");
        assert_eq!(c.nodes[2].name, "test-02");
    }
}
