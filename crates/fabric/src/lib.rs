//! # fabric — simulated cluster hardware and communication cost models
//!
//! This crate stands in for the physical testbeds of the MPI4Spark paper
//! (Table III): TACC Frontera (InfiniBand HDR-100), TACC Stampede2
//! (Omni-Path 100), and OSU's internal Xeon Broadwell cluster (IB EDR-100).
//!
//! It provides three layers:
//!
//! * [`cluster`] — node and cluster specifications with presets matching the
//!   paper's Table III.
//! * [`model`] — the *wire* (interconnect latency/bandwidth) and the
//!   *software stack* cost models. The paper's entire result is a statement
//!   about software stacks on identical wires: Java sockets over IPoIB
//!   (Vanilla Spark), RDMA verbs (RDMA-Spark's UCR), and native MPI
//!   (MPI4Spark / MVAPICH2-X). Calibration rationale lives in
//!   `EXPERIMENTS.md`.
//! * [`net`] — the runtime: per-node CPUs (processor sharing), per-NIC
//!   egress/ingress link occupancy (models shuffle incast), message delivery
//!   with virtual-size payloads, and typed ports.

pub mod chaos;
pub mod cluster;
pub mod model;
pub mod net;
pub mod payload;

pub use chaos::{FaultPlan, Verdict};
pub use cluster::{ClusterSpec, NodeId, NodeSpec};
pub use model::{FabricKind, Interconnect, StackModel, Wire};
pub use net::{Net, Packet, PortAddr};
pub use payload::Payload;
