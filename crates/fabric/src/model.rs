//! Communication cost models: the *wire* (interconnect) and the *software
//! stack* driving it.
//!
//! The paper's central observation is that on the same 100 Gbps wire, the
//! achievable application-level communication performance differs enormously
//! between software stacks:
//!
//! * **Java sockets over IPoIB** (Vanilla Spark / Netty NIO): kernel TCP,
//!   syscalls, and heap copies dominate — high per-message overhead, and
//!   effective throughput of roughly a tenth of line rate.
//! * **RDMA verbs** (RDMA-Spark's UCR): memory registration and completion
//!   handling still cost per message, but zero-copy transfers push
//!   substantially more bandwidth.
//! * **Native MPI** (MPI4Spark / MVAPICH2-X): microsecond-scale message
//!   overhead and near-line-rate large-message bandwidth.
//!
//! Constants below are calibrated so the reproduction lands near the paper's
//! measured ratios (Fig. 8 ping-pong ≈9× at 4 MB; Fig. 10 shuffle-read
//! ratios ≈ 1 : 2.3 : 13 for sockets : RDMA : MPI). See `EXPERIMENTS.md`
//! §Calibration for the derivation and sensitivity notes.

/// Physical interconnect: propagation latency and line-rate bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wire {
    /// One-way propagation + switch latency, nanoseconds.
    pub latency_ns: u64,
    /// Line rate in bytes per nanosecond (= GB/s).
    pub bandwidth_bpns: f64,
}

/// Interconnect technology family. Systems gate on this rather than
/// pattern-matching preset names (RDMA-Spark's verbs path exists only on
/// InfiniBand; Omni-Path clusters like Stampede2 must be rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// InfiniBand (HDR, EDR, ...): native verbs available.
    InfiniBand,
    /// Intel Omni-Path: PSM2-based, no InfiniBand verbs.
    OmniPath,
    /// Plain Ethernet.
    Ethernet,
}

/// A named interconnect preset.
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    /// Name as reported in the paper's Table III.
    pub name: &'static str,
    /// Technology family the preset belongs to.
    pub kind: FabricKind,
    /// Wire characteristics.
    pub wire: Wire,
}

impl Interconnect {
    /// NVIDIA/Mellanox InfiniBand HDR-100 (TACC Frontera). 100 Gbps =
    /// 12.5 GB/s; ~1 µs switch+propagation latency.
    pub fn ib_hdr100() -> Self {
        Interconnect {
            name: "IB-HDR (100G)",
            kind: FabricKind::InfiniBand,
            wire: Wire { latency_ns: 1_000, bandwidth_bpns: 12.5 },
        }
    }

    /// Intel Omni-Path 100 (TACC Stampede2). Same line rate; slightly higher
    /// small-message latency than IB in practice.
    pub fn omni_path100() -> Self {
        Interconnect {
            name: "OPA (100G)",
            kind: FabricKind::OmniPath,
            wire: Wire { latency_ns: 1_200, bandwidth_bpns: 12.5 },
        }
    }

    /// InfiniBand EDR-100 (OSU internal cluster).
    pub fn ib_edr100() -> Self {
        Interconnect {
            name: "IB-EDR (100G)",
            kind: FabricKind::InfiniBand,
            wire: Wire { latency_ns: 1_000, bandwidth_bpns: 12.5 },
        }
    }
}

/// Software communication stack cost model.
///
/// A message of `n` virtual bytes costs:
/// * sender CPU: `per_msg_send_cpu_ns + per_byte_send_cpu * n`
/// * receiver CPU: `per_msg_recv_cpu_ns + per_byte_recv_cpu * n`
/// * wire occupancy: `n / min(eff_bandwidth_bpns, wire.bandwidth_bpns)` on
///   both the sender egress and receiver ingress links (pipelined), plus
///   `wire.latency_ns` propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackModel {
    /// Stack name for reports.
    pub name: &'static str,
    /// Fixed CPU cost charged to the sender per message (ns).
    pub per_msg_send_cpu_ns: u64,
    /// Fixed CPU cost charged to the receiver per message (ns).
    pub per_msg_recv_cpu_ns: u64,
    /// Per-byte sender CPU cost (copies/checksums), ns per byte.
    pub per_byte_send_cpu: f64,
    /// Per-byte receiver CPU cost, ns per byte.
    pub per_byte_recv_cpu: f64,
    /// Effective application-level bandwidth cap, bytes per ns.
    pub eff_bandwidth_bpns: f64,
}

impl StackModel {
    /// Java NIO sockets over IPoIB — Vanilla Spark's Netty transport.
    ///
    /// TCP-over-IB emulation keeps the kernel stack in the path: ~15 µs of
    /// software overhead per message per side and two heap copies, with
    /// effective throughput ≈ 0.75 GB/s (≈6% of HDR line rate — consistent
    /// with published IPoIB measurements and the paper's Fig. 8 NIO curve).
    pub fn java_sockets_ipoib() -> Self {
        StackModel {
            name: "JavaSockets/IPoIB",
            per_msg_send_cpu_ns: 15_000,
            per_msg_recv_cpu_ns: 15_000,
            per_byte_send_cpu: 0.08,
            per_byte_recv_cpu: 0.08,
            eff_bandwidth_bpns: 0.75,
        }
    }

    /// RDMA verbs as used by RDMA-Spark's UCR BlockTransferService.
    ///
    /// Registration/completion overhead ≈ 5 µs per message per side; one
    /// copy eliminated; effective throughput ≈ 1.85 GB/s at the Spark level
    /// (UCR does not pipeline as aggressively as MPI rendezvous).
    pub fn rdma_verbs() -> Self {
        StackModel {
            name: "RDMA/UCR",
            per_msg_send_cpu_ns: 8_000,
            per_msg_recv_cpu_ns: 8_000,
            per_byte_send_cpu: 0.04,
            per_byte_recv_cpu: 0.04,
            eff_bandwidth_bpns: 1.85,
        }
    }

    /// Native MPI point-to-point (MVAPICH2-X) through the thin Java-bindings
    /// layer the paper implements (§VI-A).
    ///
    /// ~1.5 µs per message per side including the JNI hop; rendezvous
    /// protocol sustains ≈ 10.5 GB/s of the 12.5 GB/s line rate.
    pub fn native_mpi() -> Self {
        StackModel {
            name: "MPI/MVAPICH2-X",
            per_msg_send_cpu_ns: 1_500,
            per_msg_recv_cpu_ns: 1_500,
            per_byte_send_cpu: 0.01,
            per_byte_recv_cpu: 0.01,
            eff_bandwidth_bpns: 10.5,
        }
    }

    /// In-process loopback (same-node communication): a couple of memcpys.
    pub fn loopback() -> Self {
        StackModel {
            name: "loopback",
            per_msg_send_cpu_ns: 300,
            per_msg_recv_cpu_ns: 300,
            per_byte_send_cpu: 0.02,
            per_byte_recv_cpu: 0.02,
            eff_bandwidth_bpns: 20.0,
        }
    }

    /// Sender-side CPU charge for an `n`-byte message.
    pub fn send_cpu_ns(&self, n: u64) -> u64 {
        self.per_msg_send_cpu_ns + (self.per_byte_send_cpu * n as f64) as u64
    }

    /// Receiver-side CPU charge for an `n`-byte message.
    pub fn recv_cpu_ns(&self, n: u64) -> u64 {
        self.per_msg_recv_cpu_ns + (self.per_byte_recv_cpu * n as f64) as u64
    }

    /// Link occupancy (serialization time) for `n` bytes on `wire`.
    pub fn tx_time_ns(&self, n: u64, wire: &Wire) -> u64 {
        let bw = self.eff_bandwidth_bpns.min(wire.bandwidth_bpns);
        (n as f64 / bw).ceil() as u64
    }

    /// End-to-end one-way model latency for a single uncontended message —
    /// used by tests and the Fig. 8 analysis, not by the runtime (which
    /// accounts link occupancy separately).
    pub fn one_way_ns(&self, n: u64, wire: &Wire) -> u64 {
        self.send_cpu_ns(n) + self.tx_time_ns(n, wire) + wire.latency_ns + self.recv_cpu_ns(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_presets_are_100g() {
        for ic in
            [Interconnect::ib_hdr100(), Interconnect::omni_path100(), Interconnect::ib_edr100()]
        {
            assert!((ic.wire.bandwidth_bpns - 12.5).abs() < 1e-9, "{}", ic.name);
        }
    }

    #[test]
    fn mpi_beats_sockets_at_4mb_by_about_9x() {
        // The paper's Fig. 8 headline: Netty+MPI ≈9× faster than Netty NIO
        // for 4 MB messages on the internal cluster (IB-EDR).
        let wire = Interconnect::ib_edr100().wire;
        let n = 4 * 1024 * 1024;
        let nio = StackModel::java_sockets_ipoib().one_way_ns(n, &wire) as f64;
        let mpi = StackModel::native_mpi().one_way_ns(n, &wire) as f64;
        let ratio = nio / mpi;
        assert!((8.0..=15.0).contains(&ratio), "ratio = {ratio:.2}");
    }

    #[test]
    fn stack_ordering_holds_at_all_sizes() {
        let wire = Interconnect::ib_hdr100().wire;
        for shift in 0..=22 {
            let n = 1u64 << shift;
            let nio = StackModel::java_sockets_ipoib().one_way_ns(n, &wire);
            let rdma = StackModel::rdma_verbs().one_way_ns(n, &wire);
            let mpi = StackModel::native_mpi().one_way_ns(n, &wire);
            assert!(mpi < rdma && rdma < nio, "n={n}: {mpi} {rdma} {nio}");
        }
    }

    #[test]
    fn tx_time_respects_wire_cap() {
        let wire = Wire { latency_ns: 0, bandwidth_bpns: 1.0 };
        let mpi = StackModel::native_mpi(); // eff 11.0, capped by wire 1.0
        assert_eq!(mpi.tx_time_ns(1_000, &wire), 1_000);
    }

    #[test]
    fn cpu_charges_scale_with_size() {
        let s = StackModel::java_sockets_ipoib();
        assert_eq!(s.send_cpu_ns(0), 15_000);
        assert!(s.send_cpu_ns(1 << 20) > s.send_cpu_ns(1 << 10));
    }
}
