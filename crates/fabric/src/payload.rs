//! Message payloads with independent *real* and *virtual* sizes.
//!
//! The paper shuffles hundreds of gigabytes; reproducing that with real bytes
//! would be pointless and slow. Instead a payload carries:
//!
//! * `bytes` — real bytes that are actually transported and can be decoded
//!   (headers, small control frames, scaled-down data in tests), and
//! * `virtual_len` — the byte count charged against NIC links, bandwidth,
//!   and per-byte CPU costs.
//!
//! Functional tests run with `virtual_len == bytes.len()`; benchmark
//! workloads inflate `virtual_len` to paper-scale sizes. The timing model
//! only ever sees `virtual_len`, so ratios are unaffected by the shortcut.
//!
//! A payload may additionally carry a typed in-memory `value` (an
//! `Arc<dyn Any>`): the simulation equivalent of Java serialization for
//! control-plane objects (task descriptions, map statuses). Using real
//! in-memory objects for the control plane is a documented substitution —
//! the paper's performance story is entirely about the data plane.

use std::any::Any;
use std::sync::Arc;

use bytes::Bytes;

/// A message body with real bytes, a virtual wire size, and an optional
/// typed control object.
#[derive(Clone)]
pub struct Payload {
    /// Real bytes (decoded by codecs).
    pub bytes: Bytes,
    /// Bytes charged by the cost models.
    pub virtual_len: u64,
    /// Typed control cargo (simulation stand-in for serialized objects).
    pub value: Option<Arc<dyn Any + Send + Sync>>,
}

impl Payload {
    /// An empty payload.
    pub fn empty() -> Self {
        Payload { bytes: Bytes::new(), virtual_len: 0, value: None }
    }

    /// A payload of real bytes; virtual size equals the real size.
    pub fn bytes(bytes: Bytes) -> Self {
        let virtual_len = bytes.len() as u64;
        Payload { bytes, virtual_len, value: None }
    }

    /// Real bytes with an inflated virtual size (benchmark data plane).
    ///
    /// # Panics
    /// If `virtual_len < bytes.len()` — the virtual size may never undercut
    /// the real bytes actually carried.
    pub fn bytes_scaled(bytes: Bytes, virtual_len: u64) -> Self {
        assert!(
            virtual_len >= bytes.len() as u64,
            "virtual_len {} < real len {}",
            virtual_len,
            bytes.len()
        );
        Payload { bytes, virtual_len, value: None }
    }

    /// A typed control object charged as `virtual_len` wire bytes.
    pub fn control<T: Any + Send + Sync>(value: T, virtual_len: u64) -> Self {
        Payload { bytes: Bytes::new(), virtual_len, value: Some(Arc::new(value)) }
    }

    /// A typed control object wrapped from an existing `Arc`.
    pub fn control_arc(value: Arc<dyn Any + Send + Sync>, virtual_len: u64) -> Self {
        Payload { bytes: Bytes::new(), virtual_len, value: Some(value) }
    }

    /// Downcast the control object. Returns `None` when absent or of a
    /// different type.
    pub fn value_as<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.value.clone().and_then(|v| v.downcast::<T>().ok())
    }

    /// True when neither bytes nor a control object is present.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty() && self.value.is_none()
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Payload")
            .field("real_len", &self.bytes.len())
            .field("virtual_len", &self.virtual_len)
            .field("has_value", &self.value.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_payload_virtual_equals_real() {
        let p = Payload::bytes(Bytes::from_static(b"hello"));
        assert_eq!(p.virtual_len, 5);
        assert_eq!(&p.bytes[..], b"hello");
        assert!(p.value.is_none());
    }

    #[test]
    fn scaled_payload_keeps_declared_size() {
        let p = Payload::bytes_scaled(Bytes::from_static(b"k"), 1 << 20);
        assert_eq!(p.virtual_len, 1 << 20);
        assert_eq!(p.bytes.len(), 1);
    }

    #[test]
    #[should_panic(expected = "virtual_len")]
    fn scaled_payload_rejects_undercut() {
        let _ = Payload::bytes_scaled(Bytes::from_static(b"hello"), 2);
    }

    #[test]
    fn control_roundtrip() {
        let p = Payload::control(vec![1u32, 2, 3], 64);
        let v = p.value_as::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        assert!(p.value_as::<String>().is_none());
    }

    #[test]
    fn empty_is_empty() {
        assert!(Payload::empty().is_empty());
        assert!(!Payload::bytes(Bytes::from_static(b"x")).is_empty());
        assert!(!Payload::control(1u8, 1).is_empty());
    }
}
