//! Deterministic fault injection for the fabric (`FaultPlan`).
//!
//! A [`FaultPlan`] is a scriptable schedule of transport-level failures —
//! per-link drop/delay/flap windows, per-node crash and slowdown, and
//! whole-partition events — keyed to `simt` *virtual* time. The plan is
//! consulted at the single delivery chokepoint ([`crate::Net::send`]), which
//! every software stack (sockets, RDMA verbs, MPI) traverses, so one plan
//! exercises all transports identically.
//!
//! Determinism: the schedule is fully decided at build time from a `u64`
//! seed ([`FaultPlan::seeded`]); the verdict for a message is a pure
//! function of `(virtual time, src, dst, stack)`. Same seed → same fault
//! schedule → same simulation, which makes any chaos failure replayable
//! from the seed alone.

use crate::cluster::NodeId;
use simt::rng::SeededRng;

/// Half-open virtual-time interval `[start_ns, end_ns)` during which a
/// fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Activation time (inclusive).
    pub start_ns: u64,
    /// Deactivation time (exclusive).
    pub end_ns: u64,
}

impl Window {
    /// True while the window is active at `t`.
    pub fn contains(&self, t: u64) -> bool {
        t >= self.start_ns && t < self.end_ns
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Fault {
    /// Messages `src → dst` are dropped during the window.
    LinkDrop { src: NodeId, dst: NodeId, w: Window, stack: Option<String> },
    /// Messages `src → dst` are delivered `extra_ns` late during the window.
    LinkDelay { src: NodeId, dst: NodeId, w: Window, extra_ns: u64 },
    /// The node neither sends nor receives during the window (crash /
    /// blackout; includes loopback traffic).
    NodeDown { node: NodeId, w: Window },
    /// Every message to or from the node is `extra_ns` late (GC pause /
    /// overloaded NIC analog).
    NodeSlow { node: NodeId, w: Window, extra_ns: u64 },
    /// Messages crossing the boundary of `group` are dropped during the
    /// window (network partition: the group can talk internally and the
    /// rest of the cluster can talk internally, but not across).
    Partition { group: Vec<NodeId>, w: Window },
}

/// Verdict for one message at its send instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Silently drop (never schedule delivery).
    Drop,
    /// Deliver, but this many nanoseconds later than the fabric would.
    Delay(u64),
}

/// A seed-deterministic schedule of transport faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Start building a plan whose jitter derives from `seed`.
    pub fn seeded(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder { seed, rng: SeededRng::from_seed(seed), faults: Vec::new() }
    }

    /// The seed the plan was built from (for replay reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Decide the fate of a message sent at virtual time `now` from node
    /// `src` to node `dst` over the software stack named `stack`. Drops
    /// dominate delays; delays from multiple matching faults accumulate.
    pub fn verdict(&self, now: u64, src: NodeId, dst: NodeId, stack: &str) -> Verdict {
        let mut extra = 0u64;
        for f in &self.faults {
            match f {
                Fault::LinkDrop { src: s, dst: d, w, stack: filt }
                    if *s == src
                        && *d == dst
                        && w.contains(now)
                        && filt.as_ref().is_none_or(|sub| stack.contains(sub.as_str())) =>
                {
                    return Verdict::Drop;
                }
                Fault::NodeDown { node, w }
                    if (*node == src || *node == dst) && w.contains(now) =>
                {
                    return Verdict::Drop;
                }
                Fault::Partition { group, w } if w.contains(now) => {
                    let a = group.contains(&src);
                    let b = group.contains(&dst);
                    if a != b {
                        return Verdict::Drop;
                    }
                }
                Fault::LinkDelay { src: s, dst: d, w, extra_ns }
                    if *s == src && *d == dst && w.contains(now) =>
                {
                    extra += extra_ns;
                }
                Fault::NodeSlow { node, w, extra_ns }
                    if (*node == src || *node == dst) && w.contains(now) =>
                {
                    extra += extra_ns;
                }
                _ => {}
            }
        }
        if extra > 0 {
            Verdict::Delay(extra)
        } else {
            Verdict::Deliver
        }
    }
}

/// Builder for [`FaultPlan`]. All jitter (flap window placement) comes from
/// the builder's seeded RNG, so the finished plan is a pure function of the
/// seed and the builder-call sequence.
pub struct FaultPlanBuilder {
    seed: u64,
    rng: SeededRng,
    faults: Vec<Fault>,
}

impl FaultPlanBuilder {
    /// Drop messages `src → dst` (one direction) in `[start, start + dur)`.
    pub fn drop_link(mut self, src: NodeId, dst: NodeId, start: u64, dur: u64) -> Self {
        let w = Window { start_ns: start, end_ns: start.saturating_add(dur) };
        self.faults.push(Fault::LinkDrop { src, dst, w, stack: None });
        self
    }

    /// Drop messages in both directions between `a` and `b`.
    pub fn drop_link_sym(self, a: NodeId, b: NodeId, start: u64, dur: u64) -> Self {
        self.drop_link(a, b, start, dur).drop_link(b, a, start, dur)
    }

    /// Drop only messages whose software-stack name contains `stack`
    /// (e.g. `"MPI"`), both directions. Models a plane-selective outage —
    /// the MPI/RDMA data plane dying while the socket plane stays healthy —
    /// which is what backend plane-fallback degrades around.
    pub fn drop_link_stack(
        mut self,
        a: NodeId,
        b: NodeId,
        start: u64,
        dur: u64,
        stack: &str,
    ) -> Self {
        let w = Window { start_ns: start, end_ns: start.saturating_add(dur) };
        self.faults.push(Fault::LinkDrop { src: a, dst: b, w, stack: Some(stack.to_string()) });
        self.faults.push(Fault::LinkDrop { src: b, dst: a, w, stack: Some(stack.to_string()) });
        self
    }

    /// Deliver messages `src → dst` late by `extra_ns` during the window.
    pub fn delay_link(
        mut self,
        src: NodeId,
        dst: NodeId,
        start: u64,
        dur: u64,
        extra_ns: u64,
    ) -> Self {
        let w = Window { start_ns: start, end_ns: start.saturating_add(dur) };
        self.faults.push(Fault::LinkDelay { src, dst, w, extra_ns });
        self
    }

    /// Flap the `a ↔ b` link: `count` symmetric drop windows of `down_for`
    /// ns each, the i-th nominally starting at `first_down + i * period`
    /// with seed-deterministic jitter of up to `period / 8`.
    pub fn flap_link(
        mut self,
        a: NodeId,
        b: NodeId,
        first_down: u64,
        period: u64,
        down_for: u64,
        count: u32,
    ) -> Self {
        assert!(period > 0, "flap period must be positive");
        for i in 0..count {
            let jitter = if period >= 8 { self.rng.next_range(0, period / 8) } else { 0 };
            let start = first_down + u64::from(i) * period + jitter;
            self = self.drop_link_sym(a, b, start, down_for);
        }
        self
    }

    /// Crash `node` for the window: nothing in or out, loopback included.
    pub fn crash_node(mut self, node: NodeId, start: u64, dur: u64) -> Self {
        let w = Window { start_ns: start, end_ns: start.saturating_add(dur) };
        self.faults.push(Fault::NodeDown { node, w });
        self
    }

    /// Isolate `node` from each of `peers` (both directions) for the
    /// window, leaving its other links intact. Models a crashed *data
    /// plane* whose control-plane connectivity (driver/master links)
    /// survives — the scenario Spark's FetchFailed machinery handles.
    pub fn isolate_among(mut self, node: NodeId, peers: &[NodeId], start: u64, dur: u64) -> Self {
        for &p in peers {
            if p != node {
                self = self.drop_link_sym(node, p, start, dur);
            }
        }
        self
    }

    /// Slow `node` down: all its traffic arrives `extra_ns` late during the
    /// window.
    pub fn slow_node(mut self, node: NodeId, start: u64, dur: u64, extra_ns: u64) -> Self {
        let w = Window { start_ns: start, end_ns: start.saturating_add(dur) };
        self.faults.push(Fault::NodeSlow { node, w, extra_ns });
        self
    }

    /// Partition the cluster: `group` vs. everyone else for the window.
    pub fn partition(mut self, group: &[NodeId], start: u64, dur: u64) -> Self {
        let w = Window { start_ns: start, end_ns: start.saturating_add(dur) };
        self.faults.push(Fault::Partition { group: group.to_vec(), w });
        self
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan { seed: self.seed, faults: self.faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOCK: &str = "JavaSockets/IPoIB";

    #[test]
    fn empty_plan_always_delivers() {
        let p = FaultPlan::seeded(1).build();
        assert!(p.is_empty());
        assert_eq!(p.verdict(0, 0, 1, SOCK), Verdict::Deliver);
    }

    #[test]
    fn link_drop_is_directional_and_windowed() {
        let p = FaultPlan::seeded(1).drop_link(0, 1, 100, 50).build();
        assert_eq!(p.verdict(120, 0, 1, SOCK), Verdict::Drop);
        assert_eq!(p.verdict(120, 1, 0, SOCK), Verdict::Deliver, "reverse direction unaffected");
        assert_eq!(p.verdict(99, 0, 1, SOCK), Verdict::Deliver, "before window");
        assert_eq!(p.verdict(150, 0, 1, SOCK), Verdict::Deliver, "window end is exclusive");
    }

    #[test]
    fn stack_filtered_drop_spares_other_stacks() {
        let p = FaultPlan::seeded(1).drop_link_stack(0, 1, 0, 1_000, "MPI").build();
        assert_eq!(p.verdict(10, 0, 1, "MPI/MVAPICH2-X"), Verdict::Drop);
        assert_eq!(p.verdict(10, 1, 0, "MPI/MVAPICH2-X"), Verdict::Drop);
        assert_eq!(p.verdict(10, 0, 1, SOCK), Verdict::Deliver);
    }

    #[test]
    fn node_down_blocks_both_directions_and_loopback() {
        let p = FaultPlan::seeded(1).crash_node(2, 10, 10).build();
        assert_eq!(p.verdict(15, 2, 0, SOCK), Verdict::Drop);
        assert_eq!(p.verdict(15, 0, 2, SOCK), Verdict::Drop);
        assert_eq!(p.verdict(15, 2, 2, SOCK), Verdict::Drop);
        assert_eq!(p.verdict(15, 0, 1, SOCK), Verdict::Deliver);
    }

    #[test]
    fn delays_accumulate_across_matching_faults() {
        let p = FaultPlan::seeded(1).delay_link(0, 1, 0, 100, 7).slow_node(1, 0, 100, 5).build();
        assert_eq!(p.verdict(50, 0, 1, SOCK), Verdict::Delay(12));
        assert_eq!(p.verdict(50, 0, 2, SOCK), Verdict::Deliver);
        assert_eq!(p.verdict(50, 2, 1, SOCK), Verdict::Delay(5));
    }

    #[test]
    fn partition_drops_only_cross_group_traffic() {
        let p = FaultPlan::seeded(1).partition(&[0, 1], 0, 100).build();
        assert_eq!(p.verdict(10, 0, 1, SOCK), Verdict::Deliver, "inside the group");
        assert_eq!(p.verdict(10, 2, 3, SOCK), Verdict::Deliver, "outside the group");
        assert_eq!(p.verdict(10, 0, 2, SOCK), Verdict::Drop);
        assert_eq!(p.verdict(10, 3, 1, SOCK), Verdict::Drop);
    }

    #[test]
    fn drop_dominates_delay() {
        let p = FaultPlan::seeded(1).delay_link(0, 1, 0, 100, 9).drop_link(0, 1, 0, 100).build();
        assert_eq!(p.verdict(10, 0, 1, SOCK), Verdict::Drop);
    }

    #[test]
    fn flap_windows_are_seed_deterministic() {
        let a = FaultPlan::seeded(77).flap_link(0, 1, 1_000, 800, 100, 4).build();
        let b = FaultPlan::seeded(77).flap_link(0, 1, 1_000, 800, 100, 4).build();
        assert_eq!(a, b, "same seed, same schedule");
        let c = FaultPlan::seeded(78).flap_link(0, 1, 1_000, 800, 100, 4).build();
        assert_ne!(a, c, "different seed, different jitter");
        assert_eq!(a.len(), 8, "four windows, both directions");
    }

    #[test]
    fn isolate_spares_unlisted_peers() {
        let p = FaultPlan::seeded(3).isolate_among(1, &[0, 1, 2], 0, 100).build();
        assert_eq!(p.verdict(10, 1, 0, SOCK), Verdict::Drop);
        assert_eq!(p.verdict(10, 2, 1, SOCK), Verdict::Drop);
        // Node 3 (e.g. the driver) keeps talking to the victim.
        assert_eq!(p.verdict(10, 1, 3, SOCK), Verdict::Deliver);
        assert_eq!(p.verdict(10, 3, 1, SOCK), Verdict::Deliver);
    }
}
