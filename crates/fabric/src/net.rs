//! The fabric runtime: per-node CPUs, NIC link occupancy, and message
//! delivery between typed ports.
//!
//! All software stacks (sockets, RDMA, MPI) share the same per-node NIC
//! links, so a shuffle's all-to-all traffic exhibits realistic incast
//! serialization regardless of which transport issues it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use simt::queue::{Queue, RecvError};
use simt::Cpu;

use crate::chaos::{FaultPlan, Verdict};
use crate::cluster::{ClusterSpec, NodeId, NodeSpec};
use crate::model::{StackModel, Wire};
use crate::payload::Payload;

/// Address of a message port: a node plus a port number on that node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortAddr {
    /// Destination node.
    pub node: NodeId,
    /// Port number on that node.
    pub port: u64,
}

impl std::fmt::Display for PortAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// A delivered message.
#[derive(Debug)]
pub struct Packet {
    /// Sending node (reply routing is a higher-layer concern).
    pub src_node: NodeId,
    /// The body.
    pub payload: Payload,
    /// Receiver-side CPU cost, charged by [`PortRx::recv`].
    pub recv_cpu_ns: u64,
    /// Virtual time at which the fabric delivered the packet.
    pub delivered_at: u64,
}

/// A work-conserving fluid queue: backlog drains continuously at link rate;
/// a message waits out the backlog present at its arrival, then occupies
/// the link for its own serialization time. No future windows are reserved,
/// so the link never develops unusable holes under bursty all-to-all load.
#[derive(Default)]
struct LinkState {
    backlog_ns: f64,
    last_update: u64,
    busy_ns: u64,
}

impl LinkState {
    /// Account a `tx_ns` transmission arriving at `now`; returns the wait
    /// before it starts draining.
    fn book(&mut self, now: u64, tx_ns: u64) -> u64 {
        let dt = now.saturating_sub(self.last_update);
        self.backlog_ns = (self.backlog_ns - dt as f64).max(0.0);
        self.last_update = now;
        let wait = self.backlog_ns as u64;
        self.backlog_ns += tx_ns as f64;
        self.busy_ns += tx_ns;
        wait
    }
}

struct NodeRt {
    spec: NodeSpec,
    cpu: Cpu,
    /// NIC egress queue.
    egress: Mutex<LinkState>,
    /// NIC ingress queue.
    ingress: Mutex<LinkState>,
    /// Local storage (HDFS-style output writes; see [`Net::disk_write`]).
    disk: Mutex<LinkState>,
    /// Cumulative egress serialization time, mirrored into the registry.
    egress_busy: obs::Gauge,
    /// Cumulative ingress serialization time, mirrored into the registry.
    ingress_busy: obs::Gauge,
}

/// Registry counter handles cached at construction (delivery runs on the
/// hot path of every message).
struct NetCounters {
    delivered_msgs: obs::Counter,
    delivered_bytes: obs::Counter,
    dropped_msgs: obs::Counter,
    chaos_dropped_msgs: obs::Counter,
    chaos_delayed_msgs: obs::Counter,
}

impl NetCounters {
    fn new(reg: &obs::Registry) -> NetCounters {
        NetCounters {
            delivered_msgs: reg.counter(obs::keys::NET_DELIVERED_MSGS),
            delivered_bytes: reg.counter(obs::keys::NET_DELIVERED_BYTES),
            dropped_msgs: reg.counter(obs::keys::NET_DROPPED_MSGS),
            chaos_dropped_msgs: reg.counter(obs::keys::NET_CHAOS_DROPPED_MSGS),
            chaos_delayed_msgs: reg.counter(obs::keys::NET_CHAOS_DELAYED_MSGS),
        }
    }
}

struct NetInner {
    wire: Wire,
    nodes: Vec<NodeRt>,
    ports: Mutex<BTreeMap<PortAddr, Queue<Packet>>>,
    next_auto_port: AtomicU64,
    obs: obs::Obs,
    counters: NetCounters,
    /// Fault-injection schedule consulted on every send (None = healthy).
    chaos: Mutex<Option<Arc<FaultPlan>>>,
}

/// The simulated cluster network. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Net {
    inner: Arc<NetInner>,
}

/// First port number handed out by [`Net::bind_auto`]. Lower numbers are
/// reserved for well-known services (Spark master, MPI daemons, ...).
const AUTO_PORT_BASE: u64 = 1 << 32;

/// Local-storage drain rate in bytes/ns (HDFS-style replicated writes land
/// around 0.6 GB/s per node).
const DISK_RATE_BPNS: f64 = 0.6;

impl Net {
    /// Build the runtime for a cluster with a default (untraced)
    /// observability context.
    pub fn new(cluster: &ClusterSpec) -> Self {
        Net::with_obs(cluster, obs::Obs::disabled())
    }

    /// Build the runtime for a cluster, attaching `obs` as the shared
    /// observability context for every layer above the fabric.
    pub fn with_obs(cluster: &ClusterSpec, obs: obs::Obs) -> Self {
        let reg = obs.registry();
        let nodes = cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(i, spec)| NodeRt {
                cpu: Cpu::with_hyperthreading(spec.cores(), spec.threads_per_core),
                spec: spec.clone(),
                egress: Mutex::new(LinkState::default()),
                ingress: Mutex::new(LinkState::default()),
                disk: Mutex::new(LinkState::default()),
                egress_busy: reg.gauge(&format!("fabric.link.n{i}.egress_busy_ns")),
                ingress_busy: reg.gauge(&format!("fabric.link.n{i}.ingress_busy_ns")),
            })
            .collect();
        let counters = NetCounters::new(reg);
        Net {
            inner: Arc::new(NetInner {
                wire: cluster.interconnect.wire,
                nodes,
                ports: Mutex::new(BTreeMap::new()),
                next_auto_port: AtomicU64::new(AUTO_PORT_BASE),
                obs,
                counters,
                chaos: Mutex::new(None),
            }),
        }
    }

    /// The observability context shared by everything running on this net.
    pub fn obs(&self) -> &obs::Obs {
        &self.inner.obs
    }

    /// Install a fault-injection plan. Every subsequent [`Net::send`]
    /// consults it; installing `None`-equivalent behaviour again requires a
    /// fresh `Net`. Call before the simulation's processes start so the
    /// schedule covers the whole run.
    pub fn install_chaos(&self, plan: FaultPlan) {
        *self.inner.chaos.lock() = Some(Arc::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn chaos_plan(&self) -> Option<Arc<FaultPlan>> {
        self.inner.chaos.lock().clone()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.len()
    }

    /// The shared CPU resource of `node`.
    pub fn cpu(&self, node: NodeId) -> Cpu {
        self.inner.nodes[node].cpu.clone()
    }

    /// Hardware spec of `node`.
    pub fn node_spec(&self, node: NodeId) -> &NodeSpec {
        &self.inner.nodes[node].spec
    }

    /// The wire model.
    pub fn wire(&self) -> Wire {
        self.inner.wire
    }

    /// Per-node link occupancy: `(egress_busy_ns, egress_backlog_ns,
    /// ingress_busy_ns, ingress_backlog_ns)` — diagnostics for congestion
    /// analysis.
    pub fn link_stats(&self, node: NodeId) -> (u64, u64, u64, u64) {
        let n = &self.inner.nodes[node];
        let e = n.egress.lock();
        let i = n.ingress.lock();
        (e.busy_ns, e.backlog_ns as u64, i.busy_ns, i.backlog_ns as u64)
    }

    /// Write `bytes` to `node`'s local storage, blocking the calling green
    /// thread until the (shared, per-node) disk drains the request. Models
    /// HDFS-style output phases (TeraSort writes its sorted output), which
    /// are transport-independent and can dominate end-to-end times — the
    /// reason the paper's TeraSort shows near-parity across systems.
    pub fn disk_write(&self, node: NodeId, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let tx = (bytes as f64 / DISK_RATE_BPNS).ceil() as u64;
        let now = simt::now();
        let wait = self.inner.nodes[node].disk.lock().book(now, tx);
        simt::sleep(wait + tx);
    }

    /// Bind a well-known port on `node`. Panics if already bound — a
    /// misconfigured simulation, not a runtime condition.
    pub fn bind(&self, node: NodeId, port: u64) -> PortRx {
        let addr = PortAddr { node, port };
        let q = Queue::new();
        let prev = self.inner.ports.lock().insert(addr, q.clone());
        assert!(prev.is_none(), "port {addr} already bound");
        PortRx { net: self.clone(), addr, queue: q }
    }

    /// Bind an automatically allocated port on `node`.
    pub fn bind_auto(&self, node: NodeId) -> PortRx {
        let port = self.inner.next_auto_port.fetch_add(1, Ordering::Relaxed);
        self.bind(node, port)
    }

    /// True if `addr` currently accepts messages.
    pub fn is_bound(&self, addr: PortAddr) -> bool {
        self.inner.ports.lock().contains_key(&addr)
    }

    /// Send `payload` from `from_node` to `to` over `stack`.
    ///
    /// Charges the sender's CPU synchronously (blocking the calling green
    /// thread for the send-side software time), reserves NIC link windows,
    /// and schedules delivery. Same-node messages use the loopback model and
    /// skip the NIC entirely. Returns the scheduled delivery time; messages
    /// to unbound ports are dropped at delivery time, like a TCP RST.
    pub fn send(
        &self,
        stack: &StackModel,
        from_node: NodeId,
        to: PortAddr,
        payload: Payload,
    ) -> u64 {
        let n = payload.virtual_len;
        let loopback = StackModel::loopback();
        let eff_stack = if from_node == to.node { &loopback } else { stack };

        self.inner.nodes[from_node].cpu.execute(eff_stack.send_cpu_ns(n));
        let now = simt::now();

        // Fault injection: the plan rules on every message at its send
        // instant, before any link bandwidth is booked — a message a dead
        // link drops never occupies the NIC.
        let chaos_extra_ns = {
            let plan = self.inner.chaos.lock().clone();
            match plan.map(|p| p.verdict(now, from_node, to.node, eff_stack.name)) {
                Some(Verdict::Drop) => {
                    self.inner.counters.chaos_dropped_msgs.inc();
                    self.inner.obs.event(
                        "fabric.chaos.drop",
                        obs::kv! {"src" => from_node, "dst" => to.node, "stack" => eff_stack.name},
                    );
                    return now + self.inner.wire.latency_ns;
                }
                Some(Verdict::Delay(extra)) => {
                    self.inner.counters.chaos_delayed_msgs.inc();
                    self.inner.obs.event(
                        "fabric.chaos.delay",
                        obs::kv! {"src" => from_node, "dst" => to.node, "extra_ns" => extra},
                    );
                    extra
                }
                Some(Verdict::Deliver) | None => 0,
            }
        };

        let base_deliver_at = if from_node == to.node {
            // In-memory handoff: fixed small latency, no NIC occupancy.
            now + 300 + eff_stack.tx_time_ns(n, &self.inner.wire).min(n / 10)
        } else {
            let tx = eff_stack.tx_time_ns(n, &self.inner.wire);
            let wait_e = {
                let rt = &self.inner.nodes[from_node];
                let mut link = rt.egress.lock();
                let wait = link.book(now, tx);
                rt.egress_busy.set(link.busy_ns);
                wait
            };
            let wait_i = {
                let rt = &self.inner.nodes[to.node];
                let mut link = rt.ingress.lock();
                let wait = link.book(now, tx);
                rt.ingress_busy.set(link.busy_ns);
                wait
            };
            // The slower of the two queues gates the transfer; both drain
            // concurrently (sender pushes while receiver pulls).
            now + wait_e.max(wait_i) + tx + self.inner.wire.latency_ns
        };
        let deliver_at = base_deliver_at + chaos_extra_ns;

        if self.inner.obs.is_traced() && from_node != to.node {
            // Wire occupancy span: from send instant to delivery.
            self.inner.obs.tracer().record_complete(
                "fabric.tx",
                now,
                deliver_at,
                obs::kv! {"src" => from_node, "dst" => to.node, "bytes" => n,
                "stack" => eff_stack.name},
            );
        }

        let recv_cpu_ns = eff_stack.recv_cpu_ns(n);
        let inner = self.inner.clone();
        simt::engine::call_at(deliver_at, move || {
            let q = inner.ports.lock().get(&to).cloned();
            match q {
                Some(q) => {
                    inner.counters.delivered_msgs.inc();
                    inner.counters.delivered_bytes.add(n);
                    q.send(Packet {
                        src_node: from_node,
                        payload,
                        recv_cpu_ns,
                        delivered_at: deliver_at,
                    });
                }
                None => {
                    inner.counters.dropped_msgs.inc();
                }
            }
        });
        deliver_at
    }

    fn unbind(&self, addr: PortAddr) {
        if let Some(q) = self.inner.ports.lock().remove(&addr) {
            q.close();
        }
    }
}

/// Receiving end of a bound port. Closing (or dropping) unbinds it.
pub struct PortRx {
    net: Net,
    addr: PortAddr,
    queue: Queue<Packet>,
}

impl PortRx {
    /// This port's address (hand it to peers).
    pub fn addr(&self) -> PortAddr {
        self.addr
    }

    /// Blocking receive; charges the receiver-side CPU cost before
    /// returning, so the caller's virtual time reflects protocol processing.
    pub fn recv(&self) -> Result<Packet, RecvError> {
        let pkt = self.queue.recv()?;
        self.net.cpu(self.addr.node).execute(pkt.recv_cpu_ns);
        Ok(pkt)
    }

    /// Blocking receive with a relative timeout (ns).
    pub fn recv_timeout(&self, timeout: u64) -> Result<Packet, RecvError> {
        let pkt = self.queue.recv_timeout(timeout)?;
        self.net.cpu(self.addr.node).execute(pkt.recv_cpu_ns);
        Ok(pkt)
    }

    /// Non-blocking receive. Charges receive CPU when a packet is returned.
    pub fn try_recv(&self) -> Option<Packet> {
        let pkt = self.queue.try_recv()?;
        self.net.cpu(self.addr.node).execute(pkt.recv_cpu_ns);
        Some(pkt)
    }

    /// Non-blocking readiness probe without consuming or charging.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Unbind and drain.
    pub fn close(&self) {
        self.net.unbind(self.addr);
    }
}

impl Drop for PortRx {
    fn drop(&mut self) {
        self.net.unbind(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use bytes::Bytes;
    use simt::Sim;

    fn two_node_net() -> Net {
        Net::new(&ClusterSpec::test(2))
    }

    #[test]
    fn message_arrives_with_model_latency() {
        let sim = Sim::new();
        let net = two_node_net();
        let rx = net.bind(1, 7);
        let net2 = net.clone();
        sim.spawn("tx", move || {
            let stack = StackModel::native_mpi();
            net2.send(
                &stack,
                0,
                PortAddr { node: 1, port: 7 },
                Payload::bytes(Bytes::from_static(b"hi")),
            );
        });
        sim.spawn("rx", move || {
            let pkt = rx.recv().unwrap();
            assert_eq!(&pkt.payload.bytes[..], b"hi");
            assert_eq!(pkt.src_node, 0);
            // send cpu (1500) + tx(2B≈1) + wire 1000 = ~2501; recv cpu 1500
            // charged after delivery.
            let now = simt::now();
            assert!((3_900..=4_200).contains(&now), "now={now}");
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn loopback_skips_nic() {
        let sim = Sim::new();
        let net = two_node_net();
        let rx = net.bind(0, 9);
        let net2 = net.clone();
        sim.spawn("tx", move || {
            net2.send(
                &StackModel::java_sockets_ipoib(),
                0,
                PortAddr { node: 0, port: 9 },
                Payload::bytes(Bytes::from_static(b"x")),
            );
        });
        sim.spawn("rx", move || {
            let pkt = rx.recv().unwrap();
            // Loopback per-message cost (300ns each side) applies, not the
            // 15 µs socket cost.
            assert!(pkt.recv_cpu_ns < 1_000, "recv_cpu={}", pkt.recv_cpu_ns);
            assert!(simt::now() < 5_000, "now={}", simt::now());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn incast_serializes_on_ingress_link() {
        // Two senders on different nodes target one receiver; the second
        // transfer must queue behind the first on the receiver's ingress.
        let sim = Sim::new();
        let net = Net::new(&ClusterSpec::test(3));
        let rx = net.bind(2, 1);
        let one_mb = 1u64 << 20;
        for src in 0..2usize {
            let net = net.clone();
            sim.spawn(format!("tx{src}"), move || {
                net.send(
                    &StackModel::native_mpi(),
                    src,
                    PortAddr { node: 2, port: 1 },
                    Payload::bytes_scaled(Bytes::new(), one_mb),
                );
            });
        }
        sim.spawn("rx", move || {
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            let tx_time =
                StackModel::native_mpi().tx_time_ns(one_mb, &Interconnect::ib_hdr100().wire);
            let gap = b.delivered_at - a.delivered_at;
            // Second delivery waits a full serialization window.
            assert!(gap + 1_000 >= tx_time, "gap={gap} tx={tx_time}");
        });
        use crate::model::Interconnect;
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn unbound_port_drops() {
        let sim = Sim::new();
        let net = two_node_net();
        let net2 = net.clone();
        sim.spawn("tx", move || {
            net2.send(
                &StackModel::native_mpi(),
                0,
                PortAddr { node: 1, port: 99 },
                Payload::bytes(Bytes::from_static(b"void")),
            );
            simt::sleep(1_000_000);
        });
        sim.run().unwrap().assert_clean();
        let snap = net.obs().registry().snapshot();
        assert_eq!(snap.counter(obs::keys::NET_DROPPED_MSGS), 1);
        assert_eq!(snap.counter(obs::keys::NET_DELIVERED_MSGS), 0);
    }

    #[test]
    fn close_unbinds_port() {
        let sim = Sim::new();
        let net = two_node_net();
        let rx = net.bind(1, 5);
        assert!(net.is_bound(rx.addr()));
        let net2 = net.clone();
        sim.spawn("a", move || {
            rx.close();
            assert!(!net2.is_bound(PortAddr { node: 1, port: 5 }));
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let net = two_node_net();
        let _a = net.bind(0, 1);
        let _b = net.bind(0, 1);
    }

    #[test]
    fn auto_ports_are_distinct() {
        let net = two_node_net();
        let a = net.bind_auto(0);
        let b = net.bind_auto(0);
        assert_ne!(a.addr(), b.addr());
    }

    #[test]
    fn per_link_fifo_ordering() {
        let sim = Sim::new();
        let net = two_node_net();
        let rx = net.bind(1, 3);
        let net2 = net.clone();
        sim.spawn("tx", move || {
            for i in 0..10u8 {
                net2.send(
                    &StackModel::native_mpi(),
                    0,
                    PortAddr { node: 1, port: 3 },
                    Payload::bytes(Bytes::copy_from_slice(&[i])),
                );
            }
        });
        sim.spawn("rx", move || {
            for i in 0..10u8 {
                let pkt = rx.recv().unwrap();
                assert_eq!(pkt.payload.bytes[0], i);
            }
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn disk_writes_serialize_per_node() {
        let sim = Sim::new();
        let net = two_node_net();
        let done = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..2 {
            let net = net.clone();
            let done = done.clone();
            sim.spawn(format!("writer{i}"), move || {
                net.disk_write(0, 600_000_000); // 1s at 0.6 B/ns
                done.lock().push(simt::now());
            });
        }
        sim.run().unwrap().assert_clean();
        let times = done.lock().clone();
        // First write drains in ~1s; the second queues behind it (~2s).
        assert!((0.9e9..1.1e9).contains(&(times[0] as f64)), "{times:?}");
        assert!((1.9e9..2.1e9).contains(&(times[1] as f64)), "{times:?}");
    }

    #[test]
    fn disk_backlog_drains_over_idle_time() {
        let sim = Sim::new();
        let net = two_node_net();
        sim.spawn("w", move || {
            net.disk_write(0, 600_000_000); // done at ~1s
            simt::sleep(simt::time::secs(5)); // disk idle, backlog drains
            let t0 = simt::now();
            net.disk_write(0, 600_000_000);
            assert!((simt::now() - t0) as f64 <= 1.1e9, "no stale backlog");
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn disks_are_independent_per_node() {
        let sim = Sim::new();
        let net = two_node_net();
        for node in 0..2usize {
            let net = net.clone();
            sim.spawn(format!("w{node}"), move || {
                net.disk_write(node, 600_000_000);
                assert!((simt::now() as f64) < 1.2e9, "node {node} uncontended");
            });
        }
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn fluid_links_are_work_conserving() {
        // Saturating a link with back-to-back sends must deliver at full
        // rate: N messages of tx each finish in ≈ N*tx, not more.
        let sim = Sim::new();
        let net = two_node_net();
        let rx = net.bind(1, 2);
        let net2 = net.clone();
        let n = 50u64;
        let sz = 1u64 << 20; // 1 MiB, tx ≈ 100µs at MPI 10.5 B/ns
        sim.spawn("tx", move || {
            for _ in 0..n {
                net2.send(
                    &StackModel::native_mpi(),
                    0,
                    PortAddr { node: 1, port: 2 },
                    Payload::bytes_scaled(Bytes::new(), sz),
                );
            }
        });
        sim.spawn("rx", move || {
            for _ in 0..n {
                rx.recv().unwrap();
            }
            let expect = StackModel::native_mpi()
                .tx_time_ns(sz, &crate::model::Interconnect::ib_hdr100().wire)
                * n;
            let now = simt::now();
            assert!(now < expect * 13 / 10, "utilization hole: {now} vs ideal {expect}");
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn chaos_drop_window_swallows_messages_then_heals() {
        let sim = Sim::new();
        let net = two_node_net();
        net.install_chaos(crate::FaultPlan::seeded(5).drop_link(0, 1, 0, 1_000_000).build());
        let rx = net.bind(1, 7);
        let net2 = net.clone();
        sim.spawn("tx", move || {
            let to = PortAddr { node: 1, port: 7 };
            net2.send(&StackModel::native_mpi(), 0, to, Payload::bytes(Bytes::from_static(b"a")));
            simt::sleep(2_000_000); // past the window
            net2.send(&StackModel::native_mpi(), 0, to, Payload::bytes(Bytes::from_static(b"b")));
        });
        sim.spawn("rx", move || {
            let pkt = rx.recv().unwrap();
            assert_eq!(&pkt.payload.bytes[..], b"b", "the windowed message never arrives");
        });
        sim.run().unwrap().assert_clean();
        let snap = net.obs().registry().snapshot();
        assert_eq!(snap.counter(obs::keys::NET_CHAOS_DROPPED_MSGS), 1);
        assert_eq!(snap.counter(obs::keys::NET_DELIVERED_MSGS), 1);
    }

    #[test]
    fn chaos_delay_shifts_delivery_by_the_scheduled_extra() {
        let extra = 500_000u64;
        let deliver = |chaos: bool| {
            let sim = Sim::new();
            let net = two_node_net();
            if chaos {
                net.install_chaos(
                    crate::FaultPlan::seeded(5).delay_link(0, 1, 0, u64::MAX, extra).build(),
                );
            }
            let rx = net.bind(1, 7);
            let net2 = net.clone();
            sim.spawn("tx", move || {
                let to = PortAddr { node: 1, port: 7 };
                net2.send(
                    &StackModel::native_mpi(),
                    0,
                    to,
                    Payload::bytes(Bytes::from_static(b"x")),
                );
            });
            let at = Arc::new(AtomicU64::new(0));
            let at2 = at.clone();
            sim.spawn("rx", move || {
                at2.store(rx.recv().unwrap().delivered_at, Ordering::Relaxed);
            });
            sim.run().unwrap().assert_clean();
            at.load(Ordering::Relaxed)
        };
        assert_eq!(deliver(true), deliver(false) + extra);
    }

    #[test]
    fn virtual_size_drives_cost_not_real_bytes() {
        let sim = Sim::new();
        let net = two_node_net();
        let rx = net.bind(1, 4);
        let net2 = net.clone();
        sim.spawn("tx", move || {
            // 1 real byte, 8 MB virtual.
            net2.send(
                &StackModel::native_mpi(),
                0,
                PortAddr { node: 1, port: 4 },
                Payload::bytes_scaled(Bytes::from_static(b"k"), 8 << 20),
            );
        });
        sim.spawn("rx", move || {
            let pkt = rx.recv().unwrap();
            // 8 MB at 11 B/ns ≈ 762 µs minimum.
            assert!(pkt.delivered_at > 700_000, "delivered_at={}", pkt.delivered_at);
        });
        sim.run().unwrap().assert_clean();
    }
}
