//! RDMA-Spark baseline tests: functional equivalence with Vanilla plus the
//! expected performance ordering Vanilla < RDMA < MPI on shuffle reads.

use std::sync::Arc;

use fabric::ClusterSpec;
use rdma_spark::RdmaBackend;
use sparklet::deploy::{simulate, ClusterConfig, ProcessBuilderLauncher};
use sparklet::{Blob, SparkConf};

fn conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf
}

fn groupby_workload(sc: &sparklet::scheduler::SparkContext) -> u64 {
    let pairs: Vec<(u64, Blob)> = (0..120u64).map(|i| (i, Blob::new(i, 1 << 18))).collect();
    sc.parallelize(pairs, 6).group_by_key(6).count()
}

#[test]
fn rdma_group_by_matches_vanilla() {
    let spec = ClusterSpec::test(5);
    let (count_rdma, _) = simulate(
        &spec,
        ClusterConfig::paper_layout(spec.len(), conf()),
        Arc::new(RdmaBackend::new(&spec.interconnect)),
        Arc::new(ProcessBuilderLauncher),
        groupby_workload,
    );
    let (count_van, _) = simulate(
        &spec,
        ClusterConfig::paper_layout(spec.len(), conf()),
        Arc::new(sparklet::VanillaBackend::default()),
        Arc::new(ProcessBuilderLauncher),
        groupby_workload,
    );
    assert_eq!(count_rdma, count_van);
    assert_eq!(count_rdma, 120);
}

#[test]
fn shuffle_read_ordering_vanilla_rdma() {
    let spec = ClusterSpec::test(5);
    let (_, m_rdma) = simulate(
        &spec,
        ClusterConfig::paper_layout(spec.len(), conf()),
        Arc::new(RdmaBackend::new(&spec.interconnect)),
        Arc::new(ProcessBuilderLauncher),
        groupby_workload,
    );
    let (_, m_van) = simulate(
        &spec,
        ClusterConfig::paper_layout(spec.len(), conf()),
        Arc::new(sparklet::VanillaBackend::default()),
        Arc::new(ProcessBuilderLauncher),
        groupby_workload,
    );
    let read_rdma = m_rdma[0].stage_duration("ResultStage").unwrap();
    let read_van = m_van[0].stage_duration("ResultStage").unwrap();
    assert!(
        read_van > read_rdma,
        "vanilla read ({read_van}) should exceed RDMA read ({read_rdma})"
    );
    // Map/datagen stage should be roughly transport-independent (±25%).
    let map_rdma = m_rdma[0].stage_duration("ShuffleMapStage").unwrap() as f64;
    let map_van = m_van[0].stage_duration("ShuffleMapStage").unwrap() as f64;
    let ratio = map_van / map_rdma;
    assert!((0.75..=1.35).contains(&ratio), "map stages diverged: {ratio:.2}");
}
