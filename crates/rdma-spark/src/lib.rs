//! # rdma-spark — the RDMA-Spark baseline (Lu et al., IEEE BigData 2016)
//!
//! RDMA-Spark keeps Spark's shuffle managers and replaces the
//! `BlockTransferService` with one built on its Unified Communication
//! Runtime (UCR) over InfiniBand verbs (paper §I-C, Table I: "RDMA-Based
//! BlockTransferService"). Architecturally that means:
//!
//! * the control plane (driver/master/executor RPC) stays on Vanilla
//!   Spark's Netty-over-sockets path, and
//! * the shuffle plane — `OpenBlocks` + chunk transfers between executors —
//!   runs over RDMA.
//!
//! The reproduction expresses exactly that split through sparklet's
//! [`NetworkBackend`] seam: the backend's [`Plane::Rpc`] descriptor uses the
//! Java-sockets stack while its [`Plane::Shuffle`] descriptor uses the
//! calibrated RDMA-verbs stack (`fabric::StackModel::rdma_verbs`, ≈2.1 GB/s
//! effective with ≈8 µs/message registration+completion overhead — the UCR
//! figures the calibration note in `EXPERIMENTS.md` derives from the
//! paper's measured ratios).
//!
//! RDMA-Spark is IB-only (paper Table I: no multi-interconnect support);
//! [`RdmaBackend::new`] checks [`fabric::FabricKind`], mirroring why the
//! paper has no RDMA-Spark numbers on Stampede2's Omni-Path.

use std::sync::Arc;

use fabric::{FabricKind, StackModel};
use netz::{NioTransport, RoutePolicy, TransportConf};
use sparklet::config::SparkConf;
use sparklet::net_backend::{NetworkBackend, Plane, PlaneDesc, ProcIdentity};

/// The RDMA-Spark network backend.
pub struct RdmaBackend {
    rpc_conf: TransportConf,
    shuffle_conf: TransportConf,
}

impl RdmaBackend {
    /// Backend for a cluster whose interconnect is InfiniBand.
    ///
    /// # Panics
    /// When the interconnect's [`FabricKind`] is not
    /// [`FabricKind::InfiniBand`] (e.g. Omni-Path): RDMA-Spark only supports
    /// IB, which is why the paper collected no RDMA numbers on Stampede2
    /// (§VII-D).
    pub fn new(interconnect: &fabric::Interconnect) -> Self {
        assert!(
            interconnect.kind == FabricKind::InfiniBand,
            "RDMA-Spark supports only InfiniBand interconnects (got {} [{:?}])",
            interconnect.name,
            interconnect.kind
        );
        let rpc_conf = TransportConf::default_sockets();
        let shuffle_conf = TransportConf { stack: StackModel::rdma_verbs(), ..rpc_conf };
        RdmaBackend { rpc_conf, shuffle_conf }
    }

    /// Backend honoring the engine configuration's timeouts on both planes.
    pub fn with_conf(interconnect: &fabric::Interconnect, spark: &SparkConf) -> Self {
        let mut b = Self::new(interconnect);
        for conf in [&mut b.rpc_conf, &mut b.shuffle_conf] {
            conf.request_timeout_ns = spark.request_timeout_ns;
            conf.connect_timeout_ns = spark.connect_timeout_ns;
        }
        b
    }

    /// The shuffle-plane stack (tests/calibration).
    pub fn shuffle_stack(&self) -> StackModel {
        self.shuffle_conf.stack
    }
}

impl NetworkBackend for RdmaBackend {
    fn name(&self) -> &'static str {
        "rdma-spark"
    }

    fn plane(&self, plane: Plane, _identity: &ProcIdentity) -> PlaneDesc {
        match plane {
            // Control plane: unmodified Netty-over-sockets, nothing diverted.
            Plane::Rpc => PlaneDesc {
                conf: self.rpc_conf,
                transport: Arc::new(NioTransport),
                route: RoutePolicy::NONE,
            },
            // Shuffle plane: the UCR transport exists to carry the same
            // body set §VI-E routes (chunk and stream bodies); in this model
            // the whole plane runs on the verbs stack, and the policy
            // records which messages that plane is there for.
            Plane::Shuffle => PlaneDesc {
                conf: self.shuffle_conf,
                transport: Arc::new(NioTransport),
                route: RoutePolicy::SHUFFLE_BODIES,
            },
        }
    }

    fn fallback_plane(&self, plane: Plane, _identity: &ProcIdentity) -> Option<PlaneDesc> {
        match plane {
            // RPC already runs on sockets: no separate degraded mode.
            Plane::Rpc => None,
            // Degraded shuffle: drop from verbs to the socket stack — the
            // same path RDMA-Spark's IPoIB fallback takes when UCR fails.
            Plane::Shuffle => Some(PlaneDesc {
                conf: self.rpc_conf,
                transport: Arc::new(NioTransport),
                route: RoutePolicy::NONE,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Interconnect;
    use sparklet::net_backend::Role;

    #[test]
    fn planes_use_different_stacks() {
        let b = RdmaBackend::new(&Interconnect::ib_hdr100());
        let id = ProcIdentity::new(Role::Executor(0), 0, "executor-0");
        let rpc = b.plane(Plane::Rpc, &id);
        let shuffle = b.plane(Plane::Shuffle, &id);
        assert_eq!(rpc.conf.stack.name, "JavaSockets/IPoIB");
        assert_eq!(rpc.route, RoutePolicy::NONE);
        assert_eq!(shuffle.conf.stack.name, "RDMA/UCR");
        assert_eq!(shuffle.route, RoutePolicy::SHUFFLE_BODIES);
        assert_eq!(b.name(), "rdma-spark");
    }

    #[test]
    #[should_panic(expected = "only InfiniBand")]
    fn rejects_omni_path_like_the_real_system() {
        let _ = RdmaBackend::new(&Interconnect::omni_path100());
    }

    #[test]
    fn works_on_edr_and_hdr() {
        let _ = RdmaBackend::new(&Interconnect::ib_hdr100());
        let _ = RdmaBackend::new(&Interconnect::ib_edr100());
    }

    #[test]
    fn fabric_kind_drives_the_rejection_not_the_preset_name() {
        // A hypothetical IB preset whose display name lacks the "IB"
        // substring must still be accepted: the structured kind decides.
        let odd_name = Interconnect {
            name: "ConnectX-6 fabric",
            kind: FabricKind::InfiniBand,
            wire: Interconnect::ib_hdr100().wire,
        };
        let _ = RdmaBackend::new(&odd_name);
    }
}
