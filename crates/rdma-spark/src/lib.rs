//! # rdma-spark — the RDMA-Spark baseline (Lu et al., IEEE BigData 2016)
//!
//! RDMA-Spark keeps Spark's shuffle managers and replaces the
//! `BlockTransferService` with one built on its Unified Communication
//! Runtime (UCR) over InfiniBand verbs (paper §I-C, Table I: "RDMA-Based
//! BlockTransferService"). Architecturally that means:
//!
//! * the control plane (driver/master/executor RPC) stays on Vanilla
//!   Spark's Netty-over-sockets path, and
//! * the shuffle plane — `OpenBlocks` + chunk transfers between executors —
//!   runs over RDMA.
//!
//! The reproduction expresses exactly that split through sparklet's
//! [`NetworkBackend`] seam: [`RdmaBackend::rpc_context`] uses the
//! Java-sockets stack while [`RdmaBackend::shuffle_context`] uses the
//! calibrated RDMA-verbs stack (`fabric::StackModel::rdma_verbs`, ≈2.1 GB/s
//! effective with ≈8 µs/message registration+completion overhead — the UCR
//! figures the calibration note in `EXPERIMENTS.md` derives from the
//! paper's measured ratios).
//!
//! RDMA-Spark is IB-only (paper Table I: no multi-interconnect support);
//! [`RdmaBackend::new`] asserts the wire is InfiniBand, mirroring why the
//! paper has no RDMA-Spark numbers on Stampede2's Omni-Path.

use std::sync::Arc;

use fabric::{Net, StackModel};
use netz::{NioTransport, RpcHandler, TransportConf, TransportContext};
use sparklet::net_backend::{NetworkBackend, ProcIdentity};

/// The RDMA-Spark network backend.
pub struct RdmaBackend {
    rpc_conf: TransportConf,
    shuffle_conf: TransportConf,
}

impl RdmaBackend {
    /// Backend for a cluster whose interconnect is InfiniBand.
    ///
    /// # Panics
    /// When the interconnect is not InfiniBand (e.g. Omni-Path): RDMA-Spark
    /// only supports IB, which is why the paper collected no RDMA numbers
    /// on Stampede2 (§VII-D).
    pub fn new(interconnect: &fabric::Interconnect) -> Self {
        assert!(
            interconnect.name.contains("IB"),
            "RDMA-Spark supports only InfiniBand interconnects (got {})",
            interconnect.name
        );
        let rpc_conf = TransportConf::default_sockets();
        let shuffle_conf = TransportConf { stack: StackModel::rdma_verbs(), ..rpc_conf };
        RdmaBackend { rpc_conf, shuffle_conf }
    }

    /// The shuffle-plane stack (tests/calibration).
    pub fn shuffle_stack(&self) -> StackModel {
        self.shuffle_conf.stack
    }
}

impl NetworkBackend for RdmaBackend {
    fn name(&self) -> &'static str {
        "rdma-spark"
    }

    fn rpc_context(
        &self,
        _identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> TransportContext {
        TransportContext::with_transport(net.clone(), self.rpc_conf, handler, Arc::new(NioTransport))
    }

    fn shuffle_context(
        &self,
        _identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> TransportContext {
        TransportContext::with_transport(
            net.clone(),
            self.shuffle_conf,
            handler,
            Arc::new(NioTransport),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Interconnect;

    #[test]
    fn planes_use_different_stacks() {
        let b = RdmaBackend::new(&Interconnect::ib_hdr100());
        assert_eq!(b.rpc_conf.stack.name, "JavaSockets/IPoIB");
        assert_eq!(b.shuffle_conf.stack.name, "RDMA/UCR");
        assert_eq!(b.name(), "rdma-spark");
    }

    #[test]
    #[should_panic(expected = "only InfiniBand")]
    fn rejects_omni_path_like_the_real_system() {
        let _ = RdmaBackend::new(&Interconnect::omni_path100());
    }

    #[test]
    fn works_on_edr_and_hdr() {
        let _ = RdmaBackend::new(&Interconnect::ib_hdr100());
        let _ = RdmaBackend::new(&Interconnect::ib_edr100());
    }
}
