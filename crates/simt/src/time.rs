//! Virtual-time units. The simulation clock counts nanoseconds in a `u64`,
//! which covers ~584 years of virtual time — ample for any experiment here.

/// Absolute virtual time, nanoseconds since simulation start.
pub type Instant = u64;

/// A span of virtual time, nanoseconds.
pub type Duration = u64;

/// Nanoseconds per microsecond.
pub const US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const SEC: u64 = 1_000_000_000;

/// Build a duration from microseconds.
pub const fn micros(n: u64) -> Duration {
    n * US
}

/// Build a duration from milliseconds.
pub const fn millis(n: u64) -> Duration {
    n * MS
}

/// Build a duration from seconds.
pub const fn secs(n: u64) -> Duration {
    n * SEC
}

/// Render a duration in a human-friendly unit (used by harness output).
pub fn fmt_duration(ns: u64) -> String {
    if ns >= SEC {
        format!("{:.3} s", ns as f64 / SEC as f64)
    } else if ns >= MS {
        format!("{:.3} ms", ns as f64 / MS as f64)
    } else if ns >= US {
        format!("{:.3} us", ns as f64 / US as f64)
    } else {
        format!("{ns} ns")
    }
}

/// Convert nanoseconds to fractional seconds.
pub fn as_secs_f64(ns: u64) -> f64 {
    ns as f64 / SEC as f64
}

/// Convert nanoseconds to fractional microseconds.
pub fn as_micros_f64(ns: u64) -> f64 {
    ns as f64 / US as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(micros(3), 3_000);
        assert_eq!(millis(3), 3_000_000);
        assert_eq!(secs(3), 3_000_000_000);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_duration(15), "15 ns");
        assert_eq!(fmt_duration(1_500), "1.500 us");
        assert_eq!(fmt_duration(2_500_000), "2.500 ms");
        assert_eq!(fmt_duration(3_000_000_000), "3.000 s");
    }

    #[test]
    fn float_conversions() {
        assert!((as_secs_f64(SEC) - 1.0).abs() < 1e-12);
        assert!((as_micros_f64(US) - 1.0).abs() < 1e-12);
    }
}
