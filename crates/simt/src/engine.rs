//! The simulation engine: virtual clock, event heap, and green-thread
//! scheduling.
//!
//! Exactly one green thread executes at a time. The engine thread pops events
//! off a heap ordered by `(virtual_time, sequence)`; a `Wake` event hands the
//! run token to a blocked green thread and waits for it to yield back; a
//! `Call` event runs a closure on the engine thread itself (used for message
//! delivery, CPU-model ticks, and link releases).

use std::any::Any;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::gate::Gate;

/// Identifier of a green thread within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Payload used to unwind green threads when the simulation shuts down.
struct ShutdownSignal;

/// Default green-thread stack size. Simulated Spark/MPI code is ordinary
/// blocking Rust, so stacks stay shallow; 512 KiB leaves comfortable margin.
const DEFAULT_STACK: usize = 512 * 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Blocked,
    Running,
    Dead,
}

struct ThreadSlot {
    name: String,
    daemon: bool,
    gate: Arc<Gate>,
    status: Status,
    /// Bumped every time the thread resumes; wake events carry the epoch they
    /// were scheduled against and are ignored when stale.
    epoch: u64,
    join: Option<std::thread::JoinHandle<()>>,
}

enum EventKind {
    Wake { tid: TaskId, epoch: u64 },
    Call(Box<dyn FnOnce() + Send>),
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct State {
    now: u64,
    next_seq: u64,
    heap: BinaryHeap<Reverse<Event>>,
    threads: Vec<ThreadSlot>,
    live: usize,
    /// Green threads whose bodies have returned but whose OS threads have not
    /// been joined yet. The engine drains this every loop iteration: an OS
    /// thread's stack mapping is only released at join, and a large cell can
    /// spawn tens of thousands of short-lived tasks — deferring every join to
    /// `shutdown()` runs the process into `vm.max_map_count`.
    finished: Vec<TaskId>,
    panic_payload: Option<Box<dyn Any + Send>>,
    shutting_down: bool,
}

/// Shared engine internals; green threads hold an `Arc` to this.
pub struct Inner {
    state: Mutex<State>,
    engine_gate: Gate,
    stack_size: usize,
    /// Wait-graph bookkeeping fed by the sync primitives; never locked while
    /// `state` is held (and vice versa) so the two cannot deadlock.
    pub(crate) diag: Mutex<crate::diag::DiagState>,
    /// Optional lifecycle observer (tracing). Callbacks run on the green
    /// thread itself while it holds the run token, so anything the observer
    /// records is ordered exactly like the thread's own work.
    observer: Mutex<Option<Arc<dyn TaskObserver>>>,
}

/// Hook notified when green threads begin and finish executing. Installed
/// per-`Sim` via [`Sim::set_observer`]; used by the `obs` crate to open a
/// span per simulated task without `simt` depending on the tracer.
///
/// `task_started` fires on the green thread right before its body runs (at
/// the virtual time of its first wake); `task_finished` fires on the same
/// thread right after the body returns or panics. Neither callback may
/// block.
pub trait TaskObserver: Send + Sync {
    /// A green thread is about to run its body.
    fn task_started(&self, tid: TaskId, name: &str, daemon: bool);
    /// A green thread's body returned (or unwound).
    fn task_finished(&self, tid: TaskId);
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Inner>, TaskId)>> = const { RefCell::new(None) };
}

pub(crate) fn current_handle() -> Option<(Arc<Inner>, TaskId)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Inner>, TaskId) -> R) -> R {
    let (inner, tid) =
        current_handle().expect("simt: called a simulation primitive outside a green thread");
    f(&inner, tid)
}

fn install_shutdown_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownSignal>().is_some() {
                return; // quiet teardown unwinds
            }
            default(info);
        }));
    });
}

impl Inner {
    pub(crate) fn now(&self) -> u64 {
        self.state.lock().now
    }

    pub(crate) fn thread_name(&self, tid: TaskId) -> String {
        self.state.lock().threads[tid.0].name.clone()
    }

    fn alloc_seq(state: &mut State) -> u64 {
        let s = state.next_seq;
        state.next_seq += 1;
        s
    }

    /// Schedule a wake for `(tid, epoch)` at absolute virtual time `at`.
    pub(crate) fn schedule_wake(&self, tid: TaskId, epoch: u64, at: u64) {
        let mut s = self.state.lock();
        let at = at.max(s.now);
        let seq = Self::alloc_seq(&mut s);
        s.heap.push(Reverse(Event { time: at, seq, kind: EventKind::Wake { tid, epoch } }));
    }

    /// Schedule a closure to run on the engine thread at absolute time `at`.
    pub(crate) fn schedule_call(&self, at: u64, f: Box<dyn FnOnce() + Send>) {
        let mut s = self.state.lock();
        let at = at.max(s.now);
        let seq = Self::alloc_seq(&mut s);
        s.heap.push(Reverse(Event { time: at, seq, kind: EventKind::Call(f) }));
    }

    pub(crate) fn current_epoch(&self, tid: TaskId) -> u64 {
        self.state.lock().threads[tid.0].epoch
    }

    /// Block the calling green thread until some wake targets its current
    /// epoch. Panics (unwinding the thread) when the simulation is shutting
    /// down.
    pub(crate) fn block_current(&self, tid: TaskId) {
        let gate = {
            let mut s = self.state.lock();
            let slot = &mut s.threads[tid.0];
            debug_assert_eq!(slot.status, Status::Running);
            slot.status = Status::Blocked;
            slot.gate.clone()
        };
        self.engine_gate.open();
        gate.wait();
        if self.state.lock().shutting_down {
            panic::panic_any(ShutdownSignal);
        }
    }

    pub(crate) fn sleep(&self, tid: TaskId, ns: u64) {
        let deadline = self.now().saturating_add(ns);
        loop {
            let (now, epoch) = {
                let s = self.state.lock();
                (s.now, s.threads[tid.0].epoch)
            };
            if now >= deadline {
                return;
            }
            self.schedule_wake(tid, epoch, deadline);
            self.block_current(tid);
        }
    }

    /// Spawn a green thread; it becomes runnable at the current virtual time.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        name: String,
        daemon: bool,
        f: Box<dyn FnOnce() + Send>,
    ) -> TaskId {
        install_shutdown_quiet_hook();
        let gate = Arc::new(Gate::new());
        let tid = {
            let mut s = self.state.lock();
            let tid = TaskId(s.threads.len());
            s.threads.push(ThreadSlot {
                name: name.clone(),
                daemon,
                gate: gate.clone(),
                status: Status::Blocked,
                epoch: 0,
                join: None,
            });
            s.live += 1;
            tid
        };
        let inner = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("simt:{name}"))
            .stack_size(self.stack_size)
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((inner.clone(), tid)));
                gate.wait();
                let shutting_down = inner.state.lock().shutting_down;
                let payload = if shutting_down {
                    None
                } else {
                    let observer = inner.observer.lock().clone();
                    if let Some(obs) = &observer {
                        obs.task_started(tid, &name, daemon);
                    }
                    let payload = panic::catch_unwind(AssertUnwindSafe(f)).err();
                    if let Some(obs) = &observer {
                        obs.task_finished(tid);
                    }
                    payload
                };
                inner.thread_finished(tid, payload);
            })
            .expect("simt: failed to spawn OS thread for green thread");
        {
            let mut s = self.state.lock();
            s.threads[tid.0].join = Some(handle);
            let epoch = s.threads[tid.0].epoch;
            let now = s.now;
            let seq = Self::alloc_seq(&mut s);
            s.heap.push(Reverse(Event { time: now, seq, kind: EventKind::Wake { tid, epoch } }));
        }
        tid
    }

    fn thread_finished(&self, tid: TaskId, payload: Option<Box<dyn Any + Send>>) {
        let mut s = self.state.lock();
        let slot = &mut s.threads[tid.0];
        slot.status = Status::Dead;
        s.live -= 1;
        s.finished.push(tid);
        if let Some(p) = payload {
            if p.downcast_ref::<ShutdownSignal>().is_none() && s.panic_payload.is_none() {
                s.panic_payload = Some(p);
            }
        }
        drop(s);
        self.engine_gate.open();
    }

    /// Join the OS threads of green threads that have finished, releasing
    /// their stack mappings. Runs on the engine thread with the state lock
    /// released (the joined thread is past `thread_finished` and exits as
    /// soon as its epilogue runs, so each join is near-instant).
    fn reap_finished(&self) {
        let handles: Vec<std::thread::JoinHandle<()>> = {
            let mut s = self.state.lock();
            if s.finished.is_empty() {
                return;
            }
            let tids = std::mem::take(&mut s.finished);
            tids.into_iter().filter_map(|tid| s.threads[tid.0].join.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// A simulation instance. Spawn green threads, then call [`Sim::run`].
pub struct Sim {
    inner: Arc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of running a simulation to quiescence.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Final virtual time in nanoseconds.
    pub now: u64,
    /// Names of non-daemon threads still blocked at quiescence. Usually a bug
    /// in the simulated program (a lost message, a missing reply).
    pub blocked: Vec<String>,
    /// For each blocked non-daemon thread, the resource it was waiting on
    /// when it parked (`None` for a raw `park()` with no instrumented
    /// resource). Same order as `blocked`.
    pub blocked_on: Vec<(String, Option<String>)>,
    /// Deadlock cycles in the wait-for graph. Each cycle lists
    /// `(task, resource the task waits for)` pairs in cycle order; the
    /// resource of entry `i` is held by the task of entry `i + 1` (wrapping).
    /// Cycles start at their smallest task id, so output is deterministic.
    /// Daemon threads participate: a daemon can hold a resource a worker
    /// needs.
    pub deadlocks: Vec<Vec<(String, String)>>,
    /// Resource pairs observed being acquired in both AB and BA order over
    /// the run — the classic deadlock precursor, reported even when this
    /// particular schedule happened not to hang.
    pub lock_inversions: Vec<(String, String)>,
}

impl SimReport {
    /// Assert that no non-daemon thread was left blocked. Panics with the
    /// named wait-for cycles when the simulation deadlocked.
    pub fn assert_clean(&self) {
        if !self.deadlocks.is_empty() {
            panic!("simulation deadlocked: {}", self.format_deadlocks());
        }
        assert!(
            self.blocked.is_empty(),
            "simulation quiesced with blocked non-daemon threads: {:?} (waiting on: {:?})",
            self.blocked,
            self.blocked_on
        );
    }

    /// Human-readable rendering of the deadlock cycles, e.g.
    /// `` `t-ab` waits for `B` held by `t-ba` -> `t-ba` waits for `A` held by `t-ab` ``.
    pub fn format_deadlocks(&self) -> String {
        let cycles: Vec<String> = self
            .deadlocks
            .iter()
            .map(|cyc| {
                let hops: Vec<String> = cyc
                    .iter()
                    .enumerate()
                    .map(|(i, (task, res))| {
                        let holder = &cyc[(i + 1) % cyc.len()].0;
                        format!("`{task}` waits for `{res}` held by `{holder}`")
                    })
                    .collect();
                hops.join(" -> ")
            })
            .collect();
        cycles.join("; ")
    }
}

/// Errors surfaced by [`Sim::run`].
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// Reserved; panics inside green threads are re-raised on the caller.
    Internal(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Internal(m) => write!(f, "simulation error: {m}"),
        }
    }
}
impl std::error::Error for SimError {}

impl Sim {
    /// Create a fresh simulation with the default green-thread stack size
    /// (overridable via the `SIMT_STACK` environment variable, in bytes).
    pub fn new() -> Self {
        let stack_size =
            std::env::var("SIMT_STACK").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_STACK);
        Sim {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    now: 0,
                    next_seq: 0,
                    heap: BinaryHeap::new(),
                    threads: Vec::new(),
                    live: 0,
                    finished: Vec::new(),
                    panic_payload: None,
                    shutting_down: false,
                }),
                engine_gate: Gate::new(),
                stack_size,
                diag: Mutex::new(crate::diag::DiagState::default()),
                observer: Mutex::new(None),
            }),
        }
    }

    /// Install a [`TaskObserver`] notified as green threads start and finish.
    /// Threads already running are not retroactively reported; install the
    /// observer before spawning the workload.
    pub fn set_observer(&self, observer: Arc<dyn TaskObserver>) {
        *self.inner.observer.lock() = Some(observer);
    }

    /// Spawn a green thread runnable at the current virtual time.
    pub fn spawn(&self, name: impl Into<String>, f: impl FnOnce() + Send + 'static) -> TaskId {
        self.inner.spawn_thread(name.into(), false, Box::new(f))
    }

    /// Spawn a daemon green thread (not reported as stuck at quiescence).
    pub fn spawn_daemon(
        &self,
        name: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        self.inner.spawn_thread(name.into(), true, Box::new(f))
    }

    /// Current virtual time (usable from outside the simulation).
    pub fn now(&self) -> u64 {
        self.inner.now()
    }

    /// Snapshot of the lock-order inversion log so far: canonical
    /// `(min-label, max-label)` resource pairs observed acquired in both
    /// orders. The same data lands in [`SimReport::lock_inversions`] at the
    /// end of a run; this accessor lets tooling (detlint's static/dynamic
    /// parity tests) read it between [`Sim::run`] calls or mid-scenario.
    pub fn lock_inversions(&self) -> Vec<(String, String)> {
        self.inner.diag.lock().inversion_log()
    }

    /// Run until the event heap drains. Green-thread panics are re-raised
    /// here. May be called repeatedly (spawn more threads in between).
    pub fn run(&self) -> Result<SimReport, SimError> {
        loop {
            self.inner.reap_finished();
            let event = {
                let mut s = self.inner.state.lock();
                if s.panic_payload.is_some() {
                    let p = s.panic_payload.take().unwrap();
                    drop(s);
                    self.shutdown();
                    panic::resume_unwind(p);
                }
                match s.heap.pop() {
                    Some(Reverse(e)) => {
                        s.now = e.time;
                        Some(e)
                    }
                    None => None,
                }
            };
            let Some(event) = event else { break };
            match event.kind {
                EventKind::Wake { tid, epoch } => {
                    let gate = {
                        let mut s = self.inner.state.lock();
                        let slot = &mut s.threads[tid.0];
                        if slot.status != Status::Blocked || slot.epoch != epoch {
                            continue; // stale wake
                        }
                        slot.status = Status::Running;
                        slot.epoch += 1;
                        slot.gate.clone()
                    };
                    gate.open();
                    self.inner.engine_gate.wait();
                }
                EventKind::Call(f) => f(),
            }
        }
        let s = self.inner.state.lock();
        if let Some(_p) = &s.panic_payload {
            drop(s);
            let p = self.inner.state.lock().panic_payload.take().unwrap();
            self.shutdown();
            panic::resume_unwind(p);
        }
        let names: Vec<String> = s.threads.iter().map(|t| t.name.clone()).collect();
        let blocked_tids: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Blocked && !t.daemon)
            .map(|(i, _)| i)
            .collect();
        let all_blocked: std::collections::BTreeSet<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Blocked)
            .map(|(i, _)| i)
            .collect();
        let now = s.now;
        drop(s);

        let diag = self.inner.diag.lock();
        let blocked: Vec<String> = blocked_tids.iter().map(|&t| names[t].clone()).collect();
        let blocked_on: Vec<(String, Option<String>)> =
            blocked_tids.iter().map(|&t| (names[t].clone(), diag.waiting_label(t))).collect();
        let deadlocks: Vec<Vec<(String, String)>> = diag
            .find_cycles(&all_blocked)
            .into_iter()
            .map(|cyc| {
                cyc.into_iter().map(|(t, rid)| (names[t].clone(), diag.label_of(rid))).collect()
            })
            .collect();
        let lock_inversions = diag.inversion_log();
        Ok(SimReport { now, blocked, blocked_on, deadlocks, lock_inversions })
    }

    /// Unwind and join every remaining green thread. Called automatically on
    /// drop; idempotent.
    pub fn shutdown(&self) {
        {
            let mut s = self.inner.state.lock();
            if s.shutting_down {
                return;
            }
            s.shutting_down = true;
        }
        loop {
            let next = {
                let mut s = self.inner.state.lock();
                let mut found = None;
                for (i, slot) in s.threads.iter_mut().enumerate() {
                    if slot.status == Status::Blocked {
                        slot.status = Status::Running;
                        slot.epoch += 1;
                        found = Some((TaskId(i), slot.gate.clone()));
                        break;
                    }
                }
                found
            };
            match next {
                Some((_tid, gate)) => {
                    gate.open();
                    self.inner.engine_gate.wait();
                }
                None => break,
            }
        }
        // Join all finished OS threads.
        let handles: Vec<_> = {
            let mut s = self.inner.state.lock();
            s.threads.iter_mut().filter_map(|t| t.join.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Low-level wait/notify surface used by sibling modules and dependent crates.
// ---------------------------------------------------------------------------

/// A one-cycle wake target: the calling green thread at its current epoch.
///
/// Capture a token *before* publishing the fact that you are about to block
/// (e.g. before releasing the lock on a queue's waiter list), then call
/// [`park`]. Any holder of the token can [`WaitToken::wake`] you exactly once;
/// stale tokens are ignored.
#[derive(Clone)]
pub struct WaitToken {
    inner: Arc<Inner>,
    tid: TaskId,
    epoch: u64,
}

impl WaitToken {
    /// Wake the target at the current virtual time.
    pub fn wake(&self) {
        let now = self.inner.now();
        self.inner.schedule_wake(self.tid, self.epoch, now);
    }

    /// Wake the target at absolute virtual time `at`.
    pub fn wake_at(&self, at: u64) {
        self.inner.schedule_wake(self.tid, self.epoch, at);
    }

    /// Task this token targets.
    pub fn task(&self) -> TaskId {
        self.tid
    }
}

impl std::fmt::Debug for WaitToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitToken").field("tid", &self.tid).field("epoch", &self.epoch).finish()
    }
}

/// A cloneable handle to the engine usable from engine-thread closures
/// (where no green-thread context exists), e.g. CPU-model ticks and link
/// releases that must reschedule themselves.
#[derive(Clone)]
pub struct EngineHandle {
    inner: Arc<Inner>,
}

impl EngineHandle {
    /// Handle for the simulation the calling green thread belongs to.
    pub fn current() -> EngineHandle {
        with_current(|inner, _| EngineHandle { inner: inner.clone() })
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.inner.now()
    }

    /// Schedule `f` on the engine thread at absolute time `at`.
    pub fn call_at(&self, at: u64, f: impl FnOnce() + Send + 'static) {
        self.inner.schedule_call(at, Box::new(f));
    }
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EngineHandle")
    }
}

/// Capture a wake token for the calling green thread's current block cycle.
pub fn wait_token() -> WaitToken {
    with_current(|inner, tid| WaitToken {
        inner: inner.clone(),
        tid,
        epoch: inner.current_epoch(tid),
    })
}

/// Block the calling green thread until a wake targeting its current epoch
/// fires. Always re-check your condition in a loop: wakes can be spurious
/// when multiple notifiers race.
pub fn park() {
    with_current(|inner, tid| inner.block_current(tid));
}

/// Run `f` on the engine thread at absolute virtual time `at`. The closure
/// must not block; it may schedule wakes and further calls.
pub fn call_at(at: u64, f: impl FnOnce() + Send + 'static) {
    with_current(|inner, _| inner.schedule_call(at, Box::new(f)));
}

/// Run `f` on the engine thread at the current virtual time (after the
/// current thread next yields).
pub fn call_soon(f: impl FnOnce() + Send + 'static) {
    with_current(|inner, _| {
        let now = inner.now();
        inner.schedule_call(now, Box::new(f))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (name, delay) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let log = log.clone();
            sim.spawn(name, move || {
                crate::sleep(delay);
                log.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_fire_in_spawn_order() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for name in ["x", "y", "z"] {
            let log = log.clone();
            sim.spawn(name, move || log.lock().push(name));
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["x", "y", "z"]);
    }

    #[test]
    fn call_at_runs_on_engine() {
        let sim = Sim::new();
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        sim.spawn("a", move || {
            let hits3 = hits2.clone();
            call_at(100, move || {
                hits3.fetch_add(1, Ordering::SeqCst);
            });
            crate::sleep(200);
            assert_eq!(hits2.load(Ordering::SeqCst), 1);
        });
        let r = sim.run().unwrap();
        assert_eq!(r.now, 200);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_token_wakes_parked_thread() {
        let sim = Sim::new();
        let slot: Arc<Mutex<Option<WaitToken>>> = Arc::new(Mutex::new(None));
        let slot2 = slot.clone();
        sim.spawn("sleeper", move || {
            let tok = wait_token();
            *slot2.lock() = Some(tok);
            park();
            assert_eq!(crate::now(), 500);
        });
        let slot3 = slot.clone();
        sim.spawn("waker", move || {
            crate::sleep(1); // let sleeper park first
            let tok = slot3.lock().take().unwrap();
            tok.wake_at(500);
        });
        let r = sim.run().unwrap();
        r.assert_clean();
        assert_eq!(r.now, 500);
    }

    #[test]
    fn stale_wake_is_ignored() {
        let sim = Sim::new();
        sim.spawn("a", || {
            let tok = wait_token();
            // Wake the current cycle twice; second is stale after resume.
            tok.wake_at(10);
            tok.wake_at(20);
            park();
            assert_eq!(crate::now(), 10);
            // Sleep past the stale wake; it must not cut the sleep short.
            crate::sleep(100);
            assert_eq!(crate::now(), 110);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn daemon_threads_do_not_count_as_stuck() {
        let sim = Sim::new();
        sim.spawn_daemon("server", || {
            park(); // blocks forever
        });
        sim.spawn("client", || crate::sleep(5));
        let r = sim.run().unwrap();
        assert!(r.blocked.is_empty());
        assert_eq!(r.now, 5);
    }

    #[test]
    fn non_daemon_blocked_is_reported() {
        let sim = Sim::new();
        sim.spawn("stuck-guy", park);
        let q = crate::queue::Queue::<u32>::named("inbox");
        sim.spawn("mail-guy", move || {
            let _ = q.recv();
        });
        let r = sim.run().unwrap();
        assert_eq!(r.blocked, vec!["stuck-guy".to_string(), "mail-guy".to_string()]);
        // The richer report names the resource each task was waiting on: a
        // raw park() has none, an instrumented queue recv names the queue.
        assert_eq!(
            r.blocked_on,
            vec![
                ("stuck-guy".to_string(), None),
                ("mail-guy".to_string(), Some("inbox".to_string())),
            ]
        );
        assert!(r.deadlocks.is_empty());
        assert!(r.lock_inversions.is_empty());
    }

    #[test]
    fn two_task_abba_deadlock_reported_as_named_cycle() {
        let sim = Sim::new();
        let a = crate::sync::Semaphore::named("A", 1);
        let b = crate::sync::Semaphore::named("B", 1);
        let (a2, b2) = (a.clone(), b.clone());
        sim.spawn("t-ab", move || {
            a.acquire(1);
            crate::sleep(10);
            b.acquire(1);
            b.release(1);
            a.release(1);
        });
        sim.spawn("t-ba", move || {
            b2.acquire(1);
            crate::sleep(10);
            a2.acquire(1);
            a2.release(1);
            b2.release(1);
        });
        let r = sim.run().unwrap();
        assert_eq!(r.blocked, vec!["t-ab".to_string(), "t-ba".to_string()]);
        assert_eq!(
            r.deadlocks,
            vec![vec![
                ("t-ab".to_string(), "B".to_string()),
                ("t-ba".to_string(), "A".to_string()),
            ]]
        );
        assert_eq!(
            r.format_deadlocks(),
            "`t-ab` waits for `B` held by `t-ba` -> `t-ba` waits for `A` held by `t-ab`"
        );
        let msg = std::panic::catch_unwind(|| r.assert_clean())
            .expect_err("deadlocked report must not be clean");
        let msg = msg.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("`t-ab` waits for `B` held by `t-ba`"), "panic message: {msg}");
    }

    #[test]
    fn three_task_cycle_reported_in_deterministic_order() {
        let sim = Sim::new();
        let a = crate::sync::Semaphore::named("A", 1);
        let b = crate::sync::Semaphore::named("B", 1);
        let c = crate::sync::Semaphore::named("C", 1);
        for (name, own, next) in
            [("t0", a.clone(), b.clone()), ("t1", b.clone(), c.clone()), ("t2", c, a)]
        {
            sim.spawn(name, move || {
                own.acquire(1);
                crate::sleep(10);
                next.acquire(1);
                next.release(1);
                own.release(1);
            });
        }
        let r = sim.run().unwrap();
        assert_eq!(
            r.deadlocks,
            vec![vec![
                ("t0".to_string(), "B".to_string()),
                ("t1".to_string(), "C".to_string()),
                ("t2".to_string(), "A".to_string()),
            ]]
        );
    }

    #[test]
    fn abba_order_without_overlap_logs_inversion_not_deadlock() {
        let sim = Sim::new();
        let a = crate::sync::Semaphore::named("A", 1);
        let b = crate::sync::Semaphore::named("B", 1);
        let (a2, b2) = (a.clone(), b.clone());
        sim.spawn("first", move || {
            a.acquire(1);
            b.acquire(1);
            b.release(1);
            a.release(1);
        });
        sim.spawn("second", move || {
            crate::sleep(100); // strictly after `first` finished: no hang
            b2.acquire(1);
            a2.acquire(1);
            a2.release(1);
            b2.release(1);
        });
        let r = sim.run().unwrap();
        r.assert_clean();
        assert!(r.deadlocks.is_empty());
        assert_eq!(r.lock_inversions, vec![("A".to_string(), "B".to_string())]);
    }

    #[test]
    fn deadlock_cycle_may_pass_through_daemons() {
        let sim = Sim::new();
        let a = crate::sync::Semaphore::named("A", 1);
        let b = crate::sync::Semaphore::named("B", 1);
        let (a2, b2) = (a.clone(), b.clone());
        sim.spawn("worker", move || {
            a.acquire(1);
            crate::sleep(10);
            b.acquire(1);
        });
        sim.spawn_daemon("helper", move || {
            b2.acquire(1);
            crate::sleep(10);
            a2.acquire(1);
        });
        let r = sim.run().unwrap();
        assert_eq!(r.blocked, vec!["worker".to_string()]);
        assert_eq!(
            r.deadlocks,
            vec![vec![
                ("worker".to_string(), "B".to_string()),
                ("helper".to_string(), "A".to_string()),
            ]]
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn green_thread_panic_propagates() {
        let sim = Sim::new();
        sim.spawn("bad", || panic!("boom"));
        let _ = sim.run();
    }

    #[test]
    fn run_can_be_called_repeatedly() {
        let sim = Sim::new();
        sim.spawn("a", || crate::sleep(10));
        assert_eq!(sim.run().unwrap().now, 10);
        sim.spawn("b", || crate::sleep(5));
        assert_eq!(sim.run().unwrap().now, 15);
    }

    #[test]
    fn shutdown_unwinds_blocked_threads() {
        let sim = Sim::new();
        sim.spawn_daemon("forever", || loop {
            park();
        });
        sim.run().unwrap();
        sim.shutdown();
        // Dropping sim afterwards must not hang.
    }

    #[test]
    fn finished_threads_are_reaped_during_run() {
        // Every finished green thread's OS thread must be joined by the time
        // `run()` returns — leaving joins to `shutdown()` retains one stack
        // mapping per task ever spawned, which exhausts `vm.max_map_count`
        // on big cells long before memory runs out.
        let sim = Sim::new();
        for i in 0..64 {
            sim.spawn(format!("t{i}"), || crate::sleep(1_000));
        }
        sim.run().unwrap();
        let s = sim.inner.state.lock();
        assert!(
            s.threads.iter().all(|t| t.join.is_none()),
            "unreaped OS threads after run(): {}",
            s.threads.iter().filter(|t| t.join.is_some()).count()
        );
        drop(s);
        sim.shutdown();
    }

    #[test]
    fn determinism_same_program_same_timings() {
        fn once() -> u64 {
            let sim = Sim::new();
            let total = Arc::new(AtomicU64::new(0));
            for i in 0..10u64 {
                let total = total.clone();
                sim.spawn(format!("t{i}"), move || {
                    crate::sleep(i * 7 % 13);
                    total.fetch_add(crate::now() * (i + 1), Ordering::SeqCst);
                });
            }
            sim.run().unwrap();
            total.load(Ordering::SeqCst)
        }
        assert_eq!(once(), once());
    }
}
