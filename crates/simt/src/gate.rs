//! One-shot re-armable handoff gate between the engine and a green thread.

use parking_lot::{Condvar, Mutex};

/// A binary semaphore used to pass the single "run token" back and forth
/// between the engine thread and a green thread. `open` may happen before
/// `wait`; the token is consumed by `wait`.
pub(crate) struct Gate {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    pub(crate) fn new() -> Self {
        Gate { flag: Mutex::new(false), cv: Condvar::new() }
    }

    /// Hand the token to the waiter (or leave it for a future waiter).
    pub(crate) fn open(&self) {
        let mut g = self.flag.lock();
        *g = true;
        self.cv.notify_one();
    }

    /// Block the OS thread until the token arrives, then consume it.
    pub(crate) fn wait(&self) {
        let mut g = self.flag.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
        *g = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn open_before_wait_does_not_block() {
        let g = Gate::new();
        g.open();
        g.wait(); // returns immediately
    }

    #[test]
    fn token_is_consumed() {
        let g = Arc::new(Gate::new());
        g.open();
        g.wait();
        // Second wait must block until a new open arrives from another thread.
        let g2 = g.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            g2.open();
        });
        g.wait();
        h.join().unwrap();
    }

    #[test]
    fn ping_pong_across_threads() {
        let a = Arc::new(Gate::new());
        let b = Arc::new(Gate::new());
        let (a2, b2) = (a.clone(), b.clone());
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                a2.wait();
                b2.open();
            }
        });
        for _ in 0..100 {
            a.open();
            b.wait();
        }
        h.join().unwrap();
    }
}
