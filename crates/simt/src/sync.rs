//! Green-thread synchronization primitives built on the wait/notify core.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::diag::{self, DiagRes};
use crate::engine::{park, wait_token, WaitToken};

/// A counting semaphore. Used e.g. to bound in-flight shuffle fetches.
pub struct Semaphore {
    state: Arc<Mutex<SemState>>,
    res: Arc<DiagRes>,
}

struct SemState {
    permits: u64,
    waiters: Vec<WaitToken>,
}

impl Clone for Semaphore {
    fn clone(&self) -> Self {
        Semaphore { state: self.state.clone(), res: self.res.clone() }
    }
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            state: Arc::new(Mutex::new(SemState { permits, waiters: Vec::new() })),
            res: Arc::new(DiagRes::new("sem", None)),
        }
    }

    /// Like [`new`](Semaphore::new), with a display name used by the
    /// deadlock diagnoser's wait-for graph.
    pub fn named(name: impl Into<String>, permits: u64) -> Self {
        Semaphore {
            state: Arc::new(Mutex::new(SemState { permits, waiters: Vec::new() })),
            res: Arc::new(DiagRes::new("sem", Some(name.into()))),
        }
    }

    /// Acquire `n` permits, blocking until available.
    pub fn acquire(&self, n: u64) {
        let mut waited = false;
        loop {
            {
                let mut s = self.state.lock();
                if s.permits >= n {
                    s.permits -= n;
                    drop(s);
                    if waited {
                        diag::on_wait_end();
                    }
                    diag::on_acquire(&self.res);
                    return;
                }
                s.waiters.push(wait_token());
            }
            if !waited {
                diag::on_wait(&self.res);
                waited = true;
            }
            park();
        }
    }

    /// Release `n` permits and wake waiters.
    pub fn release(&self, n: u64) {
        diag::on_release(&self.res);
        let waiters = {
            let mut s = self.state.lock();
            s.permits += n;
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.state.lock().permits
    }
}

/// A level-triggered notification flag (cf. `tokio::sync::Notify`, but with a
/// sticky "set" state consumed by waiters).
pub struct Notify {
    state: Arc<Mutex<NotifyState>>,
    res: Arc<DiagRes>,
}

struct NotifyState {
    set: bool,
    waiters: Vec<WaitToken>,
}

impl Clone for Notify {
    fn clone(&self) -> Self {
        Notify { state: self.state.clone(), res: self.res.clone() }
    }
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// New, unset.
    pub fn new() -> Self {
        Notify {
            state: Arc::new(Mutex::new(NotifyState { set: false, waiters: Vec::new() })),
            res: Arc::new(DiagRes::new("notify", None)),
        }
    }

    /// Like [`new`](Notify::new), with a display name for diagnostics.
    pub fn named(name: impl Into<String>) -> Self {
        Notify {
            state: Arc::new(Mutex::new(NotifyState { set: false, waiters: Vec::new() })),
            res: Arc::new(DiagRes::new("notify", Some(name.into()))),
        }
    }

    /// Set the flag and wake all waiters.
    pub fn notify(&self) {
        let waiters = {
            let mut s = self.state.lock();
            s.set = true;
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Block until the flag is set, then consume it.
    pub fn wait(&self) {
        let mut waited = false;
        loop {
            {
                let mut s = self.state.lock();
                if s.set {
                    s.set = false;
                    drop(s);
                    if waited {
                        diag::on_wait_end();
                    }
                    return;
                }
                s.waiters.push(wait_token());
            }
            if !waited {
                diag::on_wait(&self.res);
                waited = true;
            }
            park();
        }
    }
}

/// A single-use result slot: one side puts a value, the other blocks for it.
/// This is the simulation's `oneshot` channel, used for RPC reply futures.
pub struct OnceCell<T> {
    state: Arc<Mutex<OnceState<T>>>,
    res: Arc<DiagRes>,
}

struct OnceState<T> {
    value: Option<T>,
    waiters: Vec<WaitToken>,
}

impl<T> Clone for OnceCell<T> {
    fn clone(&self) -> Self {
        OnceCell { state: self.state.clone(), res: self.res.clone() }
    }
}

impl<T> Default for OnceCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OnceCell<T> {
    /// New, empty.
    pub fn new() -> Self {
        OnceCell {
            state: Arc::new(Mutex::new(OnceState { value: None, waiters: Vec::new() })),
            res: Arc::new(DiagRes::new("once", None)),
        }
    }

    /// Like [`new`](OnceCell::new), with a display name for diagnostics.
    pub fn named(name: impl Into<String>) -> Self {
        OnceCell {
            state: Arc::new(Mutex::new(OnceState { value: None, waiters: Vec::new() })),
            res: Arc::new(DiagRes::new("once", Some(name.into()))),
        }
    }

    /// Store the value (first write wins) and wake waiters.
    pub fn put(&self, value: T) {
        let waiters = {
            let mut s = self.state.lock();
            if s.value.is_none() {
                s.value = Some(value);
            }
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Block until a value is stored, then take it. Only one caller obtains
    /// the value.
    pub fn take(&self) -> T {
        let mut waited = false;
        loop {
            {
                let mut s = self.state.lock();
                if let Some(v) = s.value.take() {
                    drop(s);
                    if waited {
                        diag::on_wait_end();
                    }
                    return v;
                }
                s.waiters.push(wait_token());
            }
            if !waited {
                diag::on_wait(&self.res);
                waited = true;
            }
            park();
        }
    }

    /// Block until a value is stored or the relative timeout (ns) passes.
    pub fn take_timeout(&self, timeout: u64) -> Option<T> {
        let deadline = crate::now().saturating_add(timeout);
        let mut waited = false;
        let finish = |waited: bool, v: Option<T>| {
            if waited {
                diag::on_wait_end();
            }
            v
        };
        loop {
            let tok = {
                let mut s = self.state.lock();
                if let Some(v) = s.value.take() {
                    drop(s);
                    return finish(waited, Some(v));
                }
                if crate::now() >= deadline {
                    drop(s);
                    return finish(waited, None);
                }
                let tok = wait_token();
                s.waiters.push(tok.clone());
                tok
            };
            tok.wake_at(deadline);
            if !waited {
                diag::on_wait(&self.res);
                waited = true;
            }
            park();
        }
    }

    /// Non-blocking probe.
    pub fn try_take(&self) -> Option<T> {
        self.state.lock().value.take()
    }

    /// True if a value is waiting.
    pub fn is_ready(&self) -> bool {
        self.state.lock().value.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn semaphore_bounds_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let peak = Arc::new(Mutex::new((0u32, 0u32))); // (current, max)
        for i in 0..6 {
            let sem = sem.clone();
            let peak = peak.clone();
            sim.spawn(format!("w{i}"), move || {
                sem.acquire(1);
                {
                    let mut p = peak.lock();
                    p.0 += 1;
                    p.1 = p.1.max(p.0);
                }
                crate::sleep(10);
                peak.lock().0 -= 1;
                sem.release(1);
            });
        }
        sim.run().unwrap().assert_clean();
        assert_eq!(peak.lock().1, 2);
    }

    #[test]
    fn semaphore_bulk_acquire() {
        let sim = Sim::new();
        let sem = Semaphore::new(3);
        let sem2 = sem.clone();
        sim.spawn("big", move || {
            sem2.acquire(3);
            assert_eq!(sem2.available(), 0);
            sem2.release(3);
        });
        sim.run().unwrap().assert_clean();
        assert_eq!(sem.available(), 3);
    }

    #[test]
    fn notify_wakes_waiter() {
        let sim = Sim::new();
        let n = Notify::new();
        let n2 = n.clone();
        sim.spawn("waiter", move || {
            n2.wait();
            assert_eq!(crate::now(), 42);
        });
        sim.spawn("notifier", move || {
            crate::sleep(42);
            n.notify();
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn notify_before_wait_is_sticky() {
        let sim = Sim::new();
        sim.spawn("a", || {
            let n = Notify::new();
            n.notify();
            n.wait(); // consumes immediately, no block
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn oncecell_roundtrip() {
        let sim = Sim::new();
        let c = OnceCell::<String>::new();
        let c2 = c.clone();
        sim.spawn("getter", move || {
            assert_eq!(c2.take(), "hello");
        });
        sim.spawn("putter", move || {
            crate::sleep(3);
            c.put("hello".to_string());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn oncecell_first_write_wins() {
        let sim = Sim::new();
        sim.spawn("a", || {
            let c = OnceCell::new();
            c.put(1u32);
            c.put(2);
            assert_eq!(c.take(), 1);
            assert!(!c.is_ready());
        });
        sim.run().unwrap().assert_clean();
    }
}
