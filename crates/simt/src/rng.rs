//! Seeded deterministic pseudo-randomness for simulations.
//!
//! The whole stack runs under a determinism rule: nothing inside a
//! simulation may consult wall-clock time or ambient OS randomness, because
//! identical seeds must produce identical schedules (asserted by the
//! `whole_stack_is_deterministic` test). Components that need jitter —
//! fault-injection schedules, retry backoff — therefore draw from this
//! explicit-state generator, seeded from a `u64` the harness controls.
//!
//! The core is splitmix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"): tiny state, full 64-bit period over the counter,
//! and cheap `fork`ing for independent substreams.

/// A splittable, seedable PRNG. Not cryptographic; statistical quality is
/// ample for schedule jitter.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

/// splitmix64 finalizer: bijective 64-bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Generator seeded from `seed`. Equal seeds yield equal streams.
    pub fn from_seed(seed: u64) -> Self {
        SeededRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform value in `[lo, hi)`. Panics when the range is empty.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift range reduction; the modest bias (< 2^-32 for the
        // spans used here) is irrelevant for schedule jitter.
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Split off an independent substream labelled `label`. Forks with equal
    /// `(state, label)` are equal; distinct labels decorrelate the streams.
    pub fn fork(&mut self, label: u64) -> SeededRng {
        SeededRng { state: mix(self.next_u64() ^ mix(label)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SeededRng::from_seed(42);
        let mut b = SeededRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::from_seed(1);
        let mut b = SeededRng::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SeededRng::from_seed(7);
        for _ in 0..1000 {
            let v = r.next_range(10, 20);
            assert!((10..20).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut a = SeededRng::from_seed(9);
        let mut b = SeededRng::from_seed(9);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
        let mut fa2 = a.fork(2);
        assert_ne!(fa.next_u64(), fa2.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SeededRng::from_seed(0).next_range(5, 5);
    }
}
