//! Blocking FIFO queues between green threads (the simulation's mailboxes).
//!
//! A [`Queue`] is multi-producer / multi-consumer; sends never block. These
//! queues model *process-local* mailboxes — network latency and bandwidth are
//! charged by the `fabric` crate before an item is enqueued.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::diag::{self, DiagRes};
use crate::engine::{park, wait_token, WaitToken};

/// Error returned by receive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The queue was closed and drained.
    Closed,
    /// The deadline passed before an item arrived.
    Timeout,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("queue closed"),
            RecvError::Timeout => f.write_str("receive timed out"),
        }
    }
}
impl std::error::Error for RecvError {}

struct QState<T> {
    items: VecDeque<T>,
    waiters: Vec<WaitToken>,
    closed: bool,
}

/// A blocking FIFO queue between green threads.
pub struct Queue<T> {
    state: Arc<Mutex<QState<T>>>,
    res: Arc<DiagRes>,
}

impl<T> Clone for Queue<T> {
    fn clone(&self) -> Self {
        Queue { state: self.state.clone(), res: self.res.clone() }
    }
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Queue<T> {
    /// Create an empty open queue.
    pub fn new() -> Self {
        Queue {
            state: Arc::new(Mutex::new(QState {
                items: VecDeque::new(),
                waiters: Vec::new(),
                closed: false,
            })),
            res: Arc::new(DiagRes::new("queue", None)),
        }
    }

    /// Like [`new`](Queue::new), with a display name used by the deadlock
    /// diagnoser when a receiver is blocked on this queue.
    pub fn named(name: impl Into<String>) -> Self {
        Queue {
            state: Arc::new(Mutex::new(QState {
                items: VecDeque::new(),
                waiters: Vec::new(),
                closed: false,
            })),
            res: Arc::new(DiagRes::new("queue", Some(name.into()))),
        }
    }

    /// Enqueue an item and wake any blocked receivers. Items sent after
    /// [`close`](Queue::close) are silently dropped (mirrors delivering to a
    /// torn-down socket).
    pub fn send(&self, item: T) {
        let waiters = {
            let mut s = self.state.lock();
            if s.closed {
                return;
            }
            s.items.push_back(item);
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.state.lock().items.pop_front()
    }

    /// Blocking receive; returns `Err(Closed)` once the queue is closed and
    /// drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut waited = false;
        let finish = |waited: bool, r: Result<T, RecvError>| {
            if waited {
                diag::on_wait_end();
            }
            r
        };
        loop {
            {
                let mut s = self.state.lock();
                if let Some(item) = s.items.pop_front() {
                    drop(s);
                    return finish(waited, Ok(item));
                }
                if s.closed {
                    drop(s);
                    return finish(waited, Err(RecvError::Closed));
                }
                s.waiters.push(wait_token());
            }
            if !waited {
                diag::on_wait(&self.res);
                waited = true;
            }
            park();
        }
    }

    /// Blocking receive with an absolute virtual-time deadline.
    pub fn recv_deadline(&self, deadline: u64) -> Result<T, RecvError> {
        let mut waited = false;
        let finish = |waited: bool, r: Result<T, RecvError>| {
            if waited {
                diag::on_wait_end();
            }
            r
        };
        loop {
            let tok = {
                let mut s = self.state.lock();
                if let Some(item) = s.items.pop_front() {
                    drop(s);
                    return finish(waited, Ok(item));
                }
                if s.closed {
                    drop(s);
                    return finish(waited, Err(RecvError::Closed));
                }
                if crate::now() >= deadline {
                    drop(s);
                    return finish(waited, Err(RecvError::Timeout));
                }
                let tok = wait_token();
                s.waiters.push(tok.clone());
                tok
            };
            tok.wake_at(deadline);
            if !waited {
                diag::on_wait(&self.res);
                waited = true;
            }
            park();
        }
    }

    /// Blocking receive with a relative timeout in nanoseconds.
    pub fn recv_timeout(&self, timeout: u64) -> Result<T, RecvError> {
        self.recv_deadline(crate::now().saturating_add(timeout))
    }

    /// Close the queue: pending items stay receivable, future sends drop, and
    /// blocked receivers observe `Closed` once drained.
    pub fn close(&self) {
        let waiters = {
            let mut s = self.state.lock();
            s.closed = true;
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }

    /// True if closed (items may still be pending).
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Create a connected pair of handles to one queue; a directional convenience
/// mirroring `std::sync::mpsc::channel`.
pub fn channel<T>() -> (Queue<T>, Queue<T>) {
    let q = Queue::new();
    (q.clone(), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn send_then_recv_same_thread() {
        let sim = Sim::new();
        sim.spawn("a", || {
            let q = Queue::new();
            q.send(7u32);
            assert_eq!(q.recv().unwrap(), 7);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn recv_blocks_until_send() {
        let sim = Sim::new();
        let q = Queue::<u32>::new();
        let q2 = q.clone();
        sim.spawn("rx", move || {
            assert_eq!(q2.recv().unwrap(), 9);
            assert_eq!(crate::now(), 50);
        });
        sim.spawn("tx", move || {
            crate::sleep(50);
            q.send(9);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn fifo_order_preserved() {
        let sim = Sim::new();
        let q = Queue::new();
        let q2 = q.clone();
        sim.spawn("tx", move || {
            for i in 0..100u32 {
                q.send(i);
            }
        });
        sim.spawn("rx", move || {
            crate::sleep(1);
            for i in 0..100u32 {
                assert_eq!(q2.recv().unwrap(), i);
            }
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn timeout_fires_without_sender() {
        let sim = Sim::new();
        sim.spawn("rx", || {
            let q = Queue::<u32>::new();
            let r = q.recv_timeout(1_000);
            assert_eq!(r, Err(RecvError::Timeout));
            assert_eq!(crate::now(), 1_000);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn timeout_beaten_by_send() {
        let sim = Sim::new();
        let q = Queue::<u32>::new();
        let q2 = q.clone();
        sim.spawn("rx", move || {
            let r = q2.recv_timeout(1_000);
            assert_eq!(r, Ok(4));
            assert_eq!(crate::now(), 100);
        });
        sim.spawn("tx", move || {
            crate::sleep(100);
            q.send(4);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn recv_after_timeout_still_works() {
        // Regression guard for the stale-waiter hazard: a timed-out waiter
        // leaves a stale registration; all waiters are woken on send so a
        // fresh registration cannot be starved.
        let sim = Sim::new();
        let q = Queue::<u32>::new();
        let q2 = q.clone();
        sim.spawn("rx", move || {
            assert_eq!(q2.recv_timeout(10), Err(RecvError::Timeout));
            assert_eq!(q2.recv().unwrap(), 5);
        });
        sim.spawn("tx", move || {
            crate::sleep(500);
            q.send(5);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn close_unblocks_receivers() {
        let sim = Sim::new();
        let q = Queue::<u32>::new();
        let q2 = q.clone();
        sim.spawn("rx", move || {
            assert_eq!(q2.recv(), Err(RecvError::Closed));
        });
        sim.spawn("closer", move || {
            crate::sleep(10);
            q.close();
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn close_drains_pending_items_first() {
        let sim = Sim::new();
        sim.spawn("a", || {
            let q = Queue::new();
            q.send(1u32);
            q.send(2);
            q.close();
            assert_eq!(q.recv().unwrap(), 1);
            assert_eq!(q.recv().unwrap(), 2);
            assert_eq!(q.recv(), Err(RecvError::Closed));
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn send_after_close_is_dropped() {
        let sim = Sim::new();
        sim.spawn("a", || {
            let q = Queue::new();
            q.close();
            q.send(1u32);
            assert_eq!(q.recv(), Err(RecvError::Closed));
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn multiple_receivers_each_get_one() {
        let sim = Sim::new();
        let q = Queue::<u32>::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let q = q.clone();
            let got = got.clone();
            sim.spawn(format!("rx{i}"), move || {
                let v = q.recv().unwrap();
                got.lock().push(v);
            });
        }
        sim.spawn("tx", move || {
            crate::sleep(5);
            for v in [10, 20, 30] {
                q.send(v);
            }
        });
        sim.run().unwrap().assert_clean();
        let mut g = got.lock().clone();
        g.sort_unstable();
        assert_eq!(g, vec![10, 20, 30]);
    }
}
