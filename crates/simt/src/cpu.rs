//! Processor-sharing CPU model for simulated nodes.
//!
//! Each node owns a [`Cpu`] with `cores` hardware threads. Green threads
//! charge compute work via [`Cpu::execute`]; when more jobs are active than
//! cores, every job's service rate degrades proportionally (egalitarian
//! processor sharing — a good first-order model of a loaded Spark worker).
//!
//! A *background load* models spinning threads that consume core time without
//! ever finishing — exactly what MPI4Spark-Basic's non-blocking
//! `select()`+`MPI_Iprobe` selector loop does (paper §VI-D/§VII-B). Raising
//! the background load slows co-located tasks, which is the effect Fig. 9
//! measures.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{wait_token, EngineHandle, WaitToken};

/// Completion threshold for floating-point work accounting (nanoseconds).
const EPS: f64 = 1e-3;

struct Job {
    remaining: f64,
    token: WaitToken,
    done: Arc<Mutex<bool>>,
}

struct CpuState {
    cores: f64,
    hyper_threads: f64,
    /// Equivalent number of always-runnable phantom jobs (spinners).
    background_load: f64,
    jobs: Vec<Option<Job>>,
    active: usize,
    last_update: u64,
    gen: u64,
    handle: Option<EngineHandle>,
    total_work_done: f64,
}

/// A shared, contention-aware compute resource for one simulated node.
pub struct Cpu {
    state: Arc<Mutex<CpuState>>,
}

impl Clone for Cpu {
    fn clone(&self) -> Self {
        Cpu { state: self.state.clone() }
    }
}

impl Cpu {
    /// A CPU with `cores` physical hardware threads and no hyper-threading.
    pub fn new(cores: u32) -> Self {
        Self::with_hyperthreading(cores, 1)
    }

    /// A CPU with `cores` physical cores, each exposing `threads_per_core`
    /// hardware threads. Hyper-threads add scheduling slots but only ~30%
    /// extra throughput per core (a common empirical figure; Stampede2 runs 2
    /// threads/core).
    pub fn with_hyperthreading(cores: u32, threads_per_core: u32) -> Self {
        let ht_factor = if threads_per_core >= 2 { 1.3 } else { 1.0 };
        Cpu {
            state: Arc::new(Mutex::new(CpuState {
                cores: f64::from(cores) * ht_factor,
                hyper_threads: f64::from(cores) * f64::from(threads_per_core),
                background_load: 0.0,
                jobs: Vec::new(),
                active: 0,
                last_update: 0,
                gen: 0,
                handle: None,
                total_work_done: 0.0,
            })),
        }
    }

    /// Number of schedulable hardware threads (cores × threads/core).
    pub fn slots(&self) -> u32 {
        self.state.lock().hyper_threads as u32
    }

    /// Charge `work_ns` of single-threaded compute against this CPU,
    /// blocking the calling green thread for the (contention-scaled)
    /// virtual duration.
    pub fn execute(&self, work_ns: u64) {
        if work_ns == 0 {
            return;
        }
        let done = Arc::new(Mutex::new(false));
        let slot = {
            let mut s = self.state.lock();
            if s.handle.is_none() {
                s.handle = Some(EngineHandle::current());
            }
            let now = crate::now();
            Self::advance(&mut s, now);
            let job = Job { remaining: work_ns as f64, token: wait_token(), done: done.clone() };
            let idx = s.jobs.iter().position(Option::is_none);
            let slot = match idx {
                Some(i) => {
                    s.jobs[i] = Some(job);
                    i
                }
                None => {
                    s.jobs.push(Some(job));
                    s.jobs.len() - 1
                }
            };
            s.active += 1;
            self.reschedule(&mut s, now);
            slot
        };
        loop {
            crate::engine::park();
            let mut s = self.state.lock();
            if *done.lock() {
                return;
            }
            // Spurious wake: refresh our token so a future tick can reach us.
            if let Some(job) = s.jobs[slot].as_mut() {
                job.token = wait_token();
            }
        }
    }

    /// Add (or remove, with a negative delta) always-on background load,
    /// measured in phantom runnable threads. Used by the Basic design's
    /// polling selector.
    pub fn add_background_load(&self, delta: f64) {
        let mut s = self.state.lock();
        if s.handle.is_none() && crate::in_sim() {
            s.handle = Some(EngineHandle::current());
        }
        let now = if crate::in_sim() { crate::now() } else { s.last_update };
        Self::advance(&mut s, now);
        s.background_load = (s.background_load + delta).max(0.0);
        self.reschedule(&mut s, now);
    }

    /// Current background load in phantom threads.
    pub fn background_load(&self) -> f64 {
        self.state.lock().background_load
    }

    /// Number of in-flight compute jobs.
    pub fn active_jobs(&self) -> usize {
        self.state.lock().active
    }

    /// Total single-threaded work completed so far (ns of work, not
    /// wall-clock). Useful for utilization accounting in tests.
    pub fn total_work_done(&self) -> f64 {
        self.state.lock().total_work_done
    }

    /// Per-job service rate under the current load.
    fn rate(s: &CpuState) -> f64 {
        let n = s.active as f64 + s.background_load;
        if n <= 0.0 {
            return 1.0;
        }
        (s.cores / n).min(1.0)
    }

    /// Bring all job accounts up to `now`.
    fn advance(s: &mut CpuState, now: u64) {
        if now <= s.last_update {
            s.last_update = s.last_update.max(now);
            return;
        }
        let dt = (now - s.last_update) as f64;
        let rate = Self::rate(s);
        if s.active > 0 && rate > 0.0 {
            for job in s.jobs.iter_mut().flatten() {
                let burn = (rate * dt).min(job.remaining);
                job.remaining -= burn;
                s.total_work_done += burn;
            }
        }
        s.last_update = now;
    }

    /// Complete any finished jobs and schedule the next completion tick.
    fn reschedule(&self, s: &mut CpuState, now: u64) {
        // Complete jobs at or below the threshold.
        for slot in s.jobs.iter_mut() {
            if let Some(job) = slot {
                if job.remaining <= EPS {
                    *job.done.lock() = true;
                    job.token.wake();
                    *slot = None;
                    s.active -= 1;
                }
            }
        }
        s.gen += 1;
        if s.active == 0 {
            return;
        }
        let rate = Self::rate(s);
        let min_rem = s.jobs.iter().flatten().map(|j| j.remaining).fold(f64::INFINITY, f64::min);
        let dt = (min_rem / rate).ceil().max(1.0) as u64;
        let gen = s.gen;
        let at = now + dt;
        let state = self.state.clone();
        let this = Cpu { state: state.clone() };
        let handle = s.handle.clone().expect("cpu used before any green thread touched it");
        handle.call_at(at, move || {
            let mut s = state.lock();
            if s.gen != gen {
                return; // superseded by a later state change
            }
            Cpu::advance(&mut s, at);
            this.reschedule(&mut s, at);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn single_job_runs_at_full_rate() {
        let sim = Sim::new();
        let cpu = Cpu::new(4);
        sim.spawn("a", move || {
            cpu.execute(1_000);
            assert_eq!(crate::now(), 1_000);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn jobs_within_core_count_do_not_contend() {
        let sim = Sim::new();
        let cpu = Cpu::new(4);
        for i in 0..4 {
            let cpu = cpu.clone();
            sim.spawn(format!("t{i}"), move || {
                cpu.execute(1_000);
                assert_eq!(crate::now(), 1_000);
            });
        }
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn oversubscription_slows_everyone() {
        let sim = Sim::new();
        let cpu = Cpu::new(1);
        for i in 0..2 {
            let cpu = cpu.clone();
            sim.spawn(format!("t{i}"), move || {
                cpu.execute(1_000);
                // Two jobs share one core: both finish at ~2000 ns.
                assert!((1_990..=2_010).contains(&crate::now()), "now={}", crate::now());
            });
        }
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn staggered_arrivals_account_correctly() {
        let sim = Sim::new();
        let cpu = Cpu::new(1);
        let cpu2 = cpu.clone();
        sim.spawn("first", move || {
            cpu.execute(1_000);
            // Alone for 500 ns (500 done), then shared: remaining 500 at
            // rate 0.5 → 1000 more → finish at 1500.
            assert!((1_490..=1_510).contains(&crate::now()), "now={}", crate::now());
        });
        sim.spawn("second", move || {
            crate::sleep(500);
            cpu2.execute(1_000);
            // Shares until 1500 (500 done), alone for remaining 500 →
            // finishes at 2000.
            assert!((1_990..=2_010).contains(&crate::now()), "now={}", crate::now());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn background_load_slows_compute() {
        let sim = Sim::new();
        let cpu = Cpu::new(1);
        let cpu2 = cpu.clone();
        sim.spawn("spinner-sim", move || {
            cpu2.add_background_load(1.0);
        });
        sim.spawn("worker", move || {
            crate::sleep(1); // ensure the load is registered
            cpu.execute(1_000);
            // One real job + 1.0 phantom load on one core → rate 0.5.
            assert!((1_990..=2_011).contains(&crate::now()), "now={}", crate::now());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn background_load_removal_restores_rate() {
        let sim = Sim::new();
        let cpu = Cpu::new(1);
        sim.spawn("w", move || {
            cpu.add_background_load(1.0);
            cpu.add_background_load(-1.0);
            let t0 = crate::now();
            cpu.execute(1_000);
            assert_eq!(crate::now() - t0, 1_000);
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn hyperthreading_adds_partial_throughput() {
        let sim = Sim::new();
        let cpu = Cpu::with_hyperthreading(1, 2);
        assert_eq!(cpu.slots(), 2);
        for i in 0..2 {
            let cpu = cpu.clone();
            sim.spawn(format!("t{i}"), move || {
                cpu.execute(1_300);
                // 2 jobs on 1.3 effective cores → rate 0.65 → 2000 ns.
                assert!((1_990..=2_010).contains(&crate::now()), "now={}", crate::now());
            });
        }
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn work_conservation() {
        let sim = Sim::new();
        let cpu = Cpu::new(2);
        let probe = cpu.clone();
        let mut expected = 0.0;
        for i in 0..5u64 {
            let cpu = cpu.clone();
            expected += (1_000 * (i + 1)) as f64;
            sim.spawn(format!("t{i}"), move || {
                cpu.execute(1_000 * (i + 1));
            });
        }
        sim.run().unwrap().assert_clean();
        let done = probe.total_work_done();
        assert!((done - expected).abs() < 1.0, "done={done} expected={expected}");
        assert_eq!(probe.active_jobs(), 0);
    }

    #[test]
    fn zero_work_is_free() {
        let sim = Sim::new();
        let cpu = Cpu::new(1);
        sim.spawn("a", move || {
            cpu.execute(0);
            assert_eq!(crate::now(), 0);
        });
        sim.run().unwrap().assert_clean();
    }
}
