//! Virtual-clock deadline timers.
//!
//! A [`DeadlineTimer`] schedules a closure on the engine's event heap at an
//! absolute *virtual* instant — the deterministic analog of arming a wall
//! clock timer. The sparklet scheduler uses it to bound jobs: the closure
//! posts a deadline event into the scheduler's queue, totally ordered with
//! task completions by `(virtual_time, sequence)`, so a deadline-bounded
//! run is as reproducible as an unbounded one.
//!
//! Cancellation is cooperative: the heap entry cannot be unscheduled, but a
//! cancelled timer's closure never runs. The stale entry is a no-op whose
//! only trace is that the simulation clock may drain past the deadline at
//! quiescence — it delays or reorders nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A one-shot timer armed at an absolute virtual time.
///
/// Dropping the handle does **not** cancel the timer (a fired deadline must
/// not depend on whether anyone kept the handle); call
/// [`cancel`](DeadlineTimer::cancel) explicitly.
pub struct DeadlineTimer {
    at: u64,
    cancelled: Arc<AtomicBool>,
    fired: Arc<AtomicBool>,
}

impl DeadlineTimer {
    /// Arm a timer: `f` runs on the engine thread at virtual time `at` (or
    /// immediately if `at` is already in the past) unless the timer is
    /// cancelled first. Must be called from inside a simulation. Like any
    /// [`engine::call_at`](crate::engine::call_at) closure, `f` must not
    /// block and has no green-thread context (`simt::now()` is
    /// unavailable); posting to a [`Queue`](crate::queue::Queue) is the
    /// intended use.
    pub fn schedule(at: u64, f: impl FnOnce() + Send + 'static) -> DeadlineTimer {
        let cancelled = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicBool::new(false));
        let c = cancelled.clone();
        let fr = fired.clone();
        crate::engine::call_at(at, move || {
            if !c.load(Ordering::SeqCst) {
                fr.store(true, Ordering::SeqCst);
                f();
            }
        });
        DeadlineTimer { at, cancelled, fired }
    }

    /// Arm a timer `delay` nanoseconds from the current virtual time.
    pub fn after(delay: u64, f: impl FnOnce() + Send + 'static) -> DeadlineTimer {
        Self::schedule(crate::now().saturating_add(delay), f)
    }

    /// Neutralize the timer; a no-op after it has fired.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once the closure has run (a cancelled timer never fires).
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// True if [`cancel`](DeadlineTimer::cancel) was called.
    pub fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// The absolute virtual instant the timer is armed at.
    pub fn deadline(&self) -> u64 {
        self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Queue;
    use crate::Sim;

    #[test]
    fn fires_at_exact_virtual_time() {
        let sim = Sim::new();
        sim.spawn("a", || {
            let q: Queue<()> = Queue::new();
            let q2 = q.clone();
            // The closure runs on the engine thread (no `simt::now()`
            // there); the woken receiver observes the virtual instant.
            let t = DeadlineTimer::after(1_000, move || q2.send(()));
            q.recv().unwrap();
            assert_eq!(crate::now(), 1_000);
            assert!(t.fired());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn cancel_suppresses_firing() {
        let sim = Sim::new();
        let hit = Arc::new(AtomicBool::new(false));
        let hit2 = hit.clone();
        sim.spawn("a", move || {
            let h = hit2.clone();
            let t = DeadlineTimer::after(500, move || h.store(true, Ordering::SeqCst));
            t.cancel();
            crate::sleep(1_000);
            assert!(!t.fired());
            assert!(t.cancelled());
        });
        sim.run().unwrap().assert_clean();
        assert!(!hit.load(Ordering::SeqCst));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let sim = Sim::new();
        sim.spawn("a", || {
            let t = DeadlineTimer::after(10, || {});
            crate::sleep(20);
            assert!(t.fired());
            t.cancel();
            assert!(t.fired());
        });
        sim.run().unwrap().assert_clean();
    }

    #[test]
    fn deadline_event_ordered_with_queue_traffic() {
        // The deadline competes with ordinary sends on one queue; virtual
        // order decides, not host scheduling.
        let sim = Sim::new();
        sim.spawn("a", || {
            let q: Queue<&'static str> = Queue::new();
            let qt = q.clone();
            let _t = DeadlineTimer::after(100, move || qt.send("deadline"));
            let qs = q.clone();
            crate::spawn("sender", move || {
                crate::sleep(50);
                qs.send("early");
                crate::sleep(100);
                qs.send("late");
            });
            assert_eq!(q.recv().unwrap(), "early");
            assert_eq!(q.recv().unwrap(), "deadline");
            assert_eq!(q.recv().unwrap(), "late");
        });
        sim.run().unwrap().assert_clean();
    }
}
