//! # simt — deterministic discrete-event simulation with green threads
//!
//! `simt` is the substrate under the whole MPI4Spark reproduction. Every
//! simulated process (Spark master, worker, executor, driver, MPI rank, Netty
//! event loop, task slot) is a *green thread*: an OS thread whose execution is
//! serialized by a central engine so that **exactly one simulated thread runs
//! at any instant**, and whose notion of time is a **virtual clock** advanced
//! only by the event heap.
//!
//! This gives three properties the reproduction needs:
//!
//! 1. **Natural blocking code.** MPI `recv`, Netty selector loops, and Spark
//!    RPC round-trips are written as ordinary blocking Rust; no hand-rolled
//!    state machines.
//! 2. **Determinism.** The event heap is totally ordered by
//!    `(virtual_time, sequence_number)`. Identical seeds produce identical
//!    schedules, timings, and results — asserted by tests.
//! 3. **Virtual time.** Communication and compute charge nanoseconds against
//!    the clock from calibrated cost models, so "448 GB shuffles on 1792
//!    cores" complete in seconds of wall time with meaningful relative
//!    timings.
//!
//! ## Quick example
//!
//! ```
//! use simt::Sim;
//!
//! let sim = Sim::new();
//! let (tx, rx) = simt::queue::channel::<u64>();
//! sim.spawn("producer", move || {
//!     simt::sleep(1_000);
//!     tx.send(42);
//! });
//! sim.spawn("consumer", move || {
//!     let v = rx.recv().unwrap();
//!     assert_eq!(v, 42);
//!     assert_eq!(simt::now(), 1_000);
//! });
//! let report = sim.run().unwrap();
//! assert_eq!(report.now, 1_000);
//! ```

pub mod cpu;
pub(crate) mod diag;
pub mod engine;
mod gate;
pub mod queue;
pub mod rng;
pub mod sync;
pub mod time;
pub mod timer;

pub use cpu::Cpu;
pub use engine::{Sim, SimError, SimReport, TaskId, TaskObserver};
pub use rng::SeededRng;
pub use time::{Duration, Instant};
pub use timer::DeadlineTimer;

use engine::with_current;

/// Current virtual time in nanoseconds. Panics outside a simulation thread.
pub fn now() -> u64 {
    with_current(|inner, _| inner.now())
}

/// Advance virtual time for the calling green thread by `ns` nanoseconds.
///
/// Other runnable threads execute during the interval.
pub fn sleep(ns: u64) {
    with_current(|inner, tid| inner.sleep(tid, ns));
}

/// Yield to other threads runnable at the current virtual instant.
pub fn yield_now() {
    sleep(0);
}

/// Spawn a new green thread from inside the simulation. It becomes runnable
/// at the current virtual time.
pub fn spawn(name: impl Into<String>, f: impl FnOnce() + Send + 'static) -> TaskId {
    with_current(|inner, _| inner.spawn_thread(name.into(), false, Box::new(f)))
}

/// Spawn a daemon green thread. Daemons (event loops, servers) may be blocked
/// when the simulation quiesces without being reported as stuck.
pub fn spawn_daemon(name: impl Into<String>, f: impl FnOnce() + Send + 'static) -> TaskId {
    with_current(|inner, _| inner.spawn_thread(name.into(), true, Box::new(f)))
}

/// Name of the calling green thread.
pub fn current_name() -> String {
    with_current(|inner, tid| inner.thread_name(tid))
}

/// Task id of the calling green thread.
pub fn current_task() -> TaskId {
    with_current(|_, tid| tid)
}

/// True when called from inside a simulation green thread.
pub fn in_sim() -> bool {
    engine::current_handle().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_quiesces_at_zero() {
        let sim = Sim::new();
        let report = sim.run().unwrap();
        assert_eq!(report.now, 0);
        assert!(report.blocked.is_empty());
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        sim.spawn("a", || {
            assert_eq!(now(), 0);
            sleep(5);
            assert_eq!(now(), 5);
            sleep(10);
            assert_eq!(now(), 15);
        });
        assert_eq!(sim.run().unwrap().now, 15);
    }

    #[test]
    fn zero_sleep_yields() {
        let sim = Sim::new();
        sim.spawn("a", || {
            yield_now();
            assert_eq!(now(), 0);
        });
        assert_eq!(sim.run().unwrap().now, 0);
    }

    #[test]
    fn spawn_inside_sim_runs() {
        let sim = Sim::new();
        sim.spawn("outer", || {
            sleep(3);
            spawn("inner", || {
                assert_eq!(now(), 3);
                sleep(4);
            });
        });
        assert_eq!(sim.run().unwrap().now, 7);
    }

    #[test]
    fn current_name_matches_spawn_name() {
        let sim = Sim::new();
        sim.spawn("alpha", || {
            assert_eq!(current_name(), "alpha");
        });
        sim.run().unwrap();
    }

    #[test]
    fn in_sim_detects_context() {
        assert!(!in_sim());
        let sim = Sim::new();
        sim.spawn("a", || assert!(in_sim()));
        sim.run().unwrap();
    }
}
