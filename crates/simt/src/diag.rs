//! Wait-graph diagnostics: per-task held-resource and waits-for bookkeeping.
//!
//! The sync primitives in [`crate::sync`] and [`crate::queue`] report three
//! kinds of events here: a task starting/stopping a blocking wait on a
//! resource, a task acquiring a resource (semaphore permits), and a task
//! releasing one. From those events the engine derives, at quiescence:
//!
//! * a **wait-for graph** — which blocked task waits on which resource, and
//!   which task holds it;
//! * **deadlock cycles** — cycles in that graph, named task-by-task and
//!   resource-by-resource in deterministic order;
//! * a **lock-order inversion log** — resource pairs observed being acquired
//!   in both AB and BA order by different acquisition stacks, the classic
//!   precursor to an AB/BA deadlock even when the run happened not to hang.
//!
//! All bookkeeping is a no-op outside a green thread, so primitives stay
//! usable from plain unit tests. Everything is keyed on [`BTreeMap`]s and
//! per-simulation registration order so reports are bit-identical across
//! runs of the same seed.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::current_handle;

/// Process-wide resource id allocator. Ids are only used as opaque keys;
/// human-readable labels come from per-simulation registration order, so
/// reports stay deterministic even when unrelated simulations share the
/// counter.
static NEXT_RID: AtomicU64 = AtomicU64::new(1);

/// Identity of one diagnosable resource (a semaphore, queue, notify flag, or
/// once-cell). Embedded in the primitive; cheap to clone via `Arc` fields on
/// the owning primitive.
pub struct DiagRes {
    rid: u64,
    kind: &'static str,
    name: Option<String>,
}

impl DiagRes {
    pub(crate) fn new(kind: &'static str, name: Option<String>) -> Self {
        DiagRes { rid: NEXT_RID.fetch_add(1, Ordering::Relaxed), kind, name }
    }
}

/// Per-simulation diagnostic state, owned by `engine::Inner`.
#[derive(Default)]
pub(crate) struct DiagState {
    /// Count of resources this simulation has seen; used for default labels.
    next_local: u64,
    /// Global rid -> display label ("fetch-slots" or "queue#3").
    labels: BTreeMap<u64, String>,
    /// Task -> acquisition stack of rids currently held (duplicates allowed).
    held: BTreeMap<usize, Vec<u64>>,
    /// Rid -> holder task -> hold count.
    holders: BTreeMap<u64, BTreeMap<usize, u64>>,
    /// Task -> rid it is currently blocked waiting for.
    waiting: BTreeMap<usize, u64>,
    /// (a, b) pairs: some task acquired `b` while already holding `a`.
    order_seen: BTreeSet<(u64, u64)>,
    /// Canonical (min-label, max-label) pairs acquired in both orders.
    inversions: BTreeSet<(String, String)>,
}

impl DiagState {
    fn label(&mut self, res: &DiagRes) -> String {
        if let Some(l) = self.labels.get(&res.rid) {
            return l.clone();
        }
        let l = match &res.name {
            Some(n) => n.clone(),
            None => {
                let l = format!("{}#{}", res.kind, self.next_local);
                l
            }
        };
        self.next_local += 1;
        self.labels.insert(res.rid, l.clone());
        l
    }

    fn on_wait(&mut self, tid: usize, res: &DiagRes) {
        self.label(res);
        self.waiting.insert(tid, res.rid);
    }

    fn on_wait_end(&mut self, tid: usize) {
        self.waiting.remove(&tid);
    }

    fn on_acquire(&mut self, tid: usize, res: &DiagRes) {
        let label_b = self.label(res);
        let held = self.held.entry(tid).or_default();
        // Record lock-order pairs against everything already held; an (a, b)
        // acquisition after a (b, a) one somewhere is an inversion.
        let already: Vec<u64> = held.iter().copied().filter(|&a| a != res.rid).collect();
        held.push(res.rid);
        *self.holders.entry(res.rid).or_default().entry(tid).or_insert(0) += 1;
        for a in already {
            if self.order_seen.contains(&(res.rid, a)) {
                let label_a = self.labels.get(&a).cloned().unwrap_or_default();
                let pair = if label_a <= label_b {
                    (label_a, label_b.clone())
                } else {
                    (label_b.clone(), label_a)
                };
                self.inversions.insert(pair);
            }
            self.order_seen.insert((a, res.rid));
        }
    }

    fn on_release(&mut self, tid: usize, res: &DiagRes) {
        // Semaphores may be released by a task other than the acquirer (a
        // signalling pattern); attribute such releases to the smallest-tid
        // holder so `holders` cannot grow stale monotonically.
        let holders = match self.holders.get_mut(&res.rid) {
            Some(h) if !h.is_empty() => h,
            _ => return,
        };
        let owner = if holders.contains_key(&tid) {
            tid
        } else {
            *holders.keys().next().expect("non-empty holder map")
        };
        let n = holders.get_mut(&owner).expect("owner present");
        *n -= 1;
        if *n == 0 {
            holders.remove(&owner);
        }
        if let Some(stack) = self.held.get_mut(&owner) {
            if let Some(pos) = stack.iter().rposition(|&r| r == res.rid) {
                stack.remove(pos);
            }
        }
    }

    /// Resource label a task is blocked on, if the wait went through an
    /// instrumented primitive (a raw `park()` has no resource).
    pub(crate) fn waiting_label(&self, tid: usize) -> Option<String> {
        self.waiting.get(&tid).and_then(|rid| self.labels.get(rid).cloned())
    }

    /// Display label of an already-registered resource.
    pub(crate) fn label_of(&self, rid: u64) -> String {
        self.labels.get(&rid).cloned().unwrap_or_else(|| format!("resource#{rid}"))
    }

    /// Observed AB/BA acquisition-order pairs, canonically ordered.
    pub(crate) fn inversion_log(&self) -> Vec<(String, String)> {
        self.inversions.iter().cloned().collect()
    }

    /// Find deadlock cycles among `blocked` tasks: task -> waited resource ->
    /// each holder of that resource gives an edge. Cycles are rotated to
    /// start at their smallest tid and deduplicated, so output order is a
    /// pure function of the wait graph.
    pub(crate) fn find_cycles(&self, blocked: &BTreeSet<usize>) -> Vec<Vec<(usize, u64)>> {
        // edges: tid -> (rid waited on, successor holder tids)
        let mut edges: BTreeMap<usize, (u64, BTreeSet<usize>)> = BTreeMap::new();
        for (&tid, &rid) in &self.waiting {
            if !blocked.contains(&tid) {
                continue;
            }
            if let Some(holders) = self.holders.get(&rid) {
                let succ: BTreeSet<usize> =
                    holders.keys().copied().filter(|h| *h != tid && blocked.contains(h)).collect();
                if !succ.is_empty() {
                    edges.insert(tid, (rid, succ));
                }
            }
        }
        let mut cycles: BTreeSet<Vec<(usize, u64)>> = BTreeSet::new();
        for &start in edges.keys() {
            let mut path: Vec<usize> = Vec::new();
            Self::dfs(start, &edges, &mut path, &mut cycles);
        }
        cycles.into_iter().collect()
    }

    fn dfs(
        node: usize,
        edges: &BTreeMap<usize, (u64, BTreeSet<usize>)>,
        path: &mut Vec<usize>,
        cycles: &mut BTreeSet<Vec<(usize, u64)>>,
    ) {
        if let Some(pos) = path.iter().position(|&n| n == node) {
            let cycle: Vec<(usize, u64)> = path[pos..].iter().map(|&t| (t, edges[&t].0)).collect();
            // Canonical rotation: start the cycle at its smallest tid.
            let min_at =
                cycle.iter().enumerate().min_by_key(|(_, (t, _))| *t).map(|(i, _)| i).unwrap_or(0);
            let mut rot = cycle[min_at..].to_vec();
            rot.extend_from_slice(&cycle[..min_at]);
            cycles.insert(rot);
            return;
        }
        let Some((_, succ)) = edges.get(&node) else { return };
        path.push(node);
        for &next in succ {
            Self::dfs(next, edges, path, cycles);
        }
        path.pop();
    }
}

fn with_diag(f: impl FnOnce(&mut DiagState, usize)) {
    if let Some((inner, tid)) = current_handle() {
        let mut d = inner.diag.lock();
        f(&mut d, tid.0);
    }
}

/// The calling task is about to block waiting for `res`.
pub(crate) fn on_wait(res: &DiagRes) {
    with_diag(|d, tid| d.on_wait(tid, res));
}

/// The calling task's wait ended (satisfied, timed out, or errored).
pub(crate) fn on_wait_end() {
    with_diag(|d, tid| d.on_wait_end(tid));
}

/// The calling task acquired `res` (e.g. semaphore permits).
pub(crate) fn on_acquire(res: &DiagRes) {
    with_diag(|d, tid| d.on_acquire(tid, res));
}

/// The calling task released `res`.
pub(crate) fn on_release(res: &DiagRes) {
    with_diag(|d, tid| d.on_release(tid, res));
}
