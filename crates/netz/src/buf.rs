//! Minimal byte-buffer reader/writer used by the message codec.
//!
//! Netty's `ByteBuf` tracks independent reader/writer indices over pooled
//! memory; here a thin cursor over `bytes::BytesMut`/`Bytes` suffices — the
//! codec only ever appends on write and scans forward on read.

use bytes::{BufMut, Bytes, BytesMut};

/// Append-only encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: BytesMut,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter { buf: BytesMut::with_capacity(cap) }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Append a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Append a length-prefixed UTF-8 string (u32 length).
    pub fn put_string(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.put_slice(v.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Forward-scanning decoder. All methods return `None` on underrun rather
/// than panicking, so malformed frames surface as codec errors.
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_be_bytes(s.try_into().unwrap()))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_be_bytes(s.try_into().unwrap()))
    }

    /// Read a big-endian `i64`.
    pub fn get_i64(&mut self) -> Option<i64> {
        self.take(8).map(|s| i64::from_be_bytes(s.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Option<String> {
        let len = self.get_u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).ok()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        let b = w.freeze();
        let mut r = ByteReader::new(&b);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Some(u64::MAX - 3));
        assert_eq!(r.get_i64(), Some(-42));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_strings() {
        let mut w = ByteWriter::new();
        w.put_string("shuffle_0_1_2");
        w.put_string("");
        w.put_string("ünïcödé");
        let b = w.freeze();
        let mut r = ByteReader::new(&b);
        assert_eq!(r.get_string().as_deref(), Some("shuffle_0_1_2"));
        assert_eq!(r.get_string().as_deref(), Some(""));
        assert_eq!(r.get_string().as_deref(), Some("ünïcödé"));
    }

    #[test]
    fn underrun_returns_none() {
        let b = Bytes::from_static(&[1, 2, 3]);
        let mut r = ByteReader::new(&b);
        assert_eq!(r.get_u32(), None);
        // Failed read must not consume.
        assert_eq!(r.get_u8(), Some(1));
    }

    #[test]
    fn bogus_string_length_is_error_not_panic() {
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000); // claims a huge string
        w.put_slice(b"tiny");
        let b = w.freeze();
        let mut r = ByteReader::new(&b);
        assert_eq!(r.get_string(), None);
    }
}
