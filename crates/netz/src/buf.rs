//! Minimal byte-buffer reader/writer used by the message codec.
//!
//! Netty's `ByteBuf` tracks independent reader/writer indices over pooled
//! memory; here a thin cursor over `bytes::BytesMut`/`Bytes` suffices — the
//! codec only ever appends on write and scans forward on read.
//!
//! [`ByteReader`] owns a [`Bytes`] handle so that [`ByteReader::get_bytes`]
//! can hand out sub-ranges that *share* the original allocation (Netty's
//! `ByteBuf.retainedSlice`): decoding a shuffle chunk into blocks never
//! copies the block payloads, it only bumps the refcount on the one buffer
//! that arrived from the wire.

use bytes::{BufMut, Bytes, BytesMut};

/// Append-only encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: BytesMut,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter { buf: BytesMut::with_capacity(cap) }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Append a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Append a length-prefixed UTF-8 string (u32 length).
    pub fn put_string(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.put_slice(v.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Forward-scanning decoder over an owned [`Bytes`] handle. All methods
/// return `None` on underrun rather than panicking, so malformed frames
/// surface as codec errors.
pub struct ByteReader {
    data: Bytes,
    pos: usize,
}

impl ByteReader {
    /// Read from the start of `data`. `Bytes::clone` is a refcount bump, so
    /// callers holding a `&Bytes` pass `data.clone()` without copying.
    pub fn new(data: Bytes) -> Self {
        ByteReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.pos + n > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_be_bytes(s.try_into().unwrap()))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_be_bytes(s.try_into().unwrap()))
    }

    /// Read a big-endian `i64`.
    pub fn get_i64(&mut self) -> Option<i64> {
        self.take(8).map(|s| i64::from_be_bytes(s.try_into().unwrap()))
    }

    /// Read `len` raw bytes as a *view* into the underlying buffer: the
    /// returned `Bytes` shares the reader's allocation (no copy). Fails
    /// without consuming on underrun.
    pub fn get_bytes(&mut self, len: usize) -> Option<Bytes> {
        if self.pos + len > self.data.len() {
            return None;
        }
        let s = self.data.slice(self.pos..self.pos + len);
        self.pos += len;
        Some(s)
    }

    /// Read `len` raw bytes as a borrowed slice (no copy, no refcount
    /// traffic; for transient scans). Fails without consuming on underrun.
    pub fn get_slice(&mut self, len: usize) -> Option<&[u8]> {
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Option<String> {
        let len = self.get_u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).ok()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        let b = w.freeze();
        let mut r = ByteReader::new(b);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Some(u64::MAX - 3));
        assert_eq!(r.get_i64(), Some(-42));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_strings() {
        let mut w = ByteWriter::new();
        w.put_string("shuffle_0_1_2");
        w.put_string("");
        w.put_string("ünïcödé");
        let b = w.freeze();
        let mut r = ByteReader::new(b);
        assert_eq!(r.get_string().as_deref(), Some("shuffle_0_1_2"));
        assert_eq!(r.get_string().as_deref(), Some(""));
        assert_eq!(r.get_string().as_deref(), Some("ünïcödé"));
    }

    #[test]
    fn underrun_returns_none() {
        let b = Bytes::from_static(&[1, 2, 3]);
        let mut r = ByteReader::new(b);
        assert_eq!(r.get_u32(), None);
        // Failed read must not consume.
        assert_eq!(r.get_u8(), Some(1));
    }

    #[test]
    fn bogus_string_length_is_error_not_panic() {
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000); // claims a huge string
        w.put_slice(b"tiny");
        let b = w.freeze();
        let mut r = ByteReader::new(b);
        assert_eq!(r.get_string(), None);
    }

    #[test]
    fn get_bytes_shares_the_underlying_allocation() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAA);
        w.put_slice(b"payload-bytes");
        let b = w.freeze();
        let base = b.as_ptr() as usize;
        let mut r = ByteReader::new(b);
        assert_eq!(r.get_u8(), Some(0xAA));
        let view = r.get_bytes(7).unwrap();
        assert_eq!(&view[..], b"payload");
        // Zero-copy: the view points into the same allocation, one byte in.
        assert_eq!(view.as_ptr() as usize, base + 1);
        assert_eq!(r.get_bytes(100), None);
        // Failed read must not consume.
        assert_eq!(r.get_bytes(6).unwrap(), Bytes::from_static(b"-bytes"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn get_slice_advances_without_copying() {
        let b = Bytes::from_static(b"abcdef");
        let mut r = ByteReader::new(b);
        assert_eq!(r.get_slice(3), Some(&b"abc"[..]));
        assert_eq!(r.get_slice(4), None);
        assert_eq!(r.get_slice(3), Some(&b"def"[..]));
    }
}
