//! Channel pipelines with inbound and outbound handlers (paper Figs. 5/7).
//!
//! Netty routes every read through a chain of inbound `ChannelHandler`s and
//! every write through outbound ones. MPI4Spark-Optimized's key mechanism —
//! "parse the headers of shuffle messages inside of ChannelHandlers ... and
//! perform the MPI_recv call accordingly" (§VI-E) — is expressed here as an
//! [`InboundHandler`] that intercepts a header-only frame and reattaches the
//! body it pulls from MPI; the outbound mirror diverts eligible bodies to
//! MPI instead of the socket.

use std::sync::Arc;

use crate::channel::ChannelCore;
use crate::message::Message;
use crate::wire::Frame;

/// Result of an inbound handler examining a frame.
pub enum InboundAction {
    /// Pass a (possibly rewritten) frame to the next handler / the default
    /// decoder.
    Forward(Frame),
    /// Handler produced the complete message; skip the default decoder.
    Decoded(Message),
    /// Frame fully consumed (e.g. keep-alive); dispatch nothing.
    Consume,
}

/// Result of an outbound handler examining a message write.
pub enum OutboundAction {
    /// Pass a (possibly rewritten) message down the chain / to the default
    /// socket encoder.
    Forward(Message),
    /// Handler transmitted the message itself; report bytes for metrics.
    Sent {
        /// Virtual bytes the handler moved (all paths combined).
        virtual_bytes: u64,
    },
}

/// Inbound (read-path) channel handler.
pub trait InboundHandler: Send + Sync {
    /// Inspect/transform an inbound frame.
    fn on_frame(&self, chan: &Arc<ChannelCore>, frame: Frame) -> InboundAction;
}

/// Outbound (write-path) channel handler.
pub trait OutboundHandler: Send + Sync {
    /// Inspect/transform an outbound message.
    fn on_write(&self, chan: &Arc<ChannelCore>, msg: Message) -> OutboundAction;
}

/// An ordered set of named handlers attached to one channel.
#[derive(Default)]
pub struct Pipeline {
    inbound: Vec<(String, Arc<dyn InboundHandler>)>,
    outbound: Vec<(String, Arc<dyn OutboundHandler>)>,
}

impl Pipeline {
    /// Empty pipeline (default decode/encode only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an inbound handler.
    pub fn add_inbound(&mut self, name: impl Into<String>, h: Arc<dyn InboundHandler>) {
        self.inbound.push((name.into(), h));
    }

    /// Append an outbound handler.
    pub fn add_outbound(&mut self, name: impl Into<String>, h: Arc<dyn OutboundHandler>) {
        self.outbound.push((name.into(), h));
    }

    /// Snapshot of inbound handlers in order.
    pub fn inbound_handlers(&self) -> Vec<Arc<dyn InboundHandler>> {
        self.inbound.iter().map(|(_, h)| h.clone()).collect()
    }

    /// Snapshot of outbound handlers in order.
    pub fn outbound_handlers(&self) -> Vec<Arc<dyn OutboundHandler>> {
        self.outbound.iter().map(|(_, h)| h.clone()).collect()
    }

    /// Handler names, inbound then outbound (diagnostics).
    pub fn handler_names(&self) -> Vec<String> {
        self.inbound
            .iter()
            .map(|(n, _)| format!("in:{n}"))
            .chain(self.outbound.iter().map(|(n, _)| format!("out:{n}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Payload;

    struct Tag;
    impl InboundHandler for Tag {
        fn on_frame(&self, _c: &Arc<ChannelCore>, frame: Frame) -> InboundAction {
            InboundAction::Forward(frame)
        }
    }
    struct Drop_;
    impl OutboundHandler for Drop_ {
        fn on_write(&self, _c: &Arc<ChannelCore>, _m: Message) -> OutboundAction {
            OutboundAction::Sent { virtual_bytes: 0 }
        }
    }

    #[test]
    fn pipeline_registers_in_order() {
        let mut p = Pipeline::new();
        p.add_inbound("decoder", Arc::new(Tag));
        p.add_inbound("mpi-body-fetch", Arc::new(Tag));
        p.add_outbound("mpi-body-send", Arc::new(Drop_));
        assert_eq!(p.handler_names(), vec!["in:decoder", "in:mpi-body-fetch", "out:mpi-body-send"]);
        assert_eq!(p.inbound_handlers().len(), 2);
        assert_eq!(p.outbound_handlers().len(), 1);
    }

    #[test]
    fn actions_carry_payloads() {
        // Type-level smoke test that actions hold what dispatch expects.
        let m = Message::OneWayMessage { body: Payload::empty() };
        match OutboundAction::Forward(m) {
            OutboundAction::Forward(Message::OneWayMessage { .. }) => {}
            _ => panic!("wrong variant"),
        }
    }
}
