//! Error type shared by the netz layer and its clients.

/// Errors surfaced by the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetzError {
    /// Connection establishment failed or timed out.
    ConnectFailed(String),
    /// The channel is (or became) closed.
    ChannelClosed,
    /// The remote returned an application failure (RpcFailure,
    /// ChunkFetchFailure, StreamFailure).
    Remote(String),
    /// A request timed out waiting for its response.
    Timeout,
    /// A frame failed to decode.
    Codec(String),
}

impl NetzError {
    /// Build a codec error.
    pub fn codec(msg: impl Into<String>) -> Self {
        NetzError::Codec(msg.into())
    }

    /// True when a retry of the same operation could plausibly succeed.
    /// Codec errors are deterministic (same bytes decode the same way), so
    /// retrying them is futile; everything else reflects transient channel
    /// or remote state.
    pub fn is_transient(&self) -> bool {
        !matches!(self, NetzError::Codec(_))
    }

    /// True when the error indicts the *communication plane* (the transport
    /// under the channel) rather than the specific request: failed connects,
    /// dead channels, and silent timeouts. Consecutive plane failures are
    /// what triggers fallback from an MPI/RDMA plane to sockets.
    pub fn is_plane_failure(&self) -> bool {
        matches!(self, NetzError::ConnectFailed(_) | NetzError::ChannelClosed | NetzError::Timeout)
    }
}

impl std::fmt::Display for NetzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetzError::ConnectFailed(m) => write!(f, "connect failed: {m}"),
            NetzError::ChannelClosed => f.write_str("channel closed"),
            NetzError::Remote(m) => write!(f, "remote failure: {m}"),
            NetzError::Timeout => f.write_str("request timed out"),
            NetzError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for NetzError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(NetzError::ChannelClosed.to_string(), "channel closed");
        assert_eq!(NetzError::Timeout.to_string(), "request timed out");
        assert_eq!(NetzError::codec("bad").to_string(), "codec error: bad");
        assert_eq!(NetzError::Remote("x".into()).to_string(), "remote failure: x");
    }

    #[test]
    fn taxonomy_splits_transient_from_deterministic() {
        assert!(NetzError::ConnectFailed("refused".into()).is_transient());
        assert!(NetzError::ChannelClosed.is_transient());
        assert!(NetzError::Remote("shuffle gone".into()).is_transient());
        assert!(NetzError::Timeout.is_transient());
        assert!(!NetzError::codec("truncated frame").is_transient());
    }

    #[test]
    fn taxonomy_splits_plane_from_request_failures() {
        assert!(NetzError::ConnectFailed("refused".into()).is_plane_failure());
        assert!(NetzError::ChannelClosed.is_plane_failure());
        assert!(NetzError::Timeout.is_plane_failure());
        assert!(!NetzError::Remote("app error".into()).is_plane_failure());
        assert!(!NetzError::codec("bad").is_plane_failure());
    }
}
