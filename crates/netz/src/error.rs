//! Error type shared by the netz layer and its clients.

/// Errors surfaced by the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetzError {
    /// Connection establishment failed or timed out.
    ConnectFailed(String),
    /// The channel is (or became) closed.
    ChannelClosed,
    /// The remote returned an application failure (RpcFailure,
    /// ChunkFetchFailure, StreamFailure).
    Remote(String),
    /// A request timed out waiting for its response.
    Timeout,
    /// A frame failed to decode.
    Codec(String),
}

impl NetzError {
    /// Build a codec error.
    pub fn codec(msg: impl Into<String>) -> Self {
        NetzError::Codec(msg.into())
    }
}

impl std::fmt::Display for NetzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetzError::ConnectFailed(m) => write!(f, "connect failed: {m}"),
            NetzError::ChannelClosed => f.write_str("channel closed"),
            NetzError::Remote(m) => write!(f, "remote failure: {m}"),
            NetzError::Timeout => f.write_str("request timed out"),
            NetzError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for NetzError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(NetzError::ChannelClosed.to_string(), "channel closed");
        assert_eq!(NetzError::Timeout.to_string(), "request timed out");
        assert_eq!(NetzError::codec("bad").to_string(), "codec error: bad");
        assert_eq!(NetzError::Remote("x".into()).to_string(), "remote failure: x");
    }
}
