//! Pluggable transports.
//!
//! Netty selects a transport implementation (NIO, epoll, ...) under a stable
//! channel/pipeline API; the paper adds an MPI transport at exactly this
//! seam (Fig. 2: "a new MPI transport (Netty+MPI) that uses MPI Java
//! bindings"). Here the seam is the [`Transport`] trait: the default
//! [`NioTransport`] leaves the default socket encode/decode paths in place,
//! while `mpi4spark::transport::{MpiTransportBasic, MpiTransportOptimized}`
//! install pipeline handlers and auxiliary receiver threads.

use fabric::NodeId;

use std::sync::Arc;

use crate::channel::ChannelCore;
use crate::endpoint::Endpoint;
use crate::wire::{CommKind, Handshake};

/// A transport implementation.
pub trait Transport: Send + Sync + 'static {
    /// Short name for reports (`nio`, `mpi-basic`, `mpi-optimized`).
    fn name(&self) -> &'static str;

    /// Identity this side presents during connection establishment. MPI
    /// transports return their rank and communicator kind here — the
    /// paper's rank + communicator-type-byte exchange (§VI-B).
    fn handshake(&self, node: NodeId) -> Handshake {
        Handshake { node, mpi_rank: None, comm: CommKind::None }
    }

    /// Install pipeline handlers on a newly established channel.
    fn configure(&self, chan: &Arc<ChannelCore>) {
        let _ = chan;
    }

    /// Called once when an endpoint starts; MPI transports spawn their
    /// receive-progress threads here.
    fn start(&self, endpoint: &Endpoint) {
        let _ = endpoint;
    }
}

/// The default transport: Netty NIO over Java sockets. Everything —
/// headers and bodies — moves on the socket path; no extra handlers.
pub struct NioTransport;

impl Transport for NioTransport {
    fn name(&self) -> &'static str {
        "nio"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nio_handshake_is_rankless() {
        let hs = NioTransport.handshake(3);
        assert_eq!(hs.node, 3);
        assert_eq!(hs.mpi_rank, None);
        assert_eq!(hs.comm, CommKind::None);
    }
}
