//! Body-routing policy: which message types a transport diverts onto its
//! out-of-band data plane (paper §VI-E).
//!
//! MPI4Spark-Optimized sends headers over the Netty socket and the bodies of
//! `ChunkFetchSuccess` / `StreamResponse` over MPI; MPI4Spark-Basic diverts
//! entire messages of every type; vanilla Spark diverts nothing. The seed
//! hard-coded those choices in three places (a `Message` method plus two
//! `matches!` blocks inside the optimized handlers). [`RoutePolicy`] is the
//! single seam all backends share, and because it is plain data the §VI-E
//! ablations (route every body, route only chunk bodies, …) become a flag
//! flip instead of a code change.

use crate::message::{Message, MessageType};

/// Set of [`MessageType`]s routed over a transport's out-of-band plane.
/// Plain bitmask data: `Copy`, comparable, buildable in `const` context.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoutePolicy {
    mask: u16,
}

const fn bit(ty: MessageType) -> u16 {
    1 << (ty as u8)
}

impl RoutePolicy {
    /// Route nothing out-of-band (vanilla Spark: header and body share the
    /// socket frame).
    pub const NONE: RoutePolicy = RoutePolicy { mask: 0 };

    /// Paper §VI-E default for MPI4Spark-Optimized: divert the bodies of
    /// `ChunkFetchSuccess` and `StreamResponse`.
    pub const SHUFFLE_BODIES: RoutePolicy = RoutePolicy {
        mask: bit(MessageType::ChunkFetchSuccess) | bit(MessageType::StreamResponse),
    };

    /// Ablation: divert only shuffle chunk bodies (`ChunkFetchSuccess`);
    /// stream bodies stay on the socket.
    pub const CHUNK_BODIES: RoutePolicy = RoutePolicy { mask: bit(MessageType::ChunkFetchSuccess) };

    /// Ablation: divert every body-carrying message's body, including the
    /// small RPC payloads the paper deliberately leaves on the socket.
    pub const ALL_BODIES: RoutePolicy = RoutePolicy {
        mask: bit(MessageType::RpcRequest)
            | bit(MessageType::RpcResponse)
            | bit(MessageType::OneWayMessage)
            | bit(MessageType::ChunkFetchSuccess)
            | bit(MessageType::StreamResponse),
    };

    /// Every message type — the Basic design's "all traffic over MPI".
    pub const ALL_MESSAGES: RoutePolicy = RoutePolicy { mask: (1 << 10) - 1 };

    /// Policy routing exactly `types`.
    pub const fn of(types: &[MessageType]) -> RoutePolicy {
        let mut mask = 0u16;
        let mut i = 0;
        while i < types.len() {
            mask |= bit(types[i]);
            i += 1;
        }
        RoutePolicy { mask }
    }

    /// True when `ty` is routed out-of-band by this policy.
    pub fn routes_type(self, ty: MessageType) -> bool {
        self.mask & bit(ty) != 0
    }

    /// True when `msg`'s *body* should be diverted: the type is routed and
    /// the message actually carries a body (a routed but bodiless message
    /// has nothing to divert).
    pub fn routes_body(self, msg: &Message) -> bool {
        self.routes_type(msg.type_id()) && msg.body().is_some()
    }

    /// Parse a bench/CLI flag value. Returns `None` for unknown names.
    pub fn from_flag(name: &str) -> Option<RoutePolicy> {
        Some(match name {
            "none" => RoutePolicy::NONE,
            "shuffle-bodies" => RoutePolicy::SHUFFLE_BODIES,
            "chunk-bodies" => RoutePolicy::CHUNK_BODIES,
            "all-bodies" => RoutePolicy::ALL_BODIES,
            "all-messages" => RoutePolicy::ALL_MESSAGES,
            _ => return None,
        })
    }

    /// Flag name for the named policies (`"custom"` otherwise); inverse of
    /// [`RoutePolicy::from_flag`] for report labels.
    pub fn flag_name(self) -> &'static str {
        match self {
            RoutePolicy::NONE => "none",
            RoutePolicy::SHUFFLE_BODIES => "shuffle-bodies",
            RoutePolicy::CHUNK_BODIES => "chunk-bodies",
            RoutePolicy::ALL_BODIES => "all-bodies",
            RoutePolicy::ALL_MESSAGES => "all-messages",
            _ => "custom",
        }
    }
}

impl std::fmt::Debug for RoutePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RoutePolicy({} [{:#05x}])", self.flag_name(), self.mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Payload;

    #[test]
    fn shuffle_bodies_matches_paper_section_vi_e() {
        let p = RoutePolicy::SHUFFLE_BODIES;
        let cfs =
            Message::ChunkFetchSuccess { stream_id: 0, chunk_index: 0, body: Payload::empty() };
        let sr = Message::StreamResponse {
            stream_id: "s".into(),
            byte_count: 0,
            body: Payload::empty(),
        };
        let req = Message::ChunkFetchRequest { stream_id: 0, chunk_index: 0 };
        let rpc = Message::RpcRequest { request_id: 0, body: Payload::empty() };
        assert!(p.routes_body(&cfs));
        assert!(p.routes_body(&sr));
        assert!(!p.routes_body(&req));
        assert!(!p.routes_body(&rpc));
    }

    #[test]
    fn routed_but_bodiless_messages_are_not_diverted() {
        let p = RoutePolicy::ALL_MESSAGES;
        let req = Message::ChunkFetchRequest { stream_id: 0, chunk_index: 0 };
        assert!(p.routes_type(MessageType::ChunkFetchRequest));
        assert!(!p.routes_body(&req));
    }

    #[test]
    fn named_policies_roundtrip_through_flags() {
        for name in ["none", "shuffle-bodies", "chunk-bodies", "all-bodies", "all-messages"] {
            let p = RoutePolicy::from_flag(name).unwrap();
            assert_eq!(p.flag_name(), name);
        }
        assert_eq!(RoutePolicy::from_flag("bogus"), None);
        assert_eq!(
            RoutePolicy::of(&[MessageType::ChunkFetchSuccess, MessageType::StreamResponse]),
            RoutePolicy::SHUFFLE_BODIES
        );
    }

    #[test]
    fn all_messages_covers_every_type() {
        for tag in 0u8..10 {
            let ty = match tag {
                0 => MessageType::RpcRequest,
                1 => MessageType::RpcResponse,
                2 => MessageType::RpcFailure,
                3 => MessageType::OneWayMessage,
                4 => MessageType::ChunkFetchRequest,
                5 => MessageType::ChunkFetchSuccess,
                6 => MessageType::ChunkFetchFailure,
                7 => MessageType::StreamRequest,
                8 => MessageType::StreamResponse,
                9 => MessageType::StreamFailure,
                _ => unreachable!(),
            };
            assert!(RoutePolicy::ALL_MESSAGES.routes_type(ty));
            assert!(!RoutePolicy::NONE.routes_type(ty));
        }
    }
}
