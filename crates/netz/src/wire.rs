//! On-the-wire events exchanged between endpoints over the fabric.
//!
//! One fabric port per endpoint plays the role of a Netty selector: every
//! channel's traffic is multiplexed onto it and demultiplexed by
//! [`ChannelId`]. Connection establishment stays on the socket path for
//! *every* transport — the paper keeps Netty's connection establishment and
//! exchanges the MPI rank plus a communicator-type byte during it (§VI-B).

use bytes::Bytes;
use fabric::{Payload, PortAddr};

use crate::channel::ChannelId;

/// Which MPI communicator a peer is reachable through (paper §VI-B: the
/// "communicator type" byte sent during connection establishment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum CommKind {
    /// Peer is not an MPI process (pure-socket transport).
    #[default]
    None = 0,
    /// Peer lives in `MPI_COMM_WORLD` (wrapper/master/driver/worker ranks).
    World = 1,
    /// Peer lives in the merged DPM communicator (executors).
    Dpm = 2,
}

/// Identity exchanged during connection establishment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Handshake {
    /// The peer's node (always known).
    pub node: usize,
    /// The peer's MPI rank within `comm`, when the transport is MPI-based.
    pub mpi_rank: Option<u32>,
    /// Communicator the rank is valid in.
    pub comm: CommKind,
}

/// A framed message: encoded header plus (possibly virtual) body.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Encoded `MessageWithHeader` header.
    pub header: Bytes,
    /// Body payload. For transports that move bodies out-of-band this is
    /// empty and the body is reattached by a pipeline handler.
    pub body: Payload,
}

impl Frame {
    /// Total virtual bytes this frame occupies on the socket path.
    pub fn socket_virtual_len(&self) -> u64 {
        self.header.len() as u64 + self.body.virtual_len
    }
}

/// Events carried between endpoints on the socket path.
#[derive(Debug, Clone)]
pub enum WireEvent {
    /// Client → server: open a channel.
    Connect {
        /// Channel id allocated by the client (globally unique).
        channel: ChannelId,
        /// Port the client's event loop listens on.
        reply_to: PortAddr,
        /// Client identity.
        handshake: Handshake,
    },
    /// Server → client: channel accepted.
    Accept {
        /// Echoed channel id.
        channel: ChannelId,
        /// Port the server's event loop listens on.
        data_to: PortAddr,
        /// Server identity.
        handshake: Handshake,
    },
    /// Server → client: connection refused.
    Reject {
        /// Echoed channel id.
        channel: ChannelId,
        /// Reason.
        reason: String,
    },
    /// A message frame on an established channel.
    Data {
        /// Target channel.
        channel: ChannelId,
        /// The frame.
        frame: Frame,
    },
    /// Orderly channel teardown.
    Close {
        /// Target channel.
        channel: ChannelId,
    },
}

/// Virtual wire size of connection-management events (handshake-sized).
pub const CONTROL_EVENT_BYTES: u64 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_kind_default_is_none() {
        assert_eq!(CommKind::default(), CommKind::None);
    }

    #[test]
    fn frame_socket_size_sums_header_and_body() {
        let f = Frame {
            header: Bytes::from_static(&[0; 21]),
            body: Payload::bytes_scaled(Bytes::new(), 1000),
        };
        assert_eq!(f.socket_virtual_len(), 1021);
    }
}
