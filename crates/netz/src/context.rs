//! `TransportContext` and the server-side application interfaces
//! (`RpcHandler`, `StreamManager`) — mirrors Spark's `network-common`
//! equivalents: every component in a Spark cluster creates its Netty clients
//! and servers through a `TransportContext` (paper §II-C).

use std::sync::Arc;

use fabric::{Net, NodeId, Payload, StackModel};

use crate::channel::ChannelCore;
use crate::endpoint::Endpoint;
use crate::transport::{NioTransport, Transport};

/// Reply hook handed to [`RpcHandler::receive`]; call it exactly once.
pub type RpcResponseCallback = Box<dyn FnOnce(Result<Payload, String>) + Send>;

/// Server-side RPC dispatch (Spark's `RpcHandler`).
pub trait RpcHandler: Send + Sync {
    /// Handle a two-way RPC; `reply` sends the `RpcResponse`/`RpcFailure`.
    /// Invoked on the endpoint's event-loop thread — hand off to a worker
    /// mailbox before doing anything that blocks on further RPCs.
    fn receive(&self, chan: &Arc<ChannelCore>, body: Payload, reply: RpcResponseCallback);

    /// Handle a fire-and-forget RPC.
    fn receive_oneway(&self, chan: &Arc<ChannelCore>, body: Payload) {
        let _ = (chan, body);
    }

    /// The stream manager serving chunk fetches and stream opens.
    fn stream_manager(&self) -> Arc<dyn StreamManager> {
        Arc::new(NoStreams)
    }

    /// A channel finished establishment.
    fn channel_active(&self, chan: &Arc<ChannelCore>) {
        let _ = chan;
    }

    /// A channel was torn down.
    fn channel_inactive(&self, chan: &Arc<ChannelCore>) {
        let _ = chan;
    }
}

/// Serves chunk and stream data (Spark's `StreamManager`, registered by the
/// shuffle service; one stream per `OpenBlocks` RPC, one chunk per block).
pub trait StreamManager: Send + Sync {
    /// Fetch one chunk of a registered stream.
    fn get_chunk(&self, stream_id: u64, chunk_index: u32) -> Result<Payload, String>;

    /// Open a named stream (jar/file distribution).
    fn open_stream(&self, stream_id: &str) -> Result<Payload, String> {
        Err(format!("no stream registered for '{stream_id}'"))
    }

    /// CPU cost of locating and mapping a chunk (block-manager lookup).
    fn chunk_fetch_cpu_ns(&self) -> u64 {
        2_000
    }
}

/// Stream manager that serves nothing.
pub struct NoStreams;

impl StreamManager for NoStreams {
    fn get_chunk(&self, stream_id: u64, chunk_index: u32) -> Result<Payload, String> {
        Err(format!("no chunk {chunk_index} in stream {stream_id}"))
    }
}

/// RPC handler that rejects everything (client-only endpoints).
pub struct NoOpRpcHandler;

impl RpcHandler for NoOpRpcHandler {
    fn receive(&self, _chan: &Arc<ChannelCore>, _body: Payload, reply: RpcResponseCallback) {
        reply(Err("endpoint does not accept RPCs".to_string()));
    }
}

/// Transport-layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct TransportConf {
    /// Socket-path cost model (the MPI transports still use it for
    /// connection establishment and headers).
    pub stack: StackModel,
    /// Connection establishment timeout (ns).
    pub connect_timeout_ns: u64,
    /// Request/response timeout (ns).
    pub request_timeout_ns: u64,
}

impl TransportConf {
    /// Defaults: Java-sockets stack, 120 s connect and request timeouts
    /// (Spark's `spark.network.timeout` default covers both).
    pub fn default_sockets() -> Self {
        TransportConf {
            stack: StackModel::java_sockets_ipoib(),
            connect_timeout_ns: simt::time::secs(120),
            request_timeout_ns: simt::time::secs(120),
        }
    }
}

/// Factory for servers and client endpoints sharing one handler, transport,
/// and configuration.
pub struct TransportContext {
    conf: TransportConf,
    handler: Arc<dyn RpcHandler>,
    transport: Arc<dyn Transport>,
    net: Net,
}

impl TransportContext {
    /// Context with the default NIO (pure socket) transport.
    pub fn new(net: Net, conf: TransportConf, handler: Arc<dyn RpcHandler>) -> Self {
        Self::with_transport(net, conf, handler, Arc::new(NioTransport))
    }

    /// Context with a custom transport (the MPI4Spark designs plug in here).
    pub fn with_transport(
        net: Net,
        conf: TransportConf,
        handler: Arc<dyn RpcHandler>,
        transport: Arc<dyn Transport>,
    ) -> Self {
        TransportContext { conf, handler, transport, net }
    }

    /// The configuration.
    pub fn conf(&self) -> TransportConf {
        self.conf
    }

    /// The fabric.
    pub fn net(&self) -> &Net {
        &self.net
    }

    /// Create a server endpoint bound to a well-known port on `node`.
    pub fn create_server(&self, name: impl Into<String>, node: NodeId, port: u64) -> Endpoint {
        Endpoint::start(
            name.into(),
            self.net.clone(),
            self.net.bind(node, port),
            self.conf,
            self.handler.clone(),
            self.transport.clone(),
        )
    }

    /// Create a client endpoint (auto-assigned port) on `node`.
    pub fn create_client_endpoint(&self, name: impl Into<String>, node: NodeId) -> Endpoint {
        Endpoint::start(
            name.into(),
            self.net.clone(),
            self.net.bind_auto(node),
            self.conf,
            self.handler.clone(),
            self.transport.clone(),
        )
    }
}
