//! # netz — an event-driven network application framework (Netty analog)
//!
//! Apache Spark communicates RPC and shuffle messages through Netty
//! (paper §II-C); MPI4Spark's whole contribution is a modification *inside*
//! this layer. `netz` therefore reproduces the pieces of Netty and of
//! Spark's `network-common` that the paper touches:
//!
//! * the message vocabulary of Spark's transport layer (paper Table II):
//!   `RpcRequest`/`RpcResponse`, `OneWayMessage`, `ChunkFetchRequest`/
//!   `ChunkFetchSuccess`, `StreamRequest`/`StreamResponse` and failures —
//!   see [`message`];
//! * the `MessageWithHeader` framing of paper Fig. 6 (length, type, body
//!   size in an encoded header; the body carried separately) — see
//!   [`message::Message::encode_header`];
//! * channels with unique [`ChannelId`]s, channel pipelines with inbound /
//!   outbound handlers (paper Figs. 5 and 7) — see [`pipeline`];
//! * event loops multiplexing many channels over one selector-like blocking
//!   receive — see [`endpoint`];
//! * a pluggable [`transport::Transport`]: the default
//!   [`transport::NioTransport`] moves every frame over the Java-sockets
//!   cost model, while the `mpi4spark` crate installs handlers that divert
//!   message bodies to MPI.
//!
//! The public entry point mirrors Spark: build a [`context::TransportContext`]
//! with an [`context::RpcHandler`], create servers and clients from it.

pub mod buf;
pub mod channel;
pub mod client;
pub mod context;
pub mod endpoint;
pub mod error;
pub mod message;
pub mod pipeline;
pub mod retry;
pub mod route;
pub mod transport;
pub mod wire;

pub use buf::{ByteReader, ByteWriter};
pub use channel::{ChannelCore, ChannelId};
pub use client::TransportClient;
pub use context::{NoOpRpcHandler, RpcHandler, StreamManager, TransportConf, TransportContext};
pub use endpoint::Endpoint;
pub use error::NetzError;
pub use message::Message;
pub use pipeline::{InboundAction, InboundHandler, OutboundAction, OutboundHandler, Pipeline};
pub use retry::RetryPolicy;
pub use route::RoutePolicy;
pub use transport::{NioTransport, Transport};
pub use wire::{CommKind, Frame, Handshake, WireEvent};
