//! Channels: established, identified connections between two endpoints.
//!
//! A [`ChannelCore`] corresponds to Netty's `Channel` + `ChannelId`: Spark
//! identifies distributed entities by channels/endpoints while MPI uses
//! ranks, and bridging that naming mismatch is one of the paper's four core
//! challenges (§III, challenge 4). The MPI rank and communicator type a
//! channel maps to are captured in its peer [`Handshake`], recorded during
//! connection establishment exactly as the paper does.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{Net, NodeId, Payload, PortAddr, StackModel};
use obs::Span;
use parking_lot::Mutex;

use crate::error::NetzError;
use crate::message::Message;
use crate::pipeline::{OutboundAction, Pipeline};
use crate::wire::{Frame, Handshake, WireEvent, CONTROL_EVENT_BYTES};

/// Globally unique channel identifier (Netty's `ChannelId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u64);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch-{:08x}", self.0)
    }
}

static NEXT_CHANNEL_ID: AtomicU64 = AtomicU64::new(1);

impl ChannelId {
    /// Allocate a fresh id (process-global; ids are never reused).
    pub fn fresh() -> ChannelId {
        ChannelId(NEXT_CHANNEL_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Registry-backed traffic counters (shared across all channels on one
/// `Net`; read them via `net.obs().registry().snapshot()` under the
/// `netz.*` keys). Handles are cached per channel because `write` is the
/// hot path of every message.
pub(crate) struct ChanStats {
    msgs_sent: obs::Counter,
    bytes_sent: obs::Counter,
    msgs_received: obs::Counter,
    bytes_received: obs::Counter,
}

impl ChanStats {
    fn new(reg: &obs::Registry) -> ChanStats {
        ChanStats {
            msgs_sent: reg.counter(obs::keys::NETZ_MSGS_SENT),
            bytes_sent: reg.counter(obs::keys::NETZ_BYTES_SENT),
            msgs_received: reg.counter(obs::keys::NETZ_MSGS_RECEIVED),
            bytes_received: reg.counter(obs::keys::NETZ_BYTES_RECEIVED),
        }
    }
}

/// Callback invoked when a response (or failure) for an outstanding request
/// arrives.
pub type ResponseCallback = Box<dyn FnOnce(Result<Payload, NetzError>) + Send>;

#[derive(Default)]
pub(crate) struct PendingResponses {
    pub rpcs: BTreeMap<u64, ResponseCallback>,
    pub chunks: BTreeMap<(u64, u32), ResponseCallback>,
    /// Streams are keyed by name, and several requests for the *same* name
    /// may be outstanding on one channel (e.g. task slots racing to fetch
    /// one broadcast); responses complete them FIFO.
    pub streams: BTreeMap<String, std::collections::VecDeque<ResponseCallback>>,
}

impl PendingResponses {
    fn drain(&mut self) -> Vec<ResponseCallback> {
        // BTreeMap iteration: callbacks fail in key order, deterministically.
        let mut all: Vec<ResponseCallback> = Vec::new();
        all.extend(std::mem::take(&mut self.rpcs).into_values());
        all.extend(std::mem::take(&mut self.chunks).into_values());
        all.extend(std::mem::take(&mut self.streams).into_values().flatten());
        all
    }
}

/// One side of an established channel.
pub struct ChannelCore {
    /// Unique id, shared by both sides.
    pub id: ChannelId,
    /// Node this side runs on.
    pub local_node: NodeId,
    /// Peer's node.
    pub remote_node: NodeId,
    /// Peer endpoint's selector port (where our frames go).
    pub remote_port: PortAddr,
    /// Our endpoint's selector port (where the peer's frames come in).
    pub local_port: PortAddr,
    /// Socket-path cost model.
    pub stack: StackModel,
    /// The fabric.
    pub net: Net,
    /// Identity we presented at establishment.
    pub local_handshake: Handshake,
    /// Identity the peer presented at establishment (rank ↔ channel map).
    pub peer_handshake: Handshake,
    /// Handler pipeline (paper Fig. 7); transports install handlers here.
    pub pipeline: Mutex<Pipeline>,
    /// Registry-backed traffic counters.
    pub(crate) stats: ChanStats,
    pub(crate) pending: Mutex<PendingResponses>,
    open: Mutex<bool>,
    next_seq: AtomicU64,
}

impl ChannelCore {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: ChannelId,
        local_node: NodeId,
        remote_node: NodeId,
        remote_port: PortAddr,
        local_port: PortAddr,
        stack: StackModel,
        net: Net,
        local_handshake: Handshake,
        peer_handshake: Handshake,
    ) -> Arc<Self> {
        let obs = net.obs().clone();
        obs.registry().counter(obs::keys::NETZ_CHANNELS_OPENED).inc();
        obs.event("netz.channel.open", obs::kv! {"local" => local_node, "remote" => remote_node});
        let stats = ChanStats::new(obs.registry());
        Arc::new(ChannelCore {
            id,
            local_node,
            remote_node,
            remote_port,
            local_port,
            stack,
            net,
            local_handshake,
            peer_handshake,
            pipeline: Mutex::new(Pipeline::new()),
            stats,
            pending: Mutex::new(PendingResponses::default()),
            open: Mutex::new(true),
            next_seq: AtomicU64::new(0),
        })
    }

    /// True until either side closed the channel.
    pub fn is_open(&self) -> bool {
        *self.open.lock()
    }

    /// Next per-channel sequence number (MPI transports use it as a tag).
    pub fn next_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Write a message: run the outbound pipeline; unless a handler takes
    /// over transmission, encode and ship header+body as one socket frame
    /// (the Netty NIO default).
    ///
    /// When tracing is on, the whole write (pipeline + encode + fabric
    /// send) runs inside a `netz.msg.send` span whose id is installed as
    /// the thread's send scope, so any header encoded on this path — by us
    /// or by a transport handler re-encoding inside `on_write` — carries
    /// the id for the receiver to link against.
    pub fn write(self: &Arc<Self>, msg: Message) {
        if !self.is_open() {
            return;
        }
        self.stats.msgs_sent.inc();
        let obs = self.net.obs();
        let span = obs.is_traced().then(|| {
            obs.span(
                "netz.msg.send",
                obs::kv! {"type" => format!("{:?}", msg.type_id()),
                "src" => self.local_node, "dst" => self.remote_node},
            )
        });
        let _scope = span.as_ref().map(Span::send_scope);
        let outbound = self.pipeline.lock().outbound_handlers();
        let mut current = msg;
        for handler in outbound {
            match handler.on_write(self, current) {
                OutboundAction::Forward(m) => current = m,
                OutboundAction::Sent { virtual_bytes } => {
                    self.stats.bytes_sent.add(virtual_bytes);
                    return;
                }
            }
        }
        let header = current.encode_header();
        let body = current.body().cloned().unwrap_or_else(Payload::empty);
        let frame = Frame { header, body };
        let virtual_len = frame.socket_virtual_len();
        self.stats.bytes_sent.add(virtual_len);
        self.send_event(WireEvent::Data { channel: self.id, frame }, virtual_len);
    }

    /// Book a received message against the shared traffic counters (called
    /// by the endpoint's event loop and by out-of-band receivers).
    pub(crate) fn note_received(&self, virtual_bytes: u64) {
        self.stats.msgs_received.inc();
        self.stats.bytes_received.add(virtual_bytes);
    }

    /// Ship a raw wire event to the peer endpoint over the socket stack.
    pub fn send_event(&self, ev: WireEvent, virtual_len: u64) {
        self.net.send(
            &self.stack,
            self.local_node,
            self.remote_port,
            Payload::control(ev, virtual_len),
        );
    }

    /// Register a callback for an RPC response.
    pub(crate) fn register_rpc(&self, request_id: u64, cb: ResponseCallback) {
        if !self.is_open() {
            cb(Err(NetzError::ChannelClosed));
            return;
        }
        self.pending.lock().rpcs.insert(request_id, cb);
    }

    /// Register a callback for a chunk fetch response.
    pub(crate) fn register_chunk(&self, key: (u64, u32), cb: ResponseCallback) {
        if !self.is_open() {
            cb(Err(NetzError::ChannelClosed));
            return;
        }
        self.pending.lock().chunks.insert(key, cb);
    }

    /// Register a callback for a stream response.
    pub(crate) fn register_stream(&self, stream_id: String, cb: ResponseCallback) {
        if !self.is_open() {
            cb(Err(NetzError::ChannelClosed));
            return;
        }
        self.pending.lock().streams.entry(stream_id).or_default().push_back(cb);
    }

    pub(crate) fn take_rpc(&self, request_id: u64) -> Option<ResponseCallback> {
        self.pending.lock().rpcs.remove(&request_id)
    }

    pub(crate) fn take_chunk(&self, key: (u64, u32)) -> Option<ResponseCallback> {
        self.pending.lock().chunks.remove(&key)
    }

    pub(crate) fn take_stream(&self, stream_id: &str) -> Option<ResponseCallback> {
        let mut p = self.pending.lock();
        let q = p.streams.get_mut(stream_id)?;
        let cb = q.pop_front();
        if q.is_empty() {
            p.streams.remove(stream_id);
        }
        cb
    }

    /// Close this side: notify the peer, fail all outstanding requests.
    pub fn close(&self) {
        if !self.mark_closed() {
            return;
        }
        self.net.obs().event(
            "netz.channel.close",
            obs::kv! {"local" => self.local_node, "remote" => self.remote_node},
        );
        self.send_event(WireEvent::Close { channel: self.id }, CONTROL_EVENT_BYTES);
        self.fail_pending();
    }

    /// Handle a peer-initiated close (no notification echo).
    pub(crate) fn closed_by_peer(&self) {
        if !self.mark_closed() {
            return;
        }
        self.net.obs().event(
            "netz.channel.close",
            obs::kv! {"local" => self.local_node, "remote" => self.remote_node},
        );
        self.fail_pending();
    }

    fn mark_closed(&self) -> bool {
        let mut open = self.open.lock();
        let was = *open;
        *open = false;
        was
    }

    fn fail_pending(&self) {
        let cbs = self.pending.lock().drain();
        for cb in cbs {
            cb(Err(NetzError::ChannelClosed));
        }
    }
}

impl std::fmt::Debug for ChannelCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelCore")
            .field("id", &self.id)
            .field("local_node", &self.local_node)
            .field("remote_node", &self.remote_node)
            .field("open", &self.is_open())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_ids_are_unique_and_displayable() {
        let a = ChannelId::fresh();
        let b = ChannelId::fresh();
        assert_ne!(a, b);
        assert!(a.to_string().starts_with("ch-"));
    }

    #[test]
    fn seq_numbers_increment() {
        let net = Net::new(&fabric::ClusterSpec::test(2));
        let ch = ChannelCore::new(
            ChannelId::fresh(),
            0,
            1,
            PortAddr { node: 1, port: 1 },
            PortAddr { node: 0, port: 1 },
            StackModel::native_mpi(),
            net,
            Handshake::default(),
            Handshake::default(),
        );
        assert_eq!(ch.next_seq(), 0);
        assert_eq!(ch.next_seq(), 1);
        assert_eq!(ch.next_seq(), 2);
    }

    #[test]
    fn registering_on_closed_channel_fails_immediately() {
        let net = Net::new(&fabric::ClusterSpec::test(2));
        let ch = ChannelCore::new(
            ChannelId::fresh(),
            0,
            1,
            PortAddr { node: 1, port: 1 },
            PortAddr { node: 0, port: 1 },
            StackModel::native_mpi(),
            net,
            Handshake::default(),
            Handshake::default(),
        );
        ch.closed_by_peer();
        let hit = Arc::new(Mutex::new(None));
        let hit2 = hit.clone();
        ch.register_rpc(1, Box::new(move |r| *hit2.lock() = Some(r)));
        assert!(matches!(&*hit.lock(), Some(Err(NetzError::ChannelClosed))));
    }

    #[test]
    fn close_fails_outstanding_requests() {
        let sim = simt::Sim::new();
        sim.spawn("t", || {
            let net = Net::new(&fabric::ClusterSpec::test(2));
            let ch = ChannelCore::new(
                ChannelId::fresh(),
                0,
                1,
                PortAddr { node: 1, port: 1 },
                PortAddr { node: 0, port: 1 },
                StackModel::native_mpi(),
                net,
                Handshake::default(),
                Handshake::default(),
            );
            let hit = Arc::new(Mutex::new(Vec::new()));
            for id in 0..3u64 {
                let hit = hit.clone();
                ch.register_rpc(id, Box::new(move |r| hit.lock().push(r)));
            }
            ch.close();
            assert_eq!(hit.lock().len(), 3);
            assert!(hit.lock().iter().all(|r| matches!(r, Err(NetzError::ChannelClosed))));
            // Double close is a no-op.
            ch.close();
            assert_eq!(hit.lock().len(), 3);
        });
        sim.run().unwrap().assert_clean();
    }
}
