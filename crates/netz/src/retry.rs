//! Exponential backoff with seeded jitter, driven by the virtual clock.
//!
//! This is the netz analog of Spark's `RetryingBlockFetcher` schedule: a
//! retry waits `base * 2^attempt` capped at `max`, plus a jitter drawn from
//! an explicit [`SeededRng`] so that two runs with the same chaos seed retry
//! at identical virtual instants (the determinism rule forbids ambient
//! randomness). The policy itself is plain data; callers own the RNG.

use simt::SeededRng;

/// Schedule for retrying transient failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once, never retry).
    pub max_retries: u32,
    /// Delay before the first retry, in virtual nanoseconds.
    pub base_delay_ns: u64,
    /// Ceiling on the exponential growth.
    pub max_delay_ns: u64,
    /// Fraction of the capped delay added as uniform jitter in
    /// `[0, jitter_frac * delay)`. Zero disables jitter.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_delay_ns: simt::time::millis(100),
            max_delay_ns: simt::time::secs(5),
            jitter_frac: 0.2,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based: the delay between the
    /// first failure and the first retry is `backoff_ns(0, ..)`).
    pub fn backoff_ns(&self, attempt: u32, rng: &mut SeededRng) -> u64 {
        let exp = attempt.min(63);
        let grown = self.base_delay_ns.saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX));
        let capped = grown.min(self.max_delay_ns);
        let jitter_span = (capped as f64 * self.jitter_frac) as u64;
        if jitter_span == 0 {
            capped
        } else {
            capped + rng.next_range(0, jitter_span)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(base: u64, max: u64) -> RetryPolicy {
        RetryPolicy { max_retries: 10, base_delay_ns: base, max_delay_ns: max, jitter_frac: 0.0 }
    }

    #[test]
    fn backoff_doubles_until_the_cap() {
        let p = no_jitter(100, 450);
        let mut rng = SeededRng::from_seed(1);
        assert_eq!(p.backoff_ns(0, &mut rng), 100);
        assert_eq!(p.backoff_ns(1, &mut rng), 200);
        assert_eq!(p.backoff_ns(2, &mut rng), 400);
        assert_eq!(p.backoff_ns(3, &mut rng), 450);
        assert_eq!(p.backoff_ns(20, &mut rng), 450);
    }

    #[test]
    fn huge_attempts_do_not_overflow() {
        let p = no_jitter(u64::MAX / 2, u64::MAX);
        let mut rng = SeededRng::from_seed(1);
        assert_eq!(p.backoff_ns(63, &mut rng), u64::MAX);
        assert_eq!(p.backoff_ns(u32::MAX, &mut rng), u64::MAX);
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let p = RetryPolicy {
            max_retries: 3,
            base_delay_ns: 1_000,
            max_delay_ns: 1_000_000,
            jitter_frac: 0.5,
        };
        let mut a = SeededRng::from_seed(7);
        let mut b = SeededRng::from_seed(7);
        for attempt in 0..5 {
            let da = p.backoff_ns(attempt, &mut a);
            let db = p.backoff_ns(attempt, &mut b);
            assert_eq!(da, db, "same seed, same schedule");
            let capped = (1_000u64 << attempt).min(1_000_000);
            assert!(da >= capped && da < capped + capped / 2 + 1);
        }
    }
}
