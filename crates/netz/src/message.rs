//! Spark's transport-layer message vocabulary (paper Table II) and the
//! `MessageWithHeader` framing of paper Fig. 6.
//!
//! Every message encodes to a *header* — `[frame_length u64][type u8]`
//! followed by type-specific fields and the body length — plus a separate
//! *body* [`Payload`]. Vanilla Netty ships header and body in one socket
//! frame; MPI4Spark-Optimized ships the header over the socket and the body
//! of `ChunkFetchSuccess` / `StreamResponse` over MPI (paper §VI-E), which
//! is why the split is first-class here.

use bytes::Bytes;
use fabric::Payload;

use crate::buf::{ByteReader, ByteWriter};
use crate::error::NetzError;

/// Spark transport message (paper Table II).
#[derive(Debug, Clone)]
pub enum Message {
    /// A request to perform a generic RPC.
    RpcRequest {
        /// Correlates the response.
        request_id: u64,
        /// Serialized RPC payload.
        body: Payload,
    },
    /// Successful response to an [`Message::RpcRequest`].
    RpcResponse {
        /// Id of the request being answered.
        request_id: u64,
        /// Serialized response payload.
        body: Payload,
    },
    /// Failed response to an [`Message::RpcRequest`].
    RpcFailure {
        /// Id of the request being answered.
        request_id: u64,
        /// Human-readable error.
        error: String,
    },
    /// An RPC that does not expect a reply.
    OneWayMessage {
        /// Serialized payload.
        body: Payload,
    },
    /// Request to fetch a single chunk of a stream (shuffle block).
    ChunkFetchRequest {
        /// Stream the chunk belongs to.
        stream_id: u64,
        /// Index of the chunk within the stream.
        chunk_index: u32,
    },
    /// Response carrying a fetched chunk — the dominant shuffle message.
    ChunkFetchSuccess {
        /// Stream the chunk belongs to.
        stream_id: u64,
        /// Index of the chunk within the stream.
        chunk_index: u32,
        /// The chunk data.
        body: Payload,
    },
    /// Failure fetching a chunk.
    ChunkFetchFailure {
        /// Stream the chunk belongs to.
        stream_id: u64,
        /// Index of the chunk within the stream.
        chunk_index: u32,
        /// Human-readable error.
        error: String,
    },
    /// Request to open a named stream (jar/file distribution).
    StreamRequest {
        /// Stream name.
        stream_id: String,
    },
    /// Successful response to a [`Message::StreamRequest`].
    StreamResponse {
        /// Stream name.
        stream_id: String,
        /// Total bytes in the stream.
        byte_count: u64,
        /// The stream data.
        body: Payload,
    },
    /// Failure opening a stream.
    StreamFailure {
        /// Stream name.
        stream_id: String,
        /// Human-readable error.
        error: String,
    },
}

/// Wire type tags (single byte, as in Spark's `Message.Type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageType {
    /// `RpcRequest`
    RpcRequest = 0,
    /// `RpcResponse`
    RpcResponse = 1,
    /// `RpcFailure`
    RpcFailure = 2,
    /// `OneWayMessage`
    OneWayMessage = 3,
    /// `ChunkFetchRequest`
    ChunkFetchRequest = 4,
    /// `ChunkFetchSuccess`
    ChunkFetchSuccess = 5,
    /// `ChunkFetchFailure`
    ChunkFetchFailure = 6,
    /// `StreamRequest`
    StreamRequest = 7,
    /// `StreamResponse`
    StreamResponse = 8,
    /// `StreamFailure`
    StreamFailure = 9,
}

impl MessageType {
    /// True for the message types that carry a body payload.
    pub fn carries_body(self) -> bool {
        matches!(
            self,
            MessageType::RpcRequest
                | MessageType::RpcResponse
                | MessageType::OneWayMessage
                | MessageType::ChunkFetchSuccess
                | MessageType::StreamResponse
        )
    }

    fn from_u8(v: u8) -> Option<MessageType> {
        use MessageType::*;
        Some(match v {
            0 => RpcRequest,
            1 => RpcResponse,
            2 => RpcFailure,
            3 => OneWayMessage,
            4 => ChunkFetchRequest,
            5 => ChunkFetchSuccess,
            6 => ChunkFetchFailure,
            7 => StreamRequest,
            8 => StreamResponse,
            9 => StreamFailure,
            _ => return None,
        })
    }
}

impl Message {
    /// Wire type tag.
    pub fn type_id(&self) -> MessageType {
        use Message::*;
        match self {
            RpcRequest { .. } => MessageType::RpcRequest,
            RpcResponse { .. } => MessageType::RpcResponse,
            RpcFailure { .. } => MessageType::RpcFailure,
            OneWayMessage { .. } => MessageType::OneWayMessage,
            ChunkFetchRequest { .. } => MessageType::ChunkFetchRequest,
            ChunkFetchSuccess { .. } => MessageType::ChunkFetchSuccess,
            ChunkFetchFailure { .. } => MessageType::ChunkFetchFailure,
            StreamRequest { .. } => MessageType::StreamRequest,
            StreamResponse { .. } => MessageType::StreamResponse,
            StreamFailure { .. } => MessageType::StreamFailure,
        }
    }

    /// True for request-type messages (handled server-side).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Message::RpcRequest { .. }
                | Message::OneWayMessage { .. }
                | Message::ChunkFetchRequest { .. }
                | Message::StreamRequest { .. }
        )
    }

    /// The body, if this message type carries one.
    pub fn body(&self) -> Option<&Payload> {
        match self {
            Message::RpcRequest { body, .. }
            | Message::RpcResponse { body, .. }
            | Message::OneWayMessage { body }
            | Message::ChunkFetchSuccess { body, .. }
            | Message::StreamResponse { body, .. } => Some(body),
            _ => None,
        }
    }

    /// Virtual size of the body (0 when bodiless).
    pub fn body_virtual_len(&self) -> u64 {
        self.body().map_or(0, |b| b.virtual_len)
    }

    /// Replace the body (used when a transport reattaches a body fetched
    /// out-of-band). Panics on bodiless message types.
    pub fn with_body(mut self, new_body: Payload) -> Message {
        match &mut self {
            Message::RpcRequest { body, .. }
            | Message::RpcResponse { body, .. }
            | Message::OneWayMessage { body }
            | Message::ChunkFetchSuccess { body, .. }
            | Message::StreamResponse { body, .. } => *body = new_body,
            other => panic!("message type {:?} carries no body", other.type_id()),
        }
        self
    }

    /// Encode the `MessageWithHeader` header (paper Fig. 6): frame length,
    /// type tag, the sender's trace span id, type-specific fields, and the
    /// body's virtual length.
    ///
    /// The span id is the calling thread's current send scope
    /// ([`obs::current_send_span`], 0 when untraced) — reading it here, at
    /// encode time, means the id survives transports that re-encode headers
    /// deep inside pipeline handlers. The field is always present, so traced
    /// and untraced runs have identical wire sizes and therefore identical
    /// virtual timings.
    pub fn encode_header(&self) -> Bytes {
        let mut w = ByteWriter::with_capacity(64);
        w.put_u64(0); // frame length back-patched below
        w.put_u8(self.type_id() as u8);
        w.put_u64(obs::current_send_span());
        match self {
            Message::RpcRequest { request_id, .. } | Message::RpcResponse { request_id, .. } => {
                w.put_u64(*request_id);
            }
            Message::RpcFailure { request_id, error } => {
                w.put_u64(*request_id);
                w.put_string(error);
            }
            Message::OneWayMessage { .. } => {}
            Message::ChunkFetchRequest { stream_id, chunk_index }
            | Message::ChunkFetchSuccess { stream_id, chunk_index, .. } => {
                w.put_u64(*stream_id);
                w.put_u32(*chunk_index);
            }
            Message::ChunkFetchFailure { stream_id, chunk_index, error } => {
                w.put_u64(*stream_id);
                w.put_u32(*chunk_index);
                w.put_string(error);
            }
            Message::StreamRequest { stream_id } => w.put_string(stream_id),
            Message::StreamResponse { stream_id, byte_count, .. } => {
                w.put_string(stream_id);
                w.put_u64(*byte_count);
            }
            Message::StreamFailure { stream_id, error } => {
                w.put_string(stream_id);
                w.put_string(error);
            }
        }
        w.put_u64(self.body_virtual_len());
        let mut header = w.freeze().to_vec();
        let frame_len = header.len() as u64 + self.body_virtual_len();
        header[..8].copy_from_slice(&frame_len.to_be_bytes());
        Bytes::from(header)
    }

    /// Decode a header produced by [`Message::encode_header`] and attach
    /// `body`.
    pub fn decode(header: &Bytes, body: Payload) -> Result<Message, NetzError> {
        let mut r = ByteReader::new(header.clone());
        let _frame_len = r.get_u64().ok_or_else(|| NetzError::codec("truncated frame length"))?;
        let ty = r
            .get_u8()
            .and_then(MessageType::from_u8)
            .ok_or_else(|| NetzError::codec("bad message type"))?;
        let _span_id = r.get_u64().ok_or_else(|| NetzError::codec("truncated span id"))?;
        let err = |what: &str| NetzError::codec(format!("truncated {what}"));
        let msg = match ty {
            MessageType::RpcRequest => Message::RpcRequest {
                request_id: r.get_u64().ok_or_else(|| err("request id"))?,
                body,
            },
            MessageType::RpcResponse => Message::RpcResponse {
                request_id: r.get_u64().ok_or_else(|| err("request id"))?,
                body,
            },
            MessageType::RpcFailure => Message::RpcFailure {
                request_id: r.get_u64().ok_or_else(|| err("request id"))?,
                error: r.get_string().ok_or_else(|| err("error string"))?,
            },
            MessageType::OneWayMessage => Message::OneWayMessage { body },
            MessageType::ChunkFetchRequest => Message::ChunkFetchRequest {
                stream_id: r.get_u64().ok_or_else(|| err("stream id"))?,
                chunk_index: r.get_u32().ok_or_else(|| err("chunk index"))?,
            },
            MessageType::ChunkFetchSuccess => Message::ChunkFetchSuccess {
                stream_id: r.get_u64().ok_or_else(|| err("stream id"))?,
                chunk_index: r.get_u32().ok_or_else(|| err("chunk index"))?,
                body,
            },
            MessageType::ChunkFetchFailure => Message::ChunkFetchFailure {
                stream_id: r.get_u64().ok_or_else(|| err("stream id"))?,
                chunk_index: r.get_u32().ok_or_else(|| err("chunk index"))?,
                error: r.get_string().ok_or_else(|| err("error string"))?,
            },
            MessageType::StreamRequest => Message::StreamRequest {
                stream_id: r.get_string().ok_or_else(|| err("stream id"))?,
            },
            MessageType::StreamResponse => Message::StreamResponse {
                stream_id: r.get_string().ok_or_else(|| err("stream id"))?,
                byte_count: r.get_u64().ok_or_else(|| err("byte count"))?,
                body,
            },
            MessageType::StreamFailure => Message::StreamFailure {
                stream_id: r.get_string().ok_or_else(|| err("stream id"))?,
                error: r.get_string().ok_or_else(|| err("error string"))?,
            },
        };
        Ok(msg)
    }

    /// Declared body length parsed from an encoded header — the field the
    /// Optimized design reads to know how large an `MPI_Recv` to post.
    pub fn peek_body_len(header: &Bytes) -> Option<u64> {
        if header.len() < 8 {
            return None;
        }
        let tail = &header[header.len() - 8..];
        Some(u64::from_be_bytes(tail.try_into().ok()?))
    }

    /// Message type parsed from an encoded header without full decoding —
    /// the "parse the header inside the ChannelHandler" step of §VI-E.
    pub fn peek_type(header: &Bytes) -> Option<MessageType> {
        if header.len() < 9 {
            return None;
        }
        MessageType::from_u8(header[8])
    }

    /// Sender-side trace span id carried in the header (0 when the sender
    /// was not inside a traced send). Receivers use it as the causal link of
    /// their recv span.
    pub fn peek_span_id(header: &Bytes) -> Option<u64> {
        if header.len() < 17 {
            return None;
        }
        Some(u64::from_be_bytes(header[9..17].try_into().ok()?))
    }

    /// Content-derived identity of a body-carrying message, parsed from its
    /// encoded header. Both ends of an out-of-band body transport compute
    /// this from the same header bytes, so it can key the side channel
    /// (e.g. an MPI tag) without a lockstep sequence counter — which would
    /// desynchronize the moment one frame is lost or retried.
    ///
    /// `None` for bodiless types and for `OneWayMessage`, whose header
    /// carries no distinguishing field.
    pub fn peek_body_key(header: &Bytes) -> Option<u64> {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let ty = Message::peek_type(header)?;
        if !ty.carries_body() {
            return None;
        }
        let mut r = ByteReader::new(header.clone());
        r.get_u64()?; // frame length
        r.get_u8()?; // type tag
        r.get_u64()?; // span id (trace-dependent: must not key the body)
        match ty {
            MessageType::RpcRequest | MessageType::RpcResponse => {
                Some(mix(r.get_u64()?.wrapping_add(1)))
            }
            MessageType::ChunkFetchSuccess => {
                let stream_id = r.get_u64()?;
                let chunk_index = r.get_u32()?;
                Some(mix(stream_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ chunk_index as u64))
            }
            MessageType::StreamResponse => {
                let name = r.get_string()?;
                let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
                for b in name.as_bytes() {
                    h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
                }
                Some(mix(h))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) -> Message {
        let header = msg.encode_header();
        let body = msg.body().cloned().unwrap_or_else(Payload::empty);
        Message::decode(&header, body).unwrap()
    }

    #[test]
    fn rpc_request_roundtrip() {
        let m = roundtrip(Message::RpcRequest {
            request_id: 77,
            body: Payload::bytes(Bytes::from_static(b"payload")),
        });
        match m {
            Message::RpcRequest { request_id, body } => {
                assert_eq!(request_id, 77);
                assert_eq!(&body.bytes[..], b"payload");
            }
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn chunk_fetch_success_roundtrip_preserves_ids() {
        let m = roundtrip(Message::ChunkFetchSuccess {
            stream_id: 123456789,
            chunk_index: 42,
            body: Payload::bytes_scaled(Bytes::from_static(b"x"), 1 << 20),
        });
        match m {
            Message::ChunkFetchSuccess { stream_id, chunk_index, body } => {
                assert_eq!(stream_id, 123456789);
                assert_eq!(chunk_index, 42);
                assert_eq!(body.virtual_len, 1 << 20);
            }
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn stream_response_roundtrip() {
        let m = roundtrip(Message::StreamResponse {
            stream_id: "/jars/app.jar".into(),
            byte_count: 4096,
            body: Payload::bytes_scaled(Bytes::new(), 4096),
        });
        match m {
            Message::StreamResponse { stream_id, byte_count, .. } => {
                assert_eq!(stream_id, "/jars/app.jar");
                assert_eq!(byte_count, 4096);
            }
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn failures_carry_error_strings() {
        let m = roundtrip(Message::ChunkFetchFailure {
            stream_id: 9,
            chunk_index: 1,
            error: "block not found".into(),
        });
        match m {
            Message::ChunkFetchFailure { error, .. } => assert_eq!(error, "block not found"),
            other => panic!("wrong type: {other:?}"),
        }
    }

    #[test]
    fn frame_length_counts_header_plus_virtual_body() {
        let msg = Message::ChunkFetchSuccess {
            stream_id: 1,
            chunk_index: 0,
            body: Payload::bytes_scaled(Bytes::from_static(b"ab"), 1000),
        };
        let header = msg.encode_header();
        let mut r = ByteReader::new(header.clone());
        let frame_len = r.get_u64().unwrap();
        assert_eq!(frame_len, header.len() as u64 + 1000);
    }

    #[test]
    fn peek_type_and_body_len_match_header_fields() {
        let msg = Message::ChunkFetchSuccess {
            stream_id: 5,
            chunk_index: 3,
            body: Payload::bytes_scaled(Bytes::new(), 777),
        };
        let header = msg.encode_header();
        assert_eq!(Message::peek_type(&header), Some(MessageType::ChunkFetchSuccess));
        assert_eq!(Message::peek_body_len(&header), Some(777));
    }

    #[test]
    fn body_keys_are_content_addressed() {
        let chunk = |stream_id, chunk_index| {
            Message::ChunkFetchSuccess { stream_id, chunk_index, body: Payload::empty() }
                .encode_header()
        };
        // Same identity → same key, regardless of when it's computed.
        assert_eq!(Message::peek_body_key(&chunk(7, 3)), Message::peek_body_key(&chunk(7, 3)));
        // Distinct chunks and distinct streams get distinct keys.
        assert_ne!(Message::peek_body_key(&chunk(7, 3)), Message::peek_body_key(&chunk(7, 4)));
        assert_ne!(Message::peek_body_key(&chunk(7, 3)), Message::peek_body_key(&chunk(8, 3)));

        let rpc = Message::RpcResponse { request_id: 42, body: Payload::empty() }.encode_header();
        assert!(Message::peek_body_key(&rpc).is_some());
        assert_ne!(Message::peek_body_key(&rpc), Message::peek_body_key(&chunk(7, 3)));

        let stream = Message::StreamResponse {
            stream_id: "/jars/app.jar".into(),
            byte_count: 1,
            body: Payload::empty(),
        }
        .encode_header();
        assert!(Message::peek_body_key(&stream).is_some());

        // Bodiless and anonymous types have no key.
        let req = Message::ChunkFetchRequest { stream_id: 7, chunk_index: 3 }.encode_header();
        assert_eq!(Message::peek_body_key(&req), None);
        let oneway = Message::OneWayMessage { body: Payload::empty() }.encode_header();
        assert_eq!(Message::peek_body_key(&oneway), None);
    }

    #[test]
    fn header_carries_send_scope_span_id() {
        let msg = Message::ChunkFetchRequest { stream_id: 1, chunk_index: 2 };
        let plain = msg.encode_header();
        assert_eq!(Message::peek_span_id(&plain), Some(0), "no scope -> untraced id 0");
        let tagged = {
            let _scope = obs::SendScope::enter(42);
            msg.encode_header()
        };
        assert_eq!(Message::peek_span_id(&tagged), Some(42));
        // The span id must not perturb the other header peeks.
        assert_eq!(Message::peek_type(&tagged), Some(MessageType::ChunkFetchRequest));
        assert_eq!(Message::peek_body_len(&tagged), Some(0));
        // Nor the content-addressed body key: both ends must derive the same
        // key whether or not the sender was traced.
        let keyed =
            Message::ChunkFetchSuccess { stream_id: 7, chunk_index: 3, body: Payload::empty() };
        let k0 = Message::peek_body_key(&keyed.encode_header());
        let k1 = {
            let _scope = obs::SendScope::enter(9);
            Message::peek_body_key(&keyed.encode_header())
        };
        assert_eq!(k0, k1);
        // Headers are the same size traced and untraced: identical timings.
        assert_eq!(plain.len(), tagged.len());
    }

    #[test]
    fn garbage_header_is_a_codec_error() {
        let r = Message::decode(&Bytes::from_static(&[1, 2, 3]), Payload::empty());
        assert!(r.is_err());
        let bad_type = {
            let mut w = ByteWriter::new();
            w.put_u64(9);
            w.put_u8(200);
            w.freeze()
        };
        assert!(Message::decode(&bad_type, Payload::empty()).is_err());
    }
}
