//! Endpoints: one selector-style event loop multiplexing all channels bound
//! to one fabric port (paper Fig. 5).
//!
//! Netty's NIO selector blocks in `select()` until a registered channel has
//! a state change, then dispatches it. Here the event loop blocks on the
//! endpoint's port queue — the simulation equivalent of a `select()` over
//! all of this endpoint's sockets — then decodes and dispatches the frame on
//! the loop thread, exactly like a Netty event loop running its pipeline.

use std::collections::BTreeMap;
use std::sync::Arc;

use fabric::{Net, NodeId, Packet, Payload, PortAddr};
use parking_lot::Mutex;
use simt::sync::OnceCell;

use crate::channel::{ChannelCore, ChannelId};
use crate::client::TransportClient;
use crate::context::{RpcHandler, TransportConf};
use crate::error::NetzError;
use crate::message::Message;
use crate::pipeline::InboundAction;
use crate::transport::Transport;
use crate::wire::{Frame, Handshake, WireEvent, CONTROL_EVENT_BYTES};

pub(crate) struct EndpointInner {
    pub name: String,
    pub net: Net,
    pub node: NodeId,
    /// Control address: where peers send `Connect` (the boss loop).
    pub addr: PortAddr,
    /// Data address: where established channels send frames (worker loop).
    pub data_addr: PortAddr,
    pub conf: TransportConf,
    pub handler: Arc<dyn RpcHandler>,
    pub transport: Arc<dyn Transport>,
    channels: Mutex<BTreeMap<ChannelId, Arc<ChannelCore>>>,
    pending_connects: Mutex<BTreeMap<ChannelId, OnceCell<Result<Arc<ChannelCore>, NetzError>>>>,
    accepting: Mutex<bool>,
}

/// A bound endpoint: either a server (well-known port) or a client factory
/// (auto port). Cheap to clone.
#[derive(Clone)]
pub struct Endpoint {
    inner: Arc<EndpointInner>,
}

impl Endpoint {
    pub(crate) fn start(
        name: String,
        net: Net,
        rx: fabric::net::PortRx,
        conf: TransportConf,
        handler: Arc<dyn RpcHandler>,
        transport: Arc<dyn Transport>,
    ) -> Endpoint {
        let addr = rx.addr();
        let node = addr.node;
        // Netty's boss/worker split: connection establishment is served by
        // its own loop so accepts never queue behind bulk data frames.
        let data_rx = net.bind_auto(node);
        let data_addr = data_rx.addr();
        let inner = Arc::new(EndpointInner {
            name: name.clone(),
            net,
            node,
            addr,
            data_addr,
            conf,
            handler,
            transport,
            channels: Mutex::new(BTreeMap::new()),
            pending_connects: Mutex::new(BTreeMap::new()),
            accepting: Mutex::new(true),
        });
        let ep = Endpoint { inner: inner.clone() };
        let boss_ep = ep.clone();
        simt::spawn_daemon(format!("netz-boss:{name}"), move || {
            boss_ep.event_loop(rx);
        });
        let worker_ep = ep.clone();
        simt::spawn_daemon(format!("netz-loop:{name}"), move || {
            worker_ep.event_loop(data_rx);
        });
        ep.inner.transport.clone().start(&ep);
        ep
    }

    /// Address peers connect to.
    pub fn addr(&self) -> PortAddr {
        self.inner.addr
    }

    /// Node this endpoint runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The fabric.
    pub fn net(&self) -> &Net {
        &self.inner.net
    }

    /// Endpoint name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Currently established channels.
    pub fn channels(&self) -> Vec<Arc<ChannelCore>> {
        self.inner.channels.lock().values().cloned().collect()
    }

    /// Look up a channel by id.
    pub fn channel(&self, id: ChannelId) -> Option<Arc<ChannelCore>> {
        self.inner.channels.lock().get(&id).cloned()
    }

    /// Look up the channel whose *peer* presented MPI rank `rank` in
    /// communicator `comm` — the rank → channel mapping of paper §VI-B.
    pub fn channel_by_rank(
        &self,
        rank: u32,
        comm: crate::wire::CommKind,
    ) -> Option<Arc<ChannelCore>> {
        self.inner
            .channels
            .lock()
            .values()
            .find(|c| c.peer_handshake.mpi_rank == Some(rank) && c.peer_handshake.comm == comm)
            .cloned()
    }

    /// Open a channel to a remote endpoint and wrap it in a client.
    pub fn connect(&self, remote: PortAddr) -> Result<TransportClient, NetzError> {
        let id = ChannelId::fresh();
        let cell: OnceCell<Result<Arc<ChannelCore>, NetzError>> = OnceCell::new();
        self.inner.pending_connects.lock().insert(id, cell.clone());
        let hs = self.inner.transport.handshake(self.inner.node);
        self.inner.net.send(
            &self.inner.conf.stack,
            self.inner.node,
            remote,
            Payload::control(
                WireEvent::Connect { channel: id, reply_to: self.inner.data_addr, handshake: hs },
                CONTROL_EVENT_BYTES,
            ),
        );
        let result = cell.take_timeout(self.inner.conf.connect_timeout_ns);
        self.inner.pending_connects.lock().remove(&id);
        match result {
            Some(Ok(chan)) => Ok(TransportClient::new(chan, self.inner.conf)),
            Some(Err(e)) => Err(e),
            None => Err(NetzError::ConnectFailed(format!("timeout connecting to {remote}"))),
        }
    }

    /// [`connect`](Endpoint::connect) with retries: transient failures
    /// (refused, timed out) back off per `policy` and try again, so a
    /// connect attempted inside a fault window succeeds once the window
    /// closes. Jitter draws from the caller's seeded RNG to stay
    /// replay-deterministic.
    pub fn connect_retrying(
        &self,
        remote: PortAddr,
        policy: &crate::retry::RetryPolicy,
        rng: &mut simt::SeededRng,
    ) -> Result<TransportClient, NetzError> {
        let mut attempt = 0u32;
        loop {
            match self.connect(remote) {
                Ok(client) => return Ok(client),
                Err(e) if attempt < policy.max_retries && e.is_transient() => {
                    let obs = self.inner.net.obs();
                    obs.registry().counter(obs::keys::NETZ_CONNECT_RETRIES).inc();
                    obs.event(
                        "netz.connect.retry",
                        obs::kv! {"remote" => remote, "attempt" => attempt + 1, "error" => e},
                    );
                    simt::sleep(policy.backoff_ns(attempt, rng));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Stop accepting, close every channel, and unbind the port (stops the
    /// event loop).
    pub fn shutdown(&self) {
        *self.inner.accepting.lock() = false;
        let chans: Vec<_> =
            std::mem::take(&mut *self.inner.channels.lock()).into_values().collect();
        for c in chans {
            c.close();
        }
        // Poison both loops; their PortRx recv unblocks and they exit.
        for addr in [self.inner.addr, self.inner.data_addr] {
            if self.inner.net.is_bound(addr) {
                self.inner.net.send(
                    &self.inner.conf.stack,
                    self.inner.node,
                    addr,
                    Payload::control(
                        WireEvent::Reject { channel: ChannelId(0), reason: "__shutdown".into() },
                        16,
                    ),
                );
            }
        }
    }

    fn event_loop(&self, rx: fabric::net::PortRx) {
        loop {
            let pkt = match rx.recv() {
                Ok(p) => p,
                Err(_) => break,
            };
            if !self.handle_packet(pkt) {
                break;
            }
        }
        rx.close();
    }

    /// Process one wire event; returns false to stop the loop.
    fn handle_packet(&self, pkt: Packet) -> bool {
        let Some(ev) = pkt.payload.value_as::<WireEvent>() else {
            return true; // foreign traffic on our port: ignore
        };
        match (*ev).clone() {
            WireEvent::Connect { channel, reply_to, handshake } => {
                self.on_connect(channel, reply_to, handshake);
            }
            WireEvent::Accept { channel, data_to, handshake } => {
                self.on_accept(channel, data_to, handshake);
            }
            WireEvent::Reject { channel, reason } => {
                if reason == "__shutdown" {
                    return false;
                }
                if let Some(cell) = self.inner.pending_connects.lock().remove(&channel) {
                    cell.put(Err(NetzError::ConnectFailed(reason)));
                }
            }
            WireEvent::Data { channel, frame } => {
                let chan = self.channel(channel);
                if let Some(chan) = chan {
                    self.on_frame(&chan, frame);
                }
            }
            WireEvent::Close { channel } => {
                let chan = self.inner.channels.lock().remove(&channel);
                if let Some(chan) = chan {
                    chan.closed_by_peer();
                    self.inner.handler.channel_inactive(&chan);
                }
            }
        }
        true
    }

    fn on_connect(&self, id: ChannelId, reply_to: PortAddr, peer_hs: Handshake) {
        if !*self.inner.accepting.lock() {
            let ev = WireEvent::Reject { channel: id, reason: "endpoint shut down".into() };
            self.inner.net.send(
                &self.inner.conf.stack,
                self.inner.node,
                reply_to,
                Payload::control(ev, CONTROL_EVENT_BYTES),
            );
            return;
        }
        let local_hs = self.inner.transport.handshake(self.inner.node);
        let chan = ChannelCore::new(
            id,
            self.inner.node,
            peer_hs.node,
            reply_to,
            self.inner.data_addr,
            self.inner.conf.stack,
            self.inner.net.clone(),
            local_hs,
            peer_hs,
        );
        self.inner.transport.configure(&chan);
        self.inner.channels.lock().insert(id, chan.clone());
        self.inner.handler.channel_active(&chan);
        chan.send_event(
            WireEvent::Accept { channel: id, data_to: self.inner.data_addr, handshake: local_hs },
            CONTROL_EVENT_BYTES,
        );
    }

    fn on_accept(&self, id: ChannelId, data_to: PortAddr, peer_hs: Handshake) {
        let Some(cell) = self.inner.pending_connects.lock().remove(&id) else {
            return; // late accept after timeout
        };
        let local_hs = self.inner.transport.handshake(self.inner.node);
        let chan = ChannelCore::new(
            id,
            self.inner.node,
            peer_hs.node,
            data_to,
            self.inner.data_addr,
            self.inner.conf.stack,
            self.inner.net.clone(),
            local_hs,
            peer_hs,
        );
        self.inner.transport.configure(&chan);
        self.inner.channels.lock().insert(id, chan.clone());
        self.inner.handler.channel_active(&chan);
        cell.put(Ok(chan));
    }

    /// Run the inbound pipeline on a frame, then dispatch the message.
    ///
    /// When tracing is on, the whole receive (pipeline + decode + dispatch)
    /// runs inside a `netz.msg.recv` span causally linked — via the span id
    /// carried in the header — to the peer's `netz.msg.send` span.
    fn on_frame(&self, chan: &Arc<ChannelCore>, frame: Frame) {
        let obs = self.inner.net.obs();
        let _span = obs.is_traced().then(|| {
            let link = Message::peek_span_id(&frame.header).unwrap_or(0);
            obs.tracer().span_linked(
                "netz.msg.recv",
                link,
                obs::kv! {"src" => chan.remote_node, "dst" => chan.local_node},
            )
        });
        let header_len = frame.header.len() as u64;
        let inbound = chan.pipeline.lock().inbound_handlers();
        let mut action = InboundAction::Forward(frame);
        for h in inbound {
            match action {
                InboundAction::Forward(f) => action = h.on_frame(chan, f),
                _ => break,
            }
        }
        let msg = match action {
            InboundAction::Consume => return,
            InboundAction::Decoded(m) => m,
            InboundAction::Forward(fr) => match Message::decode(&fr.header, fr.body) {
                Ok(m) => m,
                Err(_) => return, // malformed frame: drop (Netty would fire exceptionCaught)
            },
        };
        chan.note_received(header_len + msg.body_virtual_len());
        self.dispatch(chan, msg);
    }

    /// Account a message received outside the socket frame path (its body
    /// arrived over a side transport after the header was parsed), then
    /// dispatch it. Used by the Optimized design's body-completion pump,
    /// which finishes decode asynchronously once the MPI body lands.
    pub fn dispatch_received(&self, chan: &Arc<ChannelCore>, msg: Message, header_len: u64) {
        chan.note_received(header_len + msg.body_virtual_len());
        self.dispatch(chan, msg);
    }

    /// Dispatch a fully decoded message: requests to the handler / stream
    /// manager, responses to their registered callbacks. Public so that
    /// MPI-side receiver threads (which bypass the socket path entirely,
    /// as in MPI4Spark-Basic) can inject messages.
    pub fn dispatch(&self, chan: &Arc<ChannelCore>, msg: Message) {
        match msg {
            Message::RpcRequest { request_id, body } => {
                let reply_chan = chan.clone();
                self.inner.handler.receive(
                    chan,
                    body,
                    Box::new(move |res| {
                        let reply = match res {
                            Ok(p) => Message::RpcResponse { request_id, body: p },
                            Err(e) => Message::RpcFailure { request_id, error: e },
                        };
                        reply_chan.write(reply);
                    }),
                );
            }
            Message::OneWayMessage { body } => {
                self.inner.handler.receive_oneway(chan, body);
            }
            Message::ChunkFetchRequest { stream_id, chunk_index } => {
                let sm = self.inner.handler.stream_manager();
                self.inner.net.cpu(self.inner.node).execute(sm.chunk_fetch_cpu_ns());
                let reply = match sm.get_chunk(stream_id, chunk_index) {
                    Ok(body) => Message::ChunkFetchSuccess { stream_id, chunk_index, body },
                    Err(error) => Message::ChunkFetchFailure { stream_id, chunk_index, error },
                };
                chan.write(reply);
            }
            Message::StreamRequest { stream_id } => {
                let sm = self.inner.handler.stream_manager();
                let reply = match sm.open_stream(&stream_id) {
                    Ok(body) => {
                        Message::StreamResponse { stream_id, byte_count: body.virtual_len, body }
                    }
                    Err(error) => Message::StreamFailure { stream_id, error },
                };
                chan.write(reply);
            }
            Message::RpcResponse { request_id, body } => {
                if let Some(cb) = chan.take_rpc(request_id) {
                    cb(Ok(body));
                }
            }
            Message::RpcFailure { request_id, error } => {
                if let Some(cb) = chan.take_rpc(request_id) {
                    cb(Err(NetzError::Remote(error)));
                }
            }
            Message::ChunkFetchSuccess { stream_id, chunk_index, body } => {
                if let Some(cb) = chan.take_chunk((stream_id, chunk_index)) {
                    cb(Ok(body));
                }
            }
            Message::ChunkFetchFailure { stream_id, chunk_index, error } => {
                if let Some(cb) = chan.take_chunk((stream_id, chunk_index)) {
                    cb(Err(NetzError::Remote(error)));
                }
            }
            Message::StreamResponse { stream_id, body, .. } => {
                if let Some(cb) = chan.take_stream(&stream_id) {
                    cb(Ok(body));
                }
            }
            Message::StreamFailure { stream_id, error } => {
                if let Some(cb) = chan.take_stream(&stream_id) {
                    cb(Err(NetzError::Remote(error)));
                }
            }
        }
    }
}
