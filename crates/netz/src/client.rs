//! `TransportClient`: the caller-facing side of an established channel
//! (Spark's `TransportClient`), with blocking and callback-style request
//! APIs for RPCs, chunk fetches, and streams.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::Payload;
use simt::sync::OnceCell;

use crate::channel::ChannelCore;
use crate::context::TransportConf;
use crate::error::NetzError;
use crate::message::Message;

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Client handle over one channel.
#[derive(Clone)]
pub struct TransportClient {
    chan: Arc<ChannelCore>,
    conf: TransportConf,
}

impl TransportClient {
    pub(crate) fn new(chan: Arc<ChannelCore>, conf: TransportConf) -> Self {
        TransportClient { chan, conf }
    }

    /// The underlying channel.
    pub fn channel(&self) -> &Arc<ChannelCore> {
        &self.chan
    }

    /// True while the channel is open.
    pub fn is_active(&self) -> bool {
        self.chan.is_open()
    }

    /// Send a two-way RPC and block for the response (bounded by the
    /// configured request timeout).
    pub fn send_rpc(&self, body: Payload) -> Result<Payload, NetzError> {
        let request_id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        let cell: OnceCell<Result<Payload, NetzError>> = OnceCell::new();
        let cell2 = cell.clone();
        self.chan.register_rpc(request_id, Box::new(move |r| cell2.put(r)));
        self.chan.write(Message::RpcRequest { request_id, body });
        match cell.take_timeout(self.conf.request_timeout_ns) {
            Some(r) => r,
            None => {
                let _ = self.chan.take_rpc(request_id);
                Err(NetzError::Timeout)
            }
        }
    }

    /// Send a two-way RPC; `cb` runs on the event-loop thread when the
    /// response arrives or the channel dies.
    pub fn send_rpc_async(
        &self,
        body: Payload,
        cb: Box<dyn FnOnce(Result<Payload, NetzError>) + Send>,
    ) {
        let request_id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        self.chan.register_rpc(request_id, cb);
        self.chan.write(Message::RpcRequest { request_id, body });
    }

    /// Fire-and-forget RPC.
    pub fn send_oneway(&self, body: Payload) {
        self.chan.write(Message::OneWayMessage { body });
    }

    /// Fetch one chunk of a stream, blocking for the data.
    pub fn fetch_chunk(&self, stream_id: u64, chunk_index: u32) -> Result<Payload, NetzError> {
        let cell: OnceCell<Result<Payload, NetzError>> = OnceCell::new();
        let cell2 = cell.clone();
        self.fetch_chunk_async(stream_id, chunk_index, Box::new(move |r| cell2.put(r)));
        match cell.take_timeout(self.conf.request_timeout_ns) {
            Some(r) => r,
            None => {
                let _ = self.chan.take_chunk((stream_id, chunk_index));
                Err(NetzError::Timeout)
            }
        }
    }

    /// Fetch one chunk of a stream; `cb` runs when the chunk (or a failure)
    /// arrives. This is the path `ShuffleBlockFetcherIterator` drives with
    /// many chunks in flight.
    pub fn fetch_chunk_async(
        &self,
        stream_id: u64,
        chunk_index: u32,
        cb: Box<dyn FnOnce(Result<Payload, NetzError>) + Send>,
    ) {
        self.chan.register_chunk((stream_id, chunk_index), cb);
        self.chan.write(Message::ChunkFetchRequest { stream_id, chunk_index });
    }

    /// Open a named stream and block for its data (jar/file distribution,
    /// served via `StreamRequest`/`StreamResponse`).
    pub fn open_stream(&self, stream_id: &str) -> Result<Payload, NetzError> {
        let cell: OnceCell<Result<Payload, NetzError>> = OnceCell::new();
        let cell2 = cell.clone();
        self.chan.register_stream(stream_id.to_string(), Box::new(move |r| cell2.put(r)));
        self.chan.write(Message::StreamRequest { stream_id: stream_id.to_string() });
        match cell.take_timeout(self.conf.request_timeout_ns) {
            Some(r) => r,
            None => {
                let _ = self.chan.take_stream(stream_id);
                Err(NetzError::Timeout)
            }
        }
    }

    /// Close the channel.
    pub fn close(&self) {
        self.chan.close();
    }
}
