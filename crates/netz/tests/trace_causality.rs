//! Cross-process span causality: a `netz.msg.recv` span's `link` must equal
//! the id of the `netz.msg.send` span whose message it is handling. The id
//! travels inside the wire header (`Message::encode_header` stamps the
//! thread's send scope), so the invariant holds across simulated processes
//! and survives header re-encoding in transport pipelines.

use std::sync::Arc;

use bytes::Bytes;
use fabric::{ClusterSpec, Net, Payload};
use netz::{NoOpRpcHandler, RpcHandler, StreamManager, TransportConf, TransportContext};
use simt::Sim;

struct EchoHandler;

impl RpcHandler for EchoHandler {
    fn receive(
        &self,
        _chan: &Arc<netz::ChannelCore>,
        body: Payload,
        reply: netz::context::RpcResponseCallback,
    ) {
        reply(Ok(body));
    }

    fn stream_manager(&self) -> Arc<dyn StreamManager> {
        Arc::new(NoStreams)
    }
}

struct NoStreams;

impl StreamManager for NoStreams {
    fn get_chunk(&self, _stream_id: u64, _chunk_index: u32) -> Result<Payload, String> {
        Err("no streams in this test".to_string())
    }

    fn open_stream(&self, _stream_id: &str) -> Result<Payload, String> {
        Err("no streams in this test".to_string())
    }
}

fn kv<'a>(r: &'a obs::SpanRecord, key: &str) -> &'a str {
    r.kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str()).unwrap_or("")
}

#[test]
fn recv_spans_link_to_the_matching_send_span() {
    let obs = obs::Obs::traced();
    let obs2 = obs.clone();
    let sim = Sim::new();
    sim.spawn("main", move || {
        let net = Net::with_obs(&ClusterSpec::test(2), obs2);
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        let reply = client.send_rpc(Payload::bytes(Bytes::from_static(b"ping"))).unwrap();
        assert_eq!(&reply.bytes[..], b"ping");
    });
    sim.run().unwrap().assert_clean();

    let recs = obs.tracer().records();
    let linked_recvs: Vec<_> =
        recs.iter().filter(|r| r.name == "netz.msg.recv" && r.link != 0).collect();
    // At least the RPC request (client→server) and its response
    // (server→client) must arrive as linked receives.
    assert!(
        linked_recvs.len() >= 2,
        "expected request and response recv spans with links, got {}",
        linked_recvs.len()
    );
    for recv in &linked_recvs {
        let send = recs.iter().find(|r| r.id == recv.link).unwrap_or_else(|| {
            panic!("recv span {} links to unrecorded span {}", recv.id, recv.link)
        });
        assert_eq!(send.name, "netz.msg.send", "recv must link to a send span");
        // The send runs on the sending node; the recv names that same node
        // as its `src`. Directions must agree end to end.
        assert_eq!(kv(send, "src"), kv(recv, "src"), "send/recv disagree on source node");
        assert_eq!(kv(send, "dst"), kv(recv, "dst"), "send/recv disagree on destination node");
        assert!(
            send.start_ns <= recv.start_ns,
            "causality violated: send span starts after the linked recv"
        );
    }
    // Both directions are represented: the request lands on the server
    // (node 0) and the response back on the client (node 1).
    let dsts: std::collections::BTreeSet<&str> =
        linked_recvs.iter().map(|r| kv(r, "dst")).collect();
    assert!(dsts.len() >= 2, "links must cover both directions, saw dsts {dsts:?}");
}

#[test]
fn untraced_headers_carry_a_zero_span_id() {
    // With tracing off, the header still reserves the span-id slot (so wire
    // sizes — and therefore virtual timings — are identical with tracing on
    // or off), but no spans are recorded.
    let obs = obs::Obs::disabled();
    let obs2 = obs.clone();
    let sim = Sim::new();
    sim.spawn("main", move || {
        let net = Net::with_obs(&ClusterSpec::test(2), obs2);
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        client.send_rpc(Payload::bytes(Bytes::from_static(b"ping"))).unwrap();
    });
    sim.run().unwrap().assert_clean();
    assert!(obs.tracer().records().is_empty());
    assert!(obs.registry().snapshot().counter(obs::keys::NETZ_MSGS_SENT) > 0);
}
