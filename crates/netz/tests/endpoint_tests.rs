//! End-to-end tests of the netz transport: connection establishment, RPC
//! round-trips, chunk fetches, streams, teardown, and a ping-pong latency
//! sanity check previewing the paper's Fig. 8.

use std::sync::Arc;

use bytes::Bytes;
use fabric::{ClusterSpec, Net, Payload};
use netz::{NetzError, NoOpRpcHandler, RpcHandler, StreamManager, TransportConf, TransportContext};
use parking_lot::Mutex;
use simt::Sim;

/// Echo handler: replies with the request body; serves chunks of
/// predictable content.
struct EchoHandler;

impl RpcHandler for EchoHandler {
    fn receive(
        &self,
        _chan: &Arc<netz::ChannelCore>,
        body: Payload,
        reply: netz::context::RpcResponseCallback,
    ) {
        reply(Ok(body));
    }

    fn stream_manager(&self) -> Arc<dyn StreamManager> {
        Arc::new(EchoStreams)
    }
}

struct EchoStreams;

impl StreamManager for EchoStreams {
    fn get_chunk(&self, stream_id: u64, chunk_index: u32) -> Result<Payload, String> {
        if stream_id == 404 {
            return Err("no such stream".to_string());
        }
        let data = format!("chunk-{stream_id}-{chunk_index}");
        Ok(Payload::bytes_scaled(Bytes::from(data), 1 << 16))
    }

    fn open_stream(&self, stream_id: &str) -> Result<Payload, String> {
        if stream_id == "/missing" {
            return Err("not found".to_string());
        }
        Ok(Payload::bytes_scaled(Bytes::from(format!("stream:{stream_id}")), 4096))
    }
}

fn setup(n_nodes: usize) -> (Sim, Net) {
    let sim = Sim::new();
    let net = Net::new(&ClusterSpec::test(n_nodes));
    (sim, net)
}

#[test]
fn rpc_roundtrip() {
    let (sim, net) = setup(2);
    let net2 = net.clone();
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server_ctx = TransportContext::new(net2.clone(), conf, Arc::new(EchoHandler));
        let server = server_ctx.create_server("server", 0, 100);
        let client_ctx = TransportContext::new(net2.clone(), conf, Arc::new(NoOpRpcHandler));
        let ep = client_ctx.create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        let reply = client.send_rpc(Payload::bytes(Bytes::from_static(b"ping"))).unwrap();
        assert_eq!(&reply.bytes[..], b"ping");
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn chunk_fetch_roundtrip() {
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        let chunk = client.fetch_chunk(7, 3).unwrap();
        assert_eq!(&chunk.bytes[..], b"chunk-7-3");
        assert_eq!(chunk.virtual_len, 1 << 16);
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn chunk_fetch_failure_surfaces_remote_error() {
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        match client.fetch_chunk(404, 0) {
            Err(NetzError::Remote(e)) => assert_eq!(e, "no such stream"),
            other => panic!("expected remote failure, got {other:?}"),
        }
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn stream_roundtrip_and_failure() {
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        let data = client.open_stream("/jars/app.jar").unwrap();
        assert_eq!(&data.bytes[..], b"stream:/jars/app.jar");
        assert!(matches!(client.open_stream("/missing"), Err(NetzError::Remote(_))));
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn oneway_reaches_handler() {
    struct Recorder(Arc<Mutex<Vec<Vec<u8>>>>);
    impl RpcHandler for Recorder {
        fn receive(
            &self,
            _c: &Arc<netz::ChannelCore>,
            _b: Payload,
            reply: netz::context::RpcResponseCallback,
        ) {
            reply(Err("no rpc".into()));
        }
        fn receive_oneway(&self, _c: &Arc<netz::ChannelCore>, body: Payload) {
            self.0.lock().push(body.bytes.to_vec());
        }
    }
    let (sim, net) = setup(2);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(Recorder(seen2)))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        client.send_oneway(Payload::bytes(Bytes::from_static(b"fire-and-forget")));
        simt::sleep(simt::time::millis(10));
    });
    sim.run().unwrap().assert_clean();
    assert_eq!(seen.lock().as_slice(), &[b"fire-and-forget".to_vec()]);
}

#[test]
fn connect_to_unbound_port_times_out() {
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let mut conf = TransportConf::default_sockets();
        conf.connect_timeout_ns = simt::time::millis(5);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let r = ep.connect(fabric::PortAddr { node: 0, port: 9999 });
        assert!(matches!(r, Err(NetzError::ConnectFailed(_))));
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn rpc_after_server_shutdown_fails() {
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let mut conf = TransportConf::default_sockets();
        conf.request_timeout_ns = simt::time::millis(50);
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        assert!(client.send_rpc(Payload::bytes(Bytes::from_static(b"a"))).is_ok());
        server.shutdown();
        simt::sleep(simt::time::millis(5));
        let r = client.send_rpc(Payload::bytes(Bytes::from_static(b"b")));
        assert!(r.is_err(), "{r:?}");
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn channel_close_fails_pending_rpc() {
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        // Handler that never replies.
        struct BlackHole;
        impl RpcHandler for BlackHole {
            fn receive(
                &self,
                _c: &Arc<netz::ChannelCore>,
                _b: Payload,
                _reply: netz::context::RpcResponseCallback,
            ) {
                // drop the reply callback: never answers
            }
        }
        let server = TransportContext::new(net.clone(), conf, Arc::new(BlackHole))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        let client2 = client.clone();
        simt::spawn("closer", move || {
            simt::sleep(simt::time::millis(2));
            client2.close();
        });
        let r = client.send_rpc(Payload::bytes(Bytes::from_static(b"never")));
        assert!(matches!(r, Err(NetzError::ChannelClosed)));
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn many_clients_one_server() {
    let (sim, net) = setup(4);
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let done = Arc::new(Mutex::new(0usize));
        for node in 1..4usize {
            for i in 0..3 {
                let net = net.clone();
                let addr = server.addr();
                let done = done.clone();
                simt::spawn(format!("client-{node}-{i}"), move || {
                    let ep = TransportContext::new(net, conf, Arc::new(NoOpRpcHandler))
                        .create_client_endpoint(format!("c{node}{i}"), node);
                    let client = ep.connect(addr).unwrap();
                    let msg = format!("hello-{node}-{i}");
                    let reply = client.send_rpc(Payload::bytes(Bytes::from(msg.clone()))).unwrap();
                    assert_eq!(reply.bytes, Bytes::from(msg));
                    *done.lock() += 1;
                });
            }
        }
        simt::sleep(simt::time::secs(2));
        assert_eq!(*done.lock(), 9);
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn rank_to_channel_mapping_via_handshake() {
    use netz::{CommKind, Handshake, Transport};
    struct FakeMpiTransport(u32);
    impl Transport for FakeMpiTransport {
        fn name(&self) -> &'static str {
            "fake-mpi"
        }
        fn handshake(&self, node: usize) -> Handshake {
            Handshake { node, mpi_rank: Some(self.0), comm: CommKind::World }
        }
    }
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server = TransportContext::with_transport(
            net.clone(),
            conf,
            Arc::new(EchoHandler),
            Arc::new(FakeMpiTransport(0)),
        )
        .create_server("server", 0, 100);
        let ep = TransportContext::with_transport(
            net.clone(),
            conf,
            Arc::new(NoOpRpcHandler),
            Arc::new(FakeMpiTransport(1)),
        )
        .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        // Client side sees the server's rank, server side sees the client's.
        assert_eq!(client.channel().peer_handshake.mpi_rank, Some(0));
        simt::sleep(simt::time::millis(1));
        let chan = server.channel_by_rank(1, CommKind::World).expect("mapped");
        assert_eq!(chan.peer_handshake.comm, CommKind::World);
        assert!(server.channel_by_rank(9, CommKind::World).is_none());
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn pingpong_latency_sanity() {
    // A miniature of the paper's Fig. 8 measurement: the socket transport's
    // small-message round trip sits in the tens of microseconds.
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        // Warm-up.
        client.send_rpc(Payload::bytes(Bytes::from_static(b"w"))).unwrap();
        let t0 = simt::now();
        let iters = 10;
        for _ in 0..iters {
            client.send_rpc(Payload::bytes(Bytes::from_static(b"x"))).unwrap();
        }
        let rtt = (simt::now() - t0) / iters;
        // 4 socket messages per RPC round trip (req frame + resp frame, each
        // charged send+recv ≈ 30 µs) → ~60-130 µs.
        assert!((40_000..=400_000).contains(&rtt), "rtt = {rtt} ns");
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn metrics_count_traffic() {
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let conf = TransportConf::default_sockets();
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        client.send_rpc(Payload::bytes(Bytes::from_static(b"12345678"))).unwrap();
        // One read surface for traffic counters: the net's registry
        // snapshot. Request + echoed response = 2 sends and 2 receives
        // across the two endpoints sharing this net.
        let snap = net.obs().registry().snapshot();
        assert_eq!(snap.counter(obs::keys::NETZ_MSGS_SENT), 2);
        assert_eq!(snap.counter(obs::keys::NETZ_MSGS_RECEIVED), 2);
        assert!(snap.counter(obs::keys::NETZ_BYTES_SENT) >= 16);
        assert!(snap.counter(obs::keys::NETZ_BYTES_RECEIVED) >= 16);
        assert_eq!(snap.counter(obs::keys::NETZ_CHANNELS_OPENED), 2, "one per side");
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn connect_timeout_is_bounded_by_the_virtual_clock() {
    // The failed connect must consume exactly the configured timeout of
    // virtual time (no hidden polling slop), and classify as a transient
    // plane-level failure so the layers above retry / degrade correctly.
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let mut conf = TransportConf::default_sockets();
        conf.connect_timeout_ns = simt::time::millis(5);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let t0 = simt::now();
        let Err(e) = ep.connect(fabric::PortAddr { node: 0, port: 9999 }) else {
            panic!("connect to an unbound port cannot succeed");
        };
        let waited = simt::now() - t0;
        assert!(waited >= simt::time::millis(5), "gave up early: {waited} ns");
        assert!(waited < simt::time::millis(6), "overshot the timeout: {waited} ns");
        assert!(e.is_transient());
        assert!(e.is_plane_failure());
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn connect_retrying_rides_out_a_chaos_window() {
    // The link to the server is dead for the first 12 ms of virtual time.
    // Plain `connect` gives up inside the window; `connect_retrying`'s
    // backoff schedule must carry it past the outage and succeed.
    let (sim, net) = setup(2);
    net.install_chaos(
        fabric::FaultPlan::seeded(6).drop_link_sym(0, 1, 0, simt::time::millis(12)).build(),
    );
    sim.spawn("main", move || {
        let mut conf = TransportConf::default_sockets();
        conf.connect_timeout_ns = simt::time::millis(4);
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let policy = netz::RetryPolicy {
            max_retries: 6,
            base_delay_ns: simt::time::millis(2),
            max_delay_ns: simt::time::millis(20),
            jitter_frac: 0.2,
        };
        let mut rng = simt::SeededRng::from_seed(41);
        let client = ep.connect_retrying(server.addr(), &policy, &mut rng).unwrap();
        assert!(
            simt::now() >= simt::time::millis(12),
            "a connection cannot exist before the window lifts (now = {} ns)",
            simt::now()
        );
        let reply = client.send_rpc(Payload::bytes(Bytes::from_static(b"alive"))).unwrap();
        assert_eq!(&reply.bytes[..], b"alive");
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn mid_stream_disconnect_is_a_plane_failure() {
    // First chunk lands; the server dies mid-stream; the next chunk fetch
    // must fail with a plane-classified error (the signal the fetch retry
    // layer counts toward transport degradation), not hang or mislabel.
    let (sim, net) = setup(2);
    sim.spawn("main", move || {
        let mut conf = TransportConf::default_sockets();
        conf.request_timeout_ns = simt::time::millis(50);
        let server = TransportContext::new(net.clone(), conf, Arc::new(EchoHandler))
            .create_server("server", 0, 100);
        let ep = TransportContext::new(net.clone(), conf, Arc::new(NoOpRpcHandler))
            .create_client_endpoint("client", 1);
        let client = ep.connect(server.addr()).unwrap();
        let chunk = client.fetch_chunk(1, 0).unwrap();
        assert_eq!(&chunk.bytes[..], b"chunk-1-0");
        server.shutdown();
        simt::sleep(simt::time::millis(5));
        let Err(e) = client.fetch_chunk(1, 1) else {
            panic!("chunk fetch from a dead server cannot succeed");
        };
        assert!(e.is_plane_failure(), "mid-stream disconnect misclassified: {e:?}");
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn backoff_schedule_is_ordered_against_virtual_timestamps() {
    // Sleep through a retry schedule on the virtual clock and check the
    // recorded timestamps: strictly increasing, gaps doubling (with jitter
    // bounded by `jitter_frac`) until the cap, then pinned at the cap.
    let sim = Sim::new();
    sim.spawn("main", move || {
        let base = simt::time::millis(10);
        let cap = simt::time::millis(40);
        let policy = netz::RetryPolicy {
            max_retries: 6,
            base_delay_ns: base,
            max_delay_ns: cap,
            jitter_frac: 0.2,
        };
        let mut rng = simt::SeededRng::from_seed(77);
        let mut stamps = vec![simt::now()];
        for attempt in 0..6 {
            simt::sleep(policy.backoff_ns(attempt, &mut rng));
            stamps.push(simt::now());
        }
        let gaps: Vec<u64> = stamps.windows(2).map(|w| w[1] - w[0]).collect();
        for (k, gap) in gaps.iter().enumerate() {
            let nominal = (base << k).min(cap);
            assert!(
                (nominal..nominal + nominal / 5 + 1).contains(gap),
                "attempt {k}: gap {gap} outside [{nominal}, {nominal} + 20%]"
            );
        }
        // Below the cap the schedule is strictly ordered even under maximal
        // jitter: the k-th gap's floor (2^k · base) clears the (k-1)-th
        // gap's ceiling (1.2 · 2^(k-1) · base).
        for w in gaps.windows(2) {
            assert!(w[1] >= w[0] || w[0] > cap, "backoff shrank: {gaps:?}");
        }
        assert_eq!(gaps.last().map(|g| *g >= cap), Some(true), "tail pinned at the cap");
    });
    sim.run().unwrap().assert_clean();
}
