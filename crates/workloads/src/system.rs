//! The unified system-under-test runner.

use std::sync::Arc;

use fabric::{ClusterSpec, Net};
use mpi4spark::Design;
use rdma_spark::RdmaBackend;
use simt::sync::OnceCell;
use simt::Sim;
use sparklet::deploy::{ClusterConfig, ProcessBuilderLauncher};
use sparklet::scheduler::{JobMetrics, SparkContext};
use sparklet::VanillaBackend;

/// The systems the paper evaluates (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Vanilla Spark — Netty NIO over sockets ("IPoIB" in the figures).
    Vanilla,
    /// RDMA-Spark — UCR `BlockTransferService` (IB only).
    RdmaSpark,
    /// MPI4Spark-Basic (§VI-D).
    Mpi4SparkBasic,
    /// MPI4Spark-Optimized (§VI-E) — "MPI" in the figures.
    Mpi4Spark,
}

impl System {
    /// Label used in tables (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            System::Vanilla => "IPoIB",
            System::RdmaSpark => "RDMA",
            System::Mpi4SparkBasic => "MPI-Basic",
            System::Mpi4Spark => "MPI",
        }
    }

    /// All systems runnable on `spec`'s interconnect (RDMA-Spark is
    /// IB-only, hence absent from the paper's Stampede2 results).
    pub fn available_on(spec: &ClusterSpec) -> Vec<System> {
        let mut v = vec![System::Vanilla];
        if spec.interconnect.kind == fabric::FabricKind::InfiniBand {
            v.push(System::RdmaSpark);
        }
        v.push(System::Mpi4Spark);
        v
    }
}

/// Result of running one workload on one system.
pub struct RunOutcome<R> {
    /// Workload return value.
    pub result: R,
    /// Per-job metrics in submission order.
    pub jobs: Vec<JobMetrics>,
    /// Final metrics snapshot of the run's registry (fabric, netz, and
    /// process-wide spark counters; per-task counters live in
    /// [`JobMetrics`] stage snapshots).
    pub metrics: obs::MetricsSnapshot,
    /// Chrome-trace timeline JSON, present when the run's `SparkConf` set
    /// `trace_timeline`. Byte-identical across re-runs of the same seed.
    pub timeline: Option<String>,
}

impl<R> RunOutcome<R> {
    /// Total virtual duration summed over all jobs.
    pub fn total_ns(&self) -> u64 {
        self.jobs.iter().map(JobMetrics::duration_ns).sum()
    }

    /// Duration of job `j`'s stage whose name contains `fragment`.
    pub fn stage_ns(&self, job: usize, fragment: &str) -> u64 {
        self.jobs[job].stage_duration(fragment).unwrap_or(0)
    }

    /// Fetch re-requests the retry layer issued across the whole run.
    pub fn fetch_retries(&self) -> u64 {
        self.metrics.counter(obs::keys::SPARK_FETCH_RETRIES)
    }

    /// Messages the chaos plan dropped (0 without a plan).
    pub fn chaos_dropped(&self) -> u64 {
        self.metrics.counter(obs::keys::NET_CHAOS_DROPPED_MSGS)
    }

    /// Messages the chaos plan delayed (0 without a plan).
    pub fn chaos_delayed(&self) -> u64 {
        self.metrics.counter(obs::keys::NET_CHAOS_DELAYED_MSGS)
    }

    /// Stage attempts the scheduler resubmitted after fetch failures
    /// (0 in a fault-free run).
    pub fn stage_resubmits(&self) -> u64 {
        self.metrics.counter(obs::keys::SPARK_STAGE_RESUBMITS)
    }

    /// Speculative task copies the scheduler launched (0 with speculation
    /// disabled or no stragglers).
    pub fn speculative_tasks(&self) -> u64 {
        self.metrics.counter(obs::keys::SPARK_SPECULATIVE_TASKS)
    }

    /// Tasks AQE planned for adaptive result stages (0 with AQE off).
    pub fn aqe_tasks(&self) -> u64 {
        self.metrics.counter(obs::keys::SPARK_AQE_TASKS)
    }

    /// Map-range slice tasks AQE produced by splitting skewed buckets.
    pub fn aqe_split_slices(&self) -> u64 {
        self.metrics.counter(obs::keys::SPARK_AQE_SPLIT_SLICES)
    }

    /// AQE tasks that coalesced more than one reduce bucket.
    pub fn aqe_coalesced_tasks(&self) -> u64 {
        self.metrics.counter(obs::keys::SPARK_AQE_COALESCED_TASKS)
    }

    /// Jobs submitted on the partial/approximate path — an evaluator or
    /// deadline was attached (0 with the partial subsystem disabled).
    pub fn partial_results(&self) -> u64 {
        self.metrics.counter(obs::keys::SPARK_PARTIAL_JOBS)
    }

    /// True when at least one job's deadline fired before completion, i.e.
    /// some action returned an approximate answer.
    pub fn deadline_fired(&self) -> bool {
        self.metrics.counter(obs::keys::SPARK_PARTIAL_DEADLINES_FIRED) > 0
    }

    /// Result partitions folded into approximate evaluators across the run.
    pub fn partial_partitions_seen(&self) -> u64 {
        self.metrics.counter(obs::keys::SPARK_PARTIAL_PARTITIONS_SEEN)
    }
}

impl System {
    /// Run `app` on a fresh simulation of `spec` hardware with the paper's
    /// cluster layout. One call = one experiment cell.
    pub fn run<R: Send + Sync + 'static>(
        &self,
        spec: &ClusterSpec,
        cluster: ClusterConfig,
        app: impl FnOnce(&SparkContext) -> R + Send + 'static,
    ) -> RunOutcome<R> {
        self.run_with_route(spec, cluster, None, app)
    }

    /// [`System::run`] with an explicit body-routing policy override for the
    /// MPI systems (§VI-E ablations). `None` keeps each design's default;
    /// the non-MPI systems have no out-of-band plane and ignore it.
    pub fn run_with_route<R: Send + Sync + 'static>(
        &self,
        spec: &ClusterSpec,
        cluster: ClusterConfig,
        route: Option<netz::RoutePolicy>,
        app: impl FnOnce(&SparkContext) -> R + Send + 'static,
    ) -> RunOutcome<R> {
        self.run_inner(spec, cluster, route, None, app)
    }

    /// [`System::run`] with a seeded fault plan installed on the fabric
    /// before any process starts. The whole run — fault schedule, retry
    /// timing, results — is a pure function of the plan's seed.
    pub fn run_with_chaos<R: Send + Sync + 'static>(
        &self,
        spec: &ClusterSpec,
        cluster: ClusterConfig,
        plan: fabric::FaultPlan,
        app: impl FnOnce(&SparkContext) -> R + Send + 'static,
    ) -> RunOutcome<R> {
        self.run_inner(spec, cluster, None, Some(plan), app)
    }

    fn run_inner<R: Send + Sync + 'static>(
        &self,
        spec: &ClusterSpec,
        cluster: ClusterConfig,
        route: Option<netz::RoutePolicy>,
        chaos: Option<fabric::FaultPlan>,
        app: impl FnOnce(&SparkContext) -> R + Send + 'static,
    ) -> RunOutcome<R> {
        let sim = Sim::new();
        // One observability context per run: metrics always on, span
        // recording (and the timeline export below) behind the conf flag.
        let obs =
            if cluster.conf.trace_timeline { obs::Obs::traced() } else { obs::Obs::disabled() };
        let net = Net::with_obs(spec, obs.clone());
        if obs.is_traced() {
            sim.set_observer(Arc::new(obs::TaskSpans::new(&obs)));
        }
        if let Some(plan) = chaos {
            net.install_chaos(plan);
        }
        let out: OnceCell<(R, Vec<JobMetrics>)> = OnceCell::new();
        let out2 = out.clone();
        let system = *self;
        let interconnect = spec.interconnect.clone();
        let conf = cluster.conf;
        let mpi_backend = move |design: Design| {
            let mut b = mpi4spark::MpiBackend::with_conf(design, &conf);
            if let Some(p) = route {
                b = b.with_route_policy(p);
            }
            Arc::new(b)
        };
        sim.spawn("launcher", move || {
            let r = match system {
                System::Vanilla => sparklet::deploy::run_app(
                    &net,
                    &cluster,
                    Arc::new(VanillaBackend::with_conf(&conf)),
                    Arc::new(ProcessBuilderLauncher),
                    app,
                ),
                System::RdmaSpark => sparklet::deploy::run_app(
                    &net,
                    &cluster,
                    Arc::new(RdmaBackend::with_conf(&interconnect, &conf)),
                    Arc::new(ProcessBuilderLauncher),
                    app,
                ),
                System::Mpi4SparkBasic => {
                    mpi4spark::run_app_with_backend(&net, &cluster, mpi_backend(Design::Basic), app)
                }
                System::Mpi4Spark => mpi4spark::run_app_with_backend(
                    &net,
                    &cluster,
                    mpi_backend(Design::Optimized),
                    app,
                ),
            };
            out2.put(r);
        });
        sim.run().expect("simulation completes").assert_clean();
        let (result, jobs) = out.try_take().expect("workload finished");
        let metrics = obs.registry().snapshot();
        let timeline = obs.is_traced().then(|| obs.export_timeline());
        sim.shutdown();
        RunOutcome { result, jobs, metrics, timeline }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(System::Vanilla.label(), "IPoIB");
        assert_eq!(System::RdmaSpark.label(), "RDMA");
        assert_eq!(System::Mpi4Spark.label(), "MPI");
    }

    #[test]
    fn rdma_unavailable_on_omni_path() {
        let stampede = ClusterSpec::stampede2(4);
        let systems = System::available_on(&stampede);
        assert!(!systems.contains(&System::RdmaSpark));
        let frontera = ClusterSpec::frontera(4);
        assert!(System::available_on(&frontera).contains(&System::RdmaSpark));
    }
}
