//! OSU HiBD Benchmarks (OHB) RDD workloads: GroupByTest and SortByTest.
//!
//! Structure mirrors the paper's description of the stage breakdown
//! (§VII-C): job 0 generates and caches the key/value data
//! (`Job0-ResultStage`), the action job then writes the shuffle
//! (`Job{N}-ShuffleMapStage`, to RAM disk in the paper, to the block
//! manager here) and reads it back (`Job{N}-ResultStage`, "where the heavy
//! communication takes place"). SortByTest inserts a sampling job for the
//! range partitioner, which is why its breakdown names Job2 where
//! GroupByTest names Job1 — exactly as in the paper's Fig. 10.

use rand::rngs::SmallRng; // detlint: allow(D3, reason = "seeded SmallRng; every stream is derived from the workload seed")
use rand::{Rng, SeedableRng}; // detlint: allow(D3, reason = "seeded SmallRng; every stream is derived from the workload seed")
use sparklet::scheduler::{JobMetrics, SparkContext};
use sparklet::{Blob, Rdd};

/// Sizing for an OHB RDD benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct OhbConfig {
    /// Partition count (the paper sets this to total cores).
    pub partitions: usize,
    /// Real records materialized per partition (virtual payloads carry the
    /// declared data volume).
    pub records_per_partition: u64,
    /// Virtual bytes per value.
    pub value_bytes: u32,
    /// Distinct keys.
    pub key_range: u64,
    /// RNG seed.
    pub seed: u64,
}

impl OhbConfig {
    /// Paper-style sizing: `gb_per_worker` GiB per worker (weak scaling
    /// uses 14 GB/worker), one partition per core, a fixed number of real
    /// records per partition carrying the volume virtually.
    pub fn paper(workers: usize, cores_per_worker: u32, gb_per_worker: u64) -> Self {
        let partitions = workers * cores_per_worker as usize;
        let total_bytes = (gb_per_worker << 30) * workers as u64;
        let per_partition = total_bytes / partitions as u64;
        let records_per_partition = 64;
        OhbConfig {
            partitions,
            records_per_partition,
            value_bytes: (per_partition / records_per_partition) as u32,
            key_range: (partitions as u64 * records_per_partition) / 4,
            seed: 0x05B_05B,
        }
    }

    /// Total virtual bytes generated.
    pub fn total_bytes(&self) -> u64 {
        self.partitions as u64 * self.records_per_partition * u64::from(self.value_bytes)
    }
}

/// Generate and cache the key/value dataset; runs job 0 (datagen count).
pub fn generate_kv(sc: &SparkContext, cfg: OhbConfig) -> Rdd<(u64, Blob)> {
    let data = sc
        .generate(cfg.partitions, move |p| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (p as u64).wrapping_mul(0x9E37_79B9));
            (0..cfg.records_per_partition)
                .map(|_| (rng.gen_range(0..cfg.key_range), Blob::new(rng.gen(), cfg.value_bytes)))
                .collect()
        })
        .cache();
    let n = data.count();
    debug_assert_eq!(n, cfg.partitions as u64 * cfg.records_per_partition);
    data
}

/// Zipf(`exponent`)-distributed keys over `0..key_range`: `n` draws from
/// the seeded stream. Pure and deterministic — equal arguments always yield
/// the same key sequence (the reproducibility contract the skew tests and
/// `bench_aqe` rely on). Key `0` is the head of the distribution.
pub fn zipf_keys(seed: u64, n: u64, key_range: u64, exponent: f64) -> Vec<u64> {
    assert!(key_range > 0, "key_range must be positive");
    // Normalized CDF over ranks 1..=key_range with weight rank^-exponent.
    let mut cdf = Vec::with_capacity(key_range as usize);
    let mut acc = 0.0f64;
    for rank in 1..=key_range {
        acc += (rank as f64).powf(-exponent);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            // First rank whose cumulative weight covers u.
            cdf.partition_point(|&c| c < u) as u64
        })
        .collect()
}

/// Generate and cache a zipf(`exponent`)-keyed dataset — the skewed variant
/// of [`generate_kv`], same sizing and caching, hot key `0`.
pub fn generate_kv_zipf(sc: &SparkContext, cfg: OhbConfig, exponent: f64) -> Rdd<(u64, Blob)> {
    let data = sc
        .generate(cfg.partitions, move |p| {
            let part_seed = cfg.seed ^ (p as u64).wrapping_mul(0x9E37_79B9);
            let keys = zipf_keys(part_seed, cfg.records_per_partition, cfg.key_range, exponent);
            let mut rng = SmallRng::seed_from_u64(part_seed.rotate_left(17));
            keys.into_iter().map(|k| (k, Blob::new(rng.gen(), cfg.value_bytes))).collect()
        })
        .cache();
    let n = data.count();
    debug_assert_eq!(n, cfg.partitions as u64 * cfg.records_per_partition);
    data
}

/// Generate and cache a single-hot-key dataset: roughly `hot_fraction` of
/// every partition's records carry key `0`; the rest spread uniformly over
/// the remaining keys.
pub fn generate_kv_hot(sc: &SparkContext, cfg: OhbConfig, hot_fraction: f64) -> Rdd<(u64, Blob)> {
    assert!((0.0..=1.0).contains(&hot_fraction));
    let data = sc
        .generate(cfg.partitions, move |p| {
            let part_seed = cfg.seed ^ (p as u64).wrapping_mul(0x9E37_79B9);
            let mut rng = SmallRng::seed_from_u64(part_seed);
            (0..cfg.records_per_partition)
                .map(|_| {
                    let key = if rng.gen::<f64>() < hot_fraction {
                        0
                    } else {
                        rng.gen_range(1..cfg.key_range.max(2))
                    };
                    (key, Blob::new(rng.gen(), cfg.value_bytes))
                })
                .collect()
        })
        .cache();
    let n = data.count();
    debug_assert_eq!(n, cfg.partitions as u64 * cfg.records_per_partition);
    data
}

/// OHB GroupByTest: datagen job + `groupByKey().count()` job.
/// Returns the number of groups.
pub fn group_by_app(sc: &SparkContext, cfg: OhbConfig) -> u64 {
    let data = generate_kv(sc, cfg);
    data.group_by_key(cfg.partitions).count()
}

/// GroupByTest over zipf-keyed data — the skew cell of `bench_aqe`.
pub fn group_by_zipf_app(sc: &SparkContext, cfg: OhbConfig, exponent: f64) -> u64 {
    let data = generate_kv_zipf(sc, cfg, exponent);
    data.group_by_key(cfg.partitions).count()
}

/// SortByTest over zipf-keyed data.
pub fn sort_by_zipf_app(sc: &SparkContext, cfg: OhbConfig, exponent: f64) -> u64 {
    let data = generate_kv_zipf(sc, cfg, exponent);
    data.sort_by_key(cfg.partitions).count()
}

/// OHB SortByTest: datagen job + sampling job + `sortByKey().count()` job.
/// Returns the record count (which the sort must preserve).
pub fn sort_by_app(sc: &SparkContext, cfg: OhbConfig) -> u64 {
    let data = generate_kv(sc, cfg);
    data.sort_by_key(cfg.partitions).count()
}

/// The paper's Fig. 10/11 stage breakdown, extracted from job metrics.
#[derive(Debug, Clone, Copy)]
pub struct StageBreakdown {
    /// `Job0-ResultStage`: data generation.
    pub datagen_ns: u64,
    /// `Job{N}-ShuffleMapStage`: shuffle write.
    pub shuffle_write_ns: u64,
    /// `Job{N}-ResultStage`: shuffle read ("the heavy communication").
    pub shuffle_read_ns: u64,
    /// Everything else (SortBy's sampling job).
    pub other_ns: u64,
}

impl StageBreakdown {
    /// Extract the breakdown from a run's job metrics (job 0 = datagen,
    /// last job = the shuffle action, anything between = sampling etc.).
    pub fn from_jobs(jobs: &[JobMetrics]) -> Self {
        assert!(jobs.len() >= 2, "need datagen + action jobs");
        let datagen_ns = jobs[0].duration_ns();
        let action = jobs.last().unwrap();
        let shuffle_write_ns = action.stage_duration("ShuffleMapStage").unwrap_or(0);
        let shuffle_read_ns = action.stage_duration("ResultStage").unwrap_or(0);
        let other_ns: u64 = jobs[1..jobs.len() - 1].iter().map(JobMetrics::duration_ns).sum();
        StageBreakdown { datagen_ns, shuffle_write_ns, shuffle_read_ns, other_ns }
    }

    /// Total across accounted stages.
    pub fn total_ns(&self) -> u64 {
        self.datagen_ns + self.shuffle_write_ns + self.shuffle_read_ns + self.other_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use fabric::ClusterSpec;
    use sparklet::deploy::ClusterConfig;
    use sparklet::SparkConf;

    fn tiny() -> OhbConfig {
        OhbConfig {
            partitions: 8,
            records_per_partition: 24,
            value_bytes: 1 << 14,
            key_range: 40,
            seed: 7,
        }
    }

    fn cluster() -> (ClusterSpec, ClusterConfig) {
        let spec = ClusterSpec::test(4); // 2 workers
        let mut conf = SparkConf::default();
        conf.executor_cores = 4;
        conf.cost.task_overhead_ns = 10_000;
        (spec.clone(), ClusterConfig::paper_layout(spec.len(), conf))
    }

    #[test]
    fn paper_sizing_matches_totals() {
        let cfg = OhbConfig::paper(8, 56, 14);
        assert_eq!(cfg.partitions, 448);
        // 8 workers × 14 GiB each.
        let expect = 8u64 * (14 << 30);
        let got = cfg.total_bytes();
        assert!((got as i64 - expect as i64).unsigned_abs() < expect / 100, "{got} vs {expect}");
    }

    #[test]
    fn group_by_counts_groups() {
        let (spec, cluster) = cluster();
        let cfg = tiny();
        let out = System::Vanilla.run(&spec, cluster, move |sc| group_by_app(sc, cfg));
        // Groups ≤ key_range, > 0; with 192 records over 40 keys nearly all
        // keys appear.
        assert!(out.result > 30 && out.result <= 40, "groups = {}", out.result);
        let b = StageBreakdown::from_jobs(&out.jobs);
        assert!(b.datagen_ns > 0 && b.shuffle_write_ns > 0 && b.shuffle_read_ns > 0);
        assert_eq!(out.jobs.len(), 2);
    }

    #[test]
    fn sort_by_preserves_count_and_adds_sampling_job() {
        let (spec, cluster) = cluster();
        let cfg = tiny();
        let out = System::Vanilla.run(&spec, cluster, move |sc| sort_by_app(sc, cfg));
        assert_eq!(out.result, 8 * 24);
        assert_eq!(out.jobs.len(), 3, "datagen + sample + sort");
        // Paper naming: the sort job is Job2.
        assert!(out.jobs[2].stages.iter().any(|s| s.name.starts_with("Job2-")));
    }

    #[test]
    fn zipf_histogram_is_reproducible_by_seed() {
        let a = zipf_keys(42, 4_000, 32, 1.1);
        let b = zipf_keys(42, 4_000, 32, 1.1);
        assert_eq!(a, b, "same seed must yield the same key sequence");
        let c = zipf_keys(43, 4_000, 32, 1.1);
        assert_ne!(a, c, "different seeds should diverge");

        let histogram = |keys: &[u64]| {
            let mut h = vec![0u64; 32];
            for &k in keys {
                h[k as usize] += 1;
            }
            h
        };
        let ha = histogram(&a);
        assert_eq!(ha, histogram(&b));
        // Zipf(1.1) head dominance: key 0 is the most frequent by a wide
        // margin, and frequency decays with rank.
        assert!(ha[0] > 3 * ha[8], "head not dominant: {ha:?}");
        assert!(ha[0] > ha[1] && ha[1] > ha[4], "no rank decay: {ha:?}");
        assert_eq!(ha.iter().sum::<u64>(), 4_000);
        assert!(a.iter().all(|&k| k < 32));
    }

    #[test]
    fn zipf_datagen_is_deterministic_and_skewed() {
        let (spec, cluster) = cluster();
        let cfg = tiny();
        let a = System::Vanilla.run(&spec, cluster.clone(), move |sc| {
            generate_kv_zipf(sc, cfg, 1.1).map(|(k, _)| (k, 1u64)).count_by_key()
        });
        let b = System::Vanilla.run(&spec, cluster, move |sc| {
            generate_kv_zipf(sc, cfg, 1.1).map(|(k, _)| (k, 1u64)).count_by_key()
        });
        assert_eq!(a.result, b.result, "zipf datagen must replay identically");
        let hot = a.result.iter().find(|(k, _)| *k == 0).map(|(_, n)| *n).unwrap_or(0);
        let total: u64 = a.result.iter().map(|(_, n)| *n).sum();
        assert_eq!(total, 8 * 24);
        assert!(hot * 4 > total, "key 0 should dominate: {hot}/{total}");
    }

    #[test]
    fn hot_key_datagen_concentrates_on_key_zero() {
        let (spec, cluster) = cluster();
        let cfg = tiny();
        let out = System::Vanilla.run(&spec, cluster, move |sc| {
            generate_kv_hot(sc, cfg, 0.7).map(|(k, _)| (k, 1u64)).count_by_key()
        });
        let hot = out.result.iter().find(|(k, _)| *k == 0).map(|(_, n)| *n).unwrap_or(0);
        let total: u64 = out.result.iter().map(|(_, n)| *n).sum();
        assert!(hot * 2 > total, "key 0 should hold most records: {hot}/{total}");
    }

    #[test]
    fn datagen_is_deterministic_per_seed() {
        let (spec, cluster) = cluster();
        let cfg = tiny();
        let a = System::Vanilla.run(&spec, cluster.clone(), move |sc| group_by_app(sc, cfg));
        let b = System::Vanilla.run(&spec, cluster, move |sc| group_by_app(sc, cfg));
        assert_eq!(a.result, b.result);
        assert_eq!(a.total_ns(), b.total_ns());
    }
}
