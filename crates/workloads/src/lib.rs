//! # workloads — the paper's benchmark suites (Table IV)
//!
//! | Suite | Workload | Module | Category |
//! |---|---|---|---|
//! | OHB | GroupByTest | [`ohb`] | RDD benchmark |
//! | OHB | SortByTest | [`ohb`] | RDD benchmark |
//! | HiBench | Repartition | [`micro`] | Micro benchmark |
//! | HiBench | TeraSort | [`micro`] | Micro benchmark |
//! | HiBench | NWeight | [`graph`] | Graph processing |
//! | HiBench | LR / SVM / GMM / LDA | [`ml`] | Machine learning |
//!
//! [`system::System`] is the unified runner: the same workload closure runs
//! under Vanilla Spark, RDMA-Spark, MPI4Spark-Basic, or
//! MPI4Spark-Optimized on identical simulated hardware.

pub mod graph;
pub mod micro;
pub mod ml;
pub mod ohb;
pub mod system;

pub use system::{RunOutcome, System};
