//! Intel HiBench micro benchmarks: Repartition and TeraSort (Table IV).

use rand::rngs::SmallRng; // detlint: allow(D3, reason = "seeded SmallRng; every stream is derived from the workload seed")
use rand::{Rng, SeedableRng}; // detlint: allow(D3, reason = "seeded SmallRng; every stream is derived from the workload seed")
use sparklet::scheduler::SparkContext;
use sparklet::Blob;

/// Sizing for the micro benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct MicroConfig {
    /// Partition count.
    pub partitions: usize,
    /// Real records per partition.
    pub records_per_partition: u64,
    /// Virtual bytes per record (TeraSort's canonical records are 100 B;
    /// HiBench Huge inflates volume — carried virtually here).
    pub record_bytes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl MicroConfig {
    /// HiBench-Huge-style sizing over `workers × cores` partitions with
    /// `gb_total` GiB of data.
    pub fn huge(workers: usize, cores_per_worker: u32, gb_total: u64) -> Self {
        let partitions = workers * cores_per_worker as usize;
        let per_part = (gb_total << 30) / partitions as u64;
        let records_per_partition = 64;
        MicroConfig {
            partitions,
            records_per_partition,
            record_bytes: (per_part / records_per_partition) as u32,
            seed: 0x41B0,
        }
    }
}

/// HiBench Repartition: "benchmarks shuffle performance" — a pure
/// all-to-all redistribution. Returns the (preserved) record count.
pub fn repartition_app(sc: &SparkContext, cfg: MicroConfig) -> u64 {
    let data = sc
        .generate(cfg.partitions, move |p| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ p as u64);
            (0..cfg.records_per_partition).map(|_| Blob::new(rng.gen(), cfg.record_bytes)).collect()
        })
        .cache();
    data.count();
    data.map_partitions(|ctx, recs| {
        // HiBench reads the input split from HDFS at the start of the map
        // stage (transport-independent I/O).
        let bytes: u64 = recs.iter().map(sparklet::Element::virtual_size).sum();
        ctx.services.net.disk_write(ctx.services.node, bytes);
        recs
    })
    .repartition(cfg.partitions)
    .map_partitions(|ctx, recs| {
        // HiBench writes the repartitioned output back to HDFS
        // (single-replica benchmark configuration).
        let bytes: u64 = recs.iter().map(sparklet::Element::virtual_size).sum();
        ctx.services.net.disk_write(ctx.services.node, bytes);
        recs
    })
    .count()
}

/// HiBench TeraSort: sort 100-byte-class records by key. Returns the
/// record count (the sort must preserve it; ordering is asserted by tests
/// via `collect`).
pub fn terasort_app(sc: &SparkContext, cfg: MicroConfig) -> u64 {
    let data = sc
        .generate(cfg.partitions, move |p| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (p as u64) << 7);
            (0..cfg.records_per_partition)
                .map(|_| {
                    (rng.gen::<u64>(), Blob::new(rng.gen(), cfg.record_bytes.saturating_sub(10)))
                })
                .collect::<Vec<(u64, Blob)>>()
        })
        .cache();
    data.count();
    data.map_partitions(|ctx, recs| {
        // HDFS input read for the map stage.
        let bytes: u64 = recs.iter().map(sparklet::Element::virtual_size).sum();
        ctx.services.net.disk_write(ctx.services.node, bytes);
        recs
    })
    .sort_by_key(cfg.partitions)
    .map_partitions(|ctx, recs| {
        let bytes: u64 = recs.iter().map(sparklet::Element::virtual_size).sum();
        // Canonical TeraSort sorts 100-byte records: charge the
        // comparison work for the *virtual* record population (the real
        // records here are few and huge).
        ctx.charge(ctx.cost().sort(bytes / 100, 0));
        // Output lands on HDFS with the default replication of 3.
        ctx.services.net.disk_write(ctx.services.node, bytes * 3);
        recs
    })
    .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use fabric::ClusterSpec;
    use sparklet::deploy::ClusterConfig;
    use sparklet::SparkConf;

    fn setup() -> (ClusterSpec, ClusterConfig, MicroConfig) {
        let spec = ClusterSpec::test(4);
        let mut conf = SparkConf::default();
        conf.executor_cores = 4;
        conf.cost.task_overhead_ns = 10_000;
        let cfg = MicroConfig {
            partitions: 8,
            records_per_partition: 20,
            record_bytes: 1 << 12,
            seed: 11,
        };
        (spec.clone(), ClusterConfig::paper_layout(spec.len(), conf), cfg)
    }

    #[test]
    fn repartition_preserves_count() {
        let (spec, cluster, cfg) = setup();
        let out = System::Vanilla.run(&spec, cluster, move |sc| repartition_app(sc, cfg));
        assert_eq!(out.result, 160);
        assert_eq!(out.jobs.len(), 2);
    }

    #[test]
    fn terasort_preserves_count_and_orders() {
        let (spec, cluster, cfg) = setup();
        let out = System::Vanilla.run(&spec, cluster.clone(), move |sc| terasort_app(sc, cfg));
        assert_eq!(out.result, 160);
        // Ordering check on a collected variant.
        let out2 = System::Vanilla.run(&spec, cluster, move |sc| {
            let data = sc.generate(cfg.partitions, move |p| {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (p as u64) << 7);
                (0..cfg.records_per_partition)
                    .map(|_| (rng.gen::<u64>(), Blob::new(rng.gen(), 90)))
                    .collect::<Vec<(u64, Blob)>>()
            });
            data.sort_by_key(cfg.partitions).collect()
        });
        let keys: Vec<u64> = out2.result.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn huge_sizing_is_consistent() {
        let cfg = MicroConfig::huge(16, 56, 300);
        assert_eq!(cfg.partitions, 896);
        let total = cfg.partitions as u64 * cfg.records_per_partition * u64::from(cfg.record_bytes);
        assert!(total > 290 << 30 && total <= 300 << 30, "total={total}");
    }
}
