//! Intel HiBench machine-learning workloads (Table IV): Logistic
//! Regression, SVM, Gaussian Mixture Model, and LDA.
//!
//! Each is a genuine iterative algorithm computing real numbers on
//! synthetic data, with MLlib's communication shape: per iteration the
//! executors compute partial aggregates and combine them through a shuffle
//! (`treeAggregate` analog: map-side partials → `reduceByKey` over a small
//! number of aggregation partitions → collect). Partial-aggregate payloads
//! carry a configurable virtual pad, standing in for the large model/stat
//! vectors of HiBench-Huge (LDA's word-topic matrix is the largest, which
//! is why LDA shows the paper's biggest ML speedup, Fig. 12a).

use std::sync::Arc;

use rand::rngs::SmallRng; // detlint: allow(D3, reason = "seeded SmallRng; every stream is derived from the workload seed")
use rand::{Rng, SeedableRng}; // detlint: allow(D3, reason = "seeded SmallRng; every stream is derived from the workload seed")
use sparklet::scheduler::SparkContext;
use sparklet::{Blob, Rdd};

/// Sizing for the gradient-descent workloads (LR, SVM) and GMM.
#[derive(Debug, Clone, Copy)]
pub struct MlConfig {
    /// Data partitions.
    pub partitions: usize,
    /// Real samples per partition.
    pub samples_per_partition: u64,
    /// Virtual samples per partition: the HiBench-Huge population the
    /// compute charges represent (real math runs on the small real sample;
    /// the cost model charges for this many).
    pub virtual_samples_per_partition: u64,
    /// Feature dimension (real math runs on it).
    pub dim: usize,
    /// Gradient-descent / EM iterations.
    pub iterations: usize,
    /// Aggregation partitions for the treeAggregate shuffle.
    pub agg_partitions: usize,
    /// Virtual pad per partial aggregate (models Huge-scale stat vectors).
    pub pad_bytes: u32,
    /// RNG seed.
    pub seed: u64,
}

fn vec_add(mut a: Vec<f64>, b: &[f64]) -> Vec<f64> {
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// Generate a cached, labeled dataset: `label ∈ {0,1}` from a hidden
/// hyperplane. Runs job 0 (datagen + cache).
pub fn labeled_points(sc: &SparkContext, cfg: MlConfig) -> Rdd<(f64, Vec<f64>)> {
    let data = sc
        .generate(cfg.partitions, move |p| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (p as u64) << 17);
            let mut true_w = SmallRng::seed_from_u64(cfg.seed);
            let w: Vec<f64> = (0..cfg.dim).map(|_| true_w.gen_range(-1.0..1.0)).collect();
            (0..cfg.samples_per_partition)
                .map(|_| {
                    let x: Vec<f64> = (0..cfg.dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let dot: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
                    let label = if dot > 0.0 { 1.0 } else { 0.0 };
                    (label, x)
                })
                .collect()
        })
        .cache();
    data.count();
    data
}

/// One treeAggregate round: per-partition partial vectors combined through
/// a `reduceByKey` shuffle, collected at the driver.
fn tree_aggregate(
    data: &Rdd<(f64, Vec<f64>)>,
    cfg: MlConfig,
    partial: Arc<dyn Fn(&[(f64, Vec<f64>)]) -> Vec<f64> + Send + Sync>,
    flops_per_sample: u64,
) -> Vec<f64> {
    let agg = cfg.agg_partitions.max(1);
    let partials: Rdd<(u32, (Vec<f64>, Blob))> = data.map_partitions(move |ctx, recs| {
        let flops = cfg.virtual_samples_per_partition.max(recs.len() as u64) * flops_per_sample;
        ctx.charge((flops as f64 * ctx.cost().flop_ns) as u64);
        let g = partial(&recs);
        let key = (ctx.partition % agg) as u32;
        vec![(key, (g, Blob::new(ctx.partition as u64, cfg.pad_bytes)))]
    });
    let reduced = partials.reduce_by_key(agg, |(g1, b), (g2, _)| (vec_add(g1, &g2), b));
    let chunks = reduced.collect();
    let mut total: Option<Vec<f64>> = None;
    for (_, (g, _)) in chunks {
        total = Some(match total {
            None => g,
            Some(t) => vec_add(t, &g),
        });
    }
    total.expect("non-empty aggregate")
}

/// Outcome of an iterative ML run.
#[derive(Debug, Clone)]
pub struct MlResult {
    /// Final training loss (or negative log-likelihood).
    pub final_loss: f64,
    /// Loss per iteration.
    pub loss_history: Vec<f64>,
}

/// Logistic Regression via batch gradient descent (HiBench "LR").
pub fn lr_app(sc: &SparkContext, cfg: MlConfig) -> MlResult {
    let data = labeled_points(sc, cfg);
    let n_total = (cfg.partitions as u64 * cfg.samples_per_partition) as f64;
    let mut w = vec![0.0f64; cfg.dim];
    let mut history = Vec::with_capacity(cfg.iterations);
    for _ in 0..cfg.iterations {
        let w_now = w.clone();
        let dim = cfg.dim;
        let agg = tree_aggregate(
            &data,
            cfg,
            Arc::new(move |recs| {
                // partial = [grad(dim) | loss | count]
                let mut out = vec![0.0; dim + 2];
                for (y, x) in recs {
                    let z: f64 = w_now.iter().zip(x).map(|(a, b)| a * b).sum();
                    let p = 1.0 / (1.0 + (-z).exp());
                    for (g, xi) in out[..dim].iter_mut().zip(x) {
                        *g += (p - y) * xi;
                    }
                    out[dim] -= y * p.max(1e-12).ln() + (1.0 - y) * (1.0 - p).max(1e-12).ln();
                    out[dim + 1] += 1.0;
                }
                out
            }),
            (cfg.dim as u64) * 4,
        );
        let loss = agg[cfg.dim] / n_total;
        history.push(loss);
        for (wi, gi) in w.iter_mut().zip(&agg[..cfg.dim]) {
            *wi -= 1.0 * gi / n_total;
        }
    }
    MlResult { final_loss: *history.last().unwrap(), loss_history: history }
}

/// Support Vector Machine via hinge-loss subgradient descent (HiBench
/// "SVM"; labels remapped to ±1).
pub fn svm_app(sc: &SparkContext, cfg: MlConfig) -> MlResult {
    let data = labeled_points(sc, cfg);
    let n_total = (cfg.partitions as u64 * cfg.samples_per_partition) as f64;
    let reg = 1e-3;
    let mut w = vec![0.0f64; cfg.dim];
    let mut history = Vec::with_capacity(cfg.iterations);
    for _ in 0..cfg.iterations {
        let w_now = w.clone();
        let dim = cfg.dim;
        let agg = tree_aggregate(
            &data,
            cfg,
            Arc::new(move |recs| {
                let mut out = vec![0.0; dim + 2];
                for (y01, x) in recs {
                    let y = if *y01 > 0.5 { 1.0 } else { -1.0 };
                    let z: f64 = w_now.iter().zip(x).map(|(a, b)| a * b).sum();
                    let margin = y * z;
                    if margin < 1.0 {
                        for (g, xi) in out[..dim].iter_mut().zip(x) {
                            *g -= y * xi;
                        }
                        out[dim] += 1.0 - margin;
                    }
                    out[dim + 1] += 1.0;
                }
                out
            }),
            (cfg.dim as u64) * 3,
        );
        let loss = agg[cfg.dim] / n_total + 0.5 * reg * w.iter().map(|x| x * x).sum::<f64>();
        history.push(loss);
        for (wi, gi) in w.iter_mut().zip(&agg[..cfg.dim]) {
            *wi = (1.0 - reg) * *wi - 0.5 * gi / n_total;
        }
    }
    MlResult { final_loss: *history.last().unwrap(), loss_history: history }
}

/// Gaussian Mixture Model via EM with `k` isotropic components (HiBench
/// "GMM"). Data are drawn from `k` well-separated clusters.
pub fn gmm_app(sc: &SparkContext, cfg: MlConfig, k: usize) -> MlResult {
    let dim = cfg.dim;
    // Cluster centers at ±3 on alternating axes.
    let data = sc
        .generate(cfg.partitions, move |p| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (p as u64) << 21);
            (0..cfg.samples_per_partition)
                .map(|_| {
                    let c = rng.gen_range(0..k);
                    let x: Vec<f64> = (0..dim)
                        .map(|d| {
                            let center = if d % k == c { 3.0 } else { -3.0 };
                            center + rng.gen_range(-0.5..0.5)
                        })
                        .collect();
                    (c as f64, x)
                })
                .collect()
        })
        .cache();
    data.count();
    let n_total = (cfg.partitions as u64 * cfg.samples_per_partition) as f64;

    // means[k][dim], weights[k]
    let mut means: Vec<Vec<f64>> =
        (0..k).map(|c| (0..dim).map(|d| if d % k == c { 1.0 } else { -1.0 }).collect()).collect();
    let mut mix = vec![1.0 / k as f64; k];
    let mut history = Vec::with_capacity(cfg.iterations);
    for _ in 0..cfg.iterations {
        let means_now = means.clone();
        let mix_now = mix.clone();
        let agg = tree_aggregate(
            &data,
            cfg,
            Arc::new(move |recs| {
                // stats = [per comp: r, r*x(dim)] + [loglik]
                let mut out = vec![0.0; k * (dim + 1) + 1];
                for (_, x) in recs {
                    let mut resp = vec![0.0; k];
                    let mut norm = 0.0;
                    for c in 0..k {
                        let d2: f64 =
                            means_now[c].iter().zip(x).map(|(m, xi)| (xi - m) * (xi - m)).sum();
                        resp[c] = mix_now[c] * (-0.5 * d2).exp().max(1e-300);
                        norm += resp[c];
                    }
                    out[k * (dim + 1)] += norm.max(1e-300).ln();
                    for c in 0..k {
                        let r = resp[c] / norm;
                        out[c * (dim + 1)] += r;
                        for (d, xi) in x.iter().enumerate() {
                            out[c * (dim + 1) + 1 + d] += r * xi;
                        }
                    }
                }
                out
            }),
            (k * dim * 6) as u64,
        );
        let loglik = agg[k * (dim + 1)] / n_total;
        history.push(-loglik);
        for c in 0..k {
            let r_sum = agg[c * (dim + 1)].max(1e-12);
            mix[c] = r_sum / n_total;
            for d in 0..dim {
                means[c][d] = agg[c * (dim + 1) + 1 + d] / r_sum;
            }
        }
    }
    MlResult { final_loss: *history.last().unwrap(), loss_history: history }
}

/// LDA-shaped workload: EM over a mixture-of-unigrams topic model.
///
/// Per iteration every token emits `(word, weighted topic vector)` and the
/// word-topic matrix is rebuilt by a `reduceByKey` over the vocabulary —
/// the heaviest per-iteration shuffle of the four ML workloads, matching
/// LDA's position in the paper's Fig. 12(a).
pub fn lda_app(sc: &SparkContext, cfg: MlConfig, vocab: usize, topics: usize) -> MlResult {
    // Tokens: (word, count), words drawn from per-partition topic biases.
    let data = sc
        .generate(cfg.partitions, move |p| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (p as u64) << 11);
            let bias = p % topics;
            (0..cfg.samples_per_partition)
                .map(|_| {
                    let word = if rng.gen_bool(0.7) {
                        // Biased towards this partition's topic slice.
                        (bias * vocab / topics + rng.gen_range(0..vocab / topics)) as u64
                    } else {
                        rng.gen_range(0..vocab as u64)
                    };
                    (word, 1.0f64 + rng.gen_range(0.0..3.0))
                })
                .collect()
        })
        .cache();
    data.count();

    // phi[t][w]: topic-word probabilities.
    let mut phi: Vec<Vec<f64>> = (0..topics)
        .map(|t| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ t as u64);
            let mut row: Vec<f64> = (0..vocab).map(|_| rng.gen_range(0.5..1.5)).collect();
            let s: f64 = row.iter().sum();
            row.iter_mut().for_each(|x| *x /= s);
            row
        })
        .collect();
    let mut history = Vec::with_capacity(cfg.iterations);
    for _ in 0..cfg.iterations {
        let phi_now = Arc::new(phi.clone());
        let pad = cfg.pad_bytes;
        let phi_for_map = phi_now.clone();
        // E-step: token responsibilities, emitted per word.
        let contrib: Rdd<(u64, (Vec<f64>, Blob))> = data.map_partitions(move |ctx, toks| {
            let virt = cfg.virtual_samples_per_partition.max(toks.len() as u64);
            ctx.charge(((virt * topics as u64 * 4) as f64 * ctx.cost().flop_ns) as u64);
            toks.into_iter()
                .map(|(w, c)| {
                    let mut r: Vec<f64> =
                        (0..topics).map(|t| phi_for_map[t][w as usize].max(1e-12)).collect();
                    let s: f64 = r.iter().sum();
                    r.iter_mut().for_each(|x| *x = *x / s * c);
                    (w, (r, Blob::new(w, pad)))
                })
                .collect()
        });
        // M-step shuffle: word-topic counts across the vocabulary.
        let counts =
            contrib.reduce_by_key(cfg.agg_partitions.max(1), |(a, b), (c, _)| (vec_add(a, &c), b));
        let rows = counts.collect();
        let mut new_phi = vec![vec![1e-9; vocab]; topics];
        let mut loglik = 0.0;
        for (w, (r, _)) in rows {
            let tot: f64 = r.iter().sum();
            loglik += tot
                * (0..topics)
                    .map(|t| phi_now[t][w as usize] * r[t] / tot.max(1e-12))
                    .sum::<f64>()
                    .max(1e-300)
                    .ln();
            for t in 0..topics {
                new_phi[t][w as usize] += r[t];
            }
        }
        for row in new_phi.iter_mut() {
            let s: f64 = row.iter().sum();
            row.iter_mut().for_each(|x| *x /= s);
        }
        phi = new_phi;
        history.push(-loglik);
    }
    MlResult { final_loss: *history.last().unwrap(), loss_history: history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use fabric::ClusterSpec;
    use sparklet::deploy::ClusterConfig;
    use sparklet::SparkConf;

    fn setup() -> (ClusterSpec, ClusterConfig, MlConfig) {
        let spec = ClusterSpec::test(4);
        let mut conf = SparkConf::default();
        conf.executor_cores = 4;
        conf.cost.task_overhead_ns = 10_000;
        let cfg = MlConfig {
            partitions: 6,
            samples_per_partition: 150,
            virtual_samples_per_partition: 150,
            dim: 6,
            iterations: 6,
            agg_partitions: 3,
            pad_bytes: 4096,
            seed: 42,
        };
        (spec.clone(), ClusterConfig::paper_layout(spec.len(), conf), cfg)
    }

    #[test]
    fn lr_loss_decreases() {
        let (spec, cluster, cfg) = setup();
        let out = System::Vanilla.run(&spec, cluster, move |sc| lr_app(sc, cfg));
        let h = &out.result.loss_history;
        assert_eq!(h.len(), 6);
        assert!(h.last().unwrap() < h.first().unwrap(), "history = {h:?}");
        assert!(out.result.final_loss < 0.69, "worse than chance: {}", out.result.final_loss);
    }

    #[test]
    fn svm_loss_decreases() {
        let (spec, cluster, cfg) = setup();
        let out = System::Vanilla.run(&spec, cluster, move |sc| svm_app(sc, cfg));
        let h = &out.result.loss_history;
        assert!(h.last().unwrap() < h.first().unwrap(), "history = {h:?}");
    }

    #[test]
    fn gmm_likelihood_improves() {
        let (spec, cluster, mut cfg) = setup();
        cfg.dim = 4;
        cfg.iterations = 5;
        let out = System::Vanilla.run(&spec, cluster, move |sc| gmm_app(sc, cfg, 2));
        let h = &out.result.loss_history;
        assert!(
            h.last().unwrap() <= h.first().unwrap(),
            "negative log-likelihood should not increase: {h:?}"
        );
    }

    #[test]
    fn training_trajectories_identical_across_transports() {
        // Transports must not alter the math: the per-iteration loss
        // history is bitwise identical under Vanilla and MPI4Spark.
        let (spec, _, cfg) = setup();
        let cluster = || {
            let mut conf = sparklet::SparkConf::default();
            conf.executor_cores = 4;
            conf.cost.task_overhead_ns = 10_000;
            sparklet::deploy::ClusterConfig::paper_layout(spec.len(), conf)
        };
        let a = System::Vanilla.run(&spec, cluster(), move |sc| lr_app(sc, cfg));
        let b = System::Mpi4Spark.run(&spec, cluster(), move |sc| lr_app(sc, cfg));
        assert_eq!(a.result.loss_history, b.result.loss_history);
    }

    #[test]
    fn lda_runs_and_improves() {
        let (spec, cluster, mut cfg) = setup();
        cfg.iterations = 4;
        let out = System::Vanilla.run(&spec, cluster, move |sc| lda_app(sc, cfg, 32, 4));
        let h = &out.result.loss_history;
        assert_eq!(h.len(), 4);
        assert!(h.last().unwrap() <= h.first().unwrap(), "history = {h:?}");
        // Iterations produce per-iteration shuffle jobs: datagen + 4.
        assert!(out.jobs.len() >= 5);
    }
}
