//! Intel HiBench graph workload: NWeight — "computes associations between
//! two vertices that are n-hop away" (Table IV).
//!
//! Path weights propagate by iterated join: paths of length *k* ending at
//! vertex *v* join the adjacency list of *v* to form length-*k+1* paths,
//! with per-(origin, destination) weights combined by summation of path
//! products. Each hop is a join (two shuffles) plus a reduceByKey — the
//! multi-shuffle-per-iteration pattern that makes NWeight communication
//! heavy in HiBench.

use rand::rngs::SmallRng; // detlint: allow(D3, reason = "seeded SmallRng; every stream is derived from the workload seed")
use rand::{Rng, SeedableRng}; // detlint: allow(D3, reason = "seeded SmallRng; every stream is derived from the workload seed")
use sparklet::scheduler::SparkContext;
use sparklet::{Blob, Rdd};

/// NWeight sizing.
#[derive(Debug, Clone, Copy)]
pub struct NWeightConfig {
    /// Vertex count.
    pub vertices: u64,
    /// Out-degree per vertex.
    pub degree: usize,
    /// Path length (HiBench default is 3 hops).
    pub hops: usize,
    /// Partition count.
    pub partitions: usize,
    /// Virtual padding carried per path record (models HiBench's row
    /// metadata; keeps the shuffle volume paper-scale without real bytes).
    pub payload_pad: u32,
    /// RNG seed.
    pub seed: u64,
}

/// One weighted path/edge endpoint record.
type PathRecord = (u64, ((u64, f64), Blob));

/// Build the adjacency RDD keyed by source: `(src, ((dst, weight), pad))`.
pub fn adjacency(sc: &SparkContext, cfg: NWeightConfig) -> Rdd<PathRecord> {
    let per_part = cfg.vertices / cfg.partitions as u64;
    sc.generate(cfg.partitions, move |p| {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (p as u64) << 13);
        let lo = p as u64 * per_part;
        let hi = if p + 1 == cfg.partitions { cfg.vertices } else { lo + per_part };
        let mut out = Vec::with_capacity(((hi - lo) as usize) * cfg.degree);
        for v in lo..hi {
            for _ in 0..cfg.degree {
                let dst = rng.gen_range(0..cfg.vertices);
                let w: f64 = rng.gen_range(0.1..1.0);
                out.push((v, ((dst, w), Blob::new(v ^ dst, cfg.payload_pad))));
            }
        }
        out
    })
}

/// Run NWeight: returns the number of distinct (origin, destination) pairs
/// with a non-zero n-hop association.
pub fn nweight_app(sc: &SparkContext, cfg: NWeightConfig) -> u64 {
    let adj = adjacency(sc, cfg).cache();
    adj.count(); // job 0: datagen

    // Length-1 paths keyed by their endpoint: (end, ((origin, weight), pad)).
    let mut paths: Rdd<PathRecord> = adj.map(|(src, ((dst, w), b))| (dst, ((src, w), b)));

    for _hop in 1..cfg.hops {
        // Join paths ending at v with v's out-edges.
        let joined = paths.join(&adj.clone(), cfg.partitions);
        // Extend: new endpoint = edge dst; weight = product.
        let extended: Rdd<((u64, u64), (f64, Blob))> =
            joined.map(move |(_via, (((origin, w1), b), ((dst, w2), _b2)))| {
                ((origin, dst), (w1 * w2, b))
            });
        // Combine parallel paths per (origin, destination).
        let combined = extended
            .map(|(k, (w, b))| (k, (w, b)))
            .reduce_by_key(cfg.partitions, |(w1, b), (w2, _)| (w1 + w2, b));
        paths = combined.map(|((origin, dst), (w, b))| (dst, ((origin, w), b)));
    }
    paths
        .map(|(dst, ((origin, w), _b))| ((origin, dst), w))
        .reduce_by_key(cfg.partitions, |a, b| a + b)
        .filter(|(_, w)| *w > 0.0)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use fabric::ClusterSpec;
    use sparklet::deploy::ClusterConfig;
    use sparklet::SparkConf;

    fn setup() -> (ClusterSpec, ClusterConfig) {
        let spec = ClusterSpec::test(4);
        let mut conf = SparkConf::default();
        conf.executor_cores = 4;
        conf.cost.task_overhead_ns = 10_000;
        (spec.clone(), ClusterConfig::paper_layout(spec.len(), conf))
    }

    #[test]
    fn two_hop_associations_exist_and_are_bounded() {
        let (spec, cluster) = setup();
        let cfg = NWeightConfig {
            vertices: 60,
            degree: 3,
            hops: 2,
            partitions: 6,
            payload_pad: 256,
            seed: 3,
        };
        let out = System::Vanilla.run(&spec, cluster, move |sc| nweight_app(sc, cfg));
        // At most degree^2 × V distinct 2-hop pairs; at least some exist.
        assert!(out.result > 0);
        assert!(out.result <= 60 * 9, "pairs = {}", out.result);
        // Each hop adds shuffles: expect several jobs.
        assert!(out.jobs.len() >= 2);
    }

    #[test]
    fn one_hop_equals_edge_pairs() {
        let (spec, cluster) = setup();
        let cfg = NWeightConfig {
            vertices: 40,
            degree: 2,
            hops: 1,
            partitions: 4,
            payload_pad: 64,
            seed: 9,
        };
        let out = System::Vanilla.run(&spec, cluster, move |sc| nweight_app(sc, cfg));
        // 40 vertices × 2 edges = 80 directed pairs, minus duplicate
        // (src,dst) collisions from the random generator.
        assert!(out.result > 40 && out.result <= 80, "pairs = {}", out.result);
    }
}
