//! Deterministic timeline export through the full stack: running the same
//! workload twice with `trace_timeline` on must produce *byte-identical*
//! Chrome-trace JSON — the virtual clock, the span id counter, and the
//! exporter's key ordering are all pure functions of the (seedless) program.
//! Also pins that tracing is observation-only: it must not move a single
//! virtual timestamp.

use fabric::ClusterSpec;
use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;
use workloads::{RunOutcome, System};

fn run(trace: bool) -> RunOutcome<Vec<(u64, Vec<u64>)>> {
    let spec = ClusterSpec::test(5);
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.trace_timeline = trace;
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    System::Mpi4Spark.run(&spec, cluster, |sc| {
        let pairs: Vec<(u64, u64)> = (0..120u64).map(|i| (i % 11, i)).collect();
        let mut groups = sc.parallelize(pairs, 6).group_by_key(4).collect();
        groups.sort_by_key(|(k, _)| *k);
        groups
    })
}

#[test]
fn same_program_exports_byte_identical_timeline() {
    let a = run(true);
    let b = run(true);
    let ta = a.timeline.as_deref().expect("traced run exports a timeline");
    let tb = b.timeline.as_deref().expect("traced run exports a timeline");
    obs::timeline::validate_json(ta).expect("timeline is well-formed JSON");
    assert_eq!(ta.as_bytes(), tb.as_bytes(), "timeline must be byte-identical across re-runs");
    assert_eq!(a.result, b.result);
    assert_eq!(a.total_ns(), b.total_ns());
    // The whole taxonomy shows up: engine, transport, and Spark layers.
    for name in
        ["simt.task", "netz.msg.send", "netz.msg.recv", "spark.job", "spark.stage", "spark.task"]
    {
        assert!(ta.contains(&format!("\"name\":\"{name}\"")), "timeline lacks {name} spans");
    }
}

#[test]
fn tracing_never_perturbs_virtual_time() {
    // Spans cost host memory, never virtual time: the span-id header slot is
    // present (as zero) even untraced, so wire sizes — and every virtual
    // timestamp downstream — are identical with tracing on or off.
    let traced = run(true);
    let plain = run(false);
    assert!(plain.timeline.is_none(), "untraced runs must not pay for an export");
    assert_eq!(traced.result, plain.result);
    assert_eq!(traced.total_ns(), plain.total_ns(), "tracing changed virtual timings");
    assert_eq!(
        traced.metrics, plain.metrics,
        "tracing changed a metric — instrumentation must be observation-only"
    );
}
