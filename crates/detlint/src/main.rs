//! CLI for the determinism lints: `cargo run -p detlint [-- --json] [ROOT]`.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: detlint [--json] [ROOT]\n\n\
                     Scans every workspace crate for determinism violations (rules D1-D6).\n\
                     ROOT defaults to the enclosing cargo workspace.\n\n\
                     exit codes: 0 clean, 1 findings, 2 error"
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("detlint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => root = Some(PathBuf::from(arg)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("detlint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match detlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("detlint: no cargo workspace found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match detlint::scan_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("detlint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for d in &diags {
        if json {
            println!("{}", d.render_json());
        } else {
            println!("{}", d.render());
        }
    }
    if diags.is_empty() {
        if !json {
            eprintln!("detlint: workspace clean");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!("detlint: {} finding(s)", diags.len());
        }
        ExitCode::from(1)
    }
}
