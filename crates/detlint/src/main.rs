//! CLI for the determinism & protocol lints:
//! `cargo run -p detlint [-- --json|--ndjson|--sarif] [ROOT]`.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    /// One valid JSON array (jq-friendly).
    Json,
    /// One JSON object per line.
    Ndjson,
    /// SARIF 2.1.0 for CI code scanning.
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--ndjson" => format = Format::Ndjson,
            "--sarif" => format = Format::Sarif,
            "--help" | "-h" => {
                println!(
                    "usage: detlint [--json|--ndjson|--sarif] [ROOT]\n\n\
                     Scans every workspace crate for determinism violations (rules D1-D6)\n\
                     and runs the two-pass workspace analysis (lock-order rule L1,\n\
                     protocol rules P1-P3, stale-waiver check).\n\
                     ROOT defaults to the enclosing cargo workspace.\n\n\
                     --json    one valid JSON array of findings\n\
                     --ndjson  one JSON object per line\n\
                     --sarif   SARIF 2.1.0 log for CI code scanning\n\n\
                     exit codes: 0 clean, 1 findings, 2 error"
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("detlint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => root = Some(PathBuf::from(arg)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("detlint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match detlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("detlint: no cargo workspace found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match detlint::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("detlint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = &analysis.diagnostics;

    match format {
        Format::Text => {
            for d in diags {
                println!("{}", d.render());
            }
        }
        Format::Json => println!("{}", detlint::render_json_array(diags)),
        Format::Ndjson => {
            for d in diags {
                println!("{}", d.render_json());
            }
        }
        Format::Sarif => println!("{}", detlint::sarif::render(diags)),
    }
    if diags.is_empty() {
        if matches!(format, Format::Text) {
            eprintln!("detlint: workspace clean");
        }
        ExitCode::SUCCESS
    } else {
        if matches!(format, Format::Text) {
            eprintln!("detlint: {} finding(s)", diags.len());
        }
        ExitCode::from(1)
    }
}
