//! detlint — determinism & concurrency lints for the simulation workspace.
//!
//! Every result this reproduction publishes (fig09/fig10 ratios, chaos-matrix
//! replays, `CHAOS_SEED` bisection) assumes the workspace is a *pure function
//! of the seed and the virtual clock*. detlint enforces that assumption as
//! deny-by-default diagnostics over the crate sources:
//!
//! * **D1** — no `std::time::{Instant, SystemTime}` wall-clock outside `simt`
//!   internals; use `simt::now()` / `simt::time`.
//! * **D2** — no `std::thread::{spawn, sleep}` outside `simt::engine`; use
//!   `simt::spawn` / `simt::sleep`.
//! * **D3** — no `rand` / OS-entropy sources; use `simt::SeededRng` (or a
//!   seeded generator justified by an allow comment).
//! * **D4** — no iteration over `HashMap` / `HashSet` in message-path crates
//!   (`netz`, `fabric`, `rmpi`, `sparklet`, `core`, `obs`); iteration order
//!   leaks into message and scheduling order — and, for `obs`, into the
//!   exported timeline bytes. Use `BTreeMap` / `BTreeSet` or a sorted
//!   collect.
//! * **D5** — no lock guard held across `park()` / blocking simt primitives
//!   (the lost-wakeup & deadlock shape the push-token-then-park pattern
//!   exists to avoid).
//! * **D6** — no busy-spin `while` loop polling `Request::test()` without a
//!   blocking call in the body: every probe charges simulated CPU, so a spin
//!   loop reproduces the Basic design's polling burn (paper §VI-D) instead
//!   of blocking on `wait()` / `waitany()` / `CompletionSet::wait_next()`.
//!
//! Findings can be waived per line with an explicit, reasoned escape hatch:
//!
//! ```text
//! // detlint: allow(D3, reason = "seeded SmallRng; stream is a pure function of cfg.seed")
//! ```
//!
//! The directive covers its own line, or — when it stands alone on a line —
//! the next code line. A missing `reason` is itself an error.
//!
//! The scanner is deliberately a token-level pass over comment- and
//! string-masked source (this workspace vendors no `syn`): it tracks lines,
//! brace depth, `#[cfg(test)]` regions, guard bindings, and hash-collection
//! idents, which is enough to make the five rules precise on real-world
//! rustfmt'd code while staying dependency-free.
//!
//! On top of the per-file D-rules, [`analyze_files`] runs a two-pass
//! *workspace* analysis: pass 1 ([`index`]) builds a symbol index (fn
//! definitions, call edges, `named()` lock-acquisition sites, rmpi
//! send/recv/irecv sites with their tag constants); pass 2 runs the
//! cross-file rule families over it:
//!
//! * **L1** — static lock-order graph: intra-procedural acquisition
//!   sequences, propagated one level through the call graph, reported as
//!   AB/BA inversions and longer cycles. Mirrors simt's dynamic
//!   `inversion_log`; the parity tests assert dynamic ⊆ static.
//! * **P1** — request leak: an `irecv` Request must reach
//!   `wait`/`wait_timeout`/`test`/`cancel`/`waitall`/`waitany`/`testsome`
//!   or escape the function.
//! * **P2** — no untimed `recv` on message paths covered by `RetryPolicy`
//!   (the retry fires after a timeout; an unbounded receive strands it).
//! * **P3** — send/recv tag-constant consistency across crates: a tag
//!   constant sent but never received (or vice versa) can never match.
//!
//! Waivers that stop suppressing anything are themselves reported (rule
//! `stale`), so the allow inventory cannot rot.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

pub(crate) mod index;
pub(crate) mod lockorder;
pub(crate) mod protocol;
pub mod sarif;

/// One finding, pointing at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Display path (workspace-relative when produced by [`scan_workspace`]).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id: `D1`..`D6`, `L1`, `P1`..`P3`, `allow` for a malformed allow
    /// directive, or `stale` for a waiver that no longer suppresses anything.
    pub rule: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// `path:line: rule: message` — the plain-text output format.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }

    /// One-line JSON object (no escaping surprises: paths and messages are
    /// ASCII by construction).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"path\":{:?},\"line\":{},\"rule\":{:?},\"message\":{:?}}}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Crates whose sources sit on the message path: any hash-order leak here
/// reorders packets, RPCs, or task scheduling (rule D4's scope). `obs` is
/// included because span records and metric snapshots feed the byte-stable
/// timeline export.
pub const MESSAGE_PATH_CRATES: &[&str] = &["netz", "fabric", "rmpi", "sparklet", "core", "obs"];

/// Files allowed to touch the OS clock/thread APIs: the engine itself and the
/// OS-level gate it parks threads with.
const SIMT_INTERNALS: &[&str] = &["src/engine.rs", "src/gate.rs"];

// ---------------------------------------------------------------------------
// Source masking: blank comments and string/char literals, preserving the
// character count per line, and collect comment text for allow directives.
// ---------------------------------------------------------------------------

pub(crate) struct Masked {
    /// Source with comments and string/char literal *contents* replaced by
    /// spaces. Newlines are preserved, so offsets map to the original lines.
    pub(crate) code: Vec<char>,
    /// `(1-based line, comment text)` for every comment.
    pub(crate) comments: Vec<(usize, String)>,
    /// Char index of the start of each line (line 1 at index 0).
    pub(crate) line_starts: Vec<usize>,
}

impl Masked {
    pub(crate) fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

pub(crate) fn mask(src: &str) -> Masked {
    let chars: Vec<char> = src.chars().collect();
    let mut code: Vec<char> = Vec::with_capacity(chars.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    macro_rules! push {
        ($c:expr) => {{
            let c = $c;
            if c == '\n' {
                line += 1;
            }
            code.push(c);
        }};
    }
    // Emit `c` as masked filler (newlines kept, everything else a space).
    macro_rules! blank {
        ($c:expr) => {
            push!(if $c == '\n' { '\n' } else { ' ' })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                blank!(chars[i]);
                i += 1;
            }
            comments.push((start_line, text));
            continue;
        }
        // Block comment (nesting).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    blank!('/');
                    blank!('*');
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    text.push_str("*/");
                    blank!('*');
                    blank!('/');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(chars[i]);
                    blank!(chars[i]);
                    i += 1;
                }
            }
            comments.push((start_line, text));
            continue;
        }
        // Raw / byte strings: r"..", r#".."#, b"..", br#".."#.
        let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
        if (c == 'r' || c == 'b') && !prev_ident {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            let raw = chars.get(j) == Some(&'r');
            if raw {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') && (raw || hashes == 0) {
                // Blank the prefix and opening quote.
                while i <= j {
                    blank!(chars[i]);
                    i += 1;
                }
                // Scan to the terminator: `"` followed by `hashes` #'s (raw),
                // or unescaped `"` (cooked).
                while i < chars.len() {
                    if chars[i] == '\\' && !raw {
                        blank!(chars[i]);
                        i += 1;
                        if i < chars.len() {
                            blank!(chars[i]);
                            i += 1;
                        }
                        continue;
                    }
                    if chars[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                blank!(chars[i]);
                                i += 1;
                            }
                            break;
                        }
                    }
                    blank!(chars[i]);
                    i += 1;
                }
                continue;
            }
            // Not a string prefix: fall through as code.
        }
        // Cooked string.
        if c == '"' {
            blank!(c);
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' {
                    blank!(chars[i]);
                    i += 1;
                    if i < chars.len() {
                        blank!(chars[i]);
                        i += 1;
                    }
                    continue;
                }
                let done = chars[i] == '"';
                blank!(chars[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                _ => false,
            };
            if is_char_lit {
                blank!(c);
                i += 1;
                if chars.get(i) == Some(&'\\') {
                    blank!(chars[i]);
                    i += 1;
                    // Escape body up to the closing quote.
                    while i < chars.len() && chars[i] != '\'' {
                        blank!(chars[i]);
                        i += 1;
                    }
                } else {
                    blank!(chars[i]);
                    i += 1;
                }
                if i < chars.len() {
                    blank!(chars[i]); // closing '
                    i += 1;
                }
                continue;
            }
            // Lifetime: emit as code.
            push!(c);
            i += 1;
            continue;
        }
        push!(c);
        i += 1;
    }

    let mut line_starts = vec![0usize];
    for (idx, &ch) in code.iter().enumerate() {
        if ch == '\n' {
            line_starts.push(idx + 1);
        }
    }
    Masked { code, comments, line_starts }
}

// ---------------------------------------------------------------------------
// `#[cfg(test)]` / `#[test]` region removal: lints govern simulation code;
// test modules may block, spawn, and shuffle however they like.
// ---------------------------------------------------------------------------

pub(crate) fn blank_test_regions(m: &mut Masked) {
    let text: String = m.code.iter().collect();
    let mut blank_ranges: Vec<(usize, usize)> = Vec::new();
    for attr in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(off) = find_from(&text, attr, from) {
            from = off + attr.len();
            // Find the body: next `{` before any `;` at the same level ends
            // the annotated item. Attributes/idents in between are fine.
            let mut j = from;
            let chars = &m.code;
            while j < chars.len() && chars[j] != '{' && chars[j] != ';' {
                j += 1;
            }
            if j >= chars.len() || chars[j] == ';' {
                blank_ranges.push((off, j.min(chars.len())));
                continue;
            }
            // Balance braces from j.
            let mut depth = 0i64;
            let mut k = j;
            while k < chars.len() {
                match chars[k] {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            blank_ranges.push((off, k.min(chars.len().saturating_sub(1))));
            from = k;
        }
    }
    for (a, b) in blank_ranges {
        for idx in a..=b.min(m.code.len().saturating_sub(1)) {
            if m.code[idx] != '\n' {
                m.code[idx] = ' ';
            }
        }
    }
}

pub(crate) fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    // `from` is a char index; the masked text is ASCII after masking (all
    // non-ASCII lived in strings/comments), so bytes == chars here.
    haystack.get(from..).and_then(|s| s.find(needle)).map(|p| p + from)
}

// ---------------------------------------------------------------------------
// Allow directives.
// ---------------------------------------------------------------------------

/// One parsed `// detlint: allow(R1, R2, reason = "...")` directive.
#[derive(Debug, Clone)]
pub(crate) struct Directive {
    /// Line the comment sits on.
    pub(crate) line: usize,
    /// Line the waiver covers (== `line` for a trailing comment, the next
    /// code line for a standalone one).
    pub(crate) target: usize,
    /// Rules waived by this directive.
    pub(crate) rules: Vec<String>,
}

pub(crate) struct Allows {
    /// Line -> rules waived on that line.
    pub(crate) by_line: BTreeMap<usize, BTreeSet<String>>,
    /// Well-formed directives, in source order (for stale-waiver tracking).
    pub(crate) directives: Vec<Directive>,
    /// Malformed directives (missing reason, unparsable).
    pub(crate) errors: Vec<(usize, String)>,
}

pub(crate) fn parse_allows(m: &Masked) -> Allows {
    let mut by_line: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    let mut directives: Vec<Directive> = Vec::new();
    let mut errors = Vec::new();
    for (line, text) in &m.comments {
        // Doc comments are documentation, not directives — the rule docs
        // themselves quote example waivers.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = text.find("detlint:") else { continue };
        let rest = text[pos + "detlint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            errors.push((*line, format!("unrecognized detlint directive: `{}`", rest.trim())));
            continue;
        };
        let Some(close) = args.find(')') else {
            errors.push((*line, "unterminated detlint: allow(...) directive".to_string()));
            continue;
        };
        let body = &args[..close];
        // Comma-separated rule ids up to the `reason = "..."` clause; the
        // reason text itself may contain commas.
        let mut rules: Vec<String> = Vec::new();
        let mut reason: Option<&str> = None;
        let mut rest_body = body;
        loop {
            let (tok, remainder) = match rest_body.find(',') {
                Some(p) => (&rest_body[..p], Some(&rest_body[p + 1..])),
                None => (rest_body, None),
            };
            let t = tok.trim();
            if t.strip_prefix("reason")
                .is_some_and(|r| r.trim_start().starts_with('=') || r.trim_start().is_empty())
            {
                reason = Some(rest_body.trim());
                break;
            }
            rules.push(t.to_string());
            match remainder {
                Some(r) => rest_body = r,
                None => break,
            }
        }
        let reason_ok = reason
            .and_then(|r| r.strip_prefix("reason"))
            .map(|r| r.trim_start().strip_prefix('=').map(str::trim).unwrap_or(""))
            .map(|r| r.len() > 2 && r.starts_with('"'))
            .unwrap_or(false);
        let rules_ok = !rules.is_empty()
            && rules.iter().all(|r| !r.is_empty() && r.chars().all(is_ident_char));
        if !rules_ok || !reason_ok {
            let shown = if rules.is_empty() || rules[0].is_empty() {
                "D?".to_string()
            } else {
                rules.join(", ")
            };
            errors.push((
                *line,
                format!(
                    "allow directive must name a rule and a reason: \
                     `// detlint: allow({shown}, reason = \"...\")`"
                ),
            ));
            continue;
        }
        // The directive covers its own line; if the comment stands alone,
        // it covers the next line that has code on it.
        let mut target = *line;
        let own_line_code = m
            .line_starts
            .get(target - 1)
            .map(|&s| {
                let e = m.line_starts.get(target).copied().unwrap_or(m.code.len());
                m.code[s..e].iter().any(|&c| !c.is_whitespace())
            })
            .unwrap_or(false);
        if !own_line_code {
            let total_lines = m.line_starts.len();
            let mut l = target + 1;
            while l <= total_lines {
                let s = m.line_starts[l - 1];
                let e = m.line_starts.get(l).copied().unwrap_or(m.code.len());
                if m.code[s..e].iter().any(|&c| !c.is_whitespace()) {
                    break;
                }
                l += 1;
            }
            target = l;
        }
        for rule in &rules {
            by_line.entry(target).or_default().insert(rule.clone());
            by_line.entry(*line).or_default().insert(rule.clone());
        }
        directives.push(Directive { line: *line, target, rules });
    }
    Allows { by_line, directives, errors }
}

// ---------------------------------------------------------------------------
// The scanner.
// ---------------------------------------------------------------------------

/// Where a file sits in the workspace; drives per-rule exemptions.
#[derive(Debug, Clone)]
pub struct FileOrigin {
    /// Crate directory name (`simt`, `netz`, ... or `root` for the umbrella
    /// package).
    pub crate_name: String,
    /// Path relative to the crate root, e.g. `src/engine.rs`.
    pub rel_path: String,
}

struct RuleCtx<'a> {
    origin: &'a FileOrigin,
    display_path: &'a str,
}

impl RuleCtx<'_> {
    fn is_simt(&self) -> bool {
        self.origin.crate_name == "simt"
    }
    fn is_simt_internal(&self) -> bool {
        self.is_simt() && SIMT_INTERNALS.contains(&self.origin.rel_path.as_str())
    }
    fn on_message_path(&self) -> bool {
        MESSAGE_PATH_CRATES.contains(&self.origin.crate_name.as_str())
    }
}

/// One file's masked, test-blanked, allow-parsed source — shared between the
/// per-file D-rules and the workspace index (pass 1).
pub(crate) struct FilePrep {
    pub(crate) display: String,
    pub(crate) origin: FileOrigin,
    /// Original source chars; offsets line up 1:1 with `masked.code`, so
    /// string-literal contents (lock labels) can be read back at positions
    /// found in the masked text.
    pub(crate) raw: Vec<char>,
    pub(crate) masked: Masked,
    /// `masked.code` collected to a `String` (ASCII after masking).
    pub(crate) text: String,
    pub(crate) allows: Allows,
}

pub(crate) fn prep_file(display_path: &str, origin: &FileOrigin, src: &str) -> FilePrep {
    let mut m = mask(src);
    blank_test_regions(&mut m);
    let allows = parse_allows(&m);
    let text: String = m.code.iter().collect();
    FilePrep {
        display: display_path.to_string(),
        origin: origin.clone(),
        raw: src.chars().collect(),
        masked: m,
        text,
        allows,
    }
}

/// Run the per-file D-rules (plus malformed-directive findings) over a prep.
pub(crate) fn d_rules(prep: &FilePrep) -> BTreeSet<Diagnostic> {
    let ctx = RuleCtx { origin: &prep.origin, display_path: &prep.display };
    let mut found: BTreeSet<Diagnostic> = BTreeSet::new();
    for (line, msg) in &prep.allows.errors {
        found.insert(Diagnostic {
            path: prep.display.clone(),
            line: *line,
            rule: "allow".to_string(),
            message: msg.clone(),
        });
    }
    rule_d1(&ctx, &prep.masked, &prep.text, &mut found);
    rule_d2(&ctx, &prep.masked, &prep.text, &mut found);
    rule_d3(&ctx, &prep.masked, &prep.text, &mut found);
    rule_d4(&ctx, &prep.masked, &prep.text, &mut found);
    rule_d5(&ctx, &prep.masked, &prep.text, &mut found);
    rule_d6(&ctx, &prep.masked, &prep.text, &mut found);
    found
}

/// Apply the file's allow directives to `found`, collapsing to one finding
/// per `(line, rule)` — overlapping needles (e.g. `std::thread::spawn` and
/// `thread::spawn`) otherwise double-report. Every suppression is recorded
/// in `used` as `(directive index, rule)` for stale-waiver detection.
fn apply_allows_one(
    prep: &FilePrep,
    found: BTreeSet<Diagnostic>,
    used: &mut BTreeSet<(usize, String)>,
) -> Vec<Diagnostic> {
    let allows = &prep.allows;
    let mut by_key: BTreeMap<(usize, String), Diagnostic> = BTreeMap::new();
    for d in found {
        let waivable = d.rule != "allow" && d.rule != "stale";
        let allowed =
            waivable && allows.by_line.get(&d.line).map(|rs| rs.contains(&d.rule)).unwrap_or(false);
        if allowed {
            for (di, dir) in allows.directives.iter().enumerate() {
                if (dir.line == d.line || dir.target == d.line) && dir.rules.contains(&d.rule) {
                    used.insert((di, d.rule.clone()));
                }
            }
            continue;
        }
        by_key.entry((d.line, d.rule.clone())).or_insert(d);
    }
    by_key.into_values().collect()
}

/// Scan one file's source with the per-file D-rules only. `display_path` is
/// used verbatim in diagnostics. The workspace rules (L/P, stale waivers)
/// need cross-file context — see [`analyze_files`].
pub fn scan_source(display_path: &str, origin: &FileOrigin, src: &str) -> Vec<Diagnostic> {
    let prep = prep_file(display_path, origin, src);
    let found = d_rules(&prep);
    let mut used = BTreeSet::new();
    apply_allows_one(&prep, found, &mut used)
}

// ---------------------------------------------------------------------------
// Whole-workspace analysis (two passes).
// ---------------------------------------------------------------------------

/// One source file handed to [`analyze_files`].
pub struct SourceFile {
    /// Path used verbatim in diagnostics.
    pub display_path: String,
    pub origin: FileOrigin,
    pub src: String,
}

/// Size counters from pass 1, surfaced for benches and tooling.
#[derive(Debug, Clone, Default)]
pub struct IndexStats {
    pub files: usize,
    pub fns: usize,
    pub call_sites: usize,
    /// `.acquire()` events resolved to a named lock or a fn parameter.
    pub lock_sites: usize,
    /// rmpi send/recv/irecv/probe call sites.
    pub rmpi_sites: usize,
}

/// Outcome of a whole-workspace analysis.
pub struct Analysis {
    /// All findings (D, L, P, `allow`, `stale`), sorted by path/line/rule.
    pub diagnostics: Vec<Diagnostic>,
    pub stats: IndexStats,
    /// Canonical `(min, max)` lock pairs the static L-rule saw acquired in
    /// both orders — comparable against `simt::SimReport::lock_inversions`.
    pub lock_inversions: Vec<(String, String)>,
}

/// Two-pass analysis over a set of files: per-file D-rules, then the
/// workspace index and the L/P rule families, then allow application with
/// stale-waiver detection.
pub fn analyze_files(files: &[SourceFile]) -> Analysis {
    let preps: Vec<FilePrep> =
        files.iter().map(|f| prep_file(&f.display_path, &f.origin, &f.src)).collect();
    let idx = index::build(&preps);

    let mut per_file: Vec<BTreeSet<Diagnostic>> = preps.iter().map(d_rules).collect();
    let (l_diags, lock_inversions) = lockorder::run(&idx, &preps);
    let p_diags = protocol::run(&idx, &preps);
    let by_path: BTreeMap<&str, usize> =
        preps.iter().enumerate().map(|(i, p)| (p.display.as_str(), i)).collect();
    for d in l_diags.into_iter().chain(p_diags) {
        if let Some(&i) = by_path.get(d.path.as_str()) {
            per_file[i].insert(d);
        }
    }

    let mut diagnostics = Vec::new();
    for (i, prep) in preps.iter().enumerate() {
        let mut used: BTreeSet<(usize, String)> = BTreeSet::new();
        let found = std::mem::take(&mut per_file[i]);
        let mut kept = apply_allows_one(prep, found, &mut used);
        for (di, dir) in prep.allows.directives.iter().enumerate() {
            for r in &dir.rules {
                if !used.contains(&(di, r.clone())) {
                    kept.push(Diagnostic {
                        path: prep.display.clone(),
                        line: dir.line,
                        rule: "stale".to_string(),
                        message: format!(
                            "stale waiver: `{r}` never fires here; remove it from the \
                             directive or fix the rule id"
                        ),
                    });
                }
            }
        }
        diagnostics.extend(kept);
    }
    diagnostics.sort();
    diagnostics.dedup();
    let stats = idx.stats.clone();
    Analysis { diagnostics, stats, lock_inversions }
}

/// Render diagnostics as one valid JSON array (pretty enough for humans,
/// parseable by `jq`). NDJSON remains available via [`Diagnostic::render_json`]
/// per line.
pub fn render_json_array(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]".to_string();
    }
    let rows: Vec<String> = diags.iter().map(|d| format!("  {}", d.render_json())).collect();
    format!("[\n{}\n]", rows.join(",\n"))
}

/// True when the match of `needle` at `pos` is not glued to identifier
/// characters: a needle starting with an ident char must not continue one
/// (`spark()` is not `park()`), and one ending with an ident char must not
/// run into one (`rand_chacha` is not `rand`).
pub(crate) fn word_match(text: &str, pos: usize, needle: &str) -> bool {
    let bytes = text.as_bytes();
    let first = needle.chars().next().unwrap_or(' ');
    if pos > 0 && is_ident_char(first) && is_ident_char(bytes[pos - 1] as char) {
        return false;
    }
    let end = pos + needle.len();
    if let Some(&next) = bytes.get(end) {
        let next = next as char;
        let last = needle.chars().next_back().unwrap_or(' ');
        if is_ident_char(last) && is_ident_char(next) {
            return false;
        }
    }
    true
}

pub(crate) fn each_match(text: &str, needle: &str, mut f: impl FnMut(usize)) {
    let mut from = 0usize;
    while let Some(pos) = find_from(text, needle, from) {
        if word_match(text, pos, needle) {
            f(pos);
        }
        from = pos + needle.len();
    }
}

fn push_diag(
    out: &mut BTreeSet<Diagnostic>,
    ctx: &RuleCtx<'_>,
    line: usize,
    rule: &str,
    message: String,
) {
    out.insert(Diagnostic {
        path: ctx.display_path.to_string(),
        line,
        rule: rule.to_string(),
        message,
    });
}

fn rule_d1(ctx: &RuleCtx<'_>, m: &Masked, text: &str, out: &mut BTreeSet<Diagnostic>) {
    if ctx.is_simt() {
        return;
    }
    for needle in ["std::time::Instant", "std::time::SystemTime", "std::time::UNIX_EPOCH"] {
        each_match(text, needle, |pos| {
            push_diag(
                out,
                ctx,
                m.line_of(pos),
                "D1",
                format!(
                    "wall-clock `{needle}` in simulated code; use `simt::now()` / `simt::time` \
                     so timings replay under a seed"
                ),
            );
        });
    }
    each_match(text, "SystemTime::now", |pos| {
        push_diag(
            out,
            ctx,
            m.line_of(pos),
            "D1",
            "wall-clock `SystemTime::now` in simulated code; use `simt::now()`".to_string(),
        );
    });
}

fn rule_d2(ctx: &RuleCtx<'_>, m: &Masked, text: &str, out: &mut BTreeSet<Diagnostic>) {
    if ctx.is_simt_internal() {
        return;
    }
    for (needle, alt) in [
        ("std::thread::spawn", "simt::spawn"),
        ("std::thread::sleep", "simt::sleep"),
        ("std::thread::Builder", "simt::spawn"),
        ("thread::spawn", "simt::spawn"),
        ("thread::sleep", "simt::sleep"),
    ] {
        each_match(text, needle, |pos| {
            push_diag(
                out,
                ctx,
                m.line_of(pos),
                "D2",
                format!(
                    "OS thread API `{needle}` outside the simt engine; use `{alt}` so the \
                     scheduler stays deterministic"
                ),
            );
        });
    }
    each_match(text, "use std::thread", |pos| {
        push_diag(
            out,
            ctx,
            m.line_of(pos),
            "D2",
            "importing `std::thread` outside the simt engine; green threads come from \
             `simt::spawn`"
                .to_string(),
        );
    });
}

fn rule_d3(ctx: &RuleCtx<'_>, m: &Masked, text: &str, out: &mut BTreeSet<Diagnostic>) {
    if ctx.is_simt() {
        return;
    }
    for needle in ["thread_rng", "from_entropy", "OsRng", "getrandom", "SystemRandom"] {
        each_match(text, needle, |pos| {
            push_diag(
                out,
                ctx,
                m.line_of(pos),
                "D3",
                format!(
                    "OS-entropy source `{needle}`; all randomness must derive from the run \
                     seed — use `simt::SeededRng`"
                ),
            );
        });
    }
    // Any use of the `rand` crate: seeded use is waivable with an allow
    // comment; unseeded use is a reproducibility bug.
    each_match(text, "use rand", |pos| {
        push_diag(
            out,
            ctx,
            m.line_of(pos),
            "D3",
            "`rand` crate in simulated code; prefer `simt::SeededRng`, or annotate the seeded \
             use with `// detlint: allow(D3, reason = \"...\")`"
                .to_string(),
        );
    });
    each_match(text, "rand::", |pos| {
        push_diag(
            out,
            ctx,
            m.line_of(pos),
            "D3",
            "`rand` crate in simulated code; prefer `simt::SeededRng`, or annotate the seeded \
             use with `// detlint: allow(D3, reason = \"...\")`"
                .to_string(),
        );
    });
}

// --- D4: hash-collection iteration on the message path ---------------------

const ITER_ADAPTERS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// Idents bound to `HashMap`/`HashSet` in this file: let-bindings (by type
/// annotation or initializer), struct fields, and fn params.
fn collect_hash_idents(text: &str) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for coll in ["HashMap", "HashSet"] {
        each_match(text, coll, |pos| {
            if let Some(name) = ident_bound_at(text, pos) {
                idents.insert(name);
            }
        });
    }
    idents
}

/// Given the offset of a `HashMap`/`HashSet` token, walk backward to the
/// ident it is bound to: `name: ...HashMap<...>` (field/param/let-annotation)
/// or `let [mut] name = HashMap::new()`-style initializers.
pub(crate) fn ident_bound_at(text: &str, pos: usize) -> Option<String> {
    let b = text.as_bytes();
    let mut j = pos;
    // Walk back over the type/path prefix to the single `:` that introduces
    // it, stopping cold at statement/expression boundaries.
    while j > 0 {
        let c = b[j - 1] as char;
        match c {
            ':' => {
                if j >= 2 && b[j - 2] as char == ':' {
                    j -= 2; // `::` path separator, keep walking
                    continue;
                }
                // Single colon: the ident sits right before it.
                return ident_before(text, j - 1);
            }
            '=' => {
                // Initializer: look for `let [mut] name =`.
                return let_ident_before(text, j - 1);
            }
            c if is_ident_char(c) || c.is_whitespace() || "<>&,'()".contains(c) => {
                j -= 1;
            }
            _ => return None,
        }
    }
    None
}

/// Parse the identifier ending just before `end` (skipping trailing spaces).
pub(crate) fn ident_before(text: &str, end: usize) -> Option<String> {
    let b = text.as_bytes();
    let mut j = end;
    while j > 0 && (b[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let stop = j;
    while j > 0 && is_ident_char(b[j - 1] as char) {
        j -= 1;
    }
    if j == stop {
        return None;
    }
    let name = &text[j..stop];
    const KEYWORDS: &[&str] = &["mut", "let", "pub", "ref", "in", "as", "dyn", "impl", "where"];
    if KEYWORDS.contains(&name) || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name.to_string())
}

/// For `let [mut] NAME = <expr with HashMap>`: parse NAME from just before
/// the `=` at `eq`.
pub(crate) fn let_ident_before(text: &str, eq: usize) -> Option<String> {
    let name = ident_before(text, eq)?;
    let b = text.as_bytes();
    // Verify a `let` introduces this binding (walk back over `mut`/ws/name).
    let mut j = eq;
    while j > 0 && (b[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    j -= name.len();
    while j > 0 && (b[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    if text[..j].ends_with("mut") {
        j -= 3;
        while j > 0 && (b[j - 1] as char).is_whitespace() {
            j -= 1;
        }
    }
    if text[..j].ends_with("let") {
        Some(name)
    } else {
        None
    }
}

/// Walk backward from `dot` (the `.` starting an iterator adapter) and
/// collect the plain-ident segments of the receiver chain, skipping over
/// call segments like `.lock()`.
pub(crate) fn receiver_segments(text: &str, dot: usize) -> Vec<String> {
    let b = text.as_bytes();
    let mut segs = Vec::new();
    let mut j = dot;
    loop {
        while j > 0 && (b[j - 1] as char).is_whitespace() {
            j -= 1;
        }
        if j == 0 {
            break;
        }
        let c = b[j - 1] as char;
        if c == ')' {
            // Balance back to the matching '(' and skip the method name.
            let mut depth = 0i64;
            while j > 0 {
                match b[j - 1] as char {
                    ')' => depth += 1,
                    '(' => {
                        depth -= 1;
                        if depth == 0 {
                            j -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j -= 1;
            }
            while j > 0 && (b[j - 1] as char).is_whitespace() {
                j -= 1;
            }
            // Method name (a call segment): skip it.
            let stop = j;
            while j > 0 && is_ident_char(b[j - 1] as char) {
                j -= 1;
            }
            if j == stop {
                break; // e.g. a closing paren of a grouped expr: give up
            }
        } else if is_ident_char(c) {
            let stop = j;
            while j > 0 && is_ident_char(b[j - 1] as char) {
                j -= 1;
            }
            segs.push(text[j..stop].to_string());
        } else {
            break;
        }
        while j > 0 && (b[j - 1] as char).is_whitespace() {
            j -= 1;
        }
        if j > 0 && b[j - 1] as char == '.' {
            j -= 1;
            continue;
        }
        break;
    }
    segs
}

fn rule_d4(ctx: &RuleCtx<'_>, m: &Masked, text: &str, out: &mut BTreeSet<Diagnostic>) {
    if !ctx.on_message_path() {
        return;
    }
    let hash_idents = collect_hash_idents(text);
    if hash_idents.is_empty() {
        return;
    }
    let flag = |out: &mut BTreeSet<Diagnostic>, pos: usize, name: &str, how: &str| {
        push_diag(
            out,
            ctx,
            m.line_of(pos),
            "D4",
            format!(
                "{how} over hash collection `{name}` on the message path: iteration order is \
                 nondeterministic and leaks into message/scheduling order; use \
                 `BTreeMap`/`BTreeSet` or a sorted collect"
            ),
        );
    };
    for adapter in ITER_ADAPTERS {
        each_match(text, adapter, |pos| {
            for seg in receiver_segments(text, pos) {
                if hash_idents.contains(&seg) {
                    flag(out, pos, &seg, &format!("`{adapter}`"));
                    break;
                }
            }
        });
    }
    // `for pat in <expr> {` where <expr> resolves to a hash ident.
    each_match(text, "for ", |pos| {
        let Some(in_pos) = find_from(text, " in ", pos) else { return };
        let Some(brace) = find_from(text, "{", in_pos) else { return };
        if brace.saturating_sub(pos) > 200 {
            return; // not a plausible single for-header
        }
        for seg in receiver_segments(text, brace) {
            if hash_idents.contains(&seg) {
                flag(out, pos, &seg, "`for` loop");
                break;
            }
        }
    });
}

// --- D5: lock guard held across a blocking simt primitive ------------------

/// Calls that yield to the engine: any lock guard still live here is held
/// across a reschedule — the lost-wakeup/deadlock shape.
const BLOCKING_TOKENS: &[&str] = &[
    "park()",
    ".acquire(",
    ".wait()",
    ".recv()",
    ".recv_timeout(",
    ".recv_deadline(",
    ".take_timeout(",
    "simt::sleep(",
    "crate::sleep(",
    "simt::yield_now(",
];

fn rule_d5(ctx: &RuleCtx<'_>, m: &Masked, text: &str, out: &mut BTreeSet<Diagnostic>) {
    if ctx.is_simt_internal() {
        return;
    }
    // Collect guard bindings: `let [mut] g = <expr ending in .lock()/.read()/.write()>;`
    #[derive(Debug)]
    struct Guard {
        name: String,
        depth: i64,
        line: usize,
    }
    let b = text.as_bytes();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            'l' if word_match(text, i, "let ") && text[i..].starts_with("let ") => {
                if let Some((name, stmt_end)) = parse_guard_binding(text, i) {
                    guards.retain(|g| g.name != name);
                    guards.push(Guard { name, depth, line: m.line_of(i) });
                    i = stmt_end;
                    continue;
                }
            }
            'd' if word_match(text, i, "drop") && text[i..].starts_with("drop") => {
                // drop(name) ends the guard early.
                let rest = text[i + 4..].trim_start();
                if let Some(inner) = rest.strip_prefix('(') {
                    let arg: String = inner.chars().take_while(|&ch| is_ident_char(ch)).collect();
                    guards.retain(|g| g.name != arg);
                }
            }
            _ => {}
        }
        // Blocking token at this position while a guard is live?
        if !guards.is_empty() {
            for tok in BLOCKING_TOKENS {
                if text[i..].starts_with(tok) && word_match(text, i, tok) {
                    let names: Vec<String> =
                        guards.iter().map(|g| format!("`{}` (line {})", g.name, g.line)).collect();
                    push_diag(
                        out,
                        ctx,
                        m.line_of(i),
                        "D5",
                        format!(
                            "blocking call `{tok}` while lock guard{} {} still held: the \
                             engine reschedules here, inviting lost wakeups and deadlock; \
                             drop the guard (scope it or `drop()`) before blocking",
                            if names.len() > 1 { "s" } else { "" },
                            names.join(", ")
                        ),
                    );
                    break;
                }
            }
        }
        i += 1;
    }
}

/// If a `let` at `pos` binds a lock guard, return `(name, end-of-statement)`.
fn parse_guard_binding(text: &str, pos: usize) -> Option<(String, usize)> {
    let b = text.as_bytes();
    let mut j = pos + 4; // past `let `
    while j < b.len() && (b[j] as char).is_whitespace() {
        j += 1;
    }
    if text[j..].starts_with("mut ") {
        j += 4;
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
    }
    let start = j;
    while j < b.len() && is_ident_char(b[j] as char) {
        j += 1;
    }
    if j == start {
        return None;
    }
    let name = text[start..j].to_string();
    // Find `=` (skip a possible `: Type` annotation) then the statement end
    // at balanced depth.
    let mut k = j;
    let mut angle: i64 = 0;
    while k < b.len() {
        match b[k] as char {
            '<' => angle += 1,
            '>' => angle -= 1,
            '=' if angle <= 0 => break,
            ';' | '{' => return None, // `let x;` or something exotic
            _ => {}
        }
        k += 1;
    }
    if k >= b.len() {
        return None;
    }
    let init_start = k + 1;
    let (mut paren, mut brace, mut bracket) = (0i64, 0i64, 0i64);
    let mut end = init_start;
    while end < b.len() {
        match b[end] as char {
            '(' => paren += 1,
            ')' => paren -= 1,
            '[' => bracket += 1,
            ']' => bracket -= 1,
            '{' => brace += 1,
            '}' => brace -= 1,
            ';' if paren == 0 && brace == 0 && bracket == 0 => break,
            _ => {}
        }
        end += 1;
    }
    let init = text[init_start..end.min(text.len())].trim();
    if init.contains('{') {
        return None; // block initializer: any guard inside dies at the block
    }
    if init.starts_with('*') {
        // `let v = *x.lock();` copies the value out; the temporary guard
        // dies at the end of the statement. (`let v = &*x.lock();` would
        // extend it, and still ends with `.lock()` after the strip below.)
        return None;
    }
    let mut core = init.trim_end();
    // Peel `.unwrap()` / `.expect(...)` wrappers.
    loop {
        if let Some(s) = core.strip_suffix(".unwrap()") {
            core = s.trim_end();
            continue;
        }
        if core.ends_with(')') {
            if let Some(p) = core.rfind(".expect(") {
                core = core[..p].trim_end();
                continue;
            }
        }
        break;
    }
    let is_guard =
        core.ends_with(".lock()") || core.ends_with(".read()") || core.ends_with(".write()");
    if is_guard {
        Some((name, end))
    } else {
        None
    }
}

// --- D6: busy-spin polling of nonblocking requests --------------------------

/// Calls that yield or block inside a polling loop's body: any of these makes
/// the loop an event loop rather than a spin.
const D6_BLOCKING_IN_BODY: &[&str] = &[
    "sleep",
    "park",
    "yield_now",
    ".wait(",
    ".wait_timeout(",
    "wait_next",
    "waitany",
    "waitall",
    ".recv(",
    ".recv_timeout(",
    ".recv_deadline(",
    ".acquire(",
];

fn rule_d6(ctx: &RuleCtx<'_>, m: &Masked, text: &str, out: &mut BTreeSet<Diagnostic>) {
    each_match(text, "while ", |pos| {
        // Header: up to the loop's `{` (bounded, like D4's for-header scan).
        let Some(brace) = find_from(text, "{", pos) else { return };
        if brace.saturating_sub(pos) > 300 {
            return;
        }
        let header = &text[pos..brace];
        if !header.contains(".test()") {
            return;
        }
        // Body: balance braces from the `{`.
        let b = text.as_bytes();
        let mut depth = 0i64;
        let mut k = brace;
        while k < b.len() {
            match b[k] as char {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let body = &text[brace..k.min(text.len())];
        if D6_BLOCKING_IN_BODY.iter().any(|tok| body.contains(tok)) {
            return;
        }
        push_diag(
            out,
            ctx,
            m.line_of(pos),
            "D6",
            "busy-spin `while` loop polling `.test()` with no blocking call in the body: \
             every probe charges simulated CPU, reproducing the Basic design's polling burn; \
             block on `wait()` / `waitany()` / `CompletionSet::wait_next()` instead"
                .to_string(),
        );
    });
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// Run the full two-pass analysis over every workspace crate's `src/` tree
/// (plus the umbrella package's `src/`) under `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut files: Vec<(PathBuf, FileOrigin)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name =
                dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
            collect_rs(&dir.join("src"), &dir, &crate_name, &mut files)?;
        }
    }
    collect_rs(&root.join("src"), root, "root", &mut files)?;

    let mut sources = Vec::with_capacity(files.len());
    for (path, origin) in files {
        let src = std::fs::read_to_string(&path)?;
        let display = path
            .strip_prefix(root)
            .map(|p| p.display().to_string())
            .unwrap_or_else(|_| path.display().to_string());
        sources.push(SourceFile { display_path: display, origin, src });
    }
    Ok(analyze_files(&sources))
}

/// Scan every workspace crate under `root` and return the diagnostics alone
/// (the full two-pass analysis, including L/P rules and stale waivers),
/// sorted by path, line, rule.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    Ok(analyze_workspace(root)?.diagnostics)
}

fn collect_rs(
    dir: &Path,
    crate_root: &Path,
    crate_name: &str,
    files: &mut Vec<(PathBuf, FileOrigin)>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, crate_root, crate_name, files)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(crate_root)
                .map(|p| p.display().to_string())
                .unwrap_or_else(|_| path.display().to_string());
            files.push((path, FileOrigin { crate_name: crate_name.to_string(), rel_path: rel }));
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(s) = std::fs::read_to_string(&manifest) {
                if s.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
