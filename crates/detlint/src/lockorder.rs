//! Rule L1: static lock-order graph over the workspace index.
//!
//! Each task context contributes directed edges `held -> acquired` by
//! replaying its acquire/release events with a held-stack; a `Call` made
//! while holding locks pulls in the callee's own acquisitions (one level,
//! with fn parameters resolved through the caller's arguments). A pair of
//! labels with edges in both directions is an AB/BA inversion — the same
//! thing simt's dynamic diagnoser logs in `inversion_log`, found without
//! having to hit the schedule that interleaves them. Longer cycles
//! (`A -> B -> C -> A`) are reported too; the dynamic side can only hang on
//! those, never log them as pairs.

use std::collections::{BTreeMap, BTreeSet};

use crate::index::{Event, ResRef, WorkspaceIndex};
use crate::{Diagnostic, FilePrep};

/// An edge site: which file/position first witnessed `from -> to`.
type Edges = BTreeMap<(String, String), (usize, usize)>;

pub(crate) fn run(
    idx: &WorkspaceIndex,
    preps: &[FilePrep],
) -> (Vec<Diagnostic>, Vec<(String, String)>) {
    let mut edges: Edges = BTreeMap::new();

    for f in &idx.fns {
        for ctx in &f.contexts {
            let mut held: Vec<String> = Vec::new();
            for ev in ctx {
                match ev {
                    Event::Acquire { res, pos } => {
                        if let ResRef::Label(l) = res {
                            for h in &held {
                                if h != l {
                                    edges.entry((h.clone(), l.clone())).or_insert((f.file, *pos));
                                }
                            }
                            held.push(l.clone());
                        }
                    }
                    Event::Release { res } => {
                        if let ResRef::Label(l) = res {
                            if let Some(p) = held.iter().rposition(|h| h == l) {
                                held.remove(p);
                            }
                        }
                    }
                    Event::Call { callee, args, pos } => {
                        if held.is_empty() {
                            continue;
                        }
                        // One-level propagation: the callee's entry-context
                        // acquisitions happen while our locks are held.
                        for &ci in idx.by_name.get(callee).into_iter().flatten() {
                            let cf = &idx.fns[ci];
                            for cev in cf.contexts.first().into_iter().flatten() {
                                let Event::Acquire { res, .. } = cev else { continue };
                                let label = match res {
                                    ResRef::Label(l) => Some(l.clone()),
                                    ResRef::Param(p) => cf
                                        .params
                                        .iter()
                                        .position(|q| q == p)
                                        .and_then(|i| args.get(i))
                                        .and_then(|a| idx.labels[f.file].get(a).cloned()),
                                };
                                if let Some(l) = label {
                                    for h in &held {
                                        if *h != l {
                                            edges
                                                .entry((h.clone(), l.clone()))
                                                .or_insert((f.file, *pos));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let site = |file: usize, pos: usize| -> (String, usize) {
        (preps[file].display.clone(), preps[file].masked.line_of(pos))
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut inversions: BTreeSet<(String, String)> = BTreeSet::new();

    // AB/BA pairs: both directions present.
    for ((from, to), &(file, pos)) in &edges {
        if from >= to {
            continue; // visit each unordered pair once, from its (min, max) key
        }
        let Some(&(rfile, rpos)) = edges.get(&(to.clone(), from.clone())) else { continue };
        inversions.insert((from.clone(), to.clone()));
        let s_ab = site(file, pos); // `to` acquired while `from` held
        let s_ba = site(rfile, rpos); // `from` acquired while `to` held
                                      // Report at the later site, pointing back at the earlier one.
        let (rpt, other, acq, held_lbl, oacq, oheld) =
            if (s_ab.0.as_str(), s_ab.1) >= (s_ba.0.as_str(), s_ba.1) {
                (s_ab, s_ba, to, from, from, to)
            } else {
                (s_ba, s_ab, from, to, to, from)
            };
        diags.push(Diagnostic {
            path: rpt.0,
            line: rpt.1,
            rule: "L1".to_string(),
            message: format!(
                "lock-order inversion between `{from}` and `{to}`: `{acq}` is acquired \
                 while `{held_lbl}` is held here, but {}:{} acquires `{oacq}` while \
                 `{oheld}` is held; an adversarial schedule deadlocks (AB/BA)",
                other.0, other.1
            ),
        });
    }

    // Longer cycles: DFS over the label graph, canonical start at the
    // smallest label, bounded depth (the workspace has a handful of labels).
    let mut adj: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.clone()).or_default().push(to.clone());
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys() {
        let mut stack: Vec<String> = vec![start.clone()];
        dfs_cycles(start, start, &mut stack, &adj, &mut seen_cycles);
    }
    for cyc in &seen_cycles {
        if cyc.len() < 3 {
            continue; // 2-cycles already reported as inversions
        }
        // Report at the latest edge site of the cycle.
        let mut rpt: Option<(String, usize)> = None;
        for w in 0..cyc.len() {
            let from = &cyc[w];
            let to = &cyc[(w + 1) % cyc.len()];
            if let Some(&(file, pos)) = edges.get(&(from.clone(), to.clone())) {
                let s = site(file, pos);
                if rpt.as_ref().map(|r| s > *r).unwrap_or(true) {
                    rpt = Some(s);
                }
            }
        }
        let Some((path, line)) = rpt else { continue };
        let chain: Vec<String> = cyc.iter().chain(cyc.first()).map(|l| format!("`{l}`")).collect();
        diags.push(Diagnostic {
            path,
            line,
            rule: "L1".to_string(),
            message: format!(
                "lock-order cycle {}: each lock is acquired while the previous one is \
                 held; an adversarial schedule deadlocks",
                chain.join(" -> ")
            ),
        });
    }

    (diags, inversions.into_iter().collect())
}

/// Enumerate simple cycles through `start`, visiting only labels >= `start`
/// so every cycle is found exactly once (rotated to begin at its smallest
/// label). Depth-capped: lock chains beyond 6 deep don't occur here.
fn dfs_cycles(
    start: &str,
    node: &str,
    stack: &mut Vec<String>,
    adj: &BTreeMap<String, Vec<String>>,
    out: &mut BTreeSet<Vec<String>>,
) {
    if stack.len() > 6 {
        return;
    }
    for next in adj.get(node).into_iter().flatten() {
        if next == start {
            out.insert(stack.clone());
            continue;
        }
        if next.as_str() < start || stack.iter().any(|s| s == next) {
            continue;
        }
        stack.push(next.clone());
        dfs_cycles(start, next, stack, adj, out);
        stack.pop();
    }
}
