//! SARIF 2.1.0 rendering, for CI code-scanning annotations.
//!
//! Deliberately minimal: one run, a static rule catalog, one result per
//! diagnostic with a physical location. Paths and messages are ASCII by
//! construction, so `{:?}` escaping (which render_json already relies on)
//! is JSON-compatible here too.

use crate::Diagnostic;

/// `(id, short description)` for every rule the scanner can emit.
pub const RULES: &[(&str, &str)] = &[
    ("D1", "No wall-clock time outside the simulator engine"),
    ("D2", "No OS threads outside the simulator engine"),
    ("D3", "No OS-entropy randomness; all randomness derives from the run seed"),
    ("D4", "No hash-order iteration on message-path crates"),
    ("D5", "No lock guard held across a blocking simt primitive"),
    ("D6", "No busy-spin polling of non-blocking requests"),
    ("L1", "No lock-order inversions or cycles in the static lock-order graph"),
    ("P1", "Every irecv Request must complete, cancel, or escape its function"),
    ("P2", "No untimed recv on message paths covered by RetryPolicy"),
    ("P3", "Tag constants must appear on both the send and receive side"),
    ("allow", "Allow directives must name a rule and a reason"),
    ("stale", "Waivers that no longer suppress a finding must be removed"),
];

/// Render diagnostics as a SARIF 2.1.0 log (one run, tool `detlint`).
pub fn render(diags: &[Diagnostic]) -> String {
    let rules: Vec<String> = RULES
        .iter()
        .map(|(id, desc)| format!("{{\"id\":{id:?},\"shortDescription\":{{\"text\":{desc:?}}}}}",))
        .collect();
    let results: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"ruleId\":{:?},\"level\":\"error\",\"message\":{{\"text\":{:?}}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":{:?}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
                d.rule, d.message, d.path, d.line
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"detlint\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}
