//! Rules P1–P3: communication-protocol checks over the workspace index.
//!
//! The bug classes here are the ones Spark↔MPI bridge papers report as the
//! hard ones — orphaned non-blocking requests, receives that outlive their
//! retry budget, and tag constants that only one side of a conversation
//! uses. All three are cross-file properties a per-file scanner cannot see.

use std::collections::BTreeMap;

use crate::index::{IrecvUse, RmpiKind, WorkspaceIndex};
use crate::{Diagnostic, FilePrep, MESSAGE_PATH_CRATES};

pub(crate) fn run(idx: &WorkspaceIndex, preps: &[FilePrep]) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    let site = |file: usize, pos: usize| -> (String, usize) {
        (preps[file].display.clone(), preps[file].masked.line_of(pos))
    };

    // --- P1: every irecv Request must complete, cancel, or escape ----------
    for s in &idx.irecvs {
        let (path, line) = site(s.file, s.pos);
        match &s.usage {
            IrecvUse::Discarded => out.push(Diagnostic {
                path,
                line,
                rule: "P1".to_string(),
                message: "`irecv` Request discarded on the spot: the posted receive can \
                          never be completed or cancelled and leaks its slot; bind the \
                          Request and `wait`/`test`/`cancel` it (or `attach` it to a \
                          `CompletionSet`)"
                    .to_string(),
            }),
            IrecvUse::BoundUnused(name) => out.push(Diagnostic {
                path,
                line,
                rule: "P1".to_string(),
                message: format!(
                    "`irecv` Request bound to `{name}` is never consumed: it must reach \
                     `wait`/`wait_timeout`/`test`/`cancel`/`waitall`/`waitany`/`testsome` \
                     or escape the function"
                ),
            }),
            IrecvUse::Chained | IrecvUse::Consumed => {}
        }
    }

    // --- P2: no untimed recv on retry-covered message paths -----------------
    // `RetryPolicy` resends after a timeout; a receive with no bound can
    // outlive every retry and strand the recovery path. rmpi itself is the
    // primitive layer the policy is built on and stays exempt.
    if idx.retry_armed {
        for s in &idx.rmpi {
            if s.kind != RmpiKind::Recv {
                continue;
            }
            let crate_name = preps[s.file].origin.crate_name.as_str();
            if !MESSAGE_PATH_CRATES.contains(&crate_name) || crate_name == "rmpi" {
                continue;
            }
            let (path, line) = site(s.file, s.pos);
            out.push(Diagnostic {
                path,
                line,
                rule: "P2".to_string(),
                message: "untimed blocking `recv` on a retry-covered message path: \
                          `RetryPolicy` resends after a timeout, but this receive can \
                          block forever and strand the retry loop; use `recv_timeout` \
                          or `irecv` + `wait_timeout`"
                    .to_string(),
            });
        }
    }

    // --- P3: send/recv tag-constant consistency across crates ---------------
    // Only tag-shaped constants participate (`..TAG..`, `OP_..`): priority or
    // size constants that happen to ride in an argument list stay out, as do
    // the wildcards.
    let tagish = |c: &str| {
        (c.contains("TAG") || c.starts_with("OP_")) && c != "ANY_TAG" && c != "ANY_SOURCE"
    };
    let mut sent: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut received: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for s in &idx.rmpi {
        let book = match s.kind {
            RmpiKind::Send => &mut sent,
            RmpiKind::Recv | RmpiKind::TimedRecv | RmpiKind::Irecv | RmpiKind::Probe => {
                &mut received
            }
        };
        for c in &s.tag_consts {
            if tagish(c) {
                book.entry(c.clone()).or_insert((s.file, s.pos));
            }
        }
    }
    for (c, &(file, pos)) in &sent {
        if !received.contains_key(c) {
            let (path, line) = site(file, pos);
            out.push(Diagnostic {
                path,
                line,
                rule: "P3".to_string(),
                message: format!(
                    "tag constant `{c}` is sent but never received anywhere in the \
                     workspace: the message can never be matched; add the receive or \
                     fix the tag"
                ),
            });
        }
    }
    for (c, &(file, pos)) in &received {
        if !sent.contains_key(c) {
            let (path, line) = site(file, pos);
            out.push(Diagnostic {
                path,
                line,
                rule: "P3".to_string(),
                message: format!(
                    "tag constant `{c}` is received but never sent anywhere in the \
                     workspace: this receive can never match; add the send or fix \
                     the tag"
                ),
            });
        }
    }

    out
}
