//! Pass 1: a lightweight workspace symbol index.
//!
//! Built once over every prepped file, then shared by the L- and P-rule
//! families. Like the D-rules, this is a token-level pass over masked source
//! — no `syn` — so it indexes exactly the shapes the workspace actually
//! writes (rustfmt'd code, `let x = Semaphore::named("X", n)` lock
//! construction, `comm.recv(None, Some(TAG))`-style rmpi calls) and stays
//! dependency-free:
//!
//! * **fn definitions** with parameter names and body spans (innermost-span
//!   ownership handles nested fns);
//! * **lock labels**: idents bound to `named()` constructors, with the label
//!   string read back from the *raw* source (masking blanks literal
//!   contents), plus `.clone()` aliases — including the
//!   `let (a2, b2) = (a.clone(), b.clone());` tuple idiom;
//! * **lock events** per fn, split into task contexts at `spawn`/
//!   `spawn_daemon` closure boundaries (acquisition order inside a spawned
//!   closure is that task's order, not the spawning fn's);
//! * **call edges** with argument idents, for one-level lock propagation;
//! * **rmpi sites** (send/recv/irecv/probe) with the SCREAMING_SNAKE
//!   constants mentioned in their tag argument, and a per-site usage
//!   classification for `irecv` Requests.

use std::collections::BTreeMap;

use crate::{
    each_match, find_from, ident_before, ident_bound_at, is_ident_char, let_ident_before,
    receiver_segments, FilePrep, IndexStats,
};

/// A lock referenced inside a fn body: resolved to a `named()` label through
/// this file's bindings and clone-aliases, or left as a fn parameter to be
/// resolved at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ResRef {
    Label(String),
    Param(String),
}

#[derive(Debug, Clone)]
pub(crate) enum Event {
    Acquire { res: ResRef, pos: usize },
    Release { res: ResRef },
    Call { callee: String, args: Vec<String>, pos: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RmpiKind {
    Send,
    /// Untimed blocking receive (`recv`, `recv_value`).
    Recv,
    /// Bounded receive (`recv_timeout`).
    TimedRecv,
    Irecv,
    Probe,
}

#[derive(Debug, Clone)]
pub(crate) struct RmpiSite {
    pub(crate) file: usize,
    pub(crate) pos: usize,
    pub(crate) kind: RmpiKind,
    /// SCREAMING_SNAKE idents mentioned in the tag argument.
    pub(crate) tag_consts: Vec<String>,
}

/// How an `irecv` call's Request is consumed, judged within its fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum IrecvUse {
    /// `.irecv(..).wait_timeout(..)` etc — consumed in the same chain.
    Chained,
    /// Bound to `_` or dropped as an expression statement: the posted
    /// receive can never be completed or cancelled.
    Discarded,
    /// Bound to a name that is never read again in this fn.
    BoundUnused(String),
    /// Bound and later used, or escapes the fn (tail expression, argument,
    /// collected into a Vec handed to `waitall`/`waitany`...).
    Consumed,
}

#[derive(Debug, Clone)]
pub(crate) struct IrecvSite {
    pub(crate) file: usize,
    pub(crate) pos: usize,
    pub(crate) usage: IrecvUse,
}

#[derive(Debug, Clone)]
pub(crate) struct FnFacts {
    pub(crate) file: usize,
    pub(crate) name: String,
    pub(crate) params: Vec<String>,
    /// `contexts[0]` is the fn body outside any spawn closure; each spawned
    /// closure gets its own context (its own task, its own lock order).
    pub(crate) contexts: Vec<Vec<Event>>,
}

pub(crate) struct WorkspaceIndex {
    pub(crate) fns: Vec<FnFacts>,
    /// fn name -> indices into `fns` (all overloads/methods of that name).
    pub(crate) by_name: BTreeMap<String, Vec<usize>>,
    /// Per-file ident -> lock label (`named()` bindings + clone aliases).
    pub(crate) labels: Vec<BTreeMap<String, String>>,
    pub(crate) rmpi: Vec<RmpiSite>,
    pub(crate) irecvs: Vec<IrecvSite>,
    /// True when any indexed file mentions `RetryPolicy` — arms rule P2.
    pub(crate) retry_armed: bool,
    pub(crate) stats: IndexStats,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "move", "in", "as",
    "mut", "ref", "pub", "use", "mod", "impl", "trait", "struct", "enum", "where", "unsafe",
    "break", "continue", "dyn", "Some", "Ok", "Err", "None", "Box", "Vec", "Arc", "Rc", "String",
];

struct FnSpan {
    body_start: usize,
    body_end: usize,
}

pub(crate) fn build(preps: &[FilePrep]) -> WorkspaceIndex {
    let mut fns: Vec<FnFacts> = Vec::new();
    let mut labels: Vec<BTreeMap<String, String>> = Vec::new();
    let mut rmpi: Vec<RmpiSite> = Vec::new();
    let mut irecvs: Vec<IrecvSite> = Vec::new();
    let mut retry_armed = false;
    let mut call_sites = 0usize;
    let mut lock_sites = 0usize;

    for (fi, prep) in preps.iter().enumerate() {
        let text = &prep.text;
        labels.push(lock_labels(prep));
        let file_labels = labels.last().expect("just pushed");
        let mut retry_here = false;
        each_match(text, "RetryPolicy", |_| retry_here = true);
        retry_armed |= retry_here;

        // -- fn definitions and body spans -----------------------------------
        let first_fn = fns.len();
        let mut spans: Vec<FnSpan> = Vec::new();
        each_match(text, "fn ", |pos| {
            let Some((name, params, body_start, body_end)) = parse_fn(text, pos) else { return };
            spans.push(FnSpan { body_start, body_end });
            fns.push(FnFacts { file: fi, name, params, contexts: Vec::new() });
        });

        // Innermost-span ownership: a nested fn's events belong to the
        // nested fn, not the enclosing one.
        let owner_of = |pos: usize| -> Option<usize> {
            let mut best: Option<usize> = None;
            for (k, s) in spans.iter().enumerate() {
                if s.body_start < pos && pos < s.body_end {
                    let tighter = best
                        .map(|b| {
                            spans[b].body_end - spans[b].body_start > s.body_end - s.body_start
                        })
                        .unwrap_or(true);
                    if tighter {
                        best = Some(k);
                    }
                }
            }
            best
        };

        // -- spawn-closure contexts ------------------------------------------
        // (fn-local index, closure span) per spawned closure.
        let mut spawn_spans: Vec<(usize, usize, usize)> = Vec::new();
        for needle in ["spawn(", "spawn_daemon("] {
            each_match(text, needle, |pos| {
                let open = pos + needle.len() - 1;
                let Some(k) = owner_of(open) else { return };
                let Some((cs, ce)) = closure_span(text, open) else { return };
                spawn_spans.push((k, cs, ce));
            });
        }
        let ctx_of = |fnk: usize, pos: usize| -> usize {
            // Innermost spawn closure of this fn containing pos, else 0.
            let mut best: Option<usize> = None;
            for (si, &(k, cs, ce)) in spawn_spans.iter().enumerate() {
                if k == fnk && cs <= pos && pos < ce {
                    let tighter = best
                        .map(|b| {
                            let (_, bs, be) = spawn_spans[b];
                            be - bs > ce - cs
                        })
                        .unwrap_or(true);
                    if tighter {
                        best = Some(si);
                    }
                }
            }
            best.map(|si| si + 1).unwrap_or(0)
        };

        // -- lock events ------------------------------------------------------
        let n_fns_here = fns.len() - first_fn;
        let resolve = |seg_dot: usize, fnk: usize| -> Option<ResRef> {
            for seg in receiver_segments(text, seg_dot) {
                if let Some(l) = file_labels.get(&seg) {
                    return Some(ResRef::Label(l.clone()));
                }
                if fns[first_fn + fnk].params.contains(&seg) {
                    return Some(ResRef::Param(seg));
                }
            }
            None
        };
        // (fn-local index, context, position, event), position-sorted below.
        let mut events: Vec<(usize, usize, usize, Event)> = Vec::new();
        each_match(text, ".acquire(", |pos| {
            let Some(k) = owner_of(pos) else { return };
            if let Some(res) = resolve(pos, k) {
                lock_sites += 1;
                events.push((k, ctx_of(k, pos), pos, Event::Acquire { res, pos }));
            }
        });
        each_match(text, ".release(", |pos| {
            let Some(k) = owner_of(pos) else { return };
            if let Some(res) = resolve(pos, k) {
                events.push((k, ctx_of(k, pos), pos, Event::Release { res }));
            }
        });

        // -- call edges -------------------------------------------------------
        let bytes = text.as_bytes();
        let mut i = 0usize;
        while let Some(open) = find_from(text, "(", i) {
            i = open + 1;
            // Identifier glued to the '('.
            let mut j = open;
            while j > 0 && is_ident_char(bytes[j - 1] as char) {
                j -= 1;
            }
            if j == open {
                continue;
            }
            let name = &text[j..open];
            if KEYWORDS.contains(&name) || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                continue;
            }
            // Skip macros (`name!(`), definitions (`fn name(`), and paths that
            // are really type constructors (`Name::<`).
            let mut p = j;
            while p > 0 && (bytes[p - 1] as char).is_whitespace() {
                p -= 1;
            }
            if p > 0 && bytes[p - 1] as char == '!' {
                continue;
            }
            if text[..p].ends_with("fn") {
                continue;
            }
            let Some(k) = owner_of(open) else { continue };
            let Some(close) = balance(text, open) else { continue };
            let args: Vec<String> =
                split_args(&text[open + 1..close]).into_iter().map(|a| normalize_arg(&a)).collect();
            call_sites += 1;
            events.push((
                k,
                ctx_of(k, open),
                open,
                Event::Call { callee: name.to_string(), args, pos: open },
            ));
        }

        events.sort_by_key(|(k, c, pos, _)| (*k, *c, *pos));
        let mut per_fn: BTreeMap<(usize, usize), Vec<Event>> = BTreeMap::new();
        for (k, c, _, ev) in events {
            per_fn.entry((k, c)).or_default().push(ev);
        }
        let n_ctx = spawn_spans.len() + 1;
        for k in 0..n_fns_here {
            let mut contexts: Vec<Vec<Event>> = vec![Vec::new(); n_ctx];
            for ((fk, c), evs) in &per_fn {
                if *fk == k {
                    contexts[*c] = evs.clone();
                }
            }
            // Drop empty non-root contexts (other fns' closures).
            let root = contexts.remove(0);
            let mut kept = vec![root];
            kept.extend(contexts.into_iter().filter(|c| !c.is_empty()));
            fns[first_fn + k].contexts = kept;
        }

        // -- rmpi sites -------------------------------------------------------
        // (method, kind, min args, tag arg index, arg0 must be None/Some)
        const RMPI_NEEDLES: &[(&str, RmpiKind, usize, usize, bool)] = &[
            (".send", RmpiKind::Send, 3, 1, false),
            (".isend", RmpiKind::Send, 3, 1, false),
            (".send_value", RmpiKind::Send, 4, 1, false),
            (".recv", RmpiKind::Recv, 2, 1, true),
            (".recv_value", RmpiKind::Recv, 2, 1, true),
            (".recv_timeout", RmpiKind::TimedRecv, 3, 1, true),
            (".irecv", RmpiKind::Irecv, 2, 1, true),
            (".probe", RmpiKind::Probe, 2, 1, true),
            (".iprobe", RmpiKind::Probe, 2, 1, true),
        ];
        for &(needle, kind, min_args, tag_idx, optlike) in RMPI_NEEDLES {
            each_match(text, needle, |pos| {
                // Argument list opens right after the method name, or after a
                // turbofish (`.recv_value::<T>(...)`).
                let mut open = pos + needle.len();
                if text[open..].starts_with("::<") {
                    let bytes = text.as_bytes();
                    let mut depth = 0i64;
                    let mut k = open + 2;
                    while k < bytes.len() {
                        match bytes[k] as char {
                            '<' => depth += 1,
                            '>' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    open = k + 1;
                }
                if text.as_bytes().get(open) != Some(&b'(') {
                    return;
                }
                let Some(close) = balance(text, open) else { return };
                let args = split_args(&text[open + 1..close]);
                if args.len() < min_args {
                    return;
                }
                if optlike {
                    let a0 = args[0].trim_start();
                    if !(a0.starts_with("None") || a0.starts_with("Some")) {
                        return;
                    }
                }
                let tag_consts = args.get(tag_idx).map(|a| screaming_idents(a)).unwrap_or_default();
                rmpi.push(RmpiSite { file: fi, pos, kind, tag_consts });
                if kind == RmpiKind::Irecv {
                    let body_end = owner_of(pos).map(|k| spans[k].body_end).unwrap_or(text.len());
                    let usage = classify_irecv(text, pos, close, body_end);
                    irecvs.push(IrecvSite { file: fi, pos, usage });
                }
            });
        }
    }

    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    let stats = IndexStats {
        files: preps.len(),
        fns: fns.len(),
        call_sites,
        lock_sites,
        rmpi_sites: rmpi.len(),
    };
    WorkspaceIndex { fns, by_name, labels, rmpi, irecvs, retry_armed, stats }
}

/// Parse the fn whose `fn ` keyword starts at `pos`:
/// `(name, param names, body `{` pos, body `}` pos)`. Returns `None` for
/// bodyless declarations (trait methods, extern blocks).
fn parse_fn(text: &str, pos: usize) -> Option<(String, Vec<String>, usize, usize)> {
    let bytes = text.as_bytes();
    let mut j = pos + 3;
    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
        j += 1;
    }
    let name_start = j;
    while j < bytes.len() && is_ident_char(bytes[j] as char) {
        j += 1;
    }
    if j == name_start {
        return None;
    }
    let name = text[name_start..j].to_string();
    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
        j += 1;
    }
    // Generics.
    if bytes.get(j) == Some(&b'<') {
        let mut depth = 0i64;
        while j < bytes.len() {
            match bytes[j] as char {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
    }
    if bytes.get(j) != Some(&b'(') {
        return None;
    }
    let params_open = j;
    let params_close = balance(text, params_open)?;
    let params: Vec<String> = split_args(&text[params_open + 1..params_close])
        .into_iter()
        .filter_map(|p| {
            let p = p.trim();
            if p.is_empty() || p.ends_with("self") {
                return None;
            }
            let name = p.split(':').next().unwrap_or("").trim();
            let name = name.strip_prefix("mut ").unwrap_or(name).trim();
            if !name.is_empty() && name.chars().all(is_ident_char) {
                Some(name.to_string())
            } else {
                Some(String::new()) // positional placeholder for patterns
            }
        })
        .collect();
    // Body: the next `{` before any `;` (a `;` first means no body).
    let mut k = params_close + 1;
    while k < bytes.len() {
        match bytes[k] as char {
            '{' => break,
            ';' => return None,
            _ => k += 1,
        }
    }
    if k >= bytes.len() {
        return None;
    }
    let body_end = balance_brace(text, k)?;
    Some((name, params, k, body_end))
}

/// Matching `)` for the `(` at `open`.
pub(crate) fn balance(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0i64;
    let mut k = open;
    while k < bytes.len() {
        match bytes[k] as char {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Matching `}` for the `{` at `open`.
fn balance_brace(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0i64;
    let mut k = open;
    while k < bytes.len() {
        match bytes[k] as char {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Split an argument (or parameter) list on top-level commas, tracking all
/// bracket kinds so struct literals and nested calls stay whole.
pub(crate) fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let (mut paren, mut brace, mut bracket, mut angle) = (0i64, 0i64, 0i64, 0i64);
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => paren += 1,
            ')' => paren -= 1,
            '{' => brace += 1,
            '}' => brace -= 1,
            '[' => bracket += 1,
            ']' => bracket -= 1,
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0),
            ',' if paren == 0 && brace == 0 && bracket == 0 && angle <= 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Reduce a call argument to the ident it passes, if it is a plain (possibly
/// borrowed) ident; anything more structured becomes `""`.
fn normalize_arg(a: &str) -> String {
    let a = a.trim();
    let a = a.strip_prefix("&mut ").or_else(|| a.strip_prefix('&')).unwrap_or(a);
    let a = a.trim();
    if !a.is_empty() && a.chars().all(is_ident_char) {
        a.to_string()
    } else {
        String::new()
    }
}

/// SCREAMING_SNAKE idents (len >= 2, no lowercase, at least one letter)
/// inside an expression — how tag constants appear in tag arguments, both
/// bare (`Some(BASIC_TAG)`) and computed (`coll_tag(OP_BCAST, seq)`).
fn screaming_idents(expr: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = expr.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if is_ident_char(bytes[i] as char) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            let ident = &expr[start..i];
            let has_alpha = ident.chars().any(|c| c.is_ascii_alphabetic());
            let screaming = !ident.chars().any(|c| c.is_ascii_lowercase());
            if ident.len() >= 2 && has_alpha && screaming && !out.contains(&ident.to_string()) {
                out.push(ident.to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Collect `ident -> label` for every `named("label", ...)` construction in
/// the file, then fold `.clone()` aliases (including tuple destructuring)
/// into the same map.
fn lock_labels(prep: &FilePrep) -> BTreeMap<String, String> {
    let text = &prep.text;
    let mut labels: BTreeMap<String, String> = BTreeMap::new();
    each_match(text, "::named(", |pos| {
        let open = pos + "::named(".len() - 1;
        // The label literal was blanked by masking; read it from raw chars.
        let mut k = open + 1;
        while k < prep.raw.len() && prep.raw[k].is_whitespace() {
            k += 1;
        }
        if prep.raw.get(k) != Some(&'"') {
            return;
        }
        k += 1;
        let mut label = String::new();
        while k < prep.raw.len() && prep.raw[k] != '"' {
            label.push(prep.raw[k]);
            k += 1;
        }
        if label.is_empty() {
            return;
        }
        if let Some(name) = ident_bound_at(text, pos) {
            labels.insert(name, label);
        }
    });

    // `let x2 = x.clone();`
    let mut aliases: Vec<(String, String)> = Vec::new();
    each_match(text, ".clone()", |pos| {
        let Some(src) = ident_before(text, pos) else { return };
        let bytes = text.as_bytes();
        let mut j = pos - src.len();
        while j > 0 && (bytes[j - 1] as char).is_whitespace() {
            j -= 1;
        }
        if j == 0 || bytes[j - 1] as char != '=' {
            return;
        }
        if let Some(name) = let_ident_before(text, j - 1) {
            aliases.push((name, src));
        }
    });
    // `let (a2, b2) = (a.clone(), b.clone());`
    each_match(text, "let (", |pos| {
        let open = pos + "let (".len() - 1;
        let Some(close) = balance(text, open) else { return };
        let names = split_args(&text[open + 1..close]);
        if names.is_empty() || !names.iter().all(|n| n.chars().all(is_ident_char)) {
            return;
        }
        let bytes = text.as_bytes();
        let mut j = close + 1;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'=') {
            return;
        }
        j += 1;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(') {
            return;
        }
        let Some(rhs_close) = balance(text, j) else { return };
        let exprs = split_args(&text[j + 1..rhs_close]);
        for (name, expr) in names.iter().zip(exprs.iter()) {
            if let Some(src) = expr.trim().strip_suffix(".clone()") {
                if src.chars().all(is_ident_char) && !src.is_empty() {
                    aliases.push((name.clone(), src.to_string()));
                }
            }
        }
    });
    // Aliases may chain (x2 = x.clone(); x3 = x2.clone()); two folding
    // rounds cover any depth the workspace realistically writes.
    for _ in 0..2 {
        for (name, src) in &aliases {
            if let Some(l) = labels.get(src).cloned() {
                labels.entry(name.clone()).or_insert(l);
            }
        }
    }
    labels
}

/// Closure span for a `spawn(...)` whose argument list opens at `open`: the
/// body of the first `|params|` closure among the arguments.
fn closure_span(text: &str, open: usize) -> Option<(usize, usize)> {
    let close = balance(text, open)?;
    let bytes = text.as_bytes();
    let mut j = open + 1;
    while j < close && bytes[j] as char != '|' {
        j += 1;
    }
    if j >= close {
        return None;
    }
    // Params end at the matching '|' (`||` means empty params).
    let params_end = if bytes.get(j + 1) == Some(&b'|') {
        j + 1
    } else {
        let mut k = j + 1;
        while k < close && bytes[k] as char != '|' {
            k += 1;
        }
        k
    };
    let mut b = params_end + 1;
    while b < close && (bytes[b] as char).is_whitespace() {
        b += 1;
    }
    if bytes.get(b) == Some(&b'{') {
        let end = balance_brace(text, b)?;
        Some((b, end))
    } else {
        // Expression-bodied closure: runs to the call's closing paren.
        Some((b, close))
    }
}

/// Classify how the Request returned by the `.irecv(` at `dot` (args closing
/// at `close`) is consumed, looking within the owning fn body ending at
/// `body_end`.
fn classify_irecv(text: &str, dot: usize, close: usize, body_end: usize) -> IrecvUse {
    let bytes = text.as_bytes();
    // Chained consumption: `.irecv(..).wait()` / `.attach(..)` / ...
    let mut a = close + 1;
    while a < bytes.len() && (bytes[a] as char).is_whitespace() {
        a += 1;
    }
    if bytes.get(a) == Some(&b'.') || bytes.get(a) == Some(&b'?') {
        return IrecvUse::Chained;
    }
    // Walk back over the receiver chain (`comm`, `self.comm`, ...) to the
    // expression start.
    let mut j = dot;
    loop {
        let stop = j;
        while j > 0 && is_ident_char(bytes[j - 1] as char) {
            j -= 1;
        }
        if j == stop {
            break;
        }
        let mut k = j;
        while k > 0 && (bytes[k - 1] as char).is_whitespace() {
            k -= 1;
        }
        if k > 0 && bytes[k - 1] as char == '.' {
            j = k - 1;
            continue;
        }
        break;
    }
    let mut p = j;
    while p > 0 && (bytes[p - 1] as char).is_whitespace() {
        p -= 1;
    }
    match bytes.get(p.wrapping_sub(1)).map(|&b| b as char) {
        Some('=') => {
            let Some(name) = ident_before(text, p - 1) else { return IrecvUse::Consumed };
            if name == "_" {
                return IrecvUse::Discarded;
            }
            // `_` can't be read back but named bindings can: consumed iff
            // the name is mentioned again before the fn body ends.
            let rest = &text[close + 1..body_end.min(text.len())];
            let mut seen = false;
            each_match(rest, &name, |_| seen = true);
            if seen {
                IrecvUse::Consumed
            } else {
                IrecvUse::BoundUnused(name)
            }
        }
        Some(';') | Some('{') | Some('}') => {
            // Expression statement: the Request drops at the `;`.
            if bytes.get(a) == Some(&b';') {
                IrecvUse::Discarded
            } else {
                IrecvUse::Consumed // block tail expression: escapes
            }
        }
        _ => IrecvUse::Consumed, // argument position, closure tail, `return`...
    }
}
