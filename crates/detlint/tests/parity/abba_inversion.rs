//! Parity scenario: AB and BA acquisition orders that never overlap in time.
//! The run completes, so simt logs the inversion dynamically; detlint must
//! find the same pair statically.

pub fn scenario(sim: &simt::Sim) {
    let a = simt::sync::Semaphore::named("A", 1);
    let b = simt::sync::Semaphore::named("B", 1);
    let (a2, b2) = (a.clone(), b.clone());
    sim.spawn("first", move || {
        a.acquire(1);
        b.acquire(1);
        b.release(1);
        a.release(1);
    });
    sim.spawn("second", move || {
        simt::sleep(100);
        b2.acquire(1);
        a2.acquire(1);
        a2.release(1);
        b2.release(1);
    });
}
