//! Parity scenario: the classic ABBA deadlock. Neither second acquire ever
//! completes, so the dynamic inversion log is empty and the evidence lives in
//! the reported 2-cycle instead; detlint must still find the pair statically.

pub fn scenario(sim: &simt::Sim) {
    let a = simt::sync::Semaphore::named("A", 1);
    let b = simt::sync::Semaphore::named("B", 1);
    let (a2, b2) = (a.clone(), b.clone());
    sim.spawn("t-ab", move || {
        a.acquire(1);
        simt::sleep(10);
        b.acquire(1);
        b.release(1);
        a.release(1);
    });
    sim.spawn("t-ba", move || {
        b2.acquire(1);
        simt::sleep(10);
        a2.acquire(1);
        a2.release(1);
        b2.release(1);
    });
}
