//! Parity scenario: the second acquire is hidden inside a helper function, so
//! the static pass only sees the inversion by propagating the helper's lock
//! sequence one level through the call graph.

pub fn grab(sem: &simt::sync::Semaphore) {
    sem.acquire(1);
    sem.release(1);
}

pub fn scenario(sim: &simt::Sim) {
    let a = simt::sync::Semaphore::named("A", 1);
    let b = simt::sync::Semaphore::named("B", 1);
    let (a2, b2) = (a.clone(), b.clone());
    sim.spawn("ab-via-helper", move || {
        a.acquire(1);
        grab(&b);
        a.release(1);
    });
    sim.spawn("ba-direct", move || {
        simt::sleep(100);
        b2.acquire(1);
        a2.acquire(1);
        a2.release(1);
        b2.release(1);
    });
}
