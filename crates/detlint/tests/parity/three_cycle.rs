//! Parity scenario: a three-way lock cycle. No single pair inverts, so the
//! dynamic inversion log stays empty and the deadlock report carries a
//! 3-cycle; statically this is detlint's cycle finding, not an L1 pair.

pub fn scenario(sim: &simt::Sim) {
    let a = simt::sync::Semaphore::named("A", 1);
    let b = simt::sync::Semaphore::named("B", 1);
    let c = simt::sync::Semaphore::named("C", 1);
    let (a2, b2) = (a.clone(), b.clone());
    let (c2, a3) = (c.clone(), a2.clone());
    sim.spawn("t-ab", move || {
        a.acquire(1);
        simt::sleep(10);
        b.acquire(1);
        b.release(1);
        a.release(1);
    });
    sim.spawn("t-bc", move || {
        b2.acquire(1);
        simt::sleep(10);
        c.acquire(1);
        c.release(1);
        b2.release(1);
    });
    sim.spawn("t-ca", move || {
        c2.acquire(1);
        simt::sleep(10);
        a3.acquire(1);
        a3.release(1);
        c2.release(1);
    });
}
