//! Static/dynamic parity: every lock-order inversion that simt's runtime
//! diagnoser observes must also be found by detlint's static L-rule on the
//! same source. Static-only findings are fine (the static pass considers
//! schedules the runtime never took); dynamic-only findings are a bug in the
//! analyzer and fail here.
//!
//! Each scenario under `tests/parity/` is both compiled as a module (so simt
//! actually executes it) and fed verbatim to `analyze_files` via
//! `include_str!` (so detlint analyzes the exact same code).

use std::collections::BTreeSet;

use detlint::{analyze_files, Analysis, FileOrigin, SourceFile};

#[path = "parity/abba_deadlock.rs"]
mod abba_deadlock;
#[path = "parity/abba_inversion.rs"]
mod abba_inversion;
#[path = "parity/helper_propagation.rs"]
mod helper_propagation;
#[path = "parity/three_cycle.rs"]
mod three_cycle;

fn static_analysis(name: &str, src: &str) -> Analysis {
    analyze_files(&[SourceFile {
        display_path: format!("tests/parity/{name}.rs"),
        origin: FileOrigin {
            crate_name: "sparklet".to_string(),
            rel_path: format!("tests/parity/{name}.rs"),
        },
        src: src.to_string(),
    }])
}

/// Everything the runtime observed about lock ordering: completed-acquire
/// inversions, plus the pair behind any 2-cycle deadlock (those acquires
/// never complete, so they are absent from the inversion log by design).
fn dynamic_pairs(report: &simt::SimReport) -> BTreeSet<(String, String)> {
    let mut pairs: BTreeSet<(String, String)> = report.lock_inversions.iter().cloned().collect();
    for cyc in &report.deadlocks {
        if cyc.len() == 2 {
            let (a, b) = (cyc[0].1.clone(), cyc[1].1.clone());
            pairs.insert(if a <= b { (a, b) } else { (b, a) });
        }
    }
    pairs
}

fn assert_parity(name: &str, src: &str, scenario: fn(&simt::Sim)) -> Analysis {
    let sim = simt::Sim::new();
    scenario(&sim);
    let report = sim.run().expect("scenario runs");
    let dynamic = dynamic_pairs(&report);
    let analysis = static_analysis(name, src);
    let found: BTreeSet<(String, String)> = analysis.lock_inversions.iter().cloned().collect();
    let missing: Vec<_> = dynamic.difference(&found).collect();
    assert!(
        missing.is_empty(),
        "{name}: runtime observed inversions the static L-rule missed: {missing:?} \
         (static found: {found:?})"
    );
    analysis
}

#[test]
fn completed_abba_inversion_is_found_statically() {
    let analysis = assert_parity(
        "abba_inversion",
        include_str!("parity/abba_inversion.rs"),
        abba_inversion::scenario,
    );
    assert_eq!(analysis.lock_inversions, vec![("A".to_string(), "B".to_string())]);
    assert!(analysis.diagnostics.iter().any(|d| d.rule == "L1"), "{:?}", analysis.diagnostics);
}

#[test]
fn deadlocked_abba_pair_is_found_statically() {
    let sim = simt::Sim::new();
    abba_deadlock::scenario(&sim);
    let report = sim.run().expect("scenario runs");
    assert!(
        report.lock_inversions.is_empty(),
        "deadlocked acquires never complete, so the dynamic log must be empty"
    );
    assert_eq!(report.deadlocks.len(), 1, "{:?}", report.deadlocks);
    let analysis = assert_parity(
        "abba_deadlock",
        include_str!("parity/abba_deadlock.rs"),
        abba_deadlock::scenario,
    );
    assert_eq!(analysis.lock_inversions, vec![("A".to_string(), "B".to_string())]);
}

#[test]
fn inversion_through_a_helper_call_is_found_statically() {
    let analysis = assert_parity(
        "helper_propagation",
        include_str!("parity/helper_propagation.rs"),
        helper_propagation::scenario,
    );
    assert_eq!(analysis.lock_inversions, vec![("A".to_string(), "B".to_string())]);
}

#[test]
fn three_way_cycle_is_reported_statically_without_any_pairwise_inversion() {
    let analysis =
        assert_parity("three_cycle", include_str!("parity/three_cycle.rs"), three_cycle::scenario);
    let cycle = analysis
        .diagnostics
        .iter()
        .find(|d| d.message.contains("lock-order cycle"))
        .expect("static 3-cycle finding");
    for label in ["`A`", "`B`", "`C`"] {
        assert!(cycle.message.contains(label), "{}", cycle.message);
    }
}

#[test]
fn sim_accessor_matches_the_report_inversion_log() {
    let sim = simt::Sim::new();
    abba_inversion::scenario(&sim);
    let report = sim.run().expect("scenario runs");
    assert_eq!(sim.lock_inversions(), report.lock_inversions);
    assert_eq!(sim.lock_inversions(), vec![("A".to_string(), "B".to_string())]);
}
