//! Fixture: irecv Requests that are never completed, cancelled, or escaped.

pub fn leak_discarded(comm: &rmpi::Comm, tag: u64) {
    comm.irecv(None, Some(tag));
}

pub fn leak_bound(comm: &rmpi::Comm, tag: u64) {
    let req = comm.irecv(None, Some(tag));
    simt::sleep(1);
}

pub fn ok_chained(comm: &rmpi::Comm, tag: u64) -> bool {
    comm.irecv(None, Some(tag)).wait().is_ok()
}

pub fn ok_escapes(comm: &rmpi::Comm, tags: &[u64]) -> Vec<rmpi::Request> {
    tags.iter().map(|&t| comm.irecv(None, Some(t))).collect()
}
