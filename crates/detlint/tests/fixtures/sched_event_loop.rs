//! Fixture: a stage-attempt event loop written against every determinism
//! rule at once — the shapes `sparklet::scheduler`'s engine must avoid.

use std::collections::HashMap;

pub struct Attempt {
    pub launches: HashMap<u64, u64>,
}

pub fn run_attempt(
    att: &Attempt,
    events: &simt::queue::Queue<u64>,
    state: &parking_lot::Mutex<Vec<u64>>,
    req: &rmpi::Request,
) -> u64 {
    let tick = std::time::Instant::now();
    std::thread::spawn(|| {});
    let mut rng = rand::thread_rng();
    let jitter: u8 = rand::Rng::gen(&mut rng);
    let mut straggliest = 0;
    for at_ns in att.launches.values() {
        straggliest = straggliest.max(*at_ns);
    }
    let mut held = state.lock();
    let part = events.recv().unwrap();
    held.push(part);
    drop(held);
    while !req.test() {
        std::hint::spin_loop();
    }
    straggliest + part + u64::from(jitter) + tick.elapsed().as_nanos() as u64
}
