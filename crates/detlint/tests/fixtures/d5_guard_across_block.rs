//! Fixture: rule D5 — blocking while a lock guard is held.

pub fn drain(q: &simt::queue::Queue<u64>, state: &parking_lot::Mutex<Vec<u64>>) {
    let mut held = state.lock();
    let v = q.recv().unwrap();
    held.push(v);
}
