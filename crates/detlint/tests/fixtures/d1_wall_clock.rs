//! Fixture: rule D1 — wall-clock time in simulated code.

pub fn elapsed() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
