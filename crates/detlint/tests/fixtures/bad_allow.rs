//! Fixture: an allow directive without a reason is itself a finding.

pub fn stamp() {
    let _ = std::time::Instant::now(); // detlint: allow(D1)
}
