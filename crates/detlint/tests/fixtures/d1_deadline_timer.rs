//! Fixture: rule D1 — a bounded-latency job deadline armed off the host
//! wall clock. Budgets must ride the virtual clock (`simt::DeadlineTimer`):
//! a wall-clock expiry fires at a different virtual instant on every host,
//! so the partial result it produces never replays under a seed.

pub struct WallClockDeadline {
    armed_at: std::time::Instant,
    budget_ns: u64,
}

impl WallClockDeadline {
    pub fn arm(budget_ns: u64) -> Self {
        Self { armed_at: std::time::Instant::now(), budget_ns }
    }

    pub fn expired(&self) -> bool {
        self.armed_at.elapsed().as_nanos() as u64 >= self.budget_ns
    }
}
