//! Fixture: rule D6 — busy-spin polling a nonblocking request.

pub fn spin_until_done(req: &rmpi::Request) {
    while !req.test() {
        std::hint::spin_loop();
    }
}
