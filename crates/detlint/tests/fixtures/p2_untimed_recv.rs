//! Fixture: untimed blocking recv on a retry-covered message path. The
//! RetryPolicy mention arms P2 for this (single-file) analysis.

pub fn fetch(comm: &rmpi::Comm, policy: &netz::RetryPolicy) -> usize {
    let _ = policy;
    comm.send(0, REQ_TAG, body()).unwrap();
    let (payload, _status) = comm.recv(None, Some(REQ_TAG)).unwrap();
    payload.len()
}
