//! Fixture: rule D4 — hash-order iteration on the message path.

use std::collections::HashMap;

pub struct Router {
    routes: HashMap<u64, String>,
}

impl Router {
    pub fn names(&self) -> Vec<String> {
        self.routes.values().cloned().collect()
    }
}
