//! Fixture: rule D2 — OS thread API outside the simt engine.

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
