//! Fixture: tag constants used on only one side of the conversation.

pub const REQ_TAG: u64 = 7;
pub const ACK_TAG: u64 = 8;

pub fn request(comm: &rmpi::Comm) {
    comm.send(0, REQ_TAG, body()).unwrap();
}

pub fn respond(comm: &rmpi::Comm) {
    let _ = comm.recv(None, Some(ACK_TAG));
}
