//! Fixture: allow directives with a reason silence the finding.

pub fn stamp() -> bool {
    let t = std::time::SystemTime::now(); // detlint: allow(D1, reason = "fixture: host-facing")
    let _ = t;
    // detlint: allow(D2, reason = "fixture: standalone directive covers the next code line")
    std::thread::spawn(|| {}).join().is_ok()
}
