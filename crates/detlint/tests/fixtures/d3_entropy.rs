//! Fixture: rule D3 — OS entropy in simulated code.

pub fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}
