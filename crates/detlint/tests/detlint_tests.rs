//! Fixture tests: every rule fires on its known-bad snippet with the exact
//! expected diagnostic, allow directives silence findings, and the real
//! workspace is clean.

use detlint::{scan_source, scan_workspace, Diagnostic, FileOrigin};

fn origin(crate_name: &str) -> FileOrigin {
    FileOrigin { crate_name: crate_name.to_string(), rel_path: "src/fixture.rs".to_string() }
}

fn scan(crate_name: &str, src: &str) -> Vec<(usize, String, String)> {
    scan_source("fixture.rs", &origin(crate_name), src)
        .into_iter()
        .map(|d| (d.line, d.rule, d.message))
        .collect()
}

#[test]
fn d1_flags_wall_clock_time() {
    let src = include_str!("fixtures/d1_wall_clock.rs");
    assert_eq!(
        scan("netz", src),
        vec![(
            4,
            "D1".to_string(),
            "wall-clock `std::time::Instant` in simulated code; use `simt::now()` / \
             `simt::time` so timings replay under a seed"
                .to_string()
        )]
    );
}

#[test]
fn d1_is_waived_inside_simt() {
    let src = include_str!("fixtures/d1_wall_clock.rs");
    assert_eq!(scan("simt", src), vec![], "simt itself owns the clock");
}

#[test]
fn d2_flags_os_threads() {
    let src = include_str!("fixtures/d2_os_thread.rs");
    assert_eq!(
        scan("netz", src),
        vec![(
            4,
            "D2".to_string(),
            "OS thread API `std::thread::spawn` outside the simt engine; use `simt::spawn` \
             so the scheduler stays deterministic"
                .to_string()
        )]
    );
}

#[test]
fn d2_is_waived_in_engine_but_not_elsewhere_in_simt() {
    let src = include_str!("fixtures/d2_os_thread.rs");
    let engine =
        FileOrigin { crate_name: "simt".to_string(), rel_path: "src/engine.rs".to_string() };
    assert_eq!(scan_source("engine.rs", &engine, src), vec![]);
    assert_eq!(scan("simt", src).len(), 1, "simt code outside the engine still obeys D2");
}

#[test]
fn d3_flags_os_entropy() {
    let src = include_str!("fixtures/d3_entropy.rs");
    assert_eq!(
        scan("workloads", src),
        vec![
            (
                4,
                "D3".to_string(),
                "OS-entropy source `thread_rng`; all randomness must derive from the run \
                 seed — use `simt::SeededRng`"
                    .to_string()
            ),
            (
                5,
                "D3".to_string(),
                "`rand` crate in simulated code; prefer `simt::SeededRng`, or annotate the \
                 seeded use with `// detlint: allow(D3, reason = \"...\")`"
                    .to_string()
            ),
        ]
    );
}

#[test]
fn d4_flags_hash_iteration_on_message_path_only() {
    let src = include_str!("fixtures/d4_hash_iter.rs");
    assert_eq!(
        scan("netz", src),
        vec![(
            11,
            "D4".to_string(),
            "`.values()` over hash collection `routes` on the message path: iteration \
             order is nondeterministic and leaks into message/scheduling order; use \
             `BTreeMap`/`BTreeSet` or a sorted collect"
                .to_string()
        )]
    );
    assert_eq!(scan("workloads", src), vec![], "D4 only guards the message-path crates");
}

#[test]
fn d5_flags_blocking_with_guard_held() {
    let src = include_str!("fixtures/d5_guard_across_block.rs");
    assert_eq!(
        scan("sparklet", src),
        vec![(
            5,
            "D5".to_string(),
            "blocking call `.recv()` while lock guard `held` (line 4) still held: the \
             engine reschedules here, inviting lost wakeups and deadlock; drop the guard \
             (scope it or `drop()`) before blocking"
                .to_string()
        )]
    );
}

#[test]
fn d6_flags_busy_spin_on_request_test() {
    let src = include_str!("fixtures/d6_busy_spin.rs");
    assert_eq!(
        scan("core", src),
        vec![(
            4,
            "D6".to_string(),
            "busy-spin `while` loop polling `.test()` with no blocking call in the body: \
             every probe charges simulated CPU, reproducing the Basic design's polling burn; \
             block on `wait()` / `waitany()` / `CompletionSet::wait_next()` instead"
                .to_string()
        )]
    );
}

#[test]
fn d6_accepts_polling_loops_that_block() {
    let src = "pub fn poll(req: &rmpi::Request) {\n    while !req.test() {\n        \
               simt::sleep(1_000);\n    }\n}\n";
    assert_eq!(scan("core", src), vec![], "a sleep in the body makes it an event loop");
}

#[test]
fn every_rule_fires_on_the_scheduler_shaped_event_loop() {
    // A stage-attempt event loop (speculation tick, launch bookkeeping,
    // completion drain, request polling) violating D1-D6 all at once — the
    // exact shapes `sparklet::scheduler`'s engine must avoid, pinned here
    // so the sweep keeps guarding them.
    let src = include_str!("fixtures/sched_event_loop.rs");
    let diags = scan("sparklet", src);
    let rules: Vec<&str> = diags.iter().map(|(_, r, _)| r.as_str()).collect();
    assert_eq!(rules, vec!["D1", "D2", "D3", "D3", "D4", "D5", "D6"], "{diags:?}");
    assert_eq!(
        diags.iter().map(|(l, _, _)| *l).collect::<Vec<_>>(),
        vec![16, 17, 18, 19, 21, 25, 28]
    );
    assert!(diags[4].2.contains("`launches`"), "D4 names the hash collection: {}", diags[4].2);
    assert!(diags[5].2.contains("guard `held` (line 24)"), "D5 names the guard: {}", diags[5].2);
}

#[test]
fn allow_directives_with_reason_silence_findings() {
    let src = include_str!("fixtures/allowed.rs");
    assert_eq!(scan("netz", src), vec![]);
}

#[test]
fn allow_directive_without_reason_is_a_finding() {
    let src = include_str!("fixtures/bad_allow.rs");
    let diags = scan("netz", src);
    assert_eq!(diags.len(), 2, "the bad directive and the unwaived D1 both fire: {diags:?}");
    assert_eq!((diags[0].0, diags[0].1.as_str()), (4, "D1"));
    assert_eq!(diags[1].0, 4);
    assert_eq!(diags[1].1, "allow");
    assert!(diags[1].2.contains("must name a rule and a reason"), "{}", diags[1].2);
}

#[test]
fn code_under_cfg_test_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    pub fn t() {\n        \
               let _ = std::time::Instant::now();\n    }\n}\n";
    assert_eq!(scan("netz", src), vec![]);
}

#[test]
fn strings_and_comments_never_match() {
    let src = "pub fn doc() -> &'static str {\n    // std::thread::spawn is banned\n    \
               \"std::time::Instant::now()\"\n}\n";
    assert_eq!(scan("netz", src), vec![]);
}

#[test]
fn render_formats_are_stable() {
    let d = Diagnostic {
        path: "crates/x/src/a.rs".to_string(),
        line: 7,
        rule: "D1".to_string(),
        message: "msg".to_string(),
    };
    assert_eq!(d.render(), "crates/x/src/a.rs:7: D1: msg");
    assert_eq!(
        d.render_json(),
        "{\"path\":\"crates/x/src/a.rs\",\"line\":7,\"rule\":\"D1\",\"message\":\"msg\"}"
    );
}

#[test]
fn the_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let diags = scan_workspace(root).expect("workspace scan");
    let rendered: Vec<String> = diags.iter().map(Diagnostic::render).collect();
    assert!(rendered.is_empty(), "determinism lints must hold:\n{}", rendered.join("\n"));
}
