//! Fixture tests: every rule fires on its known-bad snippet with the exact
//! expected diagnostic, allow directives silence findings, and the real
//! workspace is clean.

use detlint::{scan_source, scan_workspace, Diagnostic, FileOrigin};

fn origin(crate_name: &str) -> FileOrigin {
    FileOrigin { crate_name: crate_name.to_string(), rel_path: "src/fixture.rs".to_string() }
}

fn scan(crate_name: &str, src: &str) -> Vec<(usize, String, String)> {
    scan_source("fixture.rs", &origin(crate_name), src)
        .into_iter()
        .map(|d| (d.line, d.rule, d.message))
        .collect()
}

#[test]
fn d1_flags_wall_clock_time() {
    let src = include_str!("fixtures/d1_wall_clock.rs");
    assert_eq!(
        scan("netz", src),
        vec![(
            4,
            "D1".to_string(),
            "wall-clock `std::time::Instant` in simulated code; use `simt::now()` / \
             `simt::time` so timings replay under a seed"
                .to_string()
        )]
    );
}

#[test]
fn d1_is_waived_inside_simt() {
    let src = include_str!("fixtures/d1_wall_clock.rs");
    assert_eq!(scan("simt", src), vec![], "simt itself owns the clock");
}

#[test]
fn d1_flags_wall_clock_deadline_timers() {
    // The bounded-latency anti-pattern: a job deadline armed at
    // `Instant::now()` instead of `simt::DeadlineTimer`. D1 fires at both
    // the arm site and the field that smuggles the wall-clock instant.
    let src = include_str!("fixtures/d1_deadline_timer.rs");
    let diags = scan("sparklet", src);
    let hits: Vec<(usize, &str)> = diags.iter().map(|(l, r, _)| (*l, r.as_str())).collect();
    assert_eq!(hits, vec![(7, "D1"), (13, "D1")], "arm site and stored instant must both fire");
}

#[test]
fn d2_flags_os_threads() {
    let src = include_str!("fixtures/d2_os_thread.rs");
    assert_eq!(
        scan("netz", src),
        vec![(
            4,
            "D2".to_string(),
            "OS thread API `std::thread::spawn` outside the simt engine; use `simt::spawn` \
             so the scheduler stays deterministic"
                .to_string()
        )]
    );
}

#[test]
fn d2_is_waived_in_engine_but_not_elsewhere_in_simt() {
    let src = include_str!("fixtures/d2_os_thread.rs");
    let engine =
        FileOrigin { crate_name: "simt".to_string(), rel_path: "src/engine.rs".to_string() };
    assert_eq!(scan_source("engine.rs", &engine, src), vec![]);
    assert_eq!(scan("simt", src).len(), 1, "simt code outside the engine still obeys D2");
}

#[test]
fn d3_flags_os_entropy() {
    let src = include_str!("fixtures/d3_entropy.rs");
    assert_eq!(
        scan("workloads", src),
        vec![
            (
                4,
                "D3".to_string(),
                "OS-entropy source `thread_rng`; all randomness must derive from the run \
                 seed — use `simt::SeededRng`"
                    .to_string()
            ),
            (
                5,
                "D3".to_string(),
                "`rand` crate in simulated code; prefer `simt::SeededRng`, or annotate the \
                 seeded use with `// detlint: allow(D3, reason = \"...\")`"
                    .to_string()
            ),
        ]
    );
}

#[test]
fn d4_flags_hash_iteration_on_message_path_only() {
    let src = include_str!("fixtures/d4_hash_iter.rs");
    assert_eq!(
        scan("netz", src),
        vec![(
            11,
            "D4".to_string(),
            "`.values()` over hash collection `routes` on the message path: iteration \
             order is nondeterministic and leaks into message/scheduling order; use \
             `BTreeMap`/`BTreeSet` or a sorted collect"
                .to_string()
        )]
    );
    assert_eq!(scan("workloads", src), vec![], "D4 only guards the message-path crates");
}

#[test]
fn d5_flags_blocking_with_guard_held() {
    let src = include_str!("fixtures/d5_guard_across_block.rs");
    assert_eq!(
        scan("sparklet", src),
        vec![(
            5,
            "D5".to_string(),
            "blocking call `.recv()` while lock guard `held` (line 4) still held: the \
             engine reschedules here, inviting lost wakeups and deadlock; drop the guard \
             (scope it or `drop()`) before blocking"
                .to_string()
        )]
    );
}

#[test]
fn d6_flags_busy_spin_on_request_test() {
    let src = include_str!("fixtures/d6_busy_spin.rs");
    assert_eq!(
        scan("core", src),
        vec![(
            4,
            "D6".to_string(),
            "busy-spin `while` loop polling `.test()` with no blocking call in the body: \
             every probe charges simulated CPU, reproducing the Basic design's polling burn; \
             block on `wait()` / `waitany()` / `CompletionSet::wait_next()` instead"
                .to_string()
        )]
    );
}

#[test]
fn d6_accepts_polling_loops_that_block() {
    let src = "pub fn poll(req: &rmpi::Request) {\n    while !req.test() {\n        \
               simt::sleep(1_000);\n    }\n}\n";
    assert_eq!(scan("core", src), vec![], "a sleep in the body makes it an event loop");
}

#[test]
fn every_rule_fires_on_the_scheduler_shaped_event_loop() {
    // A stage-attempt event loop (speculation tick, launch bookkeeping,
    // completion drain, request polling) violating D1-D6 all at once — the
    // exact shapes `sparklet::scheduler`'s engine must avoid, pinned here
    // so the sweep keeps guarding them.
    let src = include_str!("fixtures/sched_event_loop.rs");
    let diags = scan("sparklet", src);
    let rules: Vec<&str> = diags.iter().map(|(_, r, _)| r.as_str()).collect();
    assert_eq!(rules, vec!["D1", "D2", "D3", "D3", "D4", "D5", "D6"], "{diags:?}");
    assert_eq!(
        diags.iter().map(|(l, _, _)| *l).collect::<Vec<_>>(),
        vec![16, 17, 18, 19, 21, 25, 28]
    );
    assert!(diags[4].2.contains("`launches`"), "D4 names the hash collection: {}", diags[4].2);
    assert!(diags[5].2.contains("guard `held` (line 24)"), "D5 names the guard: {}", diags[5].2);
}

#[test]
fn allow_directives_with_reason_silence_findings() {
    let src = include_str!("fixtures/allowed.rs");
    assert_eq!(scan("netz", src), vec![]);
}

#[test]
fn allow_directive_without_reason_is_a_finding() {
    let src = include_str!("fixtures/bad_allow.rs");
    let diags = scan("netz", src);
    assert_eq!(diags.len(), 2, "the bad directive and the unwaived D1 both fire: {diags:?}");
    assert_eq!((diags[0].0, diags[0].1.as_str()), (4, "D1"));
    assert_eq!(diags[1].0, 4);
    assert_eq!(diags[1].1, "allow");
    assert!(diags[1].2.contains("must name a rule and a reason"), "{}", diags[1].2);
}

#[test]
fn code_under_cfg_test_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    pub fn t() {\n        \
               let _ = std::time::Instant::now();\n    }\n}\n";
    assert_eq!(scan("netz", src), vec![]);
}

#[test]
fn strings_and_comments_never_match() {
    let src = "pub fn doc() -> &'static str {\n    // std::thread::spawn is banned\n    \
               \"std::time::Instant::now()\"\n}\n";
    assert_eq!(scan("netz", src), vec![]);
}

#[test]
fn render_formats_are_stable() {
    let d = Diagnostic {
        path: "crates/x/src/a.rs".to_string(),
        line: 7,
        rule: "D1".to_string(),
        message: "msg".to_string(),
    };
    assert_eq!(d.render(), "crates/x/src/a.rs:7: D1: msg");
    assert_eq!(
        d.render_json(),
        "{\"path\":\"crates/x/src/a.rs\",\"line\":7,\"rule\":\"D1\",\"message\":\"msg\"}"
    );
}

#[test]
fn the_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let diags = scan_workspace(root).expect("workspace scan");
    let rendered: Vec<String> = diags.iter().map(Diagnostic::render).collect();
    assert!(rendered.is_empty(), "determinism lints must hold:\n{}", rendered.join("\n"));
}

// ---------------------------------------------------------------------------
// Workspace rules (L1, P1-P3), stale waivers, and output formats
// ---------------------------------------------------------------------------

use detlint::{analyze_files, analyze_workspace, render_json_array, SourceFile};

fn analyze(crate_name: &str, src: &str) -> Vec<(usize, String, String)> {
    analyze_files(&[SourceFile {
        display_path: "fixture.rs".to_string(),
        origin: origin(crate_name),
        src: src.to_string(),
    }])
    .diagnostics
    .into_iter()
    .map(|d| (d.line, d.rule, d.message))
    .collect()
}

#[test]
fn l1_flags_abba_lock_order_inversion() {
    let src = include_str!("fixtures/l1_lock_order.rs");
    assert_eq!(
        analyze("sparklet", src),
        vec![(
            15,
            "L1".to_string(),
            "lock-order inversion between `A` and `B`: `A` is acquired while `B` is held \
             here, but fixture.rs:9 acquires `B` while `A` is held; an adversarial \
             schedule deadlocks (AB/BA)"
                .to_string()
        )]
    );
}

#[test]
fn p1_flags_leaked_irecv_requests() {
    let src = include_str!("fixtures/p1_request_leak.rs");
    let diags = analyze("core", src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(
        (diags[0].0, diags[0].1.as_str(), diags[0].2.as_str()),
        (
            4,
            "P1",
            "`irecv` Request discarded on the spot: the posted receive can never be \
             completed or cancelled and leaks its slot; bind the Request and \
             `wait`/`test`/`cancel` it (or `attach` it to a `CompletionSet`)"
        )
    );
    assert_eq!(
        (diags[1].0, diags[1].1.as_str(), diags[1].2.as_str()),
        (
            8,
            "P1",
            "`irecv` Request bound to `req` is never consumed: it must reach \
             `wait`/`wait_timeout`/`test`/`cancel`/`waitall`/`waitany`/`testsome` \
             or escape the function"
        )
    );
}

#[test]
fn p2_flags_untimed_recv_on_retry_covered_paths() {
    let src = include_str!("fixtures/p2_untimed_recv.rs");
    assert_eq!(
        analyze("core", src),
        vec![(
            7,
            "P2".to_string(),
            "untimed blocking `recv` on a retry-covered message path: `RetryPolicy` \
             resends after a timeout, but this receive can block forever and strand \
             the retry loop; use `recv_timeout` or `irecv` + `wait_timeout`"
                .to_string()
        )]
    );
}

#[test]
fn p2_is_silent_inside_rmpi_itself() {
    let src = include_str!("fixtures/p2_untimed_recv.rs");
    assert_eq!(analyze("rmpi", src), vec![]);
}

#[test]
fn p3_flags_one_sided_tag_constants() {
    let src = include_str!("fixtures/p3_tag_mismatch.rs");
    assert_eq!(
        analyze("netz", src),
        vec![
            (
                7,
                "P3".to_string(),
                "tag constant `REQ_TAG` is sent but never received anywhere in the \
                 workspace: the message can never be matched; add the receive or \
                 fix the tag"
                    .to_string()
            ),
            (
                11,
                "P3".to_string(),
                "tag constant `ACK_TAG` is received but never sent anywhere in the \
                 workspace: this receive can never match; add the send or fix \
                 the tag"
                    .to_string()
            ),
        ]
    );
}

#[test]
fn allow_directive_can_name_multiple_rules() {
    let src =
        "pub fn f() {\n    // detlint: allow(D1, D2, reason = \"fixture exercises both\")\n    \
               let _ = std::time::Instant::now(); let _ = std::thread::spawn(|| ());\n}\n";
    assert_eq!(scan("netz", src), vec![]);
}

#[test]
fn empty_reason_is_a_finding_and_does_not_waive() {
    let src = "pub fn f() {\n    let _ = std::time::Instant::now(); \
               // detlint: allow(D1, reason = \"\")\n}\n";
    let diags = scan("netz", src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!((diags[0].0, diags[0].1.as_str()), (2, "D1"));
    assert_eq!(diags[1].1, "allow");
    assert!(diags[1].2.contains("must name a rule and a reason"), "{}", diags[1].2);
}

#[test]
fn malformed_rule_name_is_a_finding_and_does_not_waive() {
    let src = "pub fn f() {\n    let _ = std::time::Instant::now(); \
               // detlint: allow(D1, D9?, reason = \"broken rule id\")\n}\n";
    let diags = scan("netz", src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!((diags[0].0, diags[0].1.as_str()), (2, "D1"));
    assert_eq!(diags[1].1, "allow");
}

#[test]
fn directive_on_the_last_line_is_reported_stale() {
    let src = "pub fn f() {}\n// detlint: allow(D1, reason = \"nothing left to waive\")";
    let diags = analyze("netz", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].0, diags[0].1.as_str()), (2, "stale"));
    assert!(diags[0].2.contains("`D1` never fires"), "{}", diags[0].2);
}

#[test]
fn scan_source_does_not_report_stale_waivers_but_analyze_files_does() {
    let src = "pub fn f() {\n    // detlint: allow(D1, reason = \"stale on purpose\")\n    \
               let _x = 1;\n}\n";
    assert_eq!(scan("netz", src), vec![]);
    let diags = analyze("netz", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].0, diags[0].1.as_str()), (2, "stale"));
}

#[test]
fn unused_rule_in_a_multi_rule_directive_is_stale() {
    let src = "pub fn f() {\n    // detlint: allow(D1, D2, reason = \"only D1 fires\")\n    \
               let _ = std::time::Instant::now();\n}\n";
    let diags = analyze("netz", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].0, diags[0].1.as_str()), (2, "stale"));
    assert!(diags[0].2.contains("`D2`"), "{}", diags[0].2);
}

#[test]
fn json_array_output_is_one_valid_array() {
    assert_eq!(render_json_array(&[]), "[]");
    let diags = vec![
        Diagnostic {
            path: "a.rs".to_string(),
            line: 1,
            rule: "D1".to_string(),
            message: "m1".to_string(),
        },
        Diagnostic {
            path: "b.rs".to_string(),
            line: 2,
            rule: "P3".to_string(),
            message: "m2".to_string(),
        },
    ];
    let expected = format!("[\n  {},\n  {}\n]", diags[0].render_json(), diags[1].render_json());
    assert_eq!(render_json_array(&diags), expected);
}

#[test]
fn workspace_analysis_is_clean_and_indexes_real_symbols() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let analysis = analyze_workspace(root).expect("workspace analysis");
    let rendered: Vec<String> = analysis.diagnostics.iter().map(Diagnostic::render).collect();
    assert!(rendered.is_empty(), "workspace rules must hold:\n{}", rendered.join("\n"));
    assert!(analysis.stats.files > 30, "{:?}", analysis.stats);
    assert!(analysis.stats.fns > 200, "{:?}", analysis.stats);
    assert!(analysis.stats.call_sites > 500, "{:?}", analysis.stats);
    assert!(analysis.stats.rmpi_sites > 10, "{:?}", analysis.stats);
}
