//! The MPI4Spark network backend: plugs the MPI transports into sparklet's
//! networking seams.

use std::sync::Arc;

use netz::{RoutePolicy, TransportConf};
use sparklet::net_backend::{NetworkBackend, Plane, PlaneDesc, ProcIdentity};

use crate::ctx::MpiProcCtx;
use crate::transport::{BasicTuning, BodyCompletion, MpiTransportBasic, MpiTransportOptimized};

/// Which of the paper's two designs to run (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// All messages over MPI; polling selector loop (§VI-D).
    Basic,
    /// Only shuffle bodies over MPI; header-triggered receives (§VI-E).
    Optimized,
}

impl Design {
    /// The design's default body-routing policy (§VI-D vs §VI-E).
    pub fn default_route_policy(self) -> RoutePolicy {
        match self {
            Design::Basic => RoutePolicy::ALL_MESSAGES,
            Design::Optimized => RoutePolicy::SHUFFLE_BODIES,
        }
    }
}

/// MPI4Spark's backend. Both planes (control RPC and shuffle) run the MPI
/// transport — the paper modifies Netty itself, under all of Spark's
/// messaging.
pub struct MpiBackend {
    design: Design,
    conf: TransportConf,
    basic_tuning: BasicTuning,
    route: RoutePolicy,
    body_timeout_ns: u64,
    body_completion: BodyCompletion,
}

impl MpiBackend {
    /// Backend for `design` with default socket conf for the establishment
    /// path and the design's default routing policy.
    pub fn new(design: Design) -> Self {
        MpiBackend {
            design,
            conf: TransportConf::default_sockets(),
            basic_tuning: BasicTuning::default(),
            route: design.default_route_policy(),
            body_timeout_ns: simt::time::secs(120),
            body_completion: BodyCompletion::default(),
        }
    }

    /// Backend honoring the engine configuration's timeouts: connection
    /// establishment and the Optimized design's bounded body wait both
    /// follow `spark`'s settings, so chaos tests that shrink timeouts see
    /// them respected on the MPI path too.
    pub fn with_conf(design: Design, spark: &sparklet::config::SparkConf) -> Self {
        let mut b = Self::new(design);
        b.conf.request_timeout_ns = spark.request_timeout_ns;
        b.conf.connect_timeout_ns = spark.connect_timeout_ns;
        b.body_timeout_ns = spark.request_timeout_ns;
        b
    }

    /// Override the Basic design's polling tunables (ablation benches).
    pub fn with_basic_tuning(mut self, tuning: BasicTuning) -> Self {
        self.basic_tuning = tuning;
        self
    }

    /// Override the body-routing policy (§VI-E ablations: e.g. route every
    /// body, or only chunk bodies, without touching transport code).
    pub fn with_route_policy(mut self, route: RoutePolicy) -> Self {
        self.route = route;
        self
    }

    /// Select the Optimized design's body-completion path (fan-in
    /// ablations): request-based batched completion (default) or the legacy
    /// one-blocking-recv-at-a-time event loop.
    pub fn with_body_completion(mut self, completion: BodyCompletion) -> Self {
        self.body_completion = completion;
        self
    }

    /// The selected design.
    pub fn design(&self) -> Design {
        self.design
    }

    /// The active body-routing policy.
    pub fn route_policy(&self) -> RoutePolicy {
        self.route
    }

    fn mpi_ctx(&self, identity: &ProcIdentity) -> Arc<MpiProcCtx> {
        identity.ext.clone().and_then(|e| e.downcast::<MpiProcCtx>().ok()).unwrap_or_else(|| {
            panic!(
                "process '{}' has no MpiProcCtx: MPI4Spark processes must be \
                     started by the mpi4spark launcher (paper §V)",
                identity.name
            )
        })
    }
}

impl NetworkBackend for MpiBackend {
    fn name(&self) -> &'static str {
        match self.design {
            Design::Basic => "mpi4spark-basic",
            Design::Optimized => "mpi4spark",
        }
    }

    fn plane(&self, _plane: Plane, identity: &ProcIdentity) -> PlaneDesc {
        let ctx = self.mpi_ctx(identity);
        let transport: Arc<dyn netz::Transport> = match self.design {
            Design::Optimized => Arc::new(
                MpiTransportOptimized::with_policy(ctx, self.route)
                    .with_body_timeout(self.body_timeout_ns)
                    .with_body_completion(self.body_completion),
            ),
            Design::Basic => Arc::new(MpiTransportBasic::with_tuning_and_policy(
                ctx,
                self.basic_tuning,
                self.route,
            )),
        };
        PlaneDesc { conf: self.conf, transport, route: self.route }
    }

    fn fallback_plane(&self, _plane: Plane, _identity: &ProcIdentity) -> Option<PlaneDesc> {
        // Degraded mode: plain Netty-over-sockets, nothing diverted to MPI.
        // Interop with healthy MPI peers works because their transports skip
        // pipeline handlers for channels whose peer handshake carries no MPI
        // rank — the server answers such channels entirely on sockets.
        Some(PlaneDesc {
            conf: self.conf,
            transport: Arc::new(netz::NioTransport),
            route: RoutePolicy::NONE,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_distinguish_designs() {
        assert_eq!(MpiBackend::new(Design::Optimized).name(), "mpi4spark");
        assert_eq!(MpiBackend::new(Design::Basic).name(), "mpi4spark-basic");
    }

    #[test]
    fn designs_default_to_the_papers_routing() {
        assert_eq!(MpiBackend::new(Design::Optimized).route_policy(), RoutePolicy::SHUFFLE_BODIES);
        assert_eq!(MpiBackend::new(Design::Basic).route_policy(), RoutePolicy::ALL_MESSAGES);
        let ablated = MpiBackend::new(Design::Optimized).with_route_policy(RoutePolicy::ALL_BODIES);
        assert_eq!(ablated.route_policy(), RoutePolicy::ALL_BODIES);
    }
}
