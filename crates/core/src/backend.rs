//! The MPI4Spark network backend: plugs the MPI transports into sparklet's
//! networking seams.

use std::sync::Arc;

use fabric::Net;
use netz::{RpcHandler, TransportConf, TransportContext};
use sparklet::net_backend::{NetworkBackend, ProcIdentity};

use crate::ctx::MpiProcCtx;
use crate::transport::{BasicTuning, MpiTransportBasic, MpiTransportOptimized};

/// Which of the paper's two designs to run (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// All messages over MPI; polling selector loop (§VI-D).
    Basic,
    /// Only shuffle bodies over MPI; header-triggered receives (§VI-E).
    Optimized,
}

/// MPI4Spark's backend. Both planes (control RPC and shuffle) run the MPI
/// transport — the paper modifies Netty itself, under all of Spark's
/// messaging.
pub struct MpiBackend {
    design: Design,
    conf: TransportConf,
    basic_tuning: BasicTuning,
}

impl MpiBackend {
    /// Backend for `design` with default socket conf for the establishment
    /// path.
    pub fn new(design: Design) -> Self {
        MpiBackend {
            design,
            conf: TransportConf::default_sockets(),
            basic_tuning: BasicTuning::default(),
        }
    }

    /// Override the Basic design's polling tunables (ablation benches).
    pub fn with_basic_tuning(mut self, tuning: BasicTuning) -> Self {
        self.basic_tuning = tuning;
        self
    }

    /// The selected design.
    pub fn design(&self) -> Design {
        self.design
    }

    fn make_context(
        &self,
        identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> TransportContext {
        let ctx = identity
            .ext
            .clone()
            .and_then(|e| e.downcast::<MpiProcCtx>().ok())
            .unwrap_or_else(|| {
                panic!(
                    "process '{}' has no MpiProcCtx: MPI4Spark processes must be \
                     started by the mpi4spark launcher (paper §V)",
                    identity.name
                )
            });
        let transport: Arc<dyn netz::Transport> = match self.design {
            Design::Optimized => Arc::new(MpiTransportOptimized::new(ctx)),
            Design::Basic => Arc::new(MpiTransportBasic::with_tuning(ctx, self.basic_tuning)),
        };
        TransportContext::with_transport(net.clone(), self.conf, handler, transport)
    }
}

impl NetworkBackend for MpiBackend {
    fn name(&self) -> &'static str {
        match self.design {
            Design::Basic => "mpi4spark-basic",
            Design::Optimized => "mpi4spark",
        }
    }

    fn rpc_context(
        &self,
        identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> TransportContext {
        self.make_context(identity, net, handler)
    }

    fn shuffle_context(
        &self,
        identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> TransportContext {
        self.make_context(identity, net, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_distinguish_designs() {
        assert_eq!(MpiBackend::new(Design::Optimized).name(), "mpi4spark");
        assert_eq!(MpiBackend::new(Design::Basic).name(), "mpi4spark-basic");
    }
}
