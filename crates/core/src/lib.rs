//! # mpi4spark — MPI communication inside the Spark framework
//!
//! The paper's primary contribution, reproduced end to end:
//!
//! * **Launching Spark in an MPI environment** (challenge 1, §V): the
//!   [`launch`] module is the Java-wrapper-program analog. `mpiexec` starts
//!   W+2 wrapper ranks — ranks `0..W` become workers, rank `W` the master,
//!   rank `W+1` the driver (paper Fig. 3, Steps A/B) — each of which runs
//!   its Spark process and a DPM agent.
//! * **Dynamically launching executors** (challenge 3, §V): the
//!   [`launch::DpmLauncher`] replaces Spark's `ProcessBuilder`. Executor
//!   launch arguments are exchanged with `MPI_Allgather` across
//!   `MPI_COMM_WORLD` and the executors are spawned collectively with
//!   `MPI_Comm_spawn_multiple` (Fig. 3 Step C); executors share the child
//!   world (`DPM_COMM`) and reach their parents through the
//!   intercommunicator.
//! * **Event-driven vs. application-driven engines** (challenge 2) and
//!   **process naming** (challenge 4, §VI-B): the [`transport`] module keeps
//!   Netty's connection establishment and exchanges the MPI rank plus a
//!   communicator-type byte during it, mapping each `ChannelId` to an
//!   `(rank, communicator)` pair.
//! * **The two designs** (§VI-D/§VI-E):
//!   [`transport::MpiTransportBasic`] moves *every* message over MPI and
//!   models the polling selector loop (non-blocking `select` + `MPI_Iprobe`)
//!   that burns CPU; [`transport::MpiTransportOptimized`] parses headers in
//!   a channel handler and moves only `ChunkFetchSuccess` and
//!   `StreamResponse` bodies over MPI — headers stay on the socket path.

pub mod backend;
pub mod ctx;
pub mod launch;
pub mod transport;

pub use backend::{Design, MpiBackend};
pub use ctx::MpiProcCtx;
pub use launch::{run_app, run_app_with_backend, DpmLauncher};
pub use transport::BodyCompletion;
