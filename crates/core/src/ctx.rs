//! Per-process MPI context injected into Spark processes by the launcher.

use std::sync::Arc;

use netz::CommKind;
use parking_lot::Mutex;
use rmpi::Comm;

/// MPI identity of one Spark process: its primary intracommunicator (the
/// wrapper `MPI_COMM_WORLD` for master/driver/workers; the child world —
/// the paper's `DPM_COMM` — for executors) and the intercommunicator to the
/// other group. Travels as the `ProcIdentity::ext` payload.
pub struct MpiProcCtx {
    /// Which group this process belongs to.
    pub kind: CommKind,
    /// Primary intracommunicator.
    pub world: Comm,
    inter: Mutex<Option<Comm>>,
    router: Mutex<Option<Arc<crate::transport::BasicRouter>>>,
}

impl MpiProcCtx {
    /// Context for a wrapper-world process (worker/master/driver).
    pub fn world_proc(world: Comm) -> Arc<Self> {
        Arc::new(MpiProcCtx {
            kind: CommKind::World,
            world,
            inter: Mutex::new(None),
            router: Mutex::new(None),
        })
    }

    /// Context for a DPM-spawned executor: child world + parent intercomm.
    pub fn dpm_proc(child_world: Comm, parent: Comm) -> Arc<Self> {
        Arc::new(MpiProcCtx {
            kind: CommKind::Dpm,
            world: child_world,
            inter: Mutex::new(Some(parent)),
            router: Mutex::new(None),
        })
    }

    /// Record the intercommunicator (wrapper agents call this right after
    /// `spawn_multiple` returns).
    pub fn set_inter(&self, inter: Comm) {
        *self.inter.lock() = Some(inter);
    }

    /// The intercommunicator, when already established.
    pub fn inter(&self) -> Option<Comm> {
        self.inter.lock().clone()
    }

    /// Block (in virtual time) until the intercommunicator exists. Only
    /// reachable before the DPM spawn completes, which cannot happen on any
    /// path that also has an executor peer — the wait is a safety net.
    pub fn inter_blocking(&self) -> Comm {
        loop {
            if let Some(c) = self.inter() {
                return c;
            }
            simt::sleep(simt::time::micros(10));
        }
    }

    /// My rank within my primary communicator (what the handshake carries).
    pub fn rank(&self) -> u32 {
        self.world.rank()
    }

    /// Resolve the communicator and destination rank for a peer identified
    /// by its handshake `(rank, kind)` — the rank↔channel mapping plus
    /// communicator-type selection of paper §VI-B.
    pub fn route(&self, peer_rank: u32, peer_kind: CommKind) -> (Comm, u32) {
        if peer_kind == self.kind {
            (self.world.clone(), peer_rank)
        } else {
            // Cross-group: the intercommunicator addresses the remote
            // group, where a peer's rank equals its own-world rank (group A
            // = WORLD in rank order; group B = children in spawn order).
            (self.inter_blocking(), peer_rank)
        }
    }

    /// The per-process Basic-design router (lazily created).
    pub(crate) fn basic_router(self: &Arc<Self>) -> Arc<crate::transport::BasicRouter> {
        let mut r = self.router.lock();
        if let Some(router) = r.as_ref() {
            return router.clone();
        }
        let router = crate::transport::BasicRouter::new();
        *r = Some(router.clone());
        router
    }
}

impl std::fmt::Debug for MpiProcCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiProcCtx")
            .field("kind", &self.kind)
            .field("rank", &self.world.rank())
            .field("has_inter", &self.inter.lock().is_some())
            .finish()
    }
}
