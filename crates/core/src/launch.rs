//! Launching the Spark ecosystem with MPI (paper §V, Fig. 3).
//!
//! `mpiexec` starts W+2 wrapper ranks (Step A). Each wrapper "forks" its
//! Spark process — worker ranks `0..W`, the master at rank `W`, the driver
//! at rank `W+1` (Step B) — and then acts as a *DPM agent*: when the master
//! commands executor launches, each worker's `DpmLauncher` hands its
//! executor specification to its wrapper, the wrappers exchange the full
//! set with `MPI_Allgather`, and all of `MPI_COMM_WORLD` collectively calls
//! `MPI_Comm_spawn_multiple` to create the executors (Step C). Executors
//! share the child world (`DPM_COMM`) and reach their parents through the
//! returned intercommunicator.

use std::any::Any;
use std::sync::Arc;

use fabric::{Net, NodeId};
use parking_lot::Mutex;
use rmpi::{mpiexec_with, Comm, SpawnSpec};
use simt::queue::Queue;
use simt::sync::OnceCell;
use sparklet::deploy::{self, master, worker, ClusterConfig, ExecutorLauncher, ExecutorMain};
use sparklet::net_backend::NetworkBackend;
use sparklet::scheduler::JobMetrics;

use crate::backend::{Design, MpiBackend};
use crate::ctx::MpiProcCtx;

/// One executor awaiting collective spawn: its target node plus the
/// pre-bound entry closure (the paper's "executable specification").
pub struct SpawnUnit {
    /// Executor process name.
    pub name: String,
    /// Node to spawn on (the worker's own node).
    pub node: NodeId,
    main: Mutex<Option<ExecutorMain>>,
}

/// Executor launcher used under MPI4Spark: forwards the executor spec to
/// this wrapper rank's DPM agent instead of forking directly (§V:
/// "`ProcessBuilder` ... can no longer work ... DPM here was used").
pub struct DpmLauncher {
    agent: Queue<Arc<SpawnUnit>>,
}

impl DpmLauncher {
    /// Launcher feeding `agent`.
    pub fn new(agent: Queue<Arc<SpawnUnit>>) -> Self {
        DpmLauncher { agent }
    }
}

impl ExecutorLauncher for DpmLauncher {
    fn launch(&self, _worker_index: usize, node: NodeId, exec_id: usize, main: ExecutorMain) {
        self.agent.send(Arc::new(SpawnUnit {
            name: format!("executor-{exec_id}"),
            node,
            main: Mutex::new(Some(main)),
        }));
    }
}

/// One collective spawn round executed by every wrapper rank: allgather the
/// executor specifications (workers contribute one; master/driver
/// contribute none) and spawn the executors with root 0.
fn dpm_round(world: &Comm, ctx: &Arc<MpiProcCtx>, my_unit: Option<Arc<SpawnUnit>>) {
    let units = world.allgather(my_unit, 256).expect("executor-spec allgather");
    let specs = if world.rank() == 0 {
        let specs: Vec<SpawnSpec> = units
            .into_iter()
            .flatten()
            .map(|u| {
                let node = u.node;
                let name = u.name.clone();
                SpawnSpec::new(name, node, move |child_world: Comm| {
                    let parent = child_world.parent().expect("DPM child has a parent");
                    let ctx = MpiProcCtx::dpm_proc(child_world, parent);
                    let main = u.main.lock().take().expect("executor spawned once");
                    main(Some(ctx as Arc<dyn Any + Send + Sync>));
                })
            })
            .collect();
        Some(specs)
    } else {
        None
    };
    let inter = world.spawn_multiple(0, specs).expect("collective executor spawn");
    ctx.set_inter(inter);
}

/// Launch the full MPI4Spark stack on `cluster` and run `app` on the
/// driver. Must be called from a simulation green thread; blocks until the
/// application finishes and returns its result plus per-job metrics.
pub fn run_app<R: Send + Sync + 'static>(
    net: &Net,
    cluster: &ClusterConfig,
    design: Design,
    app: impl FnOnce(&sparklet::scheduler::SparkContext) -> R + Send + 'static,
) -> (R, Vec<JobMetrics>) {
    run_app_with_backend(net, cluster, Arc::new(MpiBackend::new(design)), app)
}

/// [`run_app`] with an explicit (possibly tuned) backend.
pub fn run_app_with_backend<R: Send + Sync + 'static>(
    net: &Net,
    cluster: &ClusterConfig,
    backend: Arc<MpiBackend>,
    app: impl FnOnce(&sparklet::scheduler::SparkContext) -> R + Send + 'static,
) -> (R, Vec<JobMetrics>) {
    let w = cluster.worker_nodes.len();
    let mut placements: Vec<NodeId> = cluster.worker_nodes.clone();
    placements.push(cluster.master_node);
    placements.push(cluster.driver_node);

    let result: OnceCell<(R, Vec<JobMetrics>)> = OnceCell::new();
    let backend: Arc<dyn NetworkBackend> = backend;
    let mut entries: Vec<rmpi::launch::RankEntry> = Vec::with_capacity(w + 2);

    // Worker wrapper ranks 0..W (Fig. 3: ranks 0,1 are workers).
    for (i, node) in cluster.worker_nodes.iter().copied().enumerate() {
        let net = net.clone();
        let backend = backend.clone();
        let conf = cluster.conf;
        let master_node = cluster.master_node;
        entries.push(Box::new(move |world: Comm| {
            let ctx = MpiProcCtx::world_proc(world.clone());
            let agent: Queue<Arc<SpawnUnit>> = Queue::new();
            let launcher = Arc::new(DpmLauncher::new(agent.clone()));
            let args = worker::WorkerArgs {
                net,
                node,
                index: i,
                master_node,
                backend,
                launcher,
                conf,
                ext: Some(ctx.clone() as Arc<dyn Any + Send + Sync>),
            };
            // "Fork" the Spark worker process (Step B).
            simt::spawn(format!("spark-worker-{i}"), move || worker::worker_main(args));
            // DPM agent: one executor wave per application.
            let unit = agent.recv().expect("worker received a LaunchExecutor command");
            dpm_round(&world, &ctx, Some(unit));
        }));
    }

    // Master wrapper, rank W.
    {
        let net = net.clone();
        let backend = backend.clone();
        let node = cluster.master_node;
        entries.push(Box::new(move |world: Comm| {
            let ctx = MpiProcCtx::world_proc(world.clone());
            let args = master::MasterArgs {
                net,
                node,
                backend,
                expected_workers: w,
                ext: Some(ctx.clone() as Arc<dyn Any + Send + Sync>),
            };
            simt::spawn("spark-master", move || master::master_main(args));
            dpm_round(&world, &ctx, None);
        }));
    }

    // Driver wrapper, rank W+1.
    {
        let net = net.clone();
        let backend = backend.clone();
        let cluster = cluster.clone();
        let result = result.clone();
        entries.push(Box::new(move |world: Comm| {
            let ctx = MpiProcCtx::world_proc(world.clone());
            let ext = Some(ctx.clone() as Arc<dyn Any + Send + Sync>);
            {
                let net = net.clone();
                let backend = backend.clone();
                let cluster = cluster.clone();
                simt::spawn("spark-driver", move || {
                    let out = deploy::driver_main_ext(&net, &cluster, backend, ext, app);
                    result.put(out);
                });
            }
            dpm_round(&world, &ctx, None);
        }));
    }

    mpiexec_with(net, &placements, entries);
    result.take()
}
