//! The two MPI-based Netty transports (paper §VI-D and §VI-E).
//!
//! Both keep Netty's connection establishment on the socket path and
//! exchange `(MPI rank, communicator type)` during it. They differ in what
//! crosses MPI afterwards:
//!
//! * **Basic**: every message. The receive side models the modified NIO
//!   selector loop — non-blocking `select()` plus `MPI_Iprobe` spun
//!   continuously — as per-endpoint background CPU load plus per-message
//!   polling charges; this is precisely the overhead the paper identifies
//!   as Basic's downfall (§VII-B, Fig. 9).
//! * **Optimized**: only the bodies of `ChunkFetchSuccess` and
//!   `StreamResponse`. Headers travel on the socket; an inbound channel
//!   handler parses each header and, for the eligible types, posts the
//!   matching `MPI_Recv` — the "trigger MPI_recv calls by parsing the
//!   headers of shuffle messages inside of ChannelHandlers" design.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use fabric::Payload;
use netz::{
    ChannelCore, ChannelId, Endpoint, Frame, Handshake, InboundAction, InboundHandler, Message,
    OutboundAction, OutboundHandler, RoutePolicy, Transport, WireEvent,
};
use parking_lot::Mutex;

use crate::ctx::MpiProcCtx;

/// Tag bit marking Optimized-design body messages.
const OPT_TAG_BASE: u64 = 1 << 47;
/// Tag for all Basic-design messages (demultiplexed by channel id inside).
const BASIC_TAG: u64 = 1 << 46;

/// splitmix64 finalizer, the tag-space mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tag for an Optimized-design body identified by `key` on channel `chan`.
///
/// The key is *content-addressed*: [`Message::peek_body_key`] derives it
/// from the header fields both ends already have (request id, stream id +
/// chunk index, stream name), so sender and receiver agree on the tag
/// without lockstep per-channel counters. Counters desynchronize the moment
/// a header frame is dropped or a fetch is retried — exactly the fault
/// conditions the chaos layer injects — and a desynchronized counter
/// silently matches bodies to the wrong messages. Content addressing makes
/// the tag a pure function of the message identity instead.
///
/// The mixed `(channel, key)` is folded into the 47 bits below
/// `OPT_TAG_BASE`. `BASIC_TAG` demultiplexes by exact match, so overlap of
/// the mixed bits with bit 46 is harmless.
fn opt_tag(chan: ChannelId, key: u64) -> u64 {
    let mixed = mix64(chan.0.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(key));
    OPT_TAG_BASE | (mixed >> 17)
}

// =========================== Optimized design ===============================

/// How the Optimized transport completes policy-routed bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BodyCompletion {
    /// Legacy path: the endpoint event loop blocks in `recv_timeout` for
    /// one body at a time — concurrent fetches into the same endpoint
    /// serialize behind each other. Kept for the fan-in ablation.
    Blocking,
    /// Request path: each parsed header posts a nonblocking `irecv`, and a
    /// per-endpoint pump completes arrivals through a batched
    /// [`rmpi::CompletionSet`] — 32 outstanding fetches overlap instead of
    /// queueing the event loop.
    #[default]
    Batched,
}

/// The MPI4Spark-Optimized transport (§VI-E).
pub struct MpiTransportOptimized {
    ctx: Arc<MpiProcCtx>,
    policy: RoutePolicy,
    body_timeout_ns: u64,
    completion: BodyCompletion,
    pump: OnceLock<Arc<BodyPump>>,
}

impl MpiTransportOptimized {
    /// Transport for the process described by `ctx`, routing the paper's
    /// default body set ([`RoutePolicy::SHUFFLE_BODIES`]).
    pub fn new(ctx: Arc<MpiProcCtx>) -> Self {
        Self::with_policy(ctx, RoutePolicy::SHUFFLE_BODIES)
    }

    /// Transport with an explicit body-routing policy (§VI-E ablations).
    pub fn with_policy(ctx: Arc<MpiProcCtx>, policy: RoutePolicy) -> Self {
        MpiTransportOptimized {
            ctx,
            policy,
            body_timeout_ns: simt::time::secs(120),
            completion: BodyCompletion::default(),
            pump: OnceLock::new(),
        }
    }

    /// Cap how long the transport waits for a body whose header arrived. A
    /// dropped body would otherwise leave its receive posted forever; on
    /// timeout the posted receive is cancelled (with a drain for the late
    /// body) and the fetch surfaces as a missing chunk to the retry layer.
    pub fn with_body_timeout(mut self, timeout_ns: u64) -> Self {
        self.body_timeout_ns = timeout_ns;
        self
    }

    /// Select the body-completion path (fan-in ablations).
    pub fn with_body_completion(mut self, completion: BodyCompletion) -> Self {
        self.completion = completion;
        self
    }
}

impl Transport for MpiTransportOptimized {
    fn name(&self) -> &'static str {
        "mpi-optimized"
    }

    fn handshake(&self, node: usize) -> Handshake {
        Handshake { node, mpi_rank: Some(self.ctx.rank()), comm: self.ctx.kind }
    }

    fn start(&self, endpoint: &Endpoint) {
        if self.completion == BodyCompletion::Batched {
            let _ = self.pump.set(BodyPump::spawn(endpoint.clone()));
        }
    }

    fn configure(&self, chan: &Arc<ChannelCore>) {
        if chan.peer_handshake.mpi_rank.is_none() {
            return; // non-MPI peer: stay on the socket path
        }
        let mut p = chan.pipeline.lock();
        p.add_outbound(
            "mpi-body-send",
            Arc::new(OptOutbound {
                ctx: self.ctx.clone(),
                policy: self.policy,
                sent: AtomicU64::new(0),
            }),
        );
        p.add_inbound(
            "mpi-body-fetch",
            Arc::new(OptInbound {
                ctx: self.ctx.clone(),
                policy: self.policy,
                received: AtomicU64::new(0),
                body_timeout_ns: self.body_timeout_ns,
                pump: self.pump.get().cloned(),
            }),
        );
    }
}

/// A body receive in flight: posted when its header was parsed, completed
/// (or timed out) by the endpoint's pump daemon.
struct PendingBody {
    chan: Arc<ChannelCore>,
    header: bytes::Bytes,
    deadline: u64,
}

/// Per-endpoint body-completion pump (Batched mode).
///
/// `OptInbound` posts one nonblocking `irecv` per parsed header and files
/// the pending entry here; the pump daemon completes arrivals through one
/// [`rmpi::CompletionSet`] in virtual-arrival order, so any number of
/// concurrent fetches into this endpoint overlap. Entries whose deadline
/// passes are cancelled with a drain: the posted slot is released and the
/// late body, if it ever lands, is absorbed instead of leaking into the
/// message store.
struct BodyPump {
    endpoint: Endpoint,
    set: rmpi::CompletionSet,
    entries: Mutex<BTreeMap<u64, PendingBody>>,
    next_user: AtomicU64,
}

impl BodyPump {
    fn spawn(endpoint: Endpoint) -> Arc<BodyPump> {
        let pump = Arc::new(BodyPump {
            endpoint: endpoint.clone(),
            set: rmpi::CompletionSet::default(),
            entries: Mutex::new(BTreeMap::new()),
            next_user: AtomicU64::new(0),
        });
        let runner = pump.clone();
        simt::spawn_daemon(format!("mpi-opt-body-pump:n{}", endpoint.node()), move || {
            runner.run();
        });
        pump
    }

    /// File a posted body receive. The entry must be visible before the
    /// request joins the completion set: attaching can complete instantly
    /// (body already arrived), and the pump looks the entry up by `user`.
    fn submit(
        &self,
        chan: &Arc<ChannelCore>,
        header: bytes::Bytes,
        req: rmpi::Request,
        deadline: u64,
    ) {
        let user = self.next_user.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().insert(user, PendingBody { chan: chan.clone(), header, deadline });
        req.attach(&self.set, user);
    }

    fn run(&self) {
        loop {
            let next_deadline = self.entries.lock().values().map(|e| e.deadline).min();
            match self.set.wait_next(next_deadline) {
                rmpi::Completed::Recv { user, msg } => {
                    let Some(entry) = self.entries.lock().remove(&user) else {
                        continue;
                    };
                    self.deliver(entry, msg.payload);
                }
                rmpi::Completed::TimedOut => self.expire(),
                rmpi::Completed::Closed => break,
            }
        }
    }

    /// Decode the completed body against its saved header and hand the
    /// message to the endpoint, with the receive span causally linked to
    /// the sender (same convention as the Basic router's receiver threads).
    fn deliver(&self, entry: PendingBody, body: Payload) {
        let obs = entry.chan.net.obs();
        let _span = obs.is_traced().then(|| {
            let link = Message::peek_span_id(&entry.header).unwrap_or(0);
            obs.tracer().span_linked(
                "rmpi.body.recv",
                link,
                obs::kv! {"src" => entry.chan.remote_node, "dst" => entry.chan.local_node},
            )
        });
        if let Ok(msg) = Message::decode(&entry.header, body) {
            self.endpoint.dispatch_received(&entry.chan, msg, entry.header.len() as u64);
        }
    }

    /// Cancel every entry whose deadline has passed; each cancel installs a
    /// drain so the late body cannot sit in the message store forever. The
    /// unanswered fetch then times out at the requester and retries.
    fn expire(&self) {
        let now = simt::now();
        let expired: Vec<u64> = self
            .entries
            .lock()
            .iter()
            .filter(|(_, e)| e.deadline <= now)
            .map(|(user, _)| *user)
            .collect();
        for user in expired {
            self.set.cancel_user(user);
            self.entries.lock().remove(&user);
        }
    }
}

/// Outbound: divert policy-routed bodies to MPI, keep the header on the
/// socket.
struct OptOutbound {
    ctx: Arc<MpiProcCtx>,
    policy: RoutePolicy,
    sent: AtomicU64,
}

impl OutboundHandler for OptOutbound {
    fn on_write(&self, chan: &Arc<ChannelCore>, msg: Message) -> OutboundAction {
        if !self.policy.routes_body(&msg) {
            return OutboundAction::Forward(msg);
        }
        let peer = chan.peer_handshake;
        let Some(peer_rank) = peer.mpi_rank else {
            return OutboundAction::Forward(msg);
        };
        let header = msg.encode_header();
        // Content-addressed tag when the header identifies the message;
        // anonymous types (OneWayMessage) fall back to a lockstep counter
        // and keep the original loss sensitivity — acceptable because the
        // default policies never route them.
        let key = Message::peek_body_key(&header)
            .unwrap_or_else(|| self.sent.fetch_add(1, Ordering::Relaxed));
        let tag = opt_tag(chan.id, key);
        let body = msg.body().cloned().unwrap_or_else(Payload::empty);
        let body_virtual = body.virtual_len;
        let (comm, dest) = self.ctx.route(peer_rank, peer.comm);
        comm.send(dest, tag, body).expect("MPI body send");
        // Header-only frame on the socket path (Fig. 6: header carries the
        // type and body size the receiver needs to post its MPI_Recv).
        let header_len = header.len() as u64;
        let frame = Frame { header, body: Payload::empty() };
        chan.send_event(WireEvent::Data { channel: chan.id, frame }, header_len);
        OutboundAction::Sent { virtual_bytes: header_len + body_virtual }
    }
}

/// Inbound: parse the header; for policy-routed types post the matching
/// `MPI_Recv` and reattach the body.
struct OptInbound {
    ctx: Arc<MpiProcCtx>,
    policy: RoutePolicy,
    received: AtomicU64,
    body_timeout_ns: u64,
    /// Present in Batched mode; `None` selects the legacy blocking path.
    pump: Option<Arc<BodyPump>>,
}

impl InboundHandler for OptInbound {
    fn on_frame(&self, chan: &Arc<ChannelCore>, frame: Frame) -> InboundAction {
        // Mirror of the outbound predicate: a routed, body-carrying type
        // arriving as a header-only frame means the body is waiting on MPI.
        let eligible = Message::peek_type(&frame.header)
            .is_some_and(|ty| self.policy.routes_type(ty) && ty.carries_body());
        if !eligible || !frame.body.is_empty() {
            return InboundAction::Forward(frame);
        }
        let peer = chan.peer_handshake;
        let Some(peer_rank) = peer.mpi_rank else {
            return InboundAction::Forward(frame);
        };
        let key = Message::peek_body_key(&frame.header)
            .unwrap_or_else(|| self.received.fetch_add(1, Ordering::Relaxed));
        let tag = opt_tag(chan.id, key);
        let (comm, src) = self.ctx.route(peer_rank, peer.comm);

        if let Some(pump) = &self.pump {
            // Batched: post the receive and return immediately — the event
            // loop goes back to parsing headers while the pump completes
            // arrivals, so concurrent fetches into this endpoint overlap.
            let req = comm.irecv(Some(src), Some(tag));
            let deadline = simt::now().saturating_add(self.body_timeout_ns);
            pump.submit(chan, frame.header, req, deadline);
            return InboundAction::Consume;
        }

        // Blocking (legacy): park the event loop until this one body lands.
        // Bounded so a lost body surfaces as a missing chunk to the retry
        // layer instead of wedging the endpoint forever. Waiting on a
        // posted receive (rather than the old bare `recv_timeout`) means a
        // timeout installs a drain: the late body is absorbed on arrival
        // instead of leaking into the message store.
        let obs = chan.net.obs();
        let recv = {
            let _wait = obs.is_traced().then(|| {
                obs.span(
                    "rmpi.body.wait",
                    obs::kv! {"key" => key, "src" => chan.remote_node, "dst" => chan.local_node},
                )
            });
            comm.irecv(Some(src), Some(tag)).wait_timeout(self.body_timeout_ns)
        };
        match recv {
            Ok(Some((body, _status))) => match Message::decode(&frame.header, body) {
                Ok(msg) => InboundAction::Decoded(msg),
                Err(_) => InboundAction::Consume,
            },
            Ok(None) | Err(_) => InboundAction::Consume,
        }
    }
}

// ============================= Basic design =================================

/// Tunables for the Basic design's polling model.
#[derive(Debug, Clone, Copy)]
pub struct BasicTuning {
    /// Phantom runnable threads added per endpoint: Netty runs a selector
    /// loop group per transport context, and under Basic each loop spins in
    /// non-blocking `select()` + `MPI_Iprobe` instead of blocking.
    pub poll_load_per_endpoint: f64,
    /// CPU charged per received message for the iprobe sweeps that
    /// discovered it.
    pub per_message_poll_ns: u64,
    /// Mean discovery latency added per message (poll-interval/2).
    pub poll_latency_ns: u64,
}

impl Default for BasicTuning {
    fn default() -> Self {
        BasicTuning {
            poll_load_per_endpoint: 4.0,
            per_message_poll_ns: 6_000,
            poll_latency_ns: 5_000,
        }
    }
}

/// Envelope for Basic-design messages (everything over MPI).
struct BasicMsg {
    channel: ChannelId,
    header: bytes::Bytes,
    body: Payload,
}

/// Per-process demultiplexer for Basic-design traffic: receiver threads per
/// communicator pull `BASIC_TAG` messages and dispatch them to the owning
/// channel's endpoint.
pub struct BasicRouter {
    channels: Mutex<BTreeMap<ChannelId, (Endpoint, Arc<ChannelCore>)>>,
    world_started: AtomicBool,
    inter_started: AtomicBool,
    tuning: Mutex<BasicTuning>,
}

impl BasicRouter {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(BasicRouter {
            channels: Mutex::new(BTreeMap::new()),
            world_started: AtomicBool::new(false),
            inter_started: AtomicBool::new(false),
            tuning: Mutex::new(BasicTuning::default()),
        })
    }

    fn register(&self, chan: &Arc<ChannelCore>, endpoint: Endpoint) {
        self.channels.lock().insert(chan.id, (endpoint, chan.clone()));
    }

    fn ensure_receivers(self: &Arc<Self>, ctx: &Arc<MpiProcCtx>) {
        if !self.world_started.swap(true, Ordering::SeqCst) {
            self.spawn_receiver(ctx.world.clone(), "world");
        }
        if !self.inter_started.load(Ordering::SeqCst) {
            if let Some(inter) = ctx.inter() {
                if !self.inter_started.swap(true, Ordering::SeqCst) {
                    self.spawn_receiver(inter, "inter");
                }
            }
        }
    }

    fn spawn_receiver(self: &Arc<Self>, comm: rmpi::Comm, label: &str) {
        let router = self.clone();
        let tuning = *self.tuning.lock();
        let obs = comm.universe().net().obs().clone();
        simt::spawn_daemon(format!("mpi-basic-rx:{label}:r{}", comm.rank()), move || loop {
            // This daemon is the demux loop itself, not a retry-covered
            // request path: fetch timeouts are enforced at the requester and
            // finalize closes the store, which errors this recv and exits.
            // detlint: allow(P2, reason = "demux daemon; woken by store close at finalize, per-request timeouts live at the requester")
            let Ok((payload, _status)) = comm.recv(None, Some(BASIC_TAG)) else {
                break;
            };
            let Some(msg) = payload.value_as::<BasicMsg>() else {
                continue;
            };
            // Model the polling selector: the message sat for half a poll
            // interval and cost iprobe sweeps to discover (§VI-D).
            simt::sleep(tuning.poll_latency_ns);
            comm.universe().net().cpu(comm.node()).execute(tuning.per_message_poll_ns);
            let target = router.channels.lock().get(&msg.channel).cloned();
            let Some((endpoint, chan)) = target else {
                continue;
            };
            // The Basic path bypasses the endpoint's frame pipeline, so the
            // recv span (linked to the sender's span id from the header) is
            // opened here instead of in `Endpoint::on_frame`.
            let _recv_span = obs.is_traced().then(|| {
                let link = Message::peek_span_id(&msg.header).unwrap_or(0);
                obs.tracer().span_linked(
                    "netz.msg.recv",
                    link,
                    obs::kv! {"src" => chan.remote_node, "dst" => chan.local_node},
                )
            });
            match Message::decode(&msg.header, msg.body.clone()) {
                Ok(decoded) => endpoint.dispatch(&chan, decoded),
                Err(_) => continue,
            }
        });
    }
}

/// The MPI4Spark-Basic transport (§VI-D).
pub struct MpiTransportBasic {
    ctx: Arc<MpiProcCtx>,
    endpoint: OnceLock<Endpoint>,
    tuning: BasicTuning,
    policy: RoutePolicy,
}

impl MpiTransportBasic {
    /// Transport for the process described by `ctx`: every message type
    /// crosses MPI ([`RoutePolicy::ALL_MESSAGES`], §VI-D).
    pub fn new(ctx: Arc<MpiProcCtx>) -> Self {
        Self::with_tuning(ctx, BasicTuning::default())
    }

    /// Transport with explicit polling-model tunables (ablation benches).
    pub fn with_tuning(ctx: Arc<MpiProcCtx>, tuning: BasicTuning) -> Self {
        Self::with_tuning_and_policy(ctx, tuning, RoutePolicy::ALL_MESSAGES)
    }

    /// Transport with explicit tunables and routing policy; messages of
    /// unrouted types stay on the socket path.
    pub fn with_tuning_and_policy(
        ctx: Arc<MpiProcCtx>,
        tuning: BasicTuning,
        policy: RoutePolicy,
    ) -> Self {
        MpiTransportBasic { ctx, endpoint: OnceLock::new(), tuning, policy }
    }
}

impl Transport for MpiTransportBasic {
    fn name(&self) -> &'static str {
        "mpi-basic"
    }

    fn handshake(&self, node: usize) -> Handshake {
        Handshake { node, mpi_rank: Some(self.ctx.rank()), comm: self.ctx.kind }
    }

    fn start(&self, endpoint: &Endpoint) {
        let _ = self.endpoint.set(endpoint.clone());
        *self.ctx.basic_router().tuning.lock() = self.tuning;
        // The endpoint's selector loop now spins (non-blocking select +
        // iprobe) instead of blocking: continuous background CPU load.
        endpoint.net().cpu(endpoint.node()).add_background_load(self.tuning.poll_load_per_endpoint);
    }

    fn configure(&self, chan: &Arc<ChannelCore>) {
        if chan.peer_handshake.mpi_rank.is_none() {
            return;
        }
        let router = self.ctx.basic_router();
        let endpoint = self.endpoint.get().expect("transport started").clone();
        router.register(chan, endpoint);
        router.ensure_receivers(&self.ctx);
        chan.pipeline.lock().add_outbound(
            "mpi-all-send",
            Arc::new(BasicOutbound { ctx: self.ctx.clone(), policy: self.policy }),
        );
    }
}

/// Outbound: every routed message crosses MPI as one `(header, body)`
/// envelope (the default policy routes all of them).
struct BasicOutbound {
    ctx: Arc<MpiProcCtx>,
    policy: RoutePolicy,
}

impl OutboundHandler for BasicOutbound {
    fn on_write(&self, chan: &Arc<ChannelCore>, msg: Message) -> OutboundAction {
        if !self.policy.routes_type(msg.type_id()) {
            return OutboundAction::Forward(msg);
        }
        let peer = chan.peer_handshake;
        let Some(peer_rank) = peer.mpi_rank else {
            return OutboundAction::Forward(msg);
        };
        let header = msg.encode_header();
        let body = msg.body().cloned().unwrap_or_else(Payload::empty);
        let total = header.len() as u64 + body.virtual_len;
        let (comm, dest) = self.ctx.route(peer_rank, peer.comm);
        comm.send(
            dest,
            BASIC_TAG,
            Payload::control(BasicMsg { channel: chan.id, header, body }, total),
        )
        .expect("MPI send");
        OutboundAction::Sent { virtual_bytes: total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_tags_distinct_per_channel_and_key() {
        let a = opt_tag(ChannelId(1), 0);
        let b = opt_tag(ChannelId(1), 1);
        let c = opt_tag(ChannelId(2), 0);
        assert!(a != b && a != c && b != c);
        assert!(a & OPT_TAG_BASE != 0);
        assert_ne!(a, BASIC_TAG);
    }

    #[test]
    fn opt_tag_is_a_pure_function_of_identity() {
        // Content addressing: recomputing the tag for the same message
        // identity gives the same tag, however many frames were dropped or
        // retried in between — no sequence-counter state to desync.
        let header =
            Message::ChunkFetchSuccess { stream_id: 99, chunk_index: 7, body: Payload::empty() }
                .encode_header();
        let key = Message::peek_body_key(&header).unwrap();
        assert_eq!(opt_tag(ChannelId(3), key), opt_tag(ChannelId(3), key));
        assert_ne!(opt_tag(ChannelId(3), key), opt_tag(ChannelId(4), key));
    }

    #[test]
    fn opt_tags_from_distinct_chunks_do_not_collide() {
        // Sample the tag space the way the Optimized design actually uses
        // it: many (stream, chunk) identities on a handful of channels.
        let mut seen = std::collections::HashSet::new();
        for chan in 0..8u64 {
            for stream in 0..32u64 {
                for chunk in 0..16u32 {
                    let header = Message::ChunkFetchSuccess {
                        stream_id: stream,
                        chunk_index: chunk,
                        body: Payload::empty(),
                    }
                    .encode_header();
                    let key = Message::peek_body_key(&header).unwrap();
                    let tag = opt_tag(ChannelId(chan), key);
                    assert!(tag & OPT_TAG_BASE != 0);
                    assert_ne!(tag, BASIC_TAG);
                    assert!(seen.insert(tag), "tag collision for c{chan}/s{stream}/k{chunk}");
                }
            }
        }
    }

    #[test]
    fn basic_tuning_defaults_are_positive() {
        let t = BasicTuning::default();
        assert!(t.poll_load_per_endpoint > 0.0);
        assert!(t.per_message_poll_ns > 0);
        assert!(t.poll_latency_ns > 0);
    }
}
