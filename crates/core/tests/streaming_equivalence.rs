//! Property: the chunk-granular streaming fetch path delivers byte-identical
//! shuffle data to a directly computed oracle, in both chunking modes
//! (`merge_chunks_per_request` on and off) on all three transports
//! (socket NIO, MPI-Basic, MPI-Optimized). The streamed per-chunk delivery
//! changes *when* results surface, never *what* they decode to.

use std::collections::HashMap;
use std::sync::Arc;

use fabric::{ClusterSpec, Net};
use mpi4spark::Design;
use proptest::collection::vec;
use proptest::prelude::*;
use simt::sync::OnceCell;
use simt::Sim;
use sparklet::deploy::ClusterConfig;
use sparklet::SparkConf;

fn conf(merge_chunks: bool) -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.merge_chunks_per_request = merge_chunks;
    conf
}

fn canonical(mut v: Vec<(u64, Vec<u64>)>) -> Vec<(u64, Vec<u64>)> {
    for (_, vs) in v.iter_mut() {
        vs.sort_unstable();
    }
    v.sort_by_key(|(k, _)| *k);
    v
}

/// Run the group-by workload on one transport/chunking combination.
fn run_grouping(
    design: Option<Design>,
    merge_chunks: bool,
    pairs: Vec<(u64, u64)>,
    parts: usize,
    reduces: usize,
) -> Vec<(u64, Vec<u64>)> {
    let spec = ClusterSpec::test(5);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf(merge_chunks));
    let app = move |sc: &sparklet::scheduler::SparkContext| {
        sc.parallelize(pairs, parts).group_by_key(reduces).collect()
    };
    match design {
        None => {
            let (r, _) = sparklet::deploy::simulate(
                &spec,
                cluster,
                Arc::new(sparklet::VanillaBackend::default()),
                Arc::new(sparklet::ProcessBuilderLauncher),
                app,
            );
            r
        }
        Some(design) => {
            let sim = Sim::new();
            let out: OnceCell<(Vec<(u64, Vec<u64>)>, Vec<sparklet::JobMetrics>)> = OnceCell::new();
            let out2 = out.clone();
            sim.spawn("launcher", move || {
                let net = Net::new(&spec);
                out2.put(mpi4spark::run_app(&net, &cluster, design, app));
            });
            sim.run().unwrap().assert_clean();
            let (r, _) = out.try_take().expect("app finished");
            sim.shutdown();
            r
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn streamed_chunks_decode_identically_on_every_transport(
        pairs in vec((0u64..12, 0u64..1_000_000_000), 1..100),
        parts in 2usize..7,
        reduces in 2usize..6,
    ) {
        let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
        for (k, v) in &pairs {
            oracle.entry(*k).or_default().push(*v);
        }
        let mut expected: Vec<(u64, Vec<u64>)> = oracle.into_iter().collect();
        expected = canonical(expected);

        for design in [None, Some(Design::Basic), Some(Design::Optimized)] {
            for merge_chunks in [true, false] {
                let got = canonical(run_grouping(
                    design,
                    merge_chunks,
                    pairs.clone(),
                    parts,
                    reduces,
                ));
                prop_assert_eq!(
                    &got,
                    &expected,
                    "transport {:?} merge_chunks={} diverged from oracle",
                    design,
                    merge_chunks
                );
            }
        }
    }
}
