//! End-to-end MPI4Spark tests: the full wrapper-launch + DPM + MPI-Netty
//! stack running real Spark jobs, compared functionally against Vanilla.

use std::collections::HashMap;
use std::sync::Arc;

use fabric::{ClusterSpec, Net};
use mpi4spark::Design;
use simt::sync::OnceCell;
use simt::Sim;
use sparklet::deploy::ClusterConfig;
use sparklet::{Blob, SparkConf};

fn small_conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf
}

/// Run `app` under MPI4Spark on a fresh 5-node test cluster.
fn run_mpi<R: Send + Sync + 'static>(
    design: Design,
    app: impl FnOnce(&sparklet::scheduler::SparkContext) -> R + Send + 'static,
) -> (R, Vec<sparklet::JobMetrics>) {
    let sim = Sim::new();
    let spec = ClusterSpec::test(5);
    let cluster = ClusterConfig::paper_layout(spec.len(), small_conf());
    let out: OnceCell<(R, Vec<sparklet::JobMetrics>)> = OnceCell::new();
    let out2 = out.clone();
    sim.spawn("launcher", move || {
        let net = Net::new(&spec);
        let r = mpi4spark::run_app(&net, &cluster, design, app);
        out2.put(r);
    });
    sim.run().unwrap().assert_clean();
    let r = out.try_take().expect("app finished");
    sim.shutdown();
    r
}

#[test]
fn optimized_count_over_generated_data() {
    let (count, metrics) = run_mpi(Design::Optimized, |sc| {
        sc.generate(6, |p| (0..100u64).map(|i| p as u64 * 1000 + i).collect()).count()
    });
    assert_eq!(count, 600);
    assert_eq!(metrics.len(), 1);
}

#[test]
fn optimized_group_by_matches_oracle() {
    let (mut result, metrics) = run_mpi(Design::Optimized, |sc| {
        let pairs: Vec<(u64, u64)> = (0..200u64).map(|i| (i % 7, i)).collect();
        sc.parallelize(pairs, 6).group_by_key(5).collect()
    });
    result.sort_by_key(|(k, _)| *k);
    let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
    for i in 0..200u64 {
        oracle.entry(i % 7).or_default().push(i);
    }
    assert_eq!(result.len(), 7);
    for (k, mut vs) in result {
        vs.sort_unstable();
        assert_eq!(vs, oracle[&k]);
    }
    assert!(metrics[0].stages.iter().any(|s| s.name.contains("ShuffleMapStage")));
}

#[test]
fn basic_group_by_matches_oracle() {
    let (mut result, _) = run_mpi(Design::Basic, |sc| {
        let pairs: Vec<(u64, u64)> = (0..150u64).map(|i| (i % 9, i * 2)).collect();
        sc.parallelize(pairs, 5).group_by_key(4).collect()
    });
    result.sort_by_key(|(k, _)| *k);
    assert_eq!(result.len(), 9);
    let total: usize = result.iter().map(|(_, v)| v.len()).sum();
    assert_eq!(total, 150);
}

#[test]
fn optimized_sort_by_key_total_order() {
    let (result, _) = run_mpi(Design::Optimized, |sc| {
        let pairs: Vec<(u64, u64)> = (0..300u64).map(|i| ((i * 7919) % 500, i)).collect();
        sc.parallelize(pairs, 6).sort_by_key(4).collect()
    });
    let keys: Vec<u64> = result.iter().map(|(k, _)| *k).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
    assert_eq!(result.len(), 300);
}

#[test]
fn optimized_shuffle_read_is_faster_than_vanilla() {
    // The paper's core claim at micro scale: identical workload, identical
    // cluster, shuffle-read stage markedly faster under MPI4Spark.
    fn workload(sc: &sparklet::scheduler::SparkContext) -> u64 {
        let pairs: Vec<(u64, Blob)> = (0..120u64).map(|i| (i, Blob::new(i, 1 << 18))).collect(); // 32 MB total
        sc.parallelize(pairs, 6).group_by_key(6).count()
    }

    let (count_mpi, metrics_mpi) = run_mpi(Design::Optimized, workload);

    // Vanilla run on an identical cluster.
    let spec = ClusterSpec::test(5);
    let cluster = ClusterConfig::paper_layout(spec.len(), small_conf());
    let (count_van, metrics_van) = sparklet::deploy::simulate(
        &spec,
        cluster,
        Arc::new(sparklet::VanillaBackend::default()),
        Arc::new(sparklet::ProcessBuilderLauncher),
        workload,
    );

    assert_eq!(count_mpi, count_van);
    let read_mpi = metrics_mpi[0].stage_duration("ResultStage").unwrap();
    let read_van = metrics_van[0].stage_duration("ResultStage").unwrap();
    let speedup = read_van as f64 / read_mpi as f64;
    assert!(
        speedup > 1.5,
        "expected MPI shuffle read clearly faster: vanilla={read_van} mpi={read_mpi} ({speedup:.2}x)"
    );
}

#[test]
fn basic_pays_polling_overhead_vs_optimized() {
    // Fig. 9's direction at micro scale: same job, Basic slower than
    // Optimized because of the spinning selector model.
    fn workload(sc: &sparklet::scheduler::SparkContext) -> u64 {
        let pairs: Vec<(u64, Blob)> = (0..120u64).map(|i| (i, Blob::new(i, 1 << 16))).collect();
        sc.parallelize(pairs, 6).group_by_key(6).count()
    }
    let (_, m_opt) = run_mpi(Design::Optimized, workload);
    let (_, m_basic) = run_mpi(Design::Basic, workload);
    let opt = m_opt[0].duration_ns();
    let basic = m_basic[0].duration_ns();
    assert!(basic > opt, "basic={basic} should exceed optimized={opt}");
}

#[test]
fn executors_run_as_dpm_children() {
    // Channel handshakes between executors must carry DPM communicator
    // kind; validated indirectly: a shuffle across executors succeeds and
    // rank routing holds for executor↔executor (Dpm/Dpm) and
    // executor↔driver (Dpm/World) pairs — any mis-route would hang or
    // panic the MPI body transfer.
    let (sum, _) = run_mpi(Design::Optimized, |sc| {
        let pairs: Vec<(u64, u64)> = (0..60u64).map(|i| (i % 3, i)).collect();
        sc.parallelize(pairs, 6)
            .reduce_by_key(3, |a, b| a + b)
            .collect()
            .into_iter()
            .map(|(_, v)| v)
            .sum::<u64>()
    });
    assert_eq!(sum, (0..60).sum::<u64>());
}

#[test]
fn mpi_and_vanilla_agree_functionally() {
    fn workload(sc: &sparklet::scheduler::SparkContext) -> Vec<(u64, u64)> {
        let pairs: Vec<(u64, u64)> = (0..250u64).map(|i| (i % 17, i)).collect();
        let mut v = sc.parallelize(pairs, 7).reduce_by_key(5, |a, b| a.max(b)).collect();
        v.sort_unstable();
        v
    }
    let (mpi, _) = run_mpi(Design::Optimized, workload);
    let spec = ClusterSpec::test(5);
    let cluster = ClusterConfig::paper_layout(spec.len(), small_conf());
    let (van, _) = sparklet::deploy::simulate(
        &spec,
        cluster,
        Arc::new(sparklet::VanillaBackend::default()),
        Arc::new(sparklet::ProcessBuilderLauncher),
        workload,
    );
    assert_eq!(mpi, van);
}
