//! Unit-level checks of the rank↔channel / communicator-type routing
//! (paper §VI-B) and the launcher's process layout (Fig. 3).

use std::sync::Arc;

use fabric::{ClusterSpec, Net};
use mpi4spark::MpiProcCtx;
use netz::CommKind;
use parking_lot::Mutex;
use rmpi::{mpiexec, Comm, SpawnSpec};
use simt::Sim;

#[test]
fn route_selects_world_comm_for_same_kind() {
    let sim = Sim::new();
    sim.spawn("launcher", || {
        let net = Net::new(&ClusterSpec::test(2));
        mpiexec(&net, &[0, 1], |world: Comm| {
            let ctx = MpiProcCtx::world_proc(world.clone());
            let peer = (world.rank() + 1) % 2;
            let (comm, dest) = ctx.route(peer, CommKind::World);
            assert_eq!(comm.id(), world.id(), "same-kind peers use the shared intracomm");
            assert_eq!(dest, peer);
        });
    });
    sim.run().unwrap().assert_clean();
}

#[test]
fn route_selects_intercomm_across_kinds() {
    let sim = Sim::new();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    sim.spawn("launcher", move || {
        let net = Net::new(&ClusterSpec::test(2));
        let seen3 = seen2.clone();
        mpiexec(&net, &[0, 1], move |world: Comm| {
            let ctx = MpiProcCtx::world_proc(world.clone());
            let seen4 = seen3.clone();
            let specs = (world.rank() == 0).then(|| {
                vec![SpawnSpec::new("exec", 1, move |child: Comm| {
                    let parent = child.parent().unwrap();
                    let child_ctx = MpiProcCtx::dpm_proc(child.clone(), parent.clone());
                    // Executor → driver-side (World rank 1): must route over
                    // the parent intercomm addressing group A.
                    let (comm, dest) = child_ctx.route(1, CommKind::World);
                    assert_eq!(comm.id(), parent.id());
                    assert_eq!(dest, 1);
                    // Executor → executor would use the child world.
                    let (comm, _) = child_ctx.route(0, CommKind::Dpm);
                    assert_eq!(comm.id(), child.id());
                    seen4.lock().push(child_ctx.rank());
                })]
            });
            let inter = world.spawn_multiple(0, specs).unwrap();
            ctx.set_inter(inter.clone());
            // World proc → executor rank 0: over the intercomm.
            let (comm, dest) = ctx.route(0, CommKind::Dpm);
            assert_eq!(comm.id(), inter.id());
            assert_eq!(dest, 0);
        });
    });
    sim.run().unwrap().assert_clean();
    assert_eq!(*seen.lock(), vec![0]);
}

#[test]
fn launcher_layout_matches_figure_3() {
    // W workers at ranks 0..W, master at W, driver at W+1; executors as DPM
    // children — verified through the deployed cluster's behavior: each
    // executor's handshake rank equals its worker index in the child world.
    use sparklet::deploy::ClusterConfig;
    use sparklet::SparkConf;
    let sim = Sim::new();
    let spec = ClusterSpec::test(5); // 3 workers + master + driver
    let mut conf = SparkConf::default();
    conf.executor_cores = 2;
    conf.cost.task_overhead_ns = 10_000;
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let out: simt::sync::OnceCell<u64> = simt::sync::OnceCell::new();
    let out2 = out.clone();
    sim.spawn("launcher", move || {
        let net = Net::new(&spec);
        let (r, _) = mpi4spark::run_app(&net, &cluster, mpi4spark::Design::Optimized, |sc| {
            // 3 executors registered == 3 DPM children.
            assert_eq!(sc.scheduler().executors().len(), 3);
            sc.parallelize((0..30u64).collect(), 6).count()
        });
        out2.put(r);
    });
    sim.run().unwrap().assert_clean();
    assert_eq!(out.try_take(), Some(30));
    sim.shutdown();
}
