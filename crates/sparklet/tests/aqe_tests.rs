//! Adaptive query execution: oracle-equivalence matrix, planner proptests,
//! and the chaos/recovery interaction.
//!
//! The correctness story is test-first: adaptive execution may change *how*
//! the reduce space is covered (coalesced runs, map-range slices, merge
//! stages) but never *what* the job returns. Every cell of the matrix runs
//! the same workload twice — statically (AQE off, the oracle) and
//! adaptively — and compares results element-for-element after canonical
//! ordering (groupByKey value order is unspecified, in Spark and here: the
//! static path interleaves values by fetch arrival, the adaptive path by
//! map range).
//!
//! Datasets: {uniform, zipf(1.1), single-hot-key, many-empty-partitions};
//! modes: {all-off, coalesce-only, split-only, full(+skew-join)}; systems:
//! all four of the paper's stacks.

use fabric::{ClusterSpec, FaultPlan};
use proptest::prelude::*;
use sparklet::aqe::{plan, PlanTask};
use sparklet::deploy::ClusterConfig;
use sparklet::scheduler::SparkContext;
use sparklet::{AqeConf, SparkConf, SpeculationConf};
use workloads::ohb::zipf_keys;
use workloads::{RunOutcome, System};

const MS: u64 = 1_000_000;

fn all_systems() -> [System; 4] {
    [System::Vanilla, System::RdmaSpark, System::Mpi4SparkBasic, System::Mpi4Spark]
}

/// AQE policies under test. `(label, conf)`; `all-off` is the oracle.
fn modes() -> Vec<(&'static str, AqeConf)> {
    vec![
        ("all-off", AqeConf::default()),
        // Coalesce only: the skew threshold is unreachable, tiny adjacent
        // buckets merge up to the target.
        (
            "coalesce",
            AqeConf { enabled: true, target_bytes: 2_000, skew_factor: 1e18, max_slices: 8 },
        ),
        // Split only: every non-empty bucket is "skewed", every bucket its
        // own run — maximal slicing pressure on the merge path.
        ("split", AqeConf { enabled: true, target_bytes: 1, skew_factor: 0.5, max_slices: 4 }),
        // Both knobs at realistic settings.
        ("full", AqeConf { enabled: true, target_bytes: 600, skew_factor: 2.0, max_slices: 4 }),
    ]
}

/// `(label, pairs, reduce_partitions)` per dataset shape. 400 records over
/// 6 map partitions; keys are what varies.
fn datasets() -> Vec<(&'static str, Vec<(u64, u64)>, usize)> {
    let uniform: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 23, i)).collect();
    let zipf: Vec<(u64, u64)> = zipf_keys(11, 400, 23, 1.1).into_iter().zip(0..400u64).collect();
    let hot: Vec<(u64, u64)> =
        (0..400u64).map(|i| (if i % 10 < 7 { 0 } else { 1 + i % 22 }, i)).collect();
    // 5 distinct keys hashed over 32 reduce partitions: most buckets empty.
    let sparse: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 5, i)).collect();
    vec![("uniform", uniform, 9), ("zipf", zipf, 9), ("hot", hot, 9), ("sparse", sparse, 32)]
}

fn conf_with(aqe: AqeConf) -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.aqe = aqe;
    conf
}

/// Canonicalized groupByKey over `pairs`: groups sorted by key, values
/// sorted within each group.
fn run_group_by(
    system: System,
    aqe: AqeConf,
    pairs: Vec<(u64, u64)>,
    parts: usize,
) -> RunOutcome<Vec<(u64, Vec<u64>)>> {
    let spec = ClusterSpec::test(4);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf_with(aqe));
    system.run(&spec, cluster, move |sc| {
        let mut groups = sc.parallelize(pairs, 6).group_by_key(parts).collect();
        groups.sort_by_key(|(k, _)| *k);
        groups.iter_mut().for_each(|(_, v)| v.sort_unstable());
        groups
    })
}

#[test]
fn oracle_equivalence_matrix_group_by() {
    for (data_label, pairs, parts) in datasets() {
        for system in all_systems() {
            let oracle = run_group_by(system, AqeConf::default(), pairs.clone(), parts);
            assert_eq!(oracle.aqe_tasks(), 0, "AQE off must never plan");
            for (mode_label, aqe) in modes().into_iter().skip(1) {
                let adaptive = run_group_by(system, aqe, pairs.clone(), parts);
                assert_eq!(
                    adaptive.result,
                    oracle.result,
                    "{} × {data_label} × {mode_label}: adaptive ≠ static",
                    system.label()
                );
                assert!(
                    adaptive.aqe_tasks() > 0,
                    "{} × {data_label} × {mode_label}: AQE never engaged",
                    system.label()
                );
            }
        }
    }
}

#[test]
fn matrix_cells_exercise_both_mechanisms() {
    // Non-vacuity: the split mode must actually slice, the coalesce mode
    // must actually merge runs, on the dataset shaped for each.
    let (_, zipf, parts) = datasets().remove(1);
    let split = modes()[2].1;
    let out = run_group_by(System::Mpi4Spark, split, zipf, parts);
    assert!(out.aqe_split_slices() > 0, "split mode produced no slices");

    let (_, sparse, parts) = datasets().remove(3);
    let coalesce = modes()[1].1;
    let out = run_group_by(System::Mpi4Spark, coalesce, sparse, parts);
    assert!(out.aqe_coalesced_tasks() > 0, "coalesce mode merged no runs");
    assert!(
        out.aqe_tasks() < 32,
        "32 mostly-empty buckets should plan into fewer tasks, got {}",
        out.aqe_tasks()
    );
}

#[test]
fn sort_by_key_is_oracle_equivalent_under_aqe() {
    let zipf: Vec<(u64, u64)> = zipf_keys(13, 400, 23, 1.1).into_iter().zip(0..400u64).collect();
    for system in all_systems() {
        let run = |aqe: AqeConf| {
            let spec = ClusterSpec::test(4);
            let cluster = ClusterConfig::paper_layout(spec.len(), conf_with(aqe));
            let pairs = zipf.clone();
            system.run(&spec, cluster, move |sc| {
                // Canonicalize duplicate-key value order (stable sorts on
                // both paths preserve different-but-valid arrival orders).
                let mut sorted = sc.parallelize(pairs, 6).sort_by_key(9).collect();
                sorted.sort_unstable();
                sorted
            })
        };
        let oracle = run(AqeConf::default());
        let keys: Vec<u64> = oracle.result.iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "oracle not sorted");
        for (label, aqe) in modes().into_iter().skip(1) {
            let adaptive = run(aqe);
            assert_eq!(
                adaptive.result,
                oracle.result,
                "{} × sortBy × {label}: adaptive ≠ static",
                system.label()
            );
        }
    }
}

#[test]
fn skew_join_is_oracle_equivalent_under_aqe() {
    // The join runs over cogroup, which has no adaptive form — under AQE it
    // must fall back to static execution of the cogroup stage while the
    // count_by_key reduction above it may still plan adaptively.
    let zipf: Vec<(u64, u64)> = zipf_keys(17, 300, 16, 1.1).into_iter().zip(0..300u64).collect();
    let dim: Vec<(u64, u64)> = (0..16u64).map(|k| (k, k * 100)).collect();
    for system in all_systems() {
        let run = |aqe: AqeConf| {
            let spec = ClusterSpec::test(4);
            let cluster = ClusterConfig::paper_layout(spec.len(), conf_with(aqe));
            let (l, r) = (zipf.clone(), dim.clone());
            system.run(&spec, cluster, move |sc| {
                let left = sc.parallelize(l, 6);
                let right = sc.parallelize(r, 2);
                let mut joined = left.join(&right, 9).map(|(k, (v, w))| (k, v + w)).count_by_key();
                joined.sort_unstable();
                joined
            })
        };
        let oracle = run(AqeConf::default());
        let full = modes()[3].1;
        let adaptive = run(full);
        assert_eq!(
            adaptive.result,
            oracle.result,
            "{} × skew-join: adaptive ≠ static",
            system.label()
        );
    }
}

// --- chaos / recovery interaction -------------------------------------------

/// Chaos-tuned conf (compressed timeouts, speculation on) with a
/// split-heavy AQE policy, mirroring `recovery_chaos_tests::recovery_conf`.
fn recovery_conf(aqe: AqeConf) -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.merge_chunks_per_request = false;
    conf.connect_timeout_ns = 50 * MS;
    conf.request_timeout_ns = 100 * MS;
    conf.fetch_timeout_ns = 150 * MS;
    conf.fetch_max_retries = 1;
    conf.fetch_retry_base_ns = 20 * MS;
    conf.fetch_retry_max_ns = 100 * MS;
    conf.speculation = SpeculationConf {
        enabled: true,
        interval_ns: MS,
        multiplier: 2.0,
        quantile: 0.5,
        min_runtime_ns: MS,
    };
    conf.aqe = aqe;
    conf
}

/// Worker node hosting the victim executor (`ClusterSpec::test(5)` +
/// `paper_layout`: workers on 0..3, master on 3, driver on 4).
const VICTIM: usize = 1;

fn split_heavy() -> AqeConf {
    AqeConf { enabled: true, target_bytes: 1, skew_factor: 0.5, max_slices: 4 }
}

fn chaos_groupby(sc: &SparkContext) -> Vec<(u64, Vec<u64>)> {
    let pairs: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 23, i)).collect();
    let mut groups = sc.parallelize(pairs, 9).group_by_key(9).collect();
    groups.sort_by_key(|(k, _)| *k);
    groups.iter_mut().for_each(|(_, v)| v.sort_unstable());
    groups
}

fn chaos_oracle() -> Vec<(u64, Vec<u64>)> {
    (0..23u64).map(|k| (k, (0..400u64).filter(|i| i % 23 == k).collect())).collect()
}

#[test]
fn crash_during_adaptive_reduce_fetch_replans_and_matches_oracle() {
    // The victim dies as the *adaptive* result stage starts fetching: slice
    // and bucket tasks exhaust their fetch retries, the scheduler
    // quarantines the victim, bumps the epoch, recomputes the lost map
    // outputs by lineage, and reruns only the missing plan tasks. The
    // engine itself asserts the epoch-bumped replan equals the executed
    // plan (deterministic sizes ⇒ deterministic plan), so pre- and
    // post-crash task outputs may mix; this test pins the end-to-end
    // result against the oracle.
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        // Fault-free run under identical conf: correct, adaptively planned,
        // and the source of the crash window's virtual-time anchor.
        let mut cluster = ClusterConfig::paper_layout(spec.len(), recovery_conf(split_heavy()));
        cluster.app_jar_bytes = 1 << 20;
        let clean = system.run(&spec, cluster, chaos_groupby);
        assert_eq!(clean.result, chaos_oracle(), "{}: clean run wrong", system.label());
        assert!(clean.aqe_split_slices() > 0, "{}: plan has no slices", system.label());
        let start = clean
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .find(|s| s.name == "Job0-ResultStage")
            .unwrap_or_else(|| panic!("{}: no adaptive result stage", system.label()))
            .start_ns;

        let window = 600 * MS;
        let plan =
            FaultPlan::seeded(25).crash_node(VICTIM, start.saturating_sub(50_000), window).build();
        let mut cluster = ClusterConfig::paper_layout(spec.len(), recovery_conf(split_heavy()));
        cluster.app_jar_bytes = 1 << 20;
        let out = system.run_with_chaos(&spec, cluster, plan, move |sc| {
            let out = chaos_groupby(sc);
            simt::sleep(2 * window);
            out
        });
        assert_eq!(out.result, chaos_oracle(), "{}: wrong result after crash", system.label());
        assert!(out.chaos_dropped() > 0, "{}: the crash window never bit", system.label());
        assert!(out.stage_resubmits() >= 1, "{}: no stage resubmission", system.label());
        assert!(out.aqe_split_slices() > 0, "{}: AQE plan not active", system.label());
    }
}

// --- planner proptests -------------------------------------------------------

/// Assemble a `maps × reduces` size matrix from a flat pool of cell bytes.
/// The vendored proptest shim has no strategy combinators, so shape and cells
/// are drawn as separate arguments and zipped here; degenerate empty shapes
/// (0 maps or 0 reduces) are covered by the shape ranges starting at 0.
fn size_matrix(maps: usize, reduces: usize, cells: &[u64]) -> Vec<Vec<u64>> {
    (0..maps).map(|m| (0..reduces).map(|r| cells[m * reduces + r]).collect()).collect()
}

fn aqe_conf(target_bytes: u64, skew_factor: f64, max_slices: u32) -> AqeConf {
    AqeConf { enabled: true, target_bytes, skew_factor, max_slices }
}

proptest! {
    /// Every (map, reduce) cell of any matrix lands in exactly one task.
    #[test]
    fn plan_is_a_partition_of_the_reduce_space(
        maps in 0usize..8,
        reduces in 0usize..12,
        cells in proptest::collection::vec(0u64..10_000, 96..97),
        target_bytes in 1u64..5_000,
        skew_factor in 1.0f64..8.0,
        max_slices in 2u32..6,
    ) {
        let sizes = size_matrix(maps, reduces, &cells);
        let conf = aqe_conf(target_bytes, skew_factor, max_slices);
        let p = plan(&sizes, &conf);
        prop_assert_eq!(p.verify_partition_of_space(), Ok(()));
    }

    /// Equal inputs produce equal plans.
    #[test]
    fn plan_is_deterministic(
        maps in 0usize..8,
        reduces in 0usize..12,
        cells in proptest::collection::vec(0u64..10_000, 96..97),
        target_bytes in 1u64..5_000,
        skew_factor in 1.0f64..8.0,
        max_slices in 2u32..6,
    ) {
        let sizes = size_matrix(maps, reduces, &cells);
        let conf = aqe_conf(target_bytes, skew_factor, max_slices);
        prop_assert_eq!(plan(&sizes, &conf), plan(&sizes, &conf));
    }

    /// Coalesce and split respect their thresholds: multi-bucket runs never
    /// exceed the target, only above-target buckets split, and split widths
    /// honor `max_slices` with at least two slices.
    #[test]
    fn plan_respects_thresholds(
        maps in 0usize..8,
        reduces in 0usize..12,
        cells in proptest::collection::vec(0u64..10_000, 96..97),
        target_bytes in 1u64..5_000,
        skew_factor in 1.0f64..8.0,
        max_slices in 2u32..6,
    ) {
        let sizes = size_matrix(maps, reduces, &cells);
        let conf = aqe_conf(target_bytes, skew_factor, max_slices);
        let p = plan(&sizes, &conf);
        let reduces = sizes.first().map_or(0, Vec::len);
        let bucket_bytes = |r: usize| -> u64 { sizes.iter().map(|row| row[r]).sum() };
        let mut slices_of = vec![0u32; reduces];
        for t in &p.tasks {
            match t {
                PlanTask::Buckets { buckets } => {
                    if buckets.len() > 1 {
                        let total: u64 = buckets.iter().map(|&b| bucket_bytes(b as usize)).sum();
                        prop_assert!(
                            total <= conf.target_bytes,
                            "coalesced run of {} buckets holds {total} > target {}",
                            buckets.len(),
                            conf.target_bytes
                        );
                    }
                }
                PlanTask::Slice { bucket, .. } => slices_of[*bucket as usize] += 1,
            }
        }
        for (r, &n) in slices_of.iter().enumerate() {
            if n > 0 {
                prop_assert!(bucket_bytes(r) > conf.target_bytes, "split an under-target bucket");
                prop_assert!((2..=conf.max_slices).contains(&n), "{n} slices for bucket {r}");
                prop_assert!(p.split_buckets.contains(&(r as u32)));
            }
        }
    }
}
