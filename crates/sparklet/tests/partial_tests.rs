//! Bounded-latency jobs: the `JobHandle` submission seam and the
//! partial/approximate actions built on it.
//!
//! Three correctness stories:
//!
//! 1. **Never-firing deadline ⇒ exact.** An approximate action whose
//!    virtual-clock budget outlives the job must return the exact answer
//!    (`is_final`, full coverage, degenerate interval) — proptested over
//!    random data on all four of the paper's systems.
//! 2. **Deadline mid-recovery ⇒ honest interval.** A chaos cell crashes a
//!    node during the reduce fetch so lineage recovery is in flight when
//!    the deadline fires; the returned confidence interval must bracket the
//!    true count, cover strictly fewer than all partitions, and be
//!    byte-identical across same-seed re-runs.
//! 3. **Disabled ⇒ bit-identical.** With `partial.enabled == false` the
//!    approximate actions degrade to the exact jobs — same results, same
//!    virtual timings, same Chrome-trace timeline, no `spark.partial_*`
//!    counter movement.

use fabric::{ClusterSpec, FaultPlan};
use proptest::prelude::*;
use sparklet::deploy::ClusterConfig;
use sparklet::partial::Erased;
use sparklet::scheduler::SparkContext;
use sparklet::{BoundedDouble, CountEvaluator, JobOptions, PartialResult, SparkConf};
use workloads::{RunOutcome, System};

const MS: u64 = 1_000_000;
/// A finite deadline no test job can reach (~17 virtual minutes).
const NEVER: u64 = 1_000_000 * MS;
/// Worker node hosting the victim executor (`ClusterSpec::test(5)` +
/// `paper_layout`: workers on 0..2, master on 3, driver on 4).
const VICTIM: usize = 1;

fn all_systems() -> [System; 4] {
    [System::Vanilla, System::RdmaSpark, System::Mpi4SparkBasic, System::Mpi4Spark]
}

/// Baseline conf of the AQE/recovery suites with the partial subsystem on.
fn partial_conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.with_partial_enabled()
}

fn run<R: Send + Sync + 'static>(
    system: System,
    conf: SparkConf,
    app: impl FnOnce(&SparkContext) -> R + Send + 'static,
) -> RunOutcome<R> {
    let spec = ClusterSpec::test(4);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    system.run(&spec, cluster, app)
}

// --- 1. never-firing deadline equals the exact action ----------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// `count_approx` / `sum_approx` / `mean_approx` with an unreachable
    /// deadline return the exact answers on every system. Data is integer-
    /// valued so partition sums are exact in `f64` regardless of the fold
    /// order, making float equality legitimate.
    #[test]
    fn approx_equals_exact_under_never_firing_deadline(
        vals in proptest::collection::vec(0u64..100_000, 40..41),
        parts in 2usize..6,
    ) {
        let n = vals.len() as f64;
        let sum: f64 = vals.iter().map(|&v| v as f64).sum();
        let mean = sum / n;
        for system in all_systems() {
            let data = vals.clone();
            let out = run(system, partial_conf(), move |sc| {
                let rdd = sc.parallelize(data, parts).cache();
                let exact = rdd.count();
                let c = rdd.count_approx(NEVER, None);
                let s = rdd.sum_approx(NEVER, None);
                let m = rdd.mean_approx(NEVER, None);
                (exact, c, s, m)
            });
            let (exact, c, s, m) = out.result.clone();
            prop_assert_eq!(c.value, BoundedDouble::exact(exact as f64));
            prop_assert!(c.is_final && c.partitions_seen == c.total_partitions);
            prop_assert_eq!(s.value, BoundedDouble::exact(sum));
            prop_assert!(s.is_final);
            prop_assert_eq!(m.value, BoundedDouble::exact(mean));
            prop_assert!(m.is_final);
            // The three approximate submissions rode the partial path (the
            // exact `count` did not), and none expired.
            prop_assert_eq!(out.partial_results(), 3);
            prop_assert!(!out.deadline_fired());
        }
    }
}

#[test]
fn count_by_key_approx_equals_exact_under_never_firing_deadline() {
    let pairs: Vec<(u64, u64)> = (0..200u64).map(|i| (i % 7, i)).collect();
    let expected: Vec<(u64, BoundedDouble)> = (0..7u64)
        .map(|k| (k, BoundedDouble::exact((200 / 7 + u64::from(k < 200 % 7)) as f64)))
        .collect();
    for system in all_systems() {
        let data = pairs.clone();
        let out = run(system, partial_conf(), move |sc| {
            sc.parallelize(data, 5).count_by_key_approx(NEVER, None)
        });
        assert_eq!(out.result.value, expected, "{}: wrong per-key counts", system.label());
        assert!(out.result.is_final, "{}: complete job must be final", system.label());
        assert!(!out.deadline_fired(), "{}: deadline must not fire", system.label());
    }
}

// --- 2. deadline expiry --------------------------------------------------

#[test]
fn zero_budget_deadline_yields_zero_information_interval() {
    // The deadline is armed before the job's driver thread even spawns, so
    // a zero budget expires ahead of every task completion: nothing seen,
    // the count interval is the no-information `[0, ∞)`.
    for system in all_systems() {
        let out = run(system, partial_conf(), move |sc| {
            let r = sc.parallelize((0..100u64).collect(), 4).count_approx(0, None);
            simt::sleep(10 * MS); // let the abandoned tasks drain
            r
        });
        let r = out.result.clone();
        assert!(out.deadline_fired(), "{}: zero budget must expire", system.label());
        assert_eq!(r.partitions_seen, 0, "{}: nothing completes at t=0", system.label());
        assert!(!r.is_final, "{}: expired job is not final", system.label());
        assert!(r.value.contains(100.0), "{}: [low, ∞) must bracket truth", system.label());
        assert_eq!(r.value.confidence, 0.0, "{}: no data, no confidence", system.label());
    }
}

/// Chaos-tuned conf: compressed fetch/RPC timeouts (as in
/// `recovery_chaos_tests`) with the partial subsystem enabled.
fn chaos_conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.merge_chunks_per_request = false;
    conf.connect_timeout_ns = 50 * MS;
    conf.request_timeout_ns = 100 * MS;
    conf.fetch_timeout_ns = 150 * MS;
    conf.fetch_max_retries = 1;
    conf.fetch_retry_base_ns = 20 * MS;
    conf.fetch_retry_max_ns = 100 * MS;
    conf.with_partial_enabled()
}

/// `count_approx` over a 9-map × 24-reduce groupBy — more reduce partitions
/// than the cluster's 12 cores, so the result stage runs in waves and a
/// mid-stage crash leaves completed partitions *seen* and lost ones not.
fn approx_groupby_count(sc: &SparkContext, timeout_ns: u64) -> PartialResult<BoundedDouble> {
    let pairs: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 23, i)).collect();
    sc.parallelize(pairs, 9).group_by_key(24).count_approx(timeout_ns, None)
}

fn chaos_cluster(nodes: usize) -> ClusterConfig {
    let mut cluster = ClusterConfig::paper_layout(nodes, chaos_conf());
    cluster.app_jar_bytes = 1 << 20;
    cluster
}

#[test]
fn deadline_mid_recovery_brackets_truth_and_is_deterministic() {
    // The victim dies partway through the reduce stage: completed reduce
    // partitions are already folded, in-flight fetches of the victim's map
    // outputs time out, and `FetchFailed`-driven lineage recovery is under
    // way when the deadline fires. The answer must be an honest interval
    // over the partitions that made it.
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        // Clean run (virtual time is deterministic): job submission instant
        // and reduce-stage span position the crash window and the deadline.
        let clean =
            system.run(&spec, chaos_cluster(spec.len()), move |sc| approx_groupby_count(sc, NEVER));
        assert!(clean.result.is_final, "{}: clean run must complete", system.label());
        assert!(clean.result.value.contains(23.0), "{}: 23 groups", system.label());
        let job = &clean.jobs[0];
        let reduce =
            job.stages.iter().find(|s| s.name.contains("ResultStage")).expect("reduce stage");
        // Crash 60% into the reduce stage (first wave done, second in
        // flight); deadline 400 virtual ms later — past the ~320 ms the
        // compressed fetch timeouts need to surface `FetchFailed`, before
        // recompute + refetch can finish.
        let crash_at = reduce.start_ns + (reduce.end_ns - reduce.start_ns) * 6 / 10;
        let timeout = crash_at - job.start_ns + 400 * MS;
        let window = 600 * MS;

        let chaos_run = || {
            let plan = FaultPlan::seeded(31).crash_node(VICTIM, crash_at, window).build();
            system.run_with_chaos(&spec, chaos_cluster(spec.len()), plan, move |sc| {
                let r = approx_groupby_count(sc, timeout);
                // Window discipline: outlive the crash window so the
                // revived node tears down normally.
                simt::sleep(2 * window);
                r
            })
        };
        let out = chaos_run();
        let r = &out.result;
        assert!(out.chaos_dropped() > 0, "{}: the crash window never bit", system.label());
        assert!(out.deadline_fired(), "{}: deadline must fire mid-recovery", system.label());
        assert!(
            r.partitions_seen > 0 && r.partitions_seen < r.total_partitions,
            "{}: expected partial coverage, saw {}/{}",
            system.label(),
            r.partitions_seen,
            r.total_partitions
        );
        assert!(
            r.value.contains(23.0),
            "{}: interval [{}, {}] must bracket the true 23 groups",
            system.label(),
            r.value.low,
            r.value.high
        );
        // Same seed, same virtual schedule, same bytes.
        let again = chaos_run();
        assert_eq!(out.result, again.result, "{}: re-run must be identical", system.label());
        assert_eq!(
            out.partial_partitions_seen(),
            again.partial_partitions_seen(),
            "{}: fold counts must match across re-runs",
            system.label()
        );
    }
}

#[test]
fn expiry_mid_stage_teardown_races_inflight_task_sends() {
    // Regression: a deadline that fires while tasks are still running leaves
    // those tasks alive through cluster teardown, and their completion sends
    // race the RPC environments' shutdown. `RpcEnv::shutdown` (and the block
    // transfer service's `close`) used to hold their client-cache lock while
    // closing each connection — a virtual-clock wait point — so a late
    // `TaskFinished` send OS-blocked on the lock while holding the engine's
    // run token and froze the whole simulation. The two budgets below land
    // the expiry mid-map-stage and mid-reduce-stage on a straggler fabric,
    // the exact schedules that deadlocked; completing at all is the assert.
    let spec = ClusterSpec::test(5);
    let n: u64 = 48_000;
    for timeout in [2 * MS, 17_988_790] {
        let plan = FaultPlan::seeded(41).slow_node(VICTIM, 0, 100_000_000 * MS, 2 * MS).build();
        let cluster = ClusterConfig::paper_layout(spec.len(), partial_conf());
        let out = System::Mpi4SparkBasic.run_with_chaos(&spec, cluster, plan, move |sc| {
            let pairs: Vec<(u64, u64)> = (0..n).map(|i| (i % 500, i)).collect();
            sc.parallelize(pairs, 12).group_by_key(48).count_approx(timeout, None)
        });
        let r = &out.result;
        assert!(out.deadline_fired(), "budget {timeout}: deadline must fire");
        assert!(!r.is_final, "budget {timeout}: expired job is not final");
        assert!(
            r.partitions_seen < r.total_partitions,
            "budget {timeout}: expired run cannot have full coverage"
        );
        if r.partitions_seen >= 2 {
            assert!(
                r.value.contains(500.0),
                "budget {timeout}: interval [{}, {}] must bracket the 500 groups",
                r.value.low,
                r.value.high
            );
        }
    }
}

// --- 3. disabled subsystem is bit-identical to the exact actions ------------

#[test]
fn disabled_partial_is_bit_identical_to_exact_actions_on_all_systems() {
    // `count_approx` with `partial.enabled == false` must be
    // indistinguishable from `count`: same job spec, same action label,
    // same virtual timings — the traced timelines compare byte-for-byte.
    let traced = || {
        let mut conf = SparkConf::default();
        conf.executor_cores = 4;
        conf.cost.task_overhead_ns = 10_000;
        conf.trace_timeline = true;
        conf
    };
    for system in all_systems() {
        let exact = run(system, traced(), |sc| {
            let rdd = sc.parallelize((0..300u64).collect(), 6);
            (rdd.count(), rdd.sum_approx(NEVER, None).value)
        });
        let approx = run(system, traced(), |sc| {
            let rdd = sc.parallelize((0..300u64).collect(), 6);
            (rdd.count_approx(NEVER, None).value, rdd.sum_approx(NEVER, None).value)
        });
        let (n, s1) = exact.result;
        let (c, s2) = approx.result;
        assert_eq!(c, BoundedDouble::exact(n as f64), "{}: wrong count", system.label());
        assert_eq!(s1, s2, "{}: sums disagree", system.label());
        assert_eq!(
            exact.timeline,
            approx.timeline,
            "{}: disabled partial must not perturb the timeline",
            system.label()
        );
        fn quiet<R>(o: &RunOutcome<R>, label: &str) {
            assert_eq!(o.partial_results(), 0, "{label}: partial counters moved");
            assert_eq!(o.partial_partitions_seen(), 0, "{label}: fold counter moved");
            assert!(!o.deadline_fired(), "{label}: phantom deadline");
        }
        quiet(&exact, system.label());
        quiet(&approx, system.label());
        // And the job durations match action-for-action.
        fn d<R>(o: &RunOutcome<R>) -> Vec<(String, u64)> {
            o.jobs.iter().map(|j| (j.action.clone(), j.duration_ns())).collect()
        }
        assert_eq!(d(&exact), d(&approx), "{}: job timings diverged", system.label());
    }
}

// --- the raw JobHandle surface ---------------------------------------------

#[test]
fn job_handle_poll_tracks_progress_and_converges_to_exact() {
    // Drive `Rdd::submit_job` directly: an evaluator with no deadline, the
    // handle polled while the job runs. Coverage is monotone and the final
    // poll is the exact count.
    let out = run(System::Mpi4Spark, partial_conf(), |sc| {
        let rdd = sc.parallelize((0..500u64).collect(), 8);
        let opts = JobOptions {
            evaluator: Some(Erased::boxed(CountEvaluator::new(0.9))),
            timeout_ns: None,
        };
        let handle = rdd.submit_job("count_poll", |_ctx, v| v.len() as u64, opts);
        let early = handle.poll::<BoundedDouble>().expect("evaluator attached");
        let mut last = early.partitions_seen;
        while !handle.is_complete() {
            simt::sleep(MS);
            let now = handle.poll::<BoundedDouble>().expect("evaluator attached").partitions_seen;
            assert!(now >= last, "coverage must be monotone ({now} < {last})");
            last = now;
        }
        let outcome = handle.wait();
        assert!(!outcome.deadline_fired());
        assert_eq!(outcome.results().map(Vec::len), Some(8));
        (early, outcome.partial::<BoundedDouble>())
    });
    let (early, fin) = out.result.clone();
    assert!(early.coverage() <= fin.coverage());
    assert_eq!(fin.value, BoundedDouble::exact(500.0));
    assert!(fin.is_final);
    // An evaluator was attached, so the submission rode the partial path.
    assert_eq!(out.partial_results(), 1);
    assert!(!out.deadline_fired());
}
