//! Chunk-granular flow control in `read_shuffle`, pinned with virtual
//! timestamps: a follow-on fetch request must depart as soon as a *single*
//! chunk frees `maxBytesInFlight` budget — before the first request's last
//! chunk has even left the server. This is the Spark
//! `ShuffleBlockFetcherIterator` behaviour (budget released per landed
//! buffer, not per retired request) that the streaming data plane restores.

use std::sync::Arc;

use fabric::{ClusterSpec, Net, PortAddr};
use parking_lot::Mutex;
use simt::queue::Queue;
use simt::Sim;
use sparklet::data::encode_batch;
use sparklet::net_backend::{NetworkBackend, ProcIdentity, Role, VanillaBackend};
use sparklet::rpc::RpcEnv;
use sparklet::shuffle::{read_shuffle, MapOutputClient, MapOutputTrackerMaster, MapStatus};
use sparklet::storage::{BlockId, BlockManager, StoredBlock};
use sparklet::task::{ExecutorServices, TaskContext};
use sparklet::transfer::{BlockTransferService, FetchResult};
use sparklet::SparkConf;

const MS: u64 = 1_000_000;

/// Transfer service that emits each request's chunks at scripted virtual
/// times (per-block mode: one chunk per requested block), recording when
/// `read_shuffle` issued each request and when each chunk was sent.
struct ScriptedTransfer {
    /// Per-request delays (ns after the fetch call) of each chunk.
    scripts: Vec<Vec<u64>>,
    /// Virtual timestamps of the `fetch_blocks` calls, in call order.
    calls: Mutex<Vec<u64>>,
    /// `(request, chunk_index, send_time)` for every emitted chunk.
    emissions: Arc<Mutex<Vec<(usize, u32, u64)>>>,
}

/// The decoded record carried by a block is derived from its map id, so the
/// reader's output proves which blocks arrived.
fn record_of(id: BlockId) -> u64 {
    match id {
        BlockId::Shuffle { map_id, .. } => u64::from(map_id) * 100,
        other => panic!("unexpected block {other}"),
    }
}

fn block_for(id: BlockId) -> StoredBlock {
    let (data, _) = encode_batch(&[record_of(id)]);
    StoredBlock { data, virtual_len: 10, records: 1 }
}

impl BlockTransferService for ScriptedTransfer {
    fn fetch_blocks(&self, _remote: PortAddr, blocks: Vec<BlockId>, sink: Queue<FetchResult>) {
        let req = {
            let mut calls = self.calls.lock();
            calls.push(simt::now());
            calls.len() - 1
        };
        let delays = self.scripts[req].clone();
        assert_eq!(delays.len(), blocks.len(), "per-block mode: one chunk per block");
        let emissions = self.emissions.clone();
        simt::spawn_daemon(format!("scripted-fetch-{req}"), move || {
            let t0 = simt::now();
            let n = blocks.len();
            for (i, delay) in delays.iter().enumerate() {
                let due = t0 + delay;
                let now = simt::now();
                if due > now {
                    simt::sleep(due - now);
                }
                emissions.lock().push((req, i as u32, simt::now()));
                sink.send(FetchResult {
                    blocks: vec![blocks[i]],
                    chunk_index: i as u32,
                    last: i + 1 == n,
                    result: Ok(vec![block_for(blocks[i])]),
                });
            }
        });
    }

    fn close(&self) {}
}

/// Build a `TaskContext` whose map-output table says shuffle 7 / reduce 0
/// has one 10-byte block per entry of `maps` (`(map_id, exec_id)`), all
/// remote to executor 0, and whose transfer service is `transfer`.
fn harness(
    net: &Net,
    conf: SparkConf,
    maps: &[(u32, usize)],
    transfer: Arc<dyn BlockTransferService>,
) -> TaskContext {
    let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::default());
    let driver = ProcIdentity::new(Role::Driver, 0, "driver");
    let driver_env = RpcEnv::new(net, &driver, &backend, Some(700));
    let tracker = Arc::new(MapOutputTrackerMaster::default());
    tracker.register_shuffle(7, maps.len());
    for (map_id, exec_id) in maps {
        tracker.register_map_output(
            7,
            MapStatus {
                map_id: *map_id,
                exec_id: *exec_id,
                shuffle_addr: PortAddr { node: *exec_id, port: 1 },
                sizes: Arc::new(vec![10]),
                records: Arc::new(vec![1]),
            },
        );
    }
    driver_env.register("MapOutputTracker", tracker);

    let me = ProcIdentity::new(Role::Executor(0), 1, "executor-0");
    let env = RpcEnv::new(net, &me, &backend, None);
    let tracker_ref = env.endpoint_ref(driver_env.addr(), "MapOutputTracker");
    let services = Arc::new(ExecutorServices {
        exec_id: 0,
        net: net.clone(),
        node: 1,
        cpu: net.cpu(1),
        conf,
        block_manager: Arc::new(BlockManager::new(4)),
        transfer,
        map_outputs: MapOutputClient::new(tracker_ref),
        shuffle_addr: env.addr(),
        rpc_env: env.clone(),
        driver_addr: driver_env.addr(),
        broadcast_cache: Mutex::new(Default::default()),
    });
    TaskContext::new(services, 0, 0)
}

#[test]
fn follow_on_request_departs_before_first_requests_last_chunk() {
    let sim = Sim::new();
    sim.spawn("main", move || {
        let net = Net::new(&ClusterSpec::test(3));
        // Executor 1 serves maps 0..3 (30 bytes — one request, three
        // chunks); executor 2 serves map 3 (10 bytes — a second request).
        // With a 35-byte window the second request does not fit while all
        // of request 1 is outstanding (30 + 10 > 35), but fits the moment
        // request 1's FIRST chunk lands and frees 10 bytes (20 + 10 ≤ 35).
        let mut conf = SparkConf::default();
        conf.target_request_size = 30;
        conf.max_bytes_in_flight = 35;
        let transfer = Arc::new(ScriptedTransfer {
            // Request 1's chunks land at +1 ms, +10 ms, +20 ms; request 2's
            // single chunk 1 ms after it is issued.
            scripts: vec![vec![MS, 10 * MS, 20 * MS], vec![MS]],
            calls: Mutex::new(Vec::new()),
            emissions: Arc::default(),
        });
        let ctx = harness(&net, conf, &[(0, 1), (1, 1), (2, 1), (3, 2)], transfer.clone());

        let mut out: Vec<u64> = read_shuffle(&ctx, 7, 0);
        out.sort_unstable();
        assert_eq!(out, vec![0, 100, 200, 300], "all four remote blocks decoded");

        let calls = transfer.calls.lock().clone();
        assert_eq!(calls.len(), 2, "two fetch requests issued");
        let emissions = transfer.emissions.lock().clone();
        let first_chunk = emissions.iter().find(|e| (e.0, e.1) == (0, 0)).unwrap().2;
        let last_chunk = emissions.iter().find(|e| (e.0, e.1) == (0, 2)).unwrap().2;
        // The budget gate held the second request back at issue time...
        assert!(
            calls[1] >= first_chunk,
            "second request departed at {} ns, before any budget was freed",
            calls[1]
        );
        // ...but a single landed chunk released it — strictly before the
        // first request's final chunk was even sent.
        assert!(
            calls[1] < last_chunk,
            "second request waited for the whole first request \
             (departed {} ns, last chunk sent {} ns)",
            calls[1],
            last_chunk
        );

        assert_eq!(ctx.metrics.snapshot().counter(obs::keys::TASK_REMOTE_BYTES), 40);
    });
    sim.run().unwrap().assert_clean();
    sim.shutdown();
}

#[test]
fn oversized_request_departs_on_empty_budget() {
    // A single request larger than maxBytesInFlight must still be issued
    // when nothing is outstanding, or the reader would stall forever.
    let sim = Sim::new();
    sim.spawn("main", move || {
        let net = Net::new(&ClusterSpec::test(2));
        let mut conf = SparkConf::default();
        conf.target_request_size = 100;
        conf.max_bytes_in_flight = 15; // two 10-byte blocks exceed this
        let transfer = Arc::new(ScriptedTransfer {
            scripts: vec![vec![MS, 2 * MS]],
            calls: Mutex::new(Vec::new()),
            emissions: Arc::default(),
        });
        let ctx = harness(&net, conf, &[(0, 1), (1, 1)], transfer.clone());
        let mut out: Vec<u64> = read_shuffle(&ctx, 7, 0);
        out.sort_unstable();
        assert_eq!(out, vec![0, 100]);
        assert_eq!(transfer.calls.lock().len(), 1);
    });
    sim.run().unwrap().assert_clean();
    sim.shutdown();
}
