//! Fault injection: shuffle-service loss between the write and read stages
//! triggers Spark's FetchFailed path — quarantine, lineage-based
//! recomputation of the lost map outputs, and retry of the failed reduce
//! partitions — and the job still produces correct results.

use std::collections::HashMap;
use std::sync::Arc;

use fabric::ClusterSpec;
use sparklet::deploy::executor::KillShuffleService;
use sparklet::deploy::{simulate, ClusterConfig, ProcessBuilderLauncher};
use sparklet::{SparkConf, VanillaBackend};

fn small_cluster() -> (ClusterSpec, ClusterConfig) {
    let spec = ClusterSpec::test(5); // 3 workers
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    // Fail fast so the injected fault is detected in milliseconds of
    // virtual time instead of the 10 s default connect timeout.
    conf.connect_timeout_ns = simt::time::millis(50);
    conf.request_timeout_ns = simt::time::millis(200);
    (spec.clone(), ClusterConfig::paper_layout(spec.len(), conf))
}

#[test]
fn shuffle_service_loss_recovers_via_lineage() {
    let (spec, cluster) = small_cluster();
    let (result, metrics) = simulate(
        &spec,
        cluster,
        Arc::new(VanillaBackend::default()),
        Arc::new(ProcessBuilderLauncher),
        |sc| {
            let pairs: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 11, i)).collect();
            let grouped = sc.parallelize(pairs, 6).group_by_key(6);
            // Force the shuffle write to complete first.
            let n_groups = grouped.count();
            assert_eq!(n_groups, 11);
            // Kill executor 1's shuffle service: its map outputs become
            // unreachable for every other executor.
            let victim = &sc.scheduler().executors()[1];
            victim.rpc.send(KillShuffleService).unwrap();
            simt::sleep(simt::time::millis(5));
            // Second job re-reads the same shuffle: fetches from executor 1
            // fail, the scheduler recomputes its map outputs on the healthy
            // executors, and the job completes correctly.
            let mut out = grouped.collect();
            out.sort_by_key(|(k, _)| *k);
            out
        },
    );
    // Functional correctness after recovery.
    let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
    for i in 0..300u64 {
        oracle.entry(i % 11).or_default().push(i);
    }
    assert_eq!(result.len(), 11);
    for (k, mut vs) in result {
        vs.sort_unstable();
        assert_eq!(vs, oracle[&k]);
    }
    // The recovery ran extra stages: the second job must show a retry map
    // stage and more than one result-stage attempt.
    let last = metrics.last().unwrap();
    assert!(
        last.stages.iter().any(|s| s.name.contains("retry")),
        "expected a lineage-recompute stage, got {:?}",
        last.stages.iter().map(|s| s.name.clone()).collect::<Vec<_>>()
    );
    let result_stages = last.stages.iter().filter(|s| s.name.contains("ResultStage")).count();
    assert!(result_stages >= 2, "expected a retried result stage");
}

#[test]
fn healthy_run_has_no_retry_stages() {
    let (spec, cluster) = small_cluster();
    let (_, metrics) = simulate(
        &spec,
        cluster,
        Arc::new(VanillaBackend::default()),
        Arc::new(ProcessBuilderLauncher),
        |sc| {
            let pairs: Vec<(u64, u64)> = (0..100u64).map(|i| (i % 5, i)).collect();
            sc.parallelize(pairs, 4).group_by_key(4).count()
        },
    );
    for job in &metrics {
        assert!(job.stages.iter().all(|s| !s.name.contains("retry")));
    }
}
