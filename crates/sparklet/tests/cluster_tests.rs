//! End-to-end cluster tests: deploy master/workers/executors over the
//! simulated fabric, run real RDD jobs, and check results against
//! sequential oracles.

use std::collections::HashMap;
use std::sync::Arc;

use fabric::ClusterSpec;
use sparklet::deploy::{simulate, ClusterConfig, ProcessBuilderLauncher};
use sparklet::{NetworkBackend, SparkConf, VanillaBackend};

fn small_cluster() -> (ClusterSpec, ClusterConfig) {
    let spec = ClusterSpec::test(5); // 3 workers + master + driver
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000; // keep tiny jobs quick
    (spec.clone(), ClusterConfig::paper_layout(spec.len(), conf))
}

fn backend() -> Arc<dyn NetworkBackend> {
    Arc::new(VanillaBackend::default())
}

#[test]
fn count_over_generated_data() {
    let (spec, cluster) = small_cluster();
    let (result, metrics) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            let rdd = sc.generate(6, |p| (0..100u64).map(|i| p as u64 * 1000 + i).collect());
            rdd.count()
        });
    assert_eq!(result, 600);
    assert_eq!(metrics.len(), 1);
    assert_eq!(metrics[0].stages.len(), 1);
    assert!(metrics[0].stages[0].name.contains("Job0-ResultStage"));
}

#[test]
fn collect_returns_all_records() {
    let (spec, cluster) = small_cluster();
    let (mut result, _) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            sc.parallelize((0..50u64).collect(), 7).collect()
        });
    result.sort_unstable();
    assert_eq!(result, (0..50).collect::<Vec<u64>>());
}

#[test]
fn map_filter_reduce_pipeline() {
    let (spec, cluster) = small_cluster();
    let (result, _) = simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
        sc.parallelize((1..=100u64).collect(), 8)
            .map(|x| x * 2)
            .filter(|x| x % 4 == 0)
            .reduce(|a, b| a + b)
    });
    // Doubles of 1..=100 divisible by 4 are 4,8,...,200 → sum = 4*(1+..+50).
    assert_eq!(result, Some(4 * (50 * 51 / 2)));
}

#[test]
fn group_by_key_matches_oracle() {
    let (spec, cluster) = small_cluster();
    let (mut result, metrics) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            let pairs: Vec<(u64, u64)> = (0..200u64).map(|i| (i % 7, i)).collect();
            let grouped = sc.parallelize(pairs, 6).group_by_key(5);
            grouped.collect()
        });
    result.sort_by_key(|(k, _)| *k);
    let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
    for i in 0..200u64 {
        oracle.entry(i % 7).or_default().push(i);
    }
    assert_eq!(result.len(), 7);
    for (k, mut vs) in result {
        vs.sort_unstable();
        assert_eq!(vs, oracle[&k]);
    }
    // Shuffle job has a map stage and a result stage.
    let job = &metrics[0];
    assert!(job.stages.iter().any(|s| s.name.contains("ShuffleMapStage")));
    assert!(job.stages.iter().any(|s| s.name.contains("ResultStage")));
}

#[test]
fn reduce_by_key_with_map_side_combine() {
    let (spec, cluster) = small_cluster();
    let (mut result, _) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            let pairs: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 10, 1)).collect();
            sc.parallelize(pairs, 6).reduce_by_key(4, |a, b| a + b).collect()
        });
    result.sort_unstable();
    assert_eq!(result, (0..10u64).map(|k| (k, 30u64)).collect::<Vec<_>>());
}

#[test]
fn sort_by_key_totally_orders() {
    let (spec, cluster) = small_cluster();
    let (result, metrics) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            let pairs: Vec<(u64, u64)> = (0..500u64).map(|i| ((i * 7919) % 1000, i)).collect();
            sc.parallelize(pairs, 8).sort_by_key(5).collect()
        });
    let keys: Vec<u64> = result.iter().map(|(k, _)| *k).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "range partitioning + in-partition sort must totally order");
    assert_eq!(result.len(), 500);
    // Sampling job + sort job.
    assert!(metrics.len() >= 2);
}

#[test]
fn join_matches_oracle() {
    let (spec, cluster) = small_cluster();
    let (mut result, _) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            let left: Vec<(u64, u64)> = (0..20u64).map(|i| (i % 5, i)).collect();
            let right: Vec<(u64, String)> = (0..5u64).map(|k| (k, format!("v{k}"))).collect();
            let l = sc.parallelize(left, 4);
            let r = sc.parallelize(right, 3);
            l.join(&r, 4).collect()
        });
    result.sort_by_key(|a| (a.0, a.1 .0));
    // Each key 0..5 appears 4 times on the left, once on the right.
    assert_eq!(result.len(), 20);
    for (k, (v, w)) in &result {
        assert_eq!(v % 5, *k);
        assert_eq!(w, &format!("v{k}"));
    }
}

#[test]
fn repartition_preserves_records() {
    let (spec, cluster) = small_cluster();
    let (mut result, _) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            sc.parallelize((0..400u64).collect(), 3).repartition(11).collect()
        });
    result.sort_unstable();
    assert_eq!(result, (0..400).collect::<Vec<u64>>());
}

#[test]
fn cache_avoids_regeneration() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let (spec, cluster) = small_cluster();
    let gen_calls = Arc::new(AtomicU64::new(0));
    let gen_calls2 = gen_calls.clone();
    let (counts, _) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), move |sc| {
            let gc = gen_calls2.clone();
            let rdd = sc
                .generate(6, move |p| {
                    gc.fetch_add(1, Ordering::SeqCst);
                    (0..50u64).map(|i| p as u64 * 100 + i).collect()
                })
                .cache();
            let a = rdd.count(); // materializes + caches
            let b = rdd.count(); // cache hit
            (a, b)
        });
    assert_eq!(counts, (300, 300));
    assert_eq!(gen_calls.load(std::sync::atomic::Ordering::SeqCst), 6, "second job must hit cache");
}

#[test]
fn chained_shuffles_compute_once() {
    let (spec, cluster) = small_cluster();
    let (result, metrics) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            let pairs: Vec<(u64, u64)> = (0..100u64).map(|i| (i % 10, i)).collect();
            let reduced = sc.parallelize(pairs, 4).reduce_by_key(4, |a, b| a + b);
            // Second shuffle on top of the first.
            let regrouped = reduced.map(|(k, v)| (k % 2, v)).group_by_key(3);
            let c1 = regrouped.count();
            let c2 = regrouped.count(); // shuffle outputs reused
            (c1, c2)
        });
    assert_eq!(result, (2, 2));
    // First groupby job runs two map stages (chained shuffles) + result;
    // second count reuses both shuffles → single-stage job.
    let last = metrics.last().unwrap();
    assert_eq!(last.stages.len(), 1, "{:?}", last.stages);
}

#[test]
fn stage_metrics_track_remote_bytes() {
    let (spec, cluster) = small_cluster();
    let (_, metrics) =
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            let pairs: Vec<(u64, sparklet::Blob)> =
                (0..90u64).map(|i| (i, sparklet::Blob::new(i, 1 << 16))).collect();
            sc.parallelize(pairs, 6).group_by_key(6).count()
        });
    let job = &metrics[0];
    let result_stage = job.stages.iter().find(|s| s.name.contains("ResultStage")).unwrap();
    // 3 executors → roughly 2/3 of shuffle traffic is remote.
    assert!(result_stage.remote_bytes() > 0);
    assert!(result_stage.fetch_wait_ns() > 0);
    let total = result_stage.remote_bytes() + result_stage.local_bytes();
    assert!(total >= 90 * (1 << 16));
}

#[test]
fn deterministic_end_to_end() {
    fn once() -> (u64, Vec<u64>) {
        let (spec, cluster) = small_cluster();
        let (result, metrics) =
            simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
                let pairs: Vec<(u64, u64)> = (0..200u64).map(|i| (i % 13, i)).collect();
                sc.parallelize(pairs, 6).group_by_key(5).count()
            });
        (result, metrics[0].stages.iter().map(|s| s.duration_ns()).collect())
    }
    let a = once();
    let b = once();
    assert_eq!(a.0, 13);
    assert_eq!(a, b, "same program must give identical virtual timings");
}

#[test]
fn per_block_chunk_mode_matches_merged_mode() {
    let run = |merged: bool| {
        let spec = ClusterSpec::test(5);
        let mut conf = SparkConf::default();
        conf.executor_cores = 4;
        conf.merge_chunks_per_request = merged;
        conf.cost.task_overhead_ns = 10_000;
        let cluster = ClusterConfig::paper_layout(spec.len(), conf);
        let (mut res, _) =
            simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
                let pairs: Vec<(u64, u64)> = (0..150u64).map(|i| (i % 9, i * 3)).collect();
                sc.parallelize(pairs, 5).group_by_key(4).collect()
            });
        res.sort_by_key(|(k, _)| *k);
        res.iter_mut().for_each(|(_, v)| v.sort_unstable());
        res
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn shuffle_output_is_bit_reproducible_across_runs() {
    // Determinism invariant D4 (see DESIGN.md): message-path crates never
    // iterate hash maps, so re-running the identical job must reproduce the
    // collected output bit-for-bit — *including element order* — and every
    // virtual timestamp in the metrics. No sorting before comparison.
    let run = || {
        let (spec, cluster) = small_cluster();
        simulate(&spec, cluster, backend(), Arc::new(ProcessBuilderLauncher), |sc| {
            let pairs: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 37, i)).collect();
            let grouped = sc.parallelize(pairs, 8).group_by_key(5);
            let joined = grouped
                .map(|(k, vs)| (k, vs.len() as u64))
                .join(&sc.parallelize((0..37u64).map(|k| (k, k * k)).collect(), 4), 3);
            joined.collect()
        })
    };
    let (out_a, metrics_a) = run();
    let (out_b, metrics_b) = run();
    assert_eq!(out_a, out_b, "same-seed shuffle output must match, including order");
    let summary = |ms: &[sparklet::scheduler::JobMetrics]| {
        ms.iter()
            .map(|j| {
                let stages: Vec<_> = j
                    .stages
                    .iter()
                    .map(|s| {
                        (
                            s.name.clone(),
                            s.start_ns,
                            s.end_ns,
                            s.tasks,
                            s.fetch_wait_ns(),
                            s.remote_bytes(),
                            s.local_bytes(),
                        )
                    })
                    .collect();
                (j.job_id, j.start_ns, j.end_ns, stages)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        summary(&metrics_a),
        summary(&metrics_b),
        "virtual timings and byte counts must reproduce exactly"
    );
}
