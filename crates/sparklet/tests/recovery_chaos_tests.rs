//! Recovery chaos matrix: {executor crash during map, executor crash during
//! reduce fetch, slowdown-induced speculation} × the paper's four systems.
//!
//! Unlike `chaos_tests.rs` (which exercises the per-block *fetch retry*
//! layer), these cells force the scheduler's *stage machinery*: a node
//! crash mid-map strands launched tasks whose completions never arrive, so
//! the attempt's straggler speculation must re-run them elsewhere; a crash
//! during the reduce's shuffle read exhausts the fetch-retry budget,
//! surfaces `FetchFailed`, and drives quarantine + lineage recomputation +
//! stage resubmission under a bumped map-output epoch.
//!
//! Window discipline: `FaultPlan::crash_node` silently swallows every
//! message to and from the node, including the teardown `StopWorker`, so
//! every crash window is finite and the workload sleeps past the window's
//! end before returning — the revived node then shuts down normally and
//! the sim quiesces clean.

use fabric::{ClusterSpec, FaultPlan};
use sparklet::deploy::ClusterConfig;
use sparklet::scheduler::SparkContext;
use sparklet::{SparkConf, SpeculationConf};
use workloads::System;

const MS: u64 = 1_000_000;
/// Worker node hosting the victim executor (`ClusterSpec::test(5)` +
/// `paper_layout`: workers on 0..3, master on 3, driver on 4).
const VICTIM: usize = 1;

/// Chaos-tuned conf with straggler speculation enabled. Timeouts and the
/// retry budget are compressed so a crashed shuffle source exhausts its
/// per-block retries within a few hundred virtual milliseconds.
fn recovery_conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf.merge_chunks_per_request = false;
    conf.connect_timeout_ns = 50 * MS;
    conf.request_timeout_ns = 100 * MS;
    conf.fetch_timeout_ns = 150 * MS;
    conf.fetch_max_retries = 1;
    conf.fetch_retry_base_ns = 20 * MS;
    conf.fetch_retry_max_ns = 100 * MS;
    conf.speculation = SpeculationConf {
        enabled: true,
        interval_ns: MS,
        multiplier: 2.0,
        quantile: 0.5,
        min_runtime_ns: MS,
    };
    conf
}

fn all_systems() -> [System; 4] {
    [System::Vanilla, System::RdmaSpark, System::Mpi4SparkBasic, System::Mpi4Spark]
}

/// 9 map × 9 reduce partitions over 3 executors × 4 cores: the victim hosts
/// tasks of both stages and shuffle traffic crosses every worker link.
fn groupby(sc: &SparkContext) -> Vec<(u64, Vec<u64>)> {
    let pairs: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 23, i)).collect();
    let mut groups = sc.parallelize(pairs, 9).group_by_key(9).collect();
    groups.sort_by_key(|(k, _)| *k);
    groups.iter_mut().for_each(|(_, v)| v.sort_unstable());
    groups
}

fn oracle() -> Vec<(u64, Vec<u64>)> {
    (0..23u64).map(|k| (k, (0..400u64).filter(|i| i % 23 == k).collect())).collect()
}

/// `start_ns` of the named stage in a fault-free run under `recovery_conf`
/// — virtual time is deterministic, so crash windows measured here land at
/// the same instant in the chaos run.
fn measure_stage_start(system: System, spec: &ClusterSpec, fragment: &str) -> u64 {
    let mut cluster = ClusterConfig::paper_layout(spec.len(), recovery_conf());
    // A small jar: three concurrent 32 MB fetches through the driver link
    // would not fit the compressed request timeout above.
    cluster.app_jar_bytes = 1 << 20;
    let out = system.run(spec, cluster, groupby);
    assert_eq!(out.result, oracle(), "{}: clean run must be correct", system.label());
    out.jobs
        .iter()
        .flat_map(|j| j.stages.iter())
        .find(|s| s.name == fragment)
        .unwrap_or_else(|| panic!("{}: no stage named {fragment}", system.label()))
        .start_ns
}

/// Run `groupby` under `plan`, sleeping `linger_ns` after the job so the
/// teardown happens with every crash window closed.
fn run_recovery(
    system: System,
    spec: &ClusterSpec,
    plan: FaultPlan,
    linger_ns: u64,
    trace: bool,
) -> workloads::RunOutcome<Vec<(u64, Vec<u64>)>> {
    let mut conf = recovery_conf();
    conf.trace_timeline = trace;
    let mut cluster = ClusterConfig::paper_layout(spec.len(), conf);
    cluster.app_jar_bytes = 1 << 20;
    system.run_with_chaos(spec, cluster, plan, move |sc| {
        let out = groupby(sc);
        simt::sleep(linger_ns);
        out
    })
}

#[test]
fn executor_crash_during_map_is_covered_by_speculation_on_all_systems() {
    // The victim node dies just as the map stage launches: its `LaunchTask`
    // messages are swallowed, so its partitions never report. No map output
    // is lost (none was produced), so recovery is pure speculation — the
    // stranded tasks are re-run on healthy executors and first finish wins.
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        let start = measure_stage_start(system, &spec, "Job0-ShuffleMapStage");
        let window = 50 * MS;
        let plan =
            FaultPlan::seeded(21).crash_node(VICTIM, start.saturating_sub(50_000), window).build();
        let out = run_recovery(system, &spec, plan, 2 * window, false);
        assert_eq!(out.result, oracle(), "{}: wrong result after map-stage crash", system.label());
        assert!(out.chaos_dropped() > 0, "{}: the crash window never bit", system.label());
        assert!(
            out.speculative_tasks() >= 1,
            "{}: stranded map tasks were not speculated (dropped {})",
            system.label(),
            out.chaos_dropped()
        );
    }
}

#[test]
fn executor_crash_during_reduce_fetch_resubmits_stages_on_all_systems() {
    // The victim dies after writing its map outputs, as the reduce stage
    // starts fetching them. Per-block retries exhaust, `FetchFailed` blames
    // the victim, and the scheduler must quarantine it, bump the epoch,
    // recompute the lost map partitions by lineage (`-retry` stage), and
    // resubmit the failed reduce partitions — fetch retries alone cannot
    // finish this job.
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        let start = measure_stage_start(system, &spec, "Job0-ResultStage");
        let window = 600 * MS;
        let plan =
            FaultPlan::seeded(22).crash_node(VICTIM, start.saturating_sub(50_000), window).build();
        let out = run_recovery(system, &spec, plan, 2 * window, false);
        assert_eq!(out.result, oracle(), "{}: wrong result after reduce crash", system.label());
        assert!(out.chaos_dropped() > 0, "{}: the crash window never bit", system.label());
        assert!(
            out.stage_resubmits() >= 1,
            "{}: no stage resubmission (dropped {}, retries {})",
            system.label(),
            out.chaos_dropped(),
            out.fetch_retries()
        );
        let retried = out
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter())
            .any(|s| s.name.contains("retry") || s.attempt > 0);
        assert!(retried, "{}: no lineage recompute or reattempt recorded", system.label());
    }
}

#[test]
fn slowdown_triggers_speculation_and_cuts_job_time_on_all_systems() {
    // The victim's links turn slow for the whole job. Without speculation
    // the job waits out every delayed launch, fetch, and completion; with
    // it, the stragglers get duplicates on healthy executors and the fast
    // copies win.
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        let start = measure_stage_start(system, &spec, "Job0-ShuffleMapStage");
        let plan = || {
            FaultPlan::seeded(23)
                .slow_node(VICTIM, start.saturating_sub(50_000), 10_000 * MS, 20 * MS)
                .build()
        };
        let with_spec = run_recovery(system, &spec, plan(), 0, false);
        assert_eq!(with_spec.result, oracle(), "{}: wrong result (spec on)", system.label());
        assert!(with_spec.chaos_delayed() > 0, "{}: the slowdown never bit", system.label());
        assert!(
            with_spec.speculative_tasks() >= 1,
            "{}: the slowdown produced no speculative tasks",
            system.label()
        );

        let mut conf = recovery_conf();
        conf.speculation.enabled = false;
        let mut cluster = ClusterConfig::paper_layout(spec.len(), conf);
        cluster.app_jar_bytes = 1 << 20;
        let no_spec = system.run_with_chaos(&spec, cluster, plan(), groupby);
        assert_eq!(no_spec.result, oracle(), "{}: wrong result (spec off)", system.label());
        assert!(
            2 * with_spec.total_ns() < no_spec.total_ns(),
            "{}: speculation should measurably cut virtual job time ({} vs {} ns)",
            system.label(),
            with_spec.total_ns(),
            no_spec.total_ns()
        );
    }
}

#[test]
fn same_seed_recovery_timeline_is_byte_identical_on_all_systems() {
    // The acceptance bar for determinism: the full recovery — crash window,
    // retry exhaustion, speculation ticks, quarantine, epoch bump, stage
    // resubmission — replays byte-for-byte from the same seed, asserted on
    // the exported trace timeline, not just on summary counters.
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        let start = measure_stage_start(system, &spec, "Job0-ResultStage");
        let window = 600 * MS;
        let run = || {
            let plan = FaultPlan::seeded(24)
                .crash_node(VICTIM, start.saturating_sub(50_000), window)
                .build();
            run_recovery(system, &spec, plan, 2 * window, true)
        };
        let a = run();
        let b = run();
        assert_eq!(a.result, b.result, "{}: results differ across reruns", system.label());
        assert_eq!(a.result, oracle(), "{}: wrong recovered result", system.label());
        assert!(a.stage_resubmits() >= 1, "{}: no resubmission to replay", system.label());
        let (ta, tb) = (a.timeline.expect("traced run"), b.timeline.expect("traced run"));
        assert_eq!(ta, tb, "{}: recovery timeline is not byte-identical", system.label());
    }
}
