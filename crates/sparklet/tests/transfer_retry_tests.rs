//! The retrying fetch layer, pinned at both ends:
//!
//! * against the *real* shuffle wire (`ShuffleService` +
//!   `NettyBlockTransferService` over the fabric), the per-block failure
//!   granularity regression — one bad chunk must not fail sibling blocks;
//! * against scripted transfer services, the retry controller's contract:
//!   missing-only re-requests, stall detection, retry accounting, plane
//!   degradation to the fallback service, and per-block error emission on
//!   exhaustion.

use std::sync::Arc;

use fabric::{ClusterSpec, Net, PortAddr};
use netz::RetryPolicy;
use parking_lot::Mutex;
use simt::queue::Queue;
use simt::Sim;
use sparklet::data::encode_batch;
use sparklet::net_backend::{NetworkBackend, ProcIdentity, Role, VanillaBackend};
use sparklet::storage::{BlockId, BlockManager, StoredBlock};
use sparklet::transfer::{
    BlockTransferService, FetchError, FetchResult, NettyBlockTransferService, RetryConf,
    RetryingBlockFetcher, ShuffleService,
};
use sparklet::SparkConf;

const MS: u64 = 1_000_000;

fn bid(map_id: u32) -> BlockId {
    BlockId::Shuffle { shuffle_id: 7, map_id, reduce_id: 0 }
}

fn block_for(map_id: u32) -> StoredBlock {
    let (data, _) = encode_batch(&[u64::from(map_id) * 100]);
    StoredBlock { data, virtual_len: 10, records: 1 }
}

fn conf() -> RetryConf {
    RetryConf {
        max_retries: 3,
        policy: RetryPolicy {
            max_retries: 3,
            base_delay_ns: MS,
            max_delay_ns: 10 * MS,
            jitter_frac: 0.2,
        },
        fetch_timeout_ns: 50 * MS,
        plane_failure_threshold: 2,
        seed: 9,
    }
}

/// Drain `sink` until the `last` result, partitioning covered blocks by
/// outcome. Retry counts are read off the fetcher's registry
/// (`obs::keys::SPARK_FETCH_RETRIES`), not the results themselves.
fn drain(sink: &Queue<FetchResult>) -> (Vec<BlockId>, Vec<BlockId>) {
    let (mut ok, mut err) = (Vec::new(), Vec::new());
    loop {
        let r = sink.recv().expect("fetch emits a terminal result");
        match &r.result {
            Ok(_) => ok.extend(r.blocks.iter().copied()),
            Err(_) => err.extend(r.blocks.iter().copied()),
        }
        if r.last {
            return (ok, err);
        }
    }
}

/// Process-wide fetch-retry count recorded on `obs`'s registry.
fn retries_on(obs: &obs::Obs) -> u64 {
    obs.registry().snapshot().counter(obs::keys::SPARK_FETCH_RETRIES)
}

// --- the real wire: per-block failure granularity ---------------------------

#[test]
fn one_bad_chunk_does_not_fail_sibling_blocks_on_the_real_wire() {
    // Regression for the old all-or-nothing error path, where the first
    // failing chunk poisoned the entire block group. Serve three blocks in
    // per-block chunks with the middle one missing from the block manager:
    // its chunk fails server-side, and exactly that block — not its
    // siblings — must come back as an error.
    let sim = Sim::new();
    sim.spawn("main", || {
        let net = Net::new(&ClusterSpec::test(2));
        let mut conf = SparkConf::default();
        conf.merge_chunks_per_request = false;
        let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::with_conf(&conf));

        let server_id = ProcIdentity::new(Role::Executor(1), 1, "executor-1");
        let bm = Arc::new(BlockManager::new(4));
        bm.put(bid(0), block_for(0));
        bm.put(bid(2), block_for(2)); // bid(1) intentionally absent
        let (_svc, server_ep) = ShuffleService::start(&server_id, &net, &backend, bm, conf);

        let client_id = ProcIdentity::new(Role::Executor(0), 0, "executor-0");
        let client = NettyBlockTransferService::new(&client_id, &net, &backend);
        let sink = Queue::new();
        client.fetch_blocks(server_ep.addr(), vec![bid(0), bid(1), bid(2)], sink.clone());

        let (mut ok, err) = drain(&sink);
        ok.sort();
        assert_eq!(ok, vec![bid(0), bid(2)], "sibling blocks must decode");
        assert_eq!(err, vec![bid(1)], "only the bad chunk's block may fail");

        client.close();
        server_ep.shutdown();
    });
    sim.run().unwrap().assert_clean();
    sim.shutdown();
}

// --- scripted services for the retry controller -----------------------------

/// Scripted [`BlockTransferService`] whose behaviour is a function of the
/// call index; records the block list of every `fetch_blocks` call.
struct Scripted<F: Fn(usize, &[BlockId], &Queue<FetchResult>) + Send + Sync + 'static> {
    calls: Mutex<Vec<Vec<BlockId>>>,
    script: F,
}

impl<F: Fn(usize, &[BlockId], &Queue<FetchResult>) + Send + Sync + 'static> Scripted<F> {
    fn new(script: F) -> Arc<Self> {
        Arc::new(Scripted { calls: Mutex::new(Vec::new()), script })
    }
}

impl<F: Fn(usize, &[BlockId], &Queue<FetchResult>) + Send + Sync + 'static> BlockTransferService
    for Scripted<F>
{
    fn fetch_blocks(&self, _remote: PortAddr, blocks: Vec<BlockId>, sink: Queue<FetchResult>) {
        let call = {
            let mut calls = self.calls.lock();
            calls.push(blocks.clone());
            calls.len() - 1
        };
        (self.script)(call, &blocks, &sink);
    }

    fn close(&self) {}
}

fn ok_result(blocks: &[BlockId], i: usize, last: bool) -> FetchResult {
    FetchResult {
        blocks: vec![blocks[i]],
        chunk_index: i as u32,
        last,
        result: Ok(vec![block_for(match blocks[i] {
            BlockId::Shuffle { map_id, .. } => map_id,
            _ => 0,
        })]),
    }
}

fn remote() -> PortAddr {
    PortAddr { node: 1, port: 1 }
}

#[test]
fn transient_failure_is_retried_for_the_missing_block_only() {
    let sim = Sim::new();
    sim.spawn("main", || {
        // Call 0: bid(1)'s chunk is corrupt, siblings fine. Call 1+: all ok.
        let primary = Scripted::new(|call, blocks, sink| {
            for i in 0..blocks.len() {
                let last = i + 1 == blocks.len();
                if call == 0 && blocks[i] == bid(1) {
                    sink.send(FetchResult {
                        blocks: vec![bid(1)],
                        chunk_index: i as u32,
                        last,
                        result: Err(FetchError::request("corrupt chunk")),
                    });
                } else {
                    sink.send(ok_result(blocks, i, last));
                }
            }
        });
        let obs = obs::Obs::disabled();
        let fetcher = RetryingBlockFetcher::new(primary.clone(), None, conf(), 1, obs.clone());
        let sink = Queue::new();
        fetcher.fetch_blocks(remote(), vec![bid(0), bid(1), bid(2)], sink.clone());
        let (mut ok, err) = drain(&sink);
        ok.sort();
        assert_eq!(ok, vec![bid(0), bid(1), bid(2)], "every block recovers");
        assert!(err.is_empty());
        assert_eq!(retries_on(&obs), 1, "the registry reports the fetch's retry count");
        assert!(!fetcher.degraded(), "request-scoped failures must not degrade the plane");
        let calls = primary.calls.lock().clone();
        assert_eq!(calls[0], vec![bid(0), bid(1), bid(2)]);
        assert_eq!(calls[1], vec![bid(1)], "the re-request covers only the missing block");
    });
    sim.run().unwrap().assert_clean();
    sim.shutdown();
}

#[test]
fn stalled_attempt_times_out_and_reissues_missing_chunks() {
    let sim = Sim::new();
    sim.spawn("main", || {
        // Call 0 delivers the siblings, then goes silent without ever
        // finishing; the controller's progress timeout must abandon it and
        // re-request only the block that never arrived.
        let primary = Scripted::new(|call, blocks, sink| {
            for i in 0..blocks.len() {
                if call == 0 && blocks[i] == bid(1) {
                    continue; // swallowed chunk: no result
                }
                // The swallowed chunk's callback never runs on call 0, so
                // the attempt never reports `last` either — it just stalls.
                let last = call > 0 && i + 1 == blocks.len();
                sink.send(ok_result(blocks, i, last));
            }
        });
        let obs = obs::Obs::disabled();
        let fetcher = RetryingBlockFetcher::new(primary.clone(), None, conf(), 1, obs.clone());
        let sink = Queue::new();
        let t0 = simt::now();
        fetcher.fetch_blocks(remote(), vec![bid(0), bid(1), bid(2)], sink.clone());
        let (mut ok, err) = drain(&sink);
        ok.sort();
        assert_eq!(ok, vec![bid(0), bid(1), bid(2)]);
        assert!(err.is_empty());
        assert_eq!(retries_on(&obs), 1);
        assert!(
            simt::now() - t0 >= conf().fetch_timeout_ns,
            "recovery must have waited out the stall"
        );
        assert_eq!(primary.calls.lock()[1], vec![bid(1)]);
    });
    sim.run().unwrap().assert_clean();
    sim.shutdown();
}

#[test]
fn consecutive_plane_failures_degrade_to_the_fallback_service() {
    let sim = Sim::new();
    sim.spawn("main", || {
        // The primary plane is dead: every attempt fails with a plane-level
        // error. After `plane_failure_threshold` consecutive failures the
        // fetch must switch to the fallback service and stay there.
        let primary = Scripted::new(|_, blocks, sink| {
            sink.send(FetchResult {
                blocks: blocks.to_vec(),
                chunk_index: 0,
                last: true,
                result: Err(FetchError::plane("plane down")),
            });
        });
        let fallback = Scripted::new(|_, blocks, sink| {
            for i in 0..blocks.len() {
                sink.send(ok_result(blocks, i, i + 1 == blocks.len()));
            }
        });
        let obs = obs::Obs::disabled();
        let fetcher = RetryingBlockFetcher::new(
            primary.clone(),
            Some(fallback.clone()),
            conf(),
            1,
            obs.clone(),
        );
        let sink = Queue::new();
        fetcher.fetch_blocks(remote(), vec![bid(0), bid(1)], sink.clone());
        let (mut ok, err) = drain(&sink);
        ok.sort();
        assert_eq!(ok, vec![bid(0), bid(1)], "the fallback plane completes the fetch");
        assert!(err.is_empty());
        assert!(fetcher.degraded(), "the primary plane must be abandoned");
        let threshold = conf().plane_failure_threshold;
        assert_eq!(primary.calls.lock().len() as u32, threshold, "primary dropped at threshold");
        assert_eq!(fallback.calls.lock().len(), 1);
        assert_eq!(
            retries_on(&obs),
            u64::from(threshold),
            "each failed primary attempt counts as a retry"
        );

        // Sticky: the next fetch goes straight to the fallback.
        let sink2 = Queue::new();
        fetcher.fetch_blocks(remote(), vec![bid(2)], sink2.clone());
        let (ok2, _) = drain(&sink2);
        assert_eq!(ok2, vec![bid(2)]);
        assert_eq!(primary.calls.lock().len() as u32, threshold, "primary never consulted again");
    });
    sim.run().unwrap().assert_clean();
    sim.shutdown();
}

#[test]
fn exhausted_retries_fail_only_the_still_missing_blocks() {
    let sim = Sim::new();
    sim.spawn("main", || {
        // bid(1) is permanently corrupt. Its siblings arrive on the first
        // attempt; after the retry budget is spent, exactly one terminal
        // error covering bid(1) is emitted — not a group-wide failure.
        let primary = Scripted::new(|_, blocks, sink| {
            for i in 0..blocks.len() {
                let last = i + 1 == blocks.len();
                if blocks[i] == bid(1) {
                    sink.send(FetchResult {
                        blocks: vec![bid(1)],
                        chunk_index: i as u32,
                        last,
                        result: Err(FetchError::request("permanently corrupt")),
                    });
                } else {
                    sink.send(ok_result(blocks, i, last));
                }
            }
        });
        let mut c = conf();
        c.max_retries = 1;
        let obs = obs::Obs::disabled();
        let fetcher = RetryingBlockFetcher::new(primary.clone(), None, c, 1, obs.clone());
        let sink = Queue::new();
        fetcher.fetch_blocks(remote(), vec![bid(0), bid(1), bid(2)], sink.clone());
        let (mut ok, err) = drain(&sink);
        ok.sort();
        assert_eq!(ok, vec![bid(0), bid(2)], "siblings delivered despite exhaustion");
        assert_eq!(err, vec![bid(1)], "the terminal error covers only the lost block");
        assert_eq!(retries_on(&obs), 1, "budget fully spent before giving up");
        assert!(!fetcher.degraded());
        assert_eq!(primary.calls.lock().len(), 2);
    });
    sim.run().unwrap().assert_clean();
    sim.shutdown();
}
