//! Seeded chaos matrix: {drop, delay, flap, node-crash} × the paper's four
//! systems, each asserting `group_by_key`/`collect` correctness and a clean
//! sim report at shutdown (`System::run_with_chaos` calls
//! `SimReport::assert_clean()` internally).
//!
//! Window placement strategy: virtual time is deterministic, so a clean run
//! of the same workload measures exactly when the shuffle-read stage
//! (`Job0-ResultStage`) happens; fault windows are then placed at fractions
//! of that stage's duration. Because no fault is scheduled before the stage
//! starts, the chaos run is bit-identical to the clean run up to the first
//! verdict — the faults are guaranteed to land mid-shuffle, not before or
//! after it.
//!
//! Every schedule derives from a `u64` seed; rerunning with the same seed
//! reproduces the failure bit-for-bit (see
//! `same_seed_reproduces_the_run_bit_for_bit`).

use fabric::{ClusterSpec, FaultPlan};
use simt::SeededRng;
use sparklet::deploy::ClusterConfig;
use sparklet::scheduler::SparkContext;
use sparklet::SparkConf;
use workloads::System;

const MS: u64 = 1_000_000;
/// Worker nodes under `ClusterSpec::test(5)` + `paper_layout` (master and
/// driver sit on nodes 3 and 4). Faults must stay on worker↔worker links:
/// the control plane (task launch, map-output lookups) is not retried.
const WORKERS: [usize; 3] = [0, 1, 2];

fn chaos_conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    // One chunk per block, so a dropped chunk maps to exactly one block and
    // the retry layer re-requests only that block.
    conf.merge_chunks_per_request = false;
    // Millisecond-scale failure detection: fault windows measure µs–ms, so
    // a stalled attempt must be declared dead quickly (virtual) and retried
    // after the window has passed.
    conf.connect_timeout_ns = 50 * MS;
    conf.request_timeout_ns = 200 * MS;
    conf.fetch_timeout_ns = 300 * MS;
    conf.fetch_max_retries = 8;
    conf.fetch_retry_base_ns = 20 * MS;
    conf.fetch_retry_max_ns = 200 * MS;
    conf
}

fn all_systems() -> [System; 4] {
    [System::Vanilla, System::RdmaSpark, System::Mpi4SparkBasic, System::Mpi4Spark]
}

/// 9 map partitions and 9 reduce partitions over 3 executors × 4 cores:
/// more tasks than any two executors have slots, so every worker hosts map
/// output and reduce tasks, and every worker↔worker link carries shuffle
/// traffic.
fn groupby(sc: &SparkContext) -> Vec<(u64, Vec<u64>)> {
    let pairs: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 23, i)).collect();
    let mut groups = sc.parallelize(pairs, 9).group_by_key(9).collect();
    groups.sort_by_key(|(k, _)| *k);
    groups.iter_mut().for_each(|(_, v)| v.sort_unstable());
    groups
}

fn oracle() -> Vec<(u64, Vec<u64>)> {
    let mut groups: Vec<(u64, Vec<u64>)> =
        (0..23u64).map(|k| (k, (0..400u64).filter(|i| i % 23 == k).collect())).collect();
    groups.sort_by_key(|(k, _)| *k);
    groups
}

/// `[start, start + dur)` of the shuffle-read stage in a fault-free run.
fn measure_result_stage(system: System, spec: &ClusterSpec) -> (u64, u64) {
    let cluster = ClusterConfig::paper_layout(spec.len(), chaos_conf());
    let out = system.run(spec, cluster, groupby);
    assert_eq!(out.result, oracle(), "{}: clean run must be correct", system.label());
    let stage = out
        .jobs
        .iter()
        .flat_map(|j| j.stages.iter())
        .find(|s| s.name == "Job0-ResultStage")
        .unwrap_or_else(|| panic!("{}: no Job0-ResultStage", system.label()));
    (stage.start_ns, (stage.end_ns - stage.start_ns).max(1_000))
}

fn run_chaos(
    system: System,
    spec: &ClusterSpec,
    plan: FaultPlan,
) -> workloads::RunOutcome<Vec<(u64, Vec<u64>)>> {
    let cluster = ClusterConfig::paper_layout(spec.len(), chaos_conf());
    system.run_with_chaos(spec, cluster, plan, groupby)
}

/// Cap fault windows well below the request timeout so a timed-out attempt
/// is always re-issued after the outage has cleared.
fn span(dur: u64) -> u64 {
    (2 * dur).clamp(1_000, 100 * MS)
}

#[test]
fn drop_window_on_a_worker_link_is_survived_by_all_systems() {
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        let (start, dur) = measure_result_stage(system, &spec);
        let plan = FaultPlan::seeded(11).drop_link_sym(0, 1, start, span(dur)).build();
        let out = run_chaos(system, &spec, plan);
        assert_eq!(out.result, oracle(), "{}: wrong result under link drop", system.label());
        assert!(out.chaos_dropped() > 0, "{}: the drop window never bit", system.label());
    }
}

#[test]
fn delayed_worker_links_still_yield_correct_results() {
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        let (start, dur) = measure_result_stage(system, &spec);
        let extra = (dur / 2).clamp(1_000, 50 * MS);
        let mut b = FaultPlan::seeded(12);
        for (i, &a) in WORKERS.iter().enumerate() {
            for &c in &WORKERS[i + 1..] {
                b = b.delay_link(a, c, start, span(dur), extra).delay_link(
                    c,
                    a,
                    start,
                    span(dur),
                    extra,
                );
            }
        }
        let out = run_chaos(system, &spec, b.build());
        assert_eq!(out.result, oracle(), "{}: wrong result under link delay", system.label());
        assert!(out.chaos_delayed() > 0, "{}: the delay window never bit", system.label());
    }
}

#[test]
fn link_flap_forces_per_block_retries_on_every_system() {
    // The acceptance bar: a mid-shuffle flap on every worker link completes
    // correctly on all four backends with at least one *observed* per-block
    // retry — asserted through the stage metrics, not incidental.
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        let (start, dur) = measure_result_stage(system, &spec);
        let period = (dur / 3).max(8);
        let down_for = (dur / 6).max(2);
        let mut b = FaultPlan::seeded(13);
        for (i, &a) in WORKERS.iter().enumerate() {
            for &c in &WORKERS[i + 1..] {
                b = b.flap_link(a, c, start, period, down_for, 6);
            }
        }
        let out = run_chaos(system, &spec, b.build());
        assert_eq!(out.result, oracle(), "{}: wrong result under link flap", system.label());
        assert!(out.chaos_dropped() > 0, "{}: the flap never bit", system.label());
        assert!(
            out.fetch_retries() >= 1,
            "{}: flap survived without a single per-block retry (dropped {})",
            system.label(),
            out.chaos_dropped()
        );
    }
}

#[test]
fn data_plane_isolation_of_one_worker_recovers_on_all_systems() {
    // Node 1's links to its worker peers die mid-shuffle while its driver
    // and master links survive — the "crashed data plane" the FetchFailed
    // machinery plus per-block retry must ride out.
    let spec = ClusterSpec::test(5);
    for system in all_systems() {
        let (start, dur) = measure_result_stage(system, &spec);
        let plan = FaultPlan::seeded(14).isolate_among(1, &WORKERS, start, span(dur)).build();
        let out = run_chaos(system, &spec, plan);
        assert_eq!(out.result, oracle(), "{}: wrong result under isolation", system.label());
        assert!(out.chaos_dropped() > 0, "{}: the isolation never bit", system.label());
    }
}

#[test]
fn same_seed_reproduces_the_run_bit_for_bit() {
    let spec = ClusterSpec::test(5);
    let (start, dur) = measure_result_stage(System::Mpi4Spark, &spec);
    let plan = |seed: u64| {
        let mut b = FaultPlan::seeded(seed);
        for (i, &a) in WORKERS.iter().enumerate() {
            for &c in &WORKERS[i + 1..] {
                b = b.flap_link(a, c, start, (dur / 3).max(8), (dur / 6).max(2), 6);
            }
        }
        b.build()
    };
    let fingerprint = |seed: u64| {
        let out = run_chaos(System::Mpi4Spark, &spec, plan(seed));
        let summary =
            (out.total_ns(), out.chaos_dropped(), out.chaos_delayed(), out.fetch_retries());
        (out.result, summary)
    };
    let a = fingerprint(99);
    let b = fingerprint(99);
    assert_eq!(a, b, "same seed must reproduce results, timings, and fault counts exactly");
    assert_ne!(plan(99), plan(100), "different seeds must schedule different fault windows");
}

#[test]
fn mpi_plane_outage_degrades_to_sockets_and_completes() {
    // Fallback-degradation ablation: kill only the MPI software stack on
    // every worker link, permanently, mid-shuffle. The socket plane stays
    // healthy, so after `plane_failure_threshold` consecutive plane-level
    // failures the retry layer must switch the fetch path to the backend's
    // socket fallback plane and finish the job.
    let spec = ClusterSpec::test(5);
    let (start, _) = measure_result_stage(System::Mpi4Spark, &spec);
    let mut b = FaultPlan::seeded(15);
    for (i, &a) in WORKERS.iter().enumerate() {
        for &c in &WORKERS[i + 1..] {
            b = b.drop_link_stack(a, c, start, u64::MAX / 2, "MPI");
        }
    }
    let out = run_chaos(System::Mpi4Spark, &spec, b.build());
    assert_eq!(out.result, oracle(), "job must complete on the socket fallback plane");
    assert!(out.chaos_dropped() > 0, "the MPI-stack outage never bit");
    let threshold = u64::from(chaos_conf().plane_failure_threshold);
    assert!(
        out.fetch_retries() >= threshold,
        "degradation needs >= {threshold} plane failures; saw {} retries",
        out.fetch_retries()
    );
}

/// Randomized-seed smoke run (ignored by default; CI runs it in `--release`
/// with a generated seed). On failure the printed seed replays the exact
/// fault schedule: `CHAOS_SEED=<seed> cargo test --release -p sparklet
/// --test chaos_tests -- --ignored randomized_seed`.
#[test]
#[ignore = "randomized chaos smoke — run explicitly; set CHAOS_SEED to replay"]
fn randomized_seed_chaos_smoke() {
    let seed: u64 =
        std::env::var("CHAOS_SEED").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(0xC0FFEE);
    eprintln!("chaos smoke: CHAOS_SEED={seed}");
    let spec = ClusterSpec::test(5);
    let mut rng = SeededRng::from_seed(seed);
    for system in [System::Vanilla, System::Mpi4Spark] {
        let (start, dur) = measure_result_stage(system, &spec);
        // Seed-derived scenario: flap one worker pair, delay another.
        let pairs = [(0, 1), (0, 2), (1, 2)];
        let flap = pairs[rng.next_range(0, pairs.len() as u64) as usize];
        let slow = pairs[rng.next_range(0, pairs.len() as u64) as usize];
        let plan = FaultPlan::seeded(seed)
            .flap_link(
                flap.0,
                flap.1,
                start,
                (dur / 2).max(8),
                (dur / rng.next_range(3, 8)).max(2),
                rng.next_range(2, 6) as u32,
            )
            .delay_link(slow.0, slow.1, start, span(dur), (dur / 4).max(1_000))
            .build();
        let out = run_chaos(system, &spec, plan);
        assert_eq!(
            out.result,
            oracle(),
            "{}: wrong result; replay with CHAOS_SEED={seed}",
            system.label()
        );
    }
    eprintln!("chaos smoke: seed {seed} survived");
}
