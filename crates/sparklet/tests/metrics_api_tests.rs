//! The registry-backed metrics surface: `StageMetrics` accessors read the
//! merged snapshot, and `JobMetrics::stage_duration` refuses ambiguous
//! fragments instead of silently returning the first match (the old bug:
//! `"ShuffleMapStage"` would quietly pick between a primary run and its
//! `-retry` recomputation).

use sparklet::scheduler::{JobMetrics, StageMetrics};

fn stage(name: &str, start_ns: u64, end_ns: u64) -> StageMetrics {
    StageMetrics {
        name: name.to_string(),
        attempt: 0,
        start_ns,
        end_ns,
        tasks: 1,
        metrics: obs::MetricsSnapshot::default(),
    }
}

fn job(stages: Vec<StageMetrics>) -> JobMetrics {
    JobMetrics { job_id: 0, action: "collect".to_string(), start_ns: 0, end_ns: 100, stages }
}

#[test]
fn unique_fragment_resolves_and_missing_is_none() {
    let j = job(vec![stage("Job0-ShuffleMapStage", 0, 40), stage("Job0-ResultStage", 40, 100)]);
    assert_eq!(j.stage_duration("ResultStage"), Some(60));
    assert_eq!(j.stage_duration("ShuffleMapStage"), Some(40));
    assert_eq!(j.stage_duration("NoSuchStage"), None);
}

#[test]
#[should_panic(expected = "ambiguous stage fragment")]
fn fragment_matching_distinct_stage_names_panics() {
    let j = job(vec![stage("Job0-ShuffleMapStage", 0, 40), stage("Job0-ResultStage", 40, 100)]);
    // "Stage" matches both stages — the old API silently returned the
    // ShuffleMapStage duration here.
    let _ = j.stage_duration("Stage");
}

#[test]
fn identically_named_stage_retries_resolve_to_the_first_run() {
    // A stage retry reruns under its original label; the fragment is not
    // ambiguous (one distinct name) and resolves to the first run.
    let j = job(vec![stage("Job0-ShuffleMapStage", 0, 40), stage("Job0-ShuffleMapStage", 50, 70)]);
    assert_eq!(j.stage_duration("ShuffleMapStage"), Some(40));
}

#[test]
fn stage_accessors_read_the_merged_snapshot() {
    let reg = obs::Registry::new();
    reg.counter(obs::keys::TASK_FETCH_WAIT_NS).add(7);
    reg.counter(obs::keys::TASK_REMOTE_BYTES).add(100);
    reg.counter(obs::keys::TASK_LOCAL_BYTES).add(30);
    reg.counter(obs::keys::TASK_RECORDS_OUT).add(5);
    let mut s = stage("Job0-ResultStage", 0, 10);
    s.metrics = reg.snapshot();
    assert_eq!(s.fetch_wait_ns(), 7);
    assert_eq!(s.remote_bytes(), 100);
    assert_eq!(s.local_bytes(), 30);
    assert_eq!(s.records_out(), 5);
}
