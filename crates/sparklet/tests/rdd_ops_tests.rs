//! Coverage for the extended RDD API: union, distinct, sample,
//! count_by_key, keys/values/map_values, cogroup edge cases, and empty
//! inputs.

use std::sync::Arc;

use fabric::ClusterSpec;
use sparklet::deploy::{simulate, ClusterConfig, ProcessBuilderLauncher};
use sparklet::{NetworkBackend, SparkConf, VanillaBackend};

fn run<R: Send + Sync + 'static>(
    app: impl FnOnce(&sparklet::scheduler::SparkContext) -> R + Send + 'static,
) -> R {
    let spec = ClusterSpec::test(4);
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 1_000;
    let cluster = ClusterConfig::paper_layout(spec.len(), conf);
    let backend: Arc<dyn NetworkBackend> = Arc::new(VanillaBackend::default());
    let (r, _) = simulate(&spec, cluster, backend, Arc::new(ProcessBuilderLauncher), app);
    r
}

#[test]
fn union_concatenates() {
    let mut out = run(|sc| {
        let a = sc.parallelize((0..50u64).collect(), 3);
        let b = sc.parallelize((100..120u64).collect(), 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 5);
        u.collect()
    });
    out.sort_unstable();
    let expect: Vec<u64> = (0..50).chain(100..120).collect();
    assert_eq!(out, expect);
}

#[test]
fn union_through_shuffle() {
    let mut out = run(|sc| {
        let a = sc.parallelize((0..40u64).map(|i| (i % 4, i)).collect(), 3);
        let b = sc.parallelize((0..40u64).map(|i| (i % 4 + 10, i)).collect(), 3);
        a.union(&b).group_by_key(4).count_by_key().iter().map(|(k, _)| *k).collect::<Vec<_>>()
    });
    out.sort_unstable();
    assert_eq!(out.len(), 8); // keys 0..4 and 10..14
}

#[test]
fn distinct_removes_duplicates() {
    let mut out =
        run(|sc| sc.parallelize((0..200u64).map(|i| i % 17).collect(), 6).distinct(4).collect());
    out.sort_unstable();
    assert_eq!(out, (0..17).collect::<Vec<u64>>());
}

#[test]
fn sample_is_deterministic_and_proportional() {
    let (a, b, n) = run(|sc| {
        let data = sc.parallelize((0..2000u64).collect(), 5);
        let a = data.sample(0.3, 42).collect();
        let b = data.sample(0.3, 42).collect();
        let n = data.sample(0.3, 42).count();
        (a, b, n)
    });
    assert_eq!(a, b, "same seed must sample identically");
    assert_eq!(a.len() as u64, n);
    assert!((400..=800).contains(&a.len()), "~30% of 2000, got {}", a.len());
}

#[test]
fn sample_edges() {
    let (zero, all) = run(|sc| {
        let data = sc.parallelize((0..100u64).collect(), 4);
        (data.sample(0.0, 1).count(), data.sample(1.0, 1).count())
    });
    assert_eq!(zero, 0);
    assert_eq!(all, 100);
}

#[test]
fn count_by_key_matches_oracle() {
    let mut out =
        run(|sc| sc.parallelize((0..90u64).map(|i| (i % 9, i)).collect(), 5).count_by_key());
    out.sort_unstable();
    assert_eq!(out, (0..9u64).map(|k| (k, 10u64)).collect::<Vec<_>>());
}

#[test]
fn keys_values_map_values() {
    let (mut keys, mut vals, mut doubled) = run(|sc| {
        let kv = sc.parallelize(vec![(1u64, 10u64), (2, 20), (3, 30)], 2);
        (kv.keys().collect(), kv.values().collect(), kv.map_values(|v| v * 2).collect())
    });
    keys.sort_unstable();
    vals.sort_unstable();
    doubled.sort_unstable();
    assert_eq!(keys, vec![1, 2, 3]);
    assert_eq!(vals, vec![10, 20, 30]);
    assert_eq!(doubled, vec![(1, 20), (2, 40), (3, 60)]);
}

#[test]
fn cogroup_with_missing_keys_on_either_side() {
    let mut out = run(|sc| {
        let left = sc.parallelize(vec![(1u64, 10u64), (2, 20)], 2);
        let right = sc.parallelize(vec![(2u64, 200u64), (3, 300)], 2);
        left.cogroup(&right, 3).collect()
    });
    out.sort_by_key(|(k, _)| *k);
    assert_eq!(out.len(), 3);
    assert_eq!(out[0], (1, (vec![10], vec![])));
    assert_eq!(out[1], (2, (vec![20], vec![200])));
    assert_eq!(out[2], (3, (vec![], vec![300])));
}

#[test]
fn empty_rdd_operations() {
    let (count, grouped, sorted) = run(|sc| {
        let empty = sc.parallelize(Vec::<(u64, u64)>::new(), 3);
        (empty.count(), empty.group_by_key(2).count(), empty.sort_by_key(2).count())
    });
    assert_eq!((count, grouped, sorted), (0, 0, 0));
}

#[test]
fn single_partition_single_record() {
    let out =
        run(|sc| sc.parallelize(vec![(7u64, 1u64)], 1).reduce_by_key(1, |a, b| a + b).collect());
    assert_eq!(out, vec![(7, 1)]);
}

#[test]
fn skewed_keys_all_to_one_partition() {
    // All records share one key: one reduce partition receives everything.
    let out = run(|sc| {
        sc.parallelize((0..500u64).map(|i| (42u64, i)).collect(), 8).group_by_key(8).collect()
    });
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].1.len(), 500);
}
