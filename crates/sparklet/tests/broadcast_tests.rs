//! Broadcast variables end to end: correct values in tasks, one fetch per
//! executor (cached thereafter), and delivery over the StreamResponse path
//! on every transport.

use std::sync::Arc;

use fabric::ClusterSpec;
use sparklet::deploy::{simulate, ClusterConfig, ProcessBuilderLauncher};
use sparklet::{SparkConf, VanillaBackend};

fn conf() -> SparkConf {
    let mut conf = SparkConf::default();
    conf.executor_cores = 4;
    conf.cost.task_overhead_ns = 10_000;
    conf
}

#[test]
fn broadcast_value_reaches_every_task() {
    let spec = ClusterSpec::test(5); // 3 workers
    let cluster = ClusterConfig::paper_layout(spec.len(), conf());
    let (sum, _) = simulate(
        &spec,
        cluster,
        Arc::new(VanillaBackend::default()),
        Arc::new(ProcessBuilderLauncher),
        |sc| {
            let weights = sc.broadcast(vec![2u64, 3, 5], 1 << 20);
            sc.generate(9, |p| vec![p as u64; 10])
                .map_partitions(move |ctx, v| {
                    let w = weights.get(ctx);
                    assert_eq!(*w, vec![2, 5 - 2, 5]);
                    v.into_iter().map(|x| x * w[0]).collect::<Vec<u64>>()
                })
                .reduce(|a, b| a + b)
        },
    );
    // sum over p in 0..9 of 10*p*2 = 2*10*36 = 720.
    assert_eq!(sum, Some(720));
}

#[test]
fn broadcast_fetched_once_per_executor() {
    // 12 tasks over 3 executors using the same broadcast: wall time must
    // reflect ≤3 transfers of the (large) broadcast, not 12. We check by
    // comparing against a run with a tiny broadcast: the time difference
    // must be ~3 transfers' worth, not 12.
    fn run_with(size: u64) -> u64 {
        let spec = ClusterSpec::frontera(5);
        let cluster = ClusterConfig::paper_layout(spec.len(), conf());
        let (_, metrics) = simulate(
            &spec,
            cluster,
            Arc::new(VanillaBackend::default()),
            Arc::new(ProcessBuilderLauncher),
            move |sc| {
                let b = sc.broadcast(7u64, size);
                sc.generate(12, |_| vec![1u64])
                    .map_partitions(move |ctx, v| {
                        assert_eq!(*b.get(ctx), 7);
                        v
                    })
                    .count()
            },
        );
        metrics[0].duration_ns()
    }
    let small = run_with(1 << 10);
    let big = run_with(512 << 20); // 512 MB broadcast
    let delta = big.saturating_sub(small) as f64;
    // One 512MB transfer over sockets ≈ 0.72s serialized per executor; three
    // executors fetch concurrently from the driver's egress → ≈ 3 × 0.72s
    // of serialized driver egress. Twelve fetches would be ≈ 8.6s.
    assert!(delta > 1.0e9, "broadcast transfer not charged: {delta}");
    assert!(delta < 5.0e9, "broadcast fetched per task, not per executor: {delta}");
}

#[test]
fn broadcast_composes_with_shuffles() {
    let spec = ClusterSpec::test(5);
    let cluster = ClusterConfig::paper_layout(spec.len(), conf());
    let (mut out, _) = simulate(
        &spec,
        cluster,
        Arc::new(VanillaBackend::default()),
        Arc::new(ProcessBuilderLauncher),
        |sc| {
            let scale = sc.broadcast(10u64, 4096);
            let pairs: Vec<(u64, u64)> = (0..60u64).map(|i| (i % 6, i)).collect();
            sc.parallelize(pairs, 6)
                .reduce_by_key(4, |a, b| a + b)
                .map_partitions(move |ctx, v| {
                    let s = *scale.get(ctx);
                    v.into_iter().map(|(k, sum)| (k, sum * s)).collect::<Vec<_>>()
                })
                .collect()
        },
    );
    out.sort_unstable();
    for (k, v) in out {
        let expect: u64 = (0..60).filter(|i| i % 6 == k).sum::<u64>() * 10;
        assert_eq!(v, expect);
    }
}
