//! Pluggable network backends: which transport and cost stack each plane
//! (control RPC vs. shuffle) of each process uses.
//!
//! This is the seam the three evaluated systems differ at:
//!
//! * [`VanillaBackend`] — Netty NIO over Java sockets for everything
//!   (Vanilla Spark / "IPoIB" in the paper's figures).
//! * `rdma-spark::RdmaBackend` — sockets for RPC, RDMA verbs for the
//!   shuffle plane (RDMA-Spark's UCR `BlockTransferService`).
//! * `mpi4spark::MpiBackend` — the paper's contribution: Netty with an MPI
//!   transport (Basic or Optimized) on both planes.

use std::any::Any;
use std::sync::Arc;

use fabric::{Net, NodeId};
use netz::{NioTransport, RoutePolicy, RpcHandler, Transport, TransportConf, TransportContext};

use crate::config::SparkConf;

/// What a process is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Cluster master.
    Master,
    /// Worker `i`.
    Worker(usize),
    /// The driver.
    Driver,
    /// Executor `i`.
    Executor(usize),
}

/// Identity handed to the backend when a process builds its networking.
#[derive(Clone)]
pub struct ProcIdentity {
    /// Role in the cluster.
    pub role: Role,
    /// Node the process runs on.
    pub node: NodeId,
    /// Diagnostic name (`worker-3`, `executor-0`).
    pub name: String,
    /// Backend-specific context (e.g. MPI communicator handles injected by
    /// the MPI4Spark launcher). Opaque to sparklet.
    pub ext: Option<Arc<dyn Any + Send + Sync>>,
}

impl ProcIdentity {
    /// Identity without backend extensions.
    pub fn new(role: Role, node: NodeId, name: impl Into<String>) -> Self {
        ProcIdentity { role, node, name: name.into(), ext: None }
    }
}

/// The two networking planes every Spark process runs (paper §II-C): the
/// control-plane RPC environment and the shuffle/block data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plane {
    /// Control-plane RPC environment (driver↔master↔workers↔executors).
    Rpc,
    /// Shuffle/block-transfer data plane between executors.
    Shuffle,
}

/// A backend's declaration for one plane: the cost-model configuration, the
/// transport that installs the plane's pipeline handlers, and the
/// body-routing policy the transport applies (paper §VI-E). This is the one
/// place a backend states what a plane runs on — `TransportContext`
/// construction is derived from it instead of duplicated per backend.
pub struct PlaneDesc {
    /// Timeouts and cost stack for the plane.
    pub conf: TransportConf,
    /// Transport wiring the plane's channels.
    pub transport: Arc<dyn Transport>,
    /// Which message types the transport diverts out-of-band.
    pub route: RoutePolicy,
}

/// Factory for each process's transport contexts.
///
/// Backends implement [`NetworkBackend::plane`] only; context construction
/// is provided. This is the seam the three evaluated systems differ at —
/// each declares per-plane stacks and routing in one method.
pub trait NetworkBackend: Send + Sync + 'static {
    /// Name used in reports (`vanilla`, `rdma`, `mpi-optimized`, ...).
    fn name(&self) -> &'static str;

    /// Declare `plane`'s stack for the process `identity`.
    fn plane(&self, plane: Plane, identity: &ProcIdentity) -> PlaneDesc;

    /// Build the transport context for `plane` from its descriptor.
    fn context(
        &self,
        plane: Plane,
        identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> TransportContext {
        let desc = self.plane(plane, identity);
        TransportContext::with_transport(net.clone(), desc.conf, handler, desc.transport)
    }

    /// Transport context for the control-plane RPC environment.
    fn rpc_context(
        &self,
        identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> TransportContext {
        self.context(Plane::Rpc, identity, net, handler)
    }

    /// Transport context for an executor's shuffle/block service plane.
    fn shuffle_context(
        &self,
        identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> TransportContext {
        self.context(Plane::Shuffle, identity, net, handler)
    }

    /// Degraded-mode descriptor for `plane`, if the backend has one.
    ///
    /// Backends whose primary plane runs an accelerated transport
    /// (MPI, RDMA verbs) can declare a plain-sockets descriptor here; the
    /// retry layer switches to it after
    /// [`SparkConf::plane_failure_threshold`](crate::config::SparkConf)
    /// consecutive plane-level failures. `None` (the default) means the
    /// plane has no separate fallback — Vanilla already runs on sockets.
    fn fallback_plane(&self, _plane: Plane, _identity: &ProcIdentity) -> Option<PlaneDesc> {
        None
    }

    /// Transport context for the shuffle plane's fallback descriptor, when
    /// one exists.
    fn fallback_shuffle_context(
        &self,
        identity: &ProcIdentity,
        net: &Net,
        handler: Arc<dyn RpcHandler>,
    ) -> Option<TransportContext> {
        let desc = self.fallback_plane(Plane::Shuffle, identity)?;
        Some(TransportContext::with_transport(net.clone(), desc.conf, handler, desc.transport))
    }
}

/// Vanilla Spark: Netty NIO over Java sockets on both planes.
pub struct VanillaBackend {
    conf: TransportConf,
}

impl Default for VanillaBackend {
    fn default() -> Self {
        VanillaBackend { conf: TransportConf::default_sockets() }
    }
}

impl VanillaBackend {
    /// Backend honoring the engine configuration's timeouts.
    pub fn with_conf(spark: &SparkConf) -> Self {
        let mut conf = TransportConf::default_sockets();
        conf.request_timeout_ns = spark.request_timeout_ns;
        conf.connect_timeout_ns = spark.connect_timeout_ns;
        VanillaBackend { conf }
    }
}

impl NetworkBackend for VanillaBackend {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn plane(&self, _plane: Plane, _identity: &ProcIdentity) -> PlaneDesc {
        // Same socket stack on both planes; header and body share the
        // socket frame, so nothing is routed out-of-band.
        PlaneDesc { conf: self.conf, transport: Arc::new(NioTransport), route: RoutePolicy::NONE }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_uses_socket_stack_on_both_planes() {
        let backend = VanillaBackend::default();
        assert_eq!(backend.name(), "vanilla");
        let id = ProcIdentity::new(Role::Driver, 0, "driver");
        for plane in [Plane::Rpc, Plane::Shuffle] {
            let desc = backend.plane(plane, &id);
            assert_eq!(desc.conf.stack.name, "JavaSockets/IPoIB");
            assert_eq!(desc.route, RoutePolicy::NONE);
        }
    }

    #[test]
    fn identity_constructor() {
        let id = ProcIdentity::new(Role::Executor(3), 2, "executor-3");
        assert_eq!(id.role, Role::Executor(3));
        assert_eq!(id.node, 2);
        assert!(id.ext.is_none());
    }
}
