//! Partial / approximate results: evaluators that fold per-partition task
//! outputs as they complete, with normal-approximation confidence bounds.
//!
//! The port of Spark's `partial/` package (`ApproximateEvaluator`,
//! `PartialResult`, `BoundedDouble`) onto the deterministic scheduler: an
//! approximate action submits its job with a [`JobOptions`] evaluator
//! attached, the stage event loop feeds every completed result partition
//! into [`ApproximateEvaluator::merge`], and a virtual-clock deadline
//! ([`simt::DeadlineTimer`]) bounds the wait — at expiry the driver gets
//! the evaluator's best current answer plus `{partitions_seen, total,
//! confidence}` instead of blocking on the last straggler.
//!
//! [`JobOptions`]: crate::rdd::JobOptions
//!
//! ## Estimator
//!
//! Partitions are modeled as a finite population of `N` per-partition
//! aggregates of which `n` have been observed. The total estimate is
//! `N·x̄` with variance `N²·(1 − n/N)·s²/n` (simple random sampling with
//! finite-population correction) and a two-sided normal quantile at the
//! requested confidence. Spark uses a Poisson model for counts and
//! Student's t for means; the normal approximation keeps the math
//! dependency-free and is asymptotically the same. The completed
//! partitions are really the *fastest* ones, not a random sample — under a
//! uniform workload the bias is negligible, under skew the interval is
//! honest about `partitions_seen` so callers can judge coverage.
//!
//! Everything here is pure host-side arithmetic: merging charges no
//! virtual time, so enabling partial evaluation never perturbs simulated
//! timings (the acceptance bar shared with tracing and AQE-off).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::rpc::AnyMsg;

/// A `(mean, confidence, low, high)` interval — Spark's `BoundedDouble`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedDouble {
    /// Point estimate.
    pub mean: f64,
    /// Confidence level the interval was built at (e.g. `0.95`).
    pub confidence: f64,
    /// Lower bound.
    pub low: f64,
    /// Upper bound.
    pub high: f64,
}

impl BoundedDouble {
    /// An exact value: degenerate interval at full confidence.
    pub fn exact(v: f64) -> Self {
        BoundedDouble { mean: v, confidence: 1.0, low: v, high: v }
    }

    /// True when `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.low <= x && x <= self.high
    }

    /// Interval width (`high - low`; infinite for the zero-information
    /// interval).
    pub fn width(&self) -> f64 {
        self.high - self.low
    }
}

impl std::fmt::Display for BoundedDouble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.3}, {:.3}] (mean {:.3}, {:.0}%)",
            self.low,
            self.high,
            self.mean,
            self.confidence * 100.0
        )
    }
}

/// An action's answer, possibly computed from a subset of partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialResult<R> {
    /// The (possibly approximate) answer.
    pub value: R,
    /// Result partitions folded into the answer.
    pub partitions_seen: usize,
    /// Result partitions the job would compute in full.
    pub total_partitions: usize,
    /// True when every partition was seen — the answer is exact.
    pub is_final: bool,
}

impl<R> PartialResult<R> {
    /// Fraction of the reduce space the answer covers.
    pub fn coverage(&self) -> f64 {
        if self.total_partitions == 0 {
            1.0
        } else {
            self.partitions_seen as f64 / self.total_partitions as f64
        }
    }
}

/// Folds per-partition task results (`U`) into a running approximate
/// answer (`R`). Merge order is completion order — deterministic on the
/// virtual clock — and each result partition is merged exactly once (the
/// scheduler's first-finish dedup runs first).
pub trait ApproximateEvaluator<U, R>: Send + 'static {
    /// Fold partition `part`'s task output.
    fn merge(&mut self, part: usize, update: &U);
    /// Best answer given that `seen` of `total` partitions were merged.
    fn current_result(&self, seen: usize, total: usize) -> R;
}

// --- normal quantile ---------------------------------------------------------

/// Two-sided standard-normal quantile for a confidence level: the `z` with
/// `P(|Z| ≤ z) = confidence`. Acklam's rational approximation of the
/// inverse CDF (relative error < 1.15e-9) — dependency-free and
/// deterministic.
pub fn normal_quantile_two_sided(confidence: f64) -> f64 {
    assert!((0.0..1.0).contains(&confidence), "confidence must be in [0, 1), got {confidence}");
    // P(Z <= z) = (1 + confidence) / 2.
    inverse_normal_cdf((1.0 + confidence) / 2.0)
}

fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// Finite-population total estimate from `n` observed per-partition
/// aggregates out of `N`: `(mean, half_width)` of the confidence interval
/// around `N·x̄`. Returns `None` when no interval can be formed (`n < 2`).
fn total_estimate(values: &[f64], total: usize, z: f64) -> Option<(f64, f64)> {
    let n = values.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let big_n = total as f64;
    let mean = values.iter().sum::<f64>() / nf;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (nf - 1.0);
    let fpc = 1.0 - nf / big_n;
    let est_var = big_n * big_n * fpc.max(0.0) * var / nf;
    Some((big_n * mean, z * est_var.sqrt()))
}

// --- evaluators --------------------------------------------------------------

/// Approximate `count()`: tasks emit `u64` partition counts.
pub struct CountEvaluator {
    confidence: f64,
    counts: Vec<f64>,
}

impl CountEvaluator {
    /// New evaluator at `confidence`.
    pub fn new(confidence: f64) -> Self {
        CountEvaluator { confidence, counts: Vec::new() }
    }
}

impl ApproximateEvaluator<u64, BoundedDouble> for CountEvaluator {
    fn merge(&mut self, _part: usize, update: &u64) {
        self.counts.push(*update as f64);
    }

    fn current_result(&self, seen: usize, total: usize) -> BoundedDouble {
        debug_assert_eq!(seen, self.counts.len());
        let observed: f64 = self.counts.iter().sum();
        if seen >= total {
            return BoundedDouble::exact(observed);
        }
        let z = normal_quantile_two_sided(self.confidence);
        match total_estimate(&self.counts, total, z) {
            Some((mean, half)) => BoundedDouble {
                mean,
                confidence: self.confidence,
                // Counts are monotone: the truth is at least what was seen.
                low: (mean - half).max(observed),
                high: mean + half,
            },
            // Zero or one partition: no variance estimate, no upper bound.
            None => BoundedDouble {
                mean: if seen == 0 { 0.0 } else { observed * total as f64 / seen as f64 },
                confidence: 0.0,
                low: observed,
                high: f64::INFINITY,
            },
        }
    }
}

/// Numeric projection to `f64` for `sum_approx`/`mean_approx` (the std
/// `Into<f64>` impls skip `u64`/`i64`, so the engine carries its own).
/// Lossy above 2^53, like Spark's `DoubleRDDFunctions`.
pub trait AsF64 {
    /// The record's numeric value.
    fn as_f64(&self) -> f64;
}

macro_rules! impl_as_f64 {
    ($($t:ty),*) => {$(
        impl AsF64 for $t {
            fn as_f64(&self) -> f64 {
                *self as f64
            }
        }
    )*};
}
impl_as_f64!(u8, u32, u64, i64, f64);

/// Per-partition numeric summary shipped by `sum_approx` / `mean_approx`
/// tasks: enough to bound both the total and the mean.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stat {
    /// Record count.
    pub n: u64,
    /// Sum of the projected values.
    pub sum: f64,
    /// Sum of squares of the projected values.
    pub sum_sq: f64,
}

impl Stat {
    /// Summarize one partition's projected values.
    pub fn of(values: impl Iterator<Item = f64>) -> Stat {
        let mut s = Stat::default();
        for v in values {
            s.n += 1;
            s.sum += v;
            s.sum_sq += v * v;
        }
        s
    }
}

/// Approximate `sum()`: finite-population estimate over per-partition sums.
pub struct SumEvaluator {
    confidence: f64,
    sums: Vec<f64>,
}

impl SumEvaluator {
    /// New evaluator at `confidence`.
    pub fn new(confidence: f64) -> Self {
        SumEvaluator { confidence, sums: Vec::new() }
    }
}

impl ApproximateEvaluator<Stat, BoundedDouble> for SumEvaluator {
    fn merge(&mut self, _part: usize, update: &Stat) {
        self.sums.push(update.sum);
    }

    fn current_result(&self, seen: usize, total: usize) -> BoundedDouble {
        debug_assert_eq!(seen, self.sums.len());
        let observed: f64 = self.sums.iter().sum();
        if seen >= total {
            return BoundedDouble::exact(observed);
        }
        let z = normal_quantile_two_sided(self.confidence);
        match total_estimate(&self.sums, total, z) {
            Some((mean, half)) => BoundedDouble {
                mean,
                confidence: self.confidence,
                low: mean - half,
                high: mean + half,
            },
            None => BoundedDouble {
                mean: if seen == 0 { 0.0 } else { observed * total as f64 / seen as f64 },
                confidence: 0.0,
                low: f64::NEG_INFINITY,
                high: f64::INFINITY,
            },
        }
    }
}

/// Approximate `mean()`: pooled element-level mean with a normal interval
/// on the standard error (`s/√n`).
pub struct MeanEvaluator {
    confidence: f64,
    pooled: Stat,
}

impl MeanEvaluator {
    /// New evaluator at `confidence`.
    pub fn new(confidence: f64) -> Self {
        MeanEvaluator { confidence, pooled: Stat::default() }
    }
}

impl ApproximateEvaluator<Stat, BoundedDouble> for MeanEvaluator {
    fn merge(&mut self, _part: usize, update: &Stat) {
        self.pooled.n += update.n;
        self.pooled.sum += update.sum;
        self.pooled.sum_sq += update.sum_sq;
    }

    fn current_result(&self, seen: usize, total: usize) -> BoundedDouble {
        let n = self.pooled.n as f64;
        if self.pooled.n < 2 {
            return BoundedDouble {
                mean: if self.pooled.n == 0 { f64::NAN } else { self.pooled.sum },
                confidence: 0.0,
                low: f64::NEG_INFINITY,
                high: f64::INFINITY,
            };
        }
        let mean = self.pooled.sum / n;
        if seen >= total {
            return BoundedDouble::exact(mean);
        }
        let var =
            ((self.pooled.sum_sq - self.pooled.sum * self.pooled.sum / n) / (n - 1.0)).max(0.0);
        let se = (var / n).sqrt();
        let half = normal_quantile_two_sided(self.confidence) * se;
        BoundedDouble { mean, confidence: self.confidence, low: mean - half, high: mean + half }
    }
}

/// Per-key accumulator: counts observed per partition, plus how many seen
/// partitions contained the key at all (absent partitions contribute zero
/// to the key's per-partition distribution).
#[derive(Debug, Clone, Copy, Default)]
struct KeyStat {
    sum: f64,
    sum_sq: f64,
}

/// Approximate `count_by_key()`: tasks emit per-partition key histograms
/// (`Vec<(K, u64)>`); each key's total is estimated like [`CountEvaluator`]
/// with the key's per-partition counts (zero where absent) as the sample.
pub struct GroupedCountEvaluator<K: Ord + Clone + Send + 'static> {
    confidence: f64,
    by_key: BTreeMap<K, KeyStat>,
}

impl<K: Ord + Clone + Send + 'static> GroupedCountEvaluator<K> {
    /// New evaluator at `confidence`.
    pub fn new(confidence: f64) -> Self {
        GroupedCountEvaluator { confidence, by_key: BTreeMap::new() }
    }
}

impl<K: Ord + Clone + Send + 'static> ApproximateEvaluator<Vec<(K, u64)>, Vec<(K, BoundedDouble)>>
    for GroupedCountEvaluator<K>
{
    fn merge(&mut self, _part: usize, update: &Vec<(K, u64)>) {
        for (k, c) in update {
            let s = self.by_key.entry(k.clone()).or_default();
            let c = *c as f64;
            s.sum += c;
            s.sum_sq += c * c;
        }
    }

    fn current_result(&self, seen: usize, total: usize) -> Vec<(K, BoundedDouble)> {
        let z = normal_quantile_two_sided(self.confidence);
        self.by_key
            .iter()
            .map(|(k, s)| {
                if seen >= total {
                    return (k.clone(), BoundedDouble::exact(s.sum));
                }
                let b = if seen < 2 {
                    BoundedDouble { mean: s.sum, confidence: 0.0, low: s.sum, high: f64::INFINITY }
                } else {
                    // Sample of `seen` per-partition counts for this key,
                    // zeros included for partitions that lacked it.
                    let nf = seen as f64;
                    let big_n = total as f64;
                    let mean = s.sum / nf;
                    let var = ((s.sum_sq - s.sum * s.sum / nf) / (nf - 1.0)).max(0.0);
                    let est = big_n * mean;
                    let half = z * (big_n * big_n * (1.0 - nf / big_n).max(0.0) * var / nf).sqrt();
                    BoundedDouble {
                        mean: est,
                        confidence: self.confidence,
                        low: (est - half).max(s.sum),
                        high: est + half,
                    }
                };
                (k.clone(), b)
            })
            .collect()
    }
}

// --- type erasure ------------------------------------------------------------

/// Object-safe evaluator the scheduler folds into: `U` and `R` are erased
/// behind [`AnyMsg`] downcasts so one seam serves every action.
pub trait ErasedEvaluator: Send + 'static {
    /// Fold partition `part`'s result-task output.
    fn merge(&mut self, part: usize, result: &AnyMsg);
    /// Best current answer as an [`AnyMsg`] (downcast to the action's `R`).
    fn current(&self, seen: usize, total: usize) -> AnyMsg;
}

/// Wraps a typed [`ApproximateEvaluator`] for the scheduler's erased seam.
pub struct Erased<U, R, E> {
    eval: E,
    _marker: std::marker::PhantomData<fn(U) -> R>,
}

impl<U, R, E> Erased<U, R, E>
where
    U: Send + Sync + 'static,
    R: Send + Sync + 'static,
    E: ApproximateEvaluator<U, R>,
{
    /// Erase `eval` into the scheduler's boxed seam type.
    pub fn boxed(eval: E) -> Box<dyn ErasedEvaluator> {
        Box::new(Erased { eval, _marker: std::marker::PhantomData })
    }
}

impl<U, R, E> ErasedEvaluator for Erased<U, R, E>
where
    U: Send + Sync + 'static,
    R: Send + Sync + 'static,
    E: ApproximateEvaluator<U, R>,
{
    fn merge(&mut self, part: usize, result: &AnyMsg) {
        let u = result.downcast_ref::<U>().expect("result type matches the evaluator's input");
        self.eval.merge(part, u);
    }

    fn current(&self, seen: usize, total: usize) -> AnyMsg {
        Arc::new(self.eval.current_result(seen, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_matches_known_values() {
        // z_{0.975} = 1.959964, z_{0.995} = 2.575829.
        assert!((normal_quantile_two_sided(0.95) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile_two_sided(0.99) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile_two_sided(0.5) - 0.674490).abs() < 1e-4);
        // Tail branch of the rational approximation.
        assert!((inverse_normal_cdf(0.01) + 2.326348).abs() < 1e-4);
    }

    #[test]
    fn count_evaluator_exact_when_complete() {
        let mut e = CountEvaluator::new(0.95);
        for p in 0..4 {
            e.merge(p, &100u64);
        }
        let r = e.current_result(4, 4);
        assert_eq!(r, BoundedDouble::exact(400.0));
        assert!(r.contains(400.0));
    }

    #[test]
    fn count_evaluator_interval_contains_truth_for_uniform_counts() {
        let mut e = CountEvaluator::new(0.95);
        // 6 of 10 partitions seen, ~100 records each; truth = 1000.
        for (p, c) in [98u64, 103, 99, 101, 97, 102].iter().enumerate() {
            e.merge(p, c);
        }
        let r = e.current_result(6, 10);
        assert!(!r.is_nan_interval());
        assert!(r.contains(1000.0), "interval {r} must contain 1000");
        assert!(r.low >= 600.0 - 1e-9, "lower bound at least the observed count");
        assert!(r.width() < 200.0, "uniform counts give a tight interval, got {r}");
    }

    impl BoundedDouble {
        fn is_nan_interval(&self) -> bool {
            self.mean.is_nan() || self.low.is_nan() || self.high.is_nan()
        }
    }

    #[test]
    fn count_evaluator_zero_information() {
        let e = CountEvaluator::new(0.95);
        let r = e.current_result(0, 8);
        assert_eq!(r.low, 0.0);
        assert_eq!(r.high, f64::INFINITY);
        assert_eq!(r.confidence, 0.0);
    }

    #[test]
    fn sum_evaluator_brackets_truth() {
        let mut e = SumEvaluator::new(0.95);
        let parts = [10.0, 12.0, 9.5, 11.0, 10.5, 9.0, 11.5, 10.0];
        for (p, s) in parts.iter().take(5).enumerate() {
            e.merge(p, &Stat { n: 4, sum: *s, sum_sq: 0.0 });
        }
        let truth: f64 = parts.iter().sum();
        let r = e.current_result(5, 8);
        assert!(r.contains(truth), "{r} should contain {truth}");
        // Complete fold collapses to the exact sum.
        for (p, s) in parts.iter().enumerate().skip(5) {
            e.merge(p, &Stat { n: 4, sum: *s, sum_sq: 0.0 });
        }
        assert_eq!(e.current_result(8, 8), BoundedDouble::exact(truth));
    }

    #[test]
    fn mean_evaluator_pools_elements() {
        let mut e = MeanEvaluator::new(0.95);
        e.merge(0, &Stat::of([1.0, 2.0, 3.0].into_iter()));
        e.merge(1, &Stat::of([2.0, 3.0, 4.0].into_iter()));
        let r = e.current_result(2, 4);
        assert!((r.mean - 2.5).abs() < 1e-12);
        assert!(r.contains(2.5));
        assert!(r.low > 1.0 && r.high < 4.0);
        let exact = e.current_result(4, 4);
        assert_eq!(exact, BoundedDouble::exact(2.5));
    }

    #[test]
    fn grouped_count_scales_per_key() {
        let mut e: GroupedCountEvaluator<u64> = GroupedCountEvaluator::new(0.95);
        e.merge(0, &vec![(1u64, 10u64), (2, 5)]);
        e.merge(1, &vec![(1u64, 12u64), (2, 4)]);
        e.merge(2, &vec![(1u64, 11u64), (2, 6)]);
        let r = e.current_result(3, 6);
        let k1 = r.iter().find(|(k, _)| *k == 1).unwrap().1;
        // 33 seen over half the partitions: estimate ~66.
        assert!((k1.mean - 66.0).abs() < 1e-9);
        assert!(k1.contains(66.0));
        let done = e.current_result(6, 6);
        assert_eq!(done.iter().find(|(k, _)| *k == 1).unwrap().1, BoundedDouble::exact(33.0));
    }

    #[test]
    fn erased_roundtrip() {
        let mut e = Erased::boxed(CountEvaluator::new(0.9));
        let msg: AnyMsg = Arc::new(7u64);
        e.merge(0, &msg);
        let msg2: AnyMsg = Arc::new(9u64);
        e.merge(1, &msg2);
        let out = e.current(2, 2);
        let b = out.downcast_ref::<BoundedDouble>().unwrap();
        assert_eq!(*b, BoundedDouble::exact(16.0));
    }
}
