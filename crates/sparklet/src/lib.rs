//! # sparklet — an in-memory Big Data engine (Apache Spark analog)
//!
//! The substrate MPI4Spark modifies. Reproduces the Spark machinery the
//! paper's evaluation exercises:
//!
//! * **RDDs** with narrow (map/filter/flatMap) and wide (groupByKey,
//!   reduceByKey, sortByKey, repartition, cogroup/join) dependencies, plus
//!   caching — see [`rdd`].
//! * **DAG scheduling** into `ShuffleMapStage`s and `ResultStage`s with
//!   per-stage timing breakdowns matching the paper's Fig. 10/11 reporting
//!   (`Job0-ResultStage` datagen, `Job1-ShuffleMapStage` shuffle write,
//!   `Job1-ResultStage` shuffle read) — see [`scheduler`].
//! * **The shuffle**: sort-based writer, `MapOutputTracker`,
//!   `ShuffleBlockFetcherIterator` with `maxBytesInFlight` batching, and a
//!   pluggable [`transfer::BlockTransferService`] over netz — the exact
//!   message flow of the paper's Fig. 4.
//! * **Deployment**: master / worker / executor / driver processes over an
//!   RPC environment, with pluggable [`net_backend::NetworkBackend`]
//!   (which stack the control plane and shuffle plane use) and
//!   [`deploy::ExecutorLauncher`] (how workers fork executors — the seam
//!   where MPI4Spark substitutes DPM for `ProcessBuilder`, paper §V).
//!
//! Simulation shortcuts (documented in `DESIGN.md`): processes share one
//! address space, so task closures travel as `Arc`s and control-plane
//! messages as typed values with declared wire sizes; data-plane payloads
//! use real encoded bytes with independently scalable *virtual* sizes.

pub mod aqe;
pub mod broadcast;
pub mod config;
pub mod data;
pub mod deploy;
pub mod net_backend;
pub mod partial;
pub mod rdd;
pub mod rpc;
pub mod scheduler;
pub mod shuffle;
pub mod storage;
pub mod task;
pub mod transfer;

pub use broadcast::Broadcast;
pub use config::{AqeConf, CostModel, PartialConf, SparkConf, SpeculationConf};
pub use data::{Blob, Element};
pub use deploy::{ClusterConfig, ExecutorLauncher, ProcessBuilderLauncher};
pub use net_backend::{NetworkBackend, Plane, PlaneDesc, ProcIdentity, Role, VanillaBackend};
pub use partial::{
    ApproximateEvaluator, AsF64, BoundedDouble, CountEvaluator, GroupedCountEvaluator,
    MeanEvaluator, PartialResult, SumEvaluator,
};
pub use rdd::{JobHandle, JobOptions, JobOutcome, Rdd};
pub use scheduler::{JobMetrics, StageMetrics};
