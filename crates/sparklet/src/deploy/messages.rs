//! Control-plane message types between deploy processes.

use fabric::{NodeId, PortAddr};

/// Worker → master registration (ask; reply `bool`).
pub struct RegisterWorker {
    /// Worker index.
    pub worker_id: usize,
    /// Node the worker runs on.
    pub node: NodeId,
    /// Address of the worker's RPC environment.
    pub rpc_addr: PortAddr,
}

/// Driver → master application registration (ask; reply [`RegisteredApp`]).
pub struct RegisterApp {
    /// Application name.
    pub name: String,
    /// Address of the driver's RPC environment (scheduler + tracker).
    pub driver_sched_addr: PortAddr,
    /// Task slots per executor.
    pub executor_cores: u32,
    /// Executor memory (GiB).
    pub executor_mem_gb: u32,
    /// Virtual jar size executors must fetch before starting.
    pub jar_bytes: u64,
}

/// Master's reply to [`RegisterApp`]. `executors == 0` means "not all
/// workers have registered yet; retry".
#[derive(Debug, Clone, Copy)]
pub struct RegisteredApp {
    /// Assigned application id.
    pub app_id: u32,
    /// Executors being launched (= registered workers), 0 when not ready.
    pub executors: usize,
}

/// Master → worker executor launch command (one-way).
pub struct LaunchExecutorCmd {
    /// The executor to launch.
    pub spec: ExecutorSpec,
}

/// Everything an executor process needs to start.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorSpec {
    /// Executor id (== worker index in this deployment).
    pub exec_id: usize,
    /// Owning application.
    pub app_id: u32,
    /// Driver RPC address (scheduler + map output tracker).
    pub driver_sched_addr: PortAddr,
    /// Task slots.
    pub cores: u32,
    /// Memory (GiB) for the block manager.
    pub mem_gb: u32,
    /// Virtual size of the application jar the executor must fetch from the
    /// driver before starting (served via `StreamRequest`/`StreamResponse`,
    /// paper §VI-E: "StreamResponse ... is used to communicate metadata such
    /// as jar dependencies to the worker nodes").
    pub jar_bytes: u64,
}

/// Driver → master: stop workers and master (one-way).
pub struct StopCluster;

/// Master → worker: stop (one-way).
pub struct StopWorker;
