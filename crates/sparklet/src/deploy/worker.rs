//! The worker process: registers with the master and launches executors on
//! command through the configured [`crate::deploy::ExecutorLauncher`].

use std::sync::Arc;

use fabric::{Net, NodeId, PortAddr};
use simt::sync::Notify;

use crate::config::SparkConf;
use crate::deploy::executor::{executor_main, ExecutorArgs};
use crate::deploy::master::MASTER_PORT;
use crate::deploy::messages::*;
use crate::deploy::ExecutorLauncher;
use crate::net_backend::{NetworkBackend, ProcIdentity, Role};
use crate::rpc::{AnyMsg, ReplyFn, RpcEndpoint, RpcEnv};

/// Arguments for [`worker_main`].
pub struct WorkerArgs {
    /// The fabric.
    pub net: Net,
    /// Node to run on.
    pub node: NodeId,
    /// Worker index.
    pub index: usize,
    /// Node hosting the master.
    pub master_node: NodeId,
    /// Network backend.
    pub backend: Arc<dyn NetworkBackend>,
    /// Executor launch strategy.
    pub launcher: Arc<dyn ExecutorLauncher>,
    /// Engine configuration (handed to executors).
    pub conf: SparkConf,
    /// Backend extension (MPI handles under MPI4Spark).
    pub ext: Option<Arc<dyn std::any::Any + Send + Sync>>,
}

struct WorkerEndpoint {
    net: Net,
    node: NodeId,
    index: usize,
    backend: Arc<dyn NetworkBackend>,
    launcher: Arc<dyn ExecutorLauncher>,
    conf: SparkConf,
    stop: Notify,
}

impl RpcEndpoint for WorkerEndpoint {
    fn receive(&self, msg: AnyMsg, _reply: Option<ReplyFn>) {
        if let Ok(cmd) = msg.clone().downcast::<LaunchExecutorCmd>() {
            let spec = cmd.spec;
            let args = ExecutorArgs {
                net: self.net.clone(),
                node: self.node,
                spec,
                backend: self.backend.clone(),
                conf: self.conf,
            };
            let main: crate::deploy::ExecutorMain = Box::new(move |ext| executor_main(args, ext));
            // May block coordinating with other workers (DPM allgather +
            // collective spawn under MPI4Spark, §V) — safe on this
            // endpoint's own dispatcher thread.
            self.launcher.launch(self.index, self.node, spec.exec_id, main);
            return;
        }
        if msg.downcast::<StopWorker>().is_ok() {
            self.stop.notify();
        }
    }
}

/// Worker process body.
pub fn worker_main(args: WorkerArgs) {
    let identity = ProcIdentity {
        role: Role::Worker(args.index),
        node: args.node,
        name: format!("worker-{}", args.index),
        ext: args.ext,
    };
    let env = RpcEnv::new(&args.net, &identity, &args.backend, None);
    let stop = Notify::new();
    let ep = Arc::new(WorkerEndpoint {
        net: args.net.clone(),
        node: args.node,
        index: args.index,
        backend: args.backend.clone(),
        launcher: args.launcher.clone(),
        conf: args.conf,
        stop: stop.clone(),
    });
    env.register("Worker", ep);

    // Register with the master, retrying while it comes up.
    let master_ref =
        env.endpoint_ref(PortAddr { node: args.master_node, port: MASTER_PORT }, "Master");
    loop {
        let r = master_ref.ask::<bool>(RegisterWorker {
            worker_id: args.index,
            node: args.node,
            rpc_addr: env.addr(),
        });
        if matches!(r.as_deref(), Ok(true)) {
            break;
        }
        simt::sleep(simt::time::millis(10));
    }

    stop.wait();
    env.shutdown();
}
