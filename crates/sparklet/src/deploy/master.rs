//! The cluster master process.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use fabric::{Net, NodeId};
use parking_lot::Mutex;
use simt::sync::Notify;

use crate::deploy::messages::*;
use crate::net_backend::{NetworkBackend, ProcIdentity, Role};
use crate::rpc::{AnyMsg, ReplyFn, RpcEndpoint, RpcEnv, RpcRef};

/// Well-known master RPC port (Spark's 7077).
pub const MASTER_PORT: u64 = 7077;

/// Arguments for [`master_main`].
pub struct MasterArgs {
    /// The fabric.
    pub net: Net,
    /// Node to run on.
    pub node: NodeId,
    /// Network backend.
    pub backend: Arc<dyn NetworkBackend>,
    /// Workers the master waits for before accepting applications.
    pub expected_workers: usize,
    /// Backend extension (MPI handles under MPI4Spark).
    pub ext: Option<Arc<dyn std::any::Any + Send + Sync>>,
}

#[derive(Clone)]
struct WorkerHandle {
    rpc: RpcRef,
}

struct MasterEndpoint {
    env: Arc<RpcEnv>,
    workers: Mutex<Vec<WorkerHandle>>,
    expected: usize,
    next_app: AtomicU32,
    stop: Notify,
}

impl RpcEndpoint for MasterEndpoint {
    fn receive(&self, msg: AnyMsg, reply: Option<ReplyFn>) {
        if let Ok(reg) = msg.clone().downcast::<RegisterWorker>() {
            let rpc = self.env.endpoint_ref(reg.rpc_addr, "Worker");
            self.workers.lock().push(WorkerHandle { rpc });
            if let Some(reply) = reply {
                reply(Arc::new(true));
            }
            return;
        }
        if let Ok(app) = msg.clone().downcast::<RegisterApp>() {
            // Snapshot, then send launch commands with the lock released:
            // each send blocks on the virtual clock, and a late
            // `RegisterWorker` must not wedge against a held guard.
            let workers = self.workers.lock().clone();
            if workers.len() < self.expected {
                if let Some(reply) = reply {
                    reply(Arc::new(RegisteredApp { app_id: 0, executors: 0 }));
                }
                return;
            }
            let app_id = self.next_app.fetch_add(1, Ordering::Relaxed);
            for (i, w) in workers.iter().enumerate() {
                let spec = ExecutorSpec {
                    exec_id: i,
                    app_id,
                    driver_sched_addr: app.driver_sched_addr,
                    cores: app.executor_cores,
                    mem_gb: app.executor_mem_gb,
                    jar_bytes: app.jar_bytes,
                };
                let _ = w.rpc.send(LaunchExecutorCmd { spec });
            }
            if let Some(reply) = reply {
                reply(Arc::new(RegisteredApp { app_id, executors: workers.len() }));
            }
            return;
        }
        if msg.downcast::<StopCluster>().is_ok() {
            let workers = self.workers.lock().clone();
            for w in &workers {
                let _ = w.rpc.send(StopWorker);
            }
            self.stop.notify();
        }
    }
}

/// Master process body: serve registrations until stopped.
pub fn master_main(args: MasterArgs) {
    let identity =
        ProcIdentity { role: Role::Master, node: args.node, name: "master".into(), ext: args.ext };
    let env = RpcEnv::new(&args.net, &identity, &args.backend, Some(MASTER_PORT));
    let stop = Notify::new();
    let ep = Arc::new(MasterEndpoint {
        env: env.clone(),
        workers: Mutex::new(Vec::new()),
        expected: args.expected_workers,
        next_app: AtomicU32::new(1),
        stop: stop.clone(),
    });
    env.register("Master", ep);
    stop.wait();
    env.shutdown();
}
