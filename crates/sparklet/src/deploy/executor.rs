//! The executor process: task slots, block manager, shuffle service, and
//! the `Executor` RPC endpoint.

use std::any::Any;
use std::sync::Arc;

use fabric::{Net, NodeId};
use parking_lot::Mutex;
use simt::sync::Notify;

use crate::config::SparkConf;
use crate::deploy::messages::ExecutorSpec;
use crate::net_backend::{NetworkBackend, ProcIdentity, Role};
use crate::rpc::{AnyMsg, ReplyFn, RpcEndpoint, RpcEnv, RpcRef};
use crate::scheduler::{
    InvalidateShuffle, LaunchTask, RegisterExecutor, StopExecutor, TaskFinishedMsg,
};
use crate::shuffle::MapOutputClient;
use crate::storage::BlockManager;
use crate::task::{ExecutorServices, TaskContext};
use crate::transfer::{
    BlockTransferService, NettyBlockTransferService, RetryConf, RetryingBlockFetcher,
    ShuffleService,
};

/// Arguments for [`executor_main`].
#[derive(Clone)]
pub struct ExecutorArgs {
    /// The fabric.
    pub net: Net,
    /// Node to run on (same as the launching worker's).
    pub node: NodeId,
    /// Launch specification.
    pub spec: ExecutorSpec,
    /// Network backend.
    pub backend: Arc<dyn NetworkBackend>,
    /// Engine configuration.
    pub conf: SparkConf,
}

/// An executor entry point, pre-bound to its arguments; the launcher passes
/// the backend extension (MPI communicators under DPM launch).
pub type ExecutorMain = Box<dyn FnOnce(Option<Arc<dyn Any + Send + Sync>>) + Send>;

/// Test hook: shut down this executor's shuffle service (fault injection
/// for the fetch-failure recovery path).
pub struct KillShuffleService;

struct ExecutorEndpoint {
    services: Arc<ExecutorServices>,
    driver: RpcRef,
    stop: Notify,
    shuffle_ep: netz::Endpoint,
}

impl RpcEndpoint for ExecutorEndpoint {
    fn receive(&self, msg: AnyMsg, _reply: Option<ReplyFn>) {
        if let Ok(task) = msg.clone().downcast::<LaunchTask>() {
            let services = self.services.clone();
            let driver = self.driver.clone();
            let name = format!("task-e{}-s{}-p{}", services.exec_id, task.stage_seq, task.part);
            // One green thread per running task = one occupied task slot;
            // slot accounting lives in the driver's scheduler.
            // Launches carry the map-output epoch they were scheduled
            // under; observing it ages out location tables cached before a
            // recovery (Spark's `updateEpoch` on task launch).
            self.services.map_outputs.observe_epoch(task.epoch);
            simt::spawn_daemon(name, move || {
                let obs = services.net.obs().clone();
                let _span = obs.is_traced().then(|| {
                    obs.span(
                        "spark.task",
                        obs::kv! {"stage_seq" => task.stage_seq,
                        "part" => task.part,
                        "attempt" => task.attempt,
                        "speculative" => task.speculative,
                        "exec" => services.exec_id},
                    )
                });
                let ctx = TaskContext::new(services.clone(), task.part, task.attempt)
                    .speculative(task.speculative);
                ctx.charge(ctx.cost().task_overhead_ns);
                let t0 = simt::now();
                let output = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    task.runner.run(&ctx)
                })) {
                    Ok(out) => out,
                    Err(payload) => match payload.downcast::<crate::shuffle::FetchFailedSignal>() {
                        Ok(sig) => crate::rdd::TaskOutput::FetchFailed {
                            shuffle_id: sig.shuffle_id,
                            exec_id: sig.exec_id,
                            map_id: sig.map_id,
                        },
                        Err(other) => std::panic::resume_unwind(other),
                    },
                };
                ctx.metrics.counter(obs::keys::TASK_RUN_NS).add(simt::now() - t0);
                let metrics = ctx.metrics.snapshot();
                let wire = 256 + metrics.counter(obs::keys::TASK_RESULT_BYTES);
                let _ = driver.send_sized(
                    TaskFinishedMsg {
                        stage_seq: task.stage_seq,
                        part: task.part,
                        exec_id: services.exec_id,
                        epoch: task.epoch,
                        output: Mutex::new(Some(output)),
                        metrics,
                    },
                    wire,
                );
            });
            return;
        }
        if let Ok(inv) = msg.clone().downcast::<InvalidateShuffle>() {
            self.services.map_outputs.invalidate_as_of(inv.shuffle_id, inv.epoch);
            return;
        }
        if msg.clone().downcast::<KillShuffleService>().is_ok() {
            self.shuffle_ep.shutdown();
            return;
        }
        if msg.downcast::<StopExecutor>().is_ok() {
            self.stop.notify();
        }
    }
}

/// Executor process body: build services, register with the driver, serve
/// tasks until stopped.
pub fn executor_main(args: ExecutorArgs, ext: Option<Arc<dyn Any + Send + Sync>>) {
    let identity = ProcIdentity {
        role: Role::Executor(args.spec.exec_id),
        node: args.node,
        name: format!("executor-{}", args.spec.exec_id),
        ext,
    };
    let env = RpcEnv::new(&args.net, &identity, &args.backend, None);
    let block_manager = Arc::new(BlockManager::new(args.spec.mem_gb));
    let (_svc, shuffle_ep) = ShuffleService::start(
        &identity,
        &args.net,
        &args.backend,
        block_manager.clone(),
        args.conf,
    );
    let primary: Arc<dyn BlockTransferService> =
        NettyBlockTransferService::new(&identity, &args.net, &args.backend);
    // Degraded-mode sibling on the backend's fallback plane (plain
    // sockets), engaged by the retry layer after consecutive plane-level
    // failures; backends without a separate fallback (Vanilla) get none.
    let fallback: Option<Arc<dyn BlockTransferService>> = args
        .backend
        .fallback_shuffle_context(&identity, &args.net, Arc::new(netz::NoOpRpcHandler))
        .map(|ctx| {
            NettyBlockTransferService::with_context(ctx, &identity, "fetch-fallback")
                as Arc<dyn BlockTransferService>
        });
    let transfer = RetryingBlockFetcher::new(
        primary,
        fallback,
        RetryConf::from_spark(&args.conf),
        args.spec.exec_id as u64 + 1,
        args.net.obs().clone(),
    );
    let driver_sched = env.endpoint_ref(args.spec.driver_sched_addr, "DagScheduler");
    let tracker_ref = env.endpoint_ref(args.spec.driver_sched_addr, "MapOutputTracker");

    let services = Arc::new(ExecutorServices {
        exec_id: args.spec.exec_id,
        net: args.net.clone(),
        node: args.node,
        cpu: args.net.cpu(args.node),
        conf: args.conf,
        block_manager,
        transfer: transfer.clone(),
        map_outputs: MapOutputClient::new(tracker_ref),
        shuffle_addr: shuffle_ep.addr(),
        rpc_env: env.clone(),
        driver_addr: args.spec.driver_sched_addr,
        broadcast_cache: Mutex::new(Default::default()),
    });

    let stop = Notify::new();
    env.register(
        "Executor",
        Arc::new(ExecutorEndpoint {
            services,
            driver: driver_sched.clone(),
            stop: stop.clone(),
            shuffle_ep: shuffle_ep.clone(),
        }),
    );

    // Fetch the application jar from the driver before accepting tasks
    // (paper §VI-E: jar dependencies travel as StreamResponse, whose body
    // the Optimized design moves over MPI).
    if args.spec.jar_bytes > 0 {
        let jar = env
            .fetch_stream(args.spec.driver_sched_addr, "/jars/app.jar")
            .expect("application jar reachable");
        assert_eq!(jar.virtual_len, args.spec.jar_bytes.max(3), "jar size mismatch");
    }

    driver_sched
        .ask::<bool>(RegisterExecutor {
            exec_id: args.spec.exec_id,
            cores: args.spec.cores,
            rpc_addr: env.addr(),
        })
        .expect("driver reachable during executor registration");

    stop.wait();
    transfer.close();
    shuffle_ep.shutdown();
    env.shutdown();
}
