//! Cluster deployment: master / worker / executor / driver processes and
//! the standalone launcher (Spark's `deploy` package).
//!
//! The [`ExecutorLauncher`] seam is where MPI4Spark differs from standalone
//! Spark: "Executors in Spark are originally launched using the
//! `ProcessBuilder` class in Java... instead, DPM here was used to launch
//! the executors" (paper §V). [`ProcessBuilderLauncher`] forks a simulated
//! process directly; `mpi4spark::DpmLauncher` allgathers executor specs
//! across worker ranks and spawns them collectively.

pub mod executor;
pub mod master;
pub mod messages;
pub mod worker;

use std::sync::Arc;

use fabric::{Net, NodeId};
use simt::sync::OnceCell;

use crate::config::SparkConf;
use crate::net_backend::NetworkBackend;
use crate::rpc::RpcEnv;
use crate::scheduler::{DagScheduler, JobMetrics, SparkContext, StopExecutor};

pub use executor::{executor_main, ExecutorArgs, ExecutorMain};
pub use messages::*;

/// Cluster topology + engine configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Node hosting the master process.
    pub master_node: NodeId,
    /// Node hosting the driver process.
    pub driver_node: NodeId,
    /// Nodes hosting one worker (and thus one executor) each.
    pub worker_nodes: Vec<NodeId>,
    /// Virtual size of the application jar executors fetch from the driver
    /// at startup (`StreamRequest`/`StreamResponse` path).
    pub app_jar_bytes: u64,
    /// Engine configuration.
    pub conf: SparkConf,
}

impl ClusterConfig {
    /// The paper's usual layout on an `n`-node cluster: workers on nodes
    /// `0..n-2`, master on `n-2`, driver on `n-1`. (Fig. 3 places master
    /// and driver on their own nodes.)
    pub fn paper_layout(total_nodes: usize, conf: SparkConf) -> Self {
        assert!(total_nodes >= 3, "need at least one worker plus master and driver nodes");
        ClusterConfig {
            master_node: total_nodes - 2,
            driver_node: total_nodes - 1,
            worker_nodes: (0..total_nodes - 2).collect(),
            app_jar_bytes: 32 << 20,
            conf,
        }
    }

    /// Total executor task slots.
    pub fn total_cores(&self) -> usize {
        self.worker_nodes.len() * self.conf.executor_cores as usize
    }
}

/// How a worker turns a `LaunchExecutor` command into a running executor
/// process.
pub trait ExecutorLauncher: Send + Sync + 'static {
    /// Launch `main` as executor `exec_id` for worker `worker_index` on
    /// `node`. Implementations may coordinate across workers (DPM) before
    /// the executor actually starts.
    fn launch(&self, worker_index: usize, node: NodeId, exec_id: usize, main: ExecutorMain);
}

/// Standalone Spark's launcher: fork a local process (`ProcessBuilder`).
pub struct ProcessBuilderLauncher;

impl ExecutorLauncher for ProcessBuilderLauncher {
    fn launch(&self, _worker_index: usize, _node: NodeId, exec_id: usize, main: ExecutorMain) {
        simt::spawn_daemon(format!("executor-{exec_id}"), move || main(None));
    }
}

/// Deploy a cluster, run `app` on the driver, stop everything, and return
/// the app result plus per-job metrics. Must be called from a simulation
/// green thread; the calling thread acts as the driver process.
pub fn run_app<R: Send + 'static>(
    net: &Net,
    cluster: &ClusterConfig,
    backend: Arc<dyn NetworkBackend>,
    launcher: Arc<dyn ExecutorLauncher>,
    app: impl FnOnce(&SparkContext) -> R + Send,
) -> (R, Vec<JobMetrics>) {
    // Master.
    {
        let net = net.clone();
        let backend = backend.clone();
        let args = master::MasterArgs {
            net,
            node: cluster.master_node,
            backend,
            expected_workers: cluster.worker_nodes.len(),
            ext: None,
        };
        simt::spawn_daemon("master", move || master::master_main(args));
    }
    // Workers.
    for (i, node) in cluster.worker_nodes.iter().enumerate() {
        let args = worker::WorkerArgs {
            net: net.clone(),
            node: *node,
            index: i,
            master_node: cluster.master_node,
            backend: backend.clone(),
            launcher: launcher.clone(),
            conf: cluster.conf,
            ext: None,
        };
        simt::spawn_daemon(format!("worker-{i}"), move || worker::worker_main(args));
    }
    // Driver (this thread).
    driver_main(net, cluster, backend, app)
}

/// The driver process body: build the RPC environment and scheduler,
/// register the application, wait for executors, run `app`, tear down.
/// Exposed separately so the MPI4Spark wrapper can run it under its own
/// process layout.
pub fn driver_main<R: Send + 'static>(
    net: &Net,
    cluster: &ClusterConfig,
    backend: Arc<dyn NetworkBackend>,
    app: impl FnOnce(&SparkContext) -> R + Send,
) -> (R, Vec<JobMetrics>) {
    driver_main_ext(net, cluster, backend, None, app)
}

/// [`driver_main`] with a backend extension (MPI communicator handles).
pub fn driver_main_ext<R: Send + 'static>(
    net: &Net,
    cluster: &ClusterConfig,
    backend: Arc<dyn NetworkBackend>,
    ext: Option<std::sync::Arc<dyn std::any::Any + Send + Sync>>,
    app: impl FnOnce(&SparkContext) -> R + Send,
) -> (R, Vec<JobMetrics>) {
    let identity = crate::net_backend::ProcIdentity {
        role: crate::net_backend::Role::Driver,
        node: cluster.driver_node,
        name: "driver".into(),
        ext,
    };
    let env = RpcEnv::new(net, &identity, &backend, None);
    let sched = Arc::new(DagScheduler::with_conf(cluster.conf));
    sched.attach_env(env.clone());
    env.register("DagScheduler", sched.clone());
    env.register("MapOutputTracker", sched.tracker.clone());

    // Register the application; the master replies NotReady until all its
    // workers have checked in.
    let master_ref = env.endpoint_ref(
        fabric::PortAddr { node: cluster.master_node, port: master::MASTER_PORT },
        "Master",
    );
    // Serve the application jar and broadcast values to executors
    // (Spark's NettyStreamManager + TorrentBroadcast driver side).
    struct DriverStreams {
        jar_bytes: u64,
        broadcasts: Arc<crate::broadcast::BroadcastRegistry>,
    }
    impl netz::StreamManager for DriverStreams {
        fn get_chunk(&self, _s: u64, _c: u32) -> Result<fabric::Payload, String> {
            Err("driver only serves streams".into())
        }
        fn open_stream(&self, name: &str) -> Result<fabric::Payload, String> {
            if name == "/jars/app.jar" {
                return Ok(fabric::Payload::bytes_scaled(
                    bytes::Bytes::from_static(b"JAR"),
                    self.jar_bytes.max(3),
                ));
            }
            if let Some(id) = name.strip_prefix("/broadcast/") {
                let id: u64 = id.parse().map_err(|_| format!("bad broadcast name '{name}'"))?;
                return self.broadcasts.open(id);
            }
            Err(format!("no such file '{name}'"))
        }
    }
    let broadcasts: Arc<crate::broadcast::BroadcastRegistry> = Arc::default();
    env.set_stream_manager(std::sync::Arc::new(DriverStreams {
        jar_bytes: cluster.app_jar_bytes,
        broadcasts: broadcasts.clone(),
    }));

    let n_workers = cluster.worker_nodes.len();
    loop {
        let reply = master_ref.ask::<RegisteredApp>(RegisterApp {
            name: "app".into(),
            driver_sched_addr: env.addr(),
            executor_cores: cluster.conf.executor_cores,
            executor_mem_gb: cluster.conf.executor_mem_gb,
            jar_bytes: cluster.app_jar_bytes,
        });
        match reply {
            Ok(r) if r.executors == n_workers => break,
            Ok(_) | Err(_) => simt::sleep(simt::time::millis(5)),
        }
    }
    sched.wait_for_executors(n_workers);

    let sc = SparkContext::with_broadcasts(
        cluster.conf,
        cluster.total_cores(),
        sched.clone(),
        broadcasts,
    );
    let result = app(&sc);
    let metrics = sc.job_metrics();

    // Teardown: stop executors, then the cluster.
    for exec in sched.executors() {
        let _ = exec.rpc.send(StopExecutor);
    }
    let _ = master_ref.send(StopCluster);
    simt::sleep(simt::time::millis(5));
    env.shutdown();
    (result, metrics)
}

/// Run `app` inside a fresh simulation on `cluster_spec` hardware;
/// convenience for tests and examples. Returns the result and job metrics.
pub fn simulate<R: Send + 'static>(
    cluster_spec: &fabric::ClusterSpec,
    cluster: ClusterConfig,
    backend: Arc<dyn NetworkBackend>,
    launcher: Arc<dyn ExecutorLauncher>,
    app: impl FnOnce(&SparkContext) -> R + Send + 'static,
) -> (R, Vec<JobMetrics>) {
    let sim = simt::Sim::new();
    let net = Net::new(cluster_spec);
    let out: OnceCell<(R, Vec<JobMetrics>)> = OnceCell::new();
    let out2 = out.clone();
    sim.spawn("driver", move || {
        let r = run_app(&net, &cluster, backend, launcher, app);
        out2.put(r);
    });
    sim.run().expect("simulation completes").assert_clean();
    let result = out.try_take().expect("driver finished");
    sim.shutdown();
    result
}
