//! Typed RDDs: lineage construction, transformations, and actions.
//!
//! An [`Rdd<T>`] wraps a lineage node; transformations build new nodes and
//! actions hand a [`JobSpec`] — topologically ordered shuffle stages plus
//! result tasks — to the scheduler. Tasks travel as `Arc`ed closures rather
//! than serialized bytecode (simulation shortcut, `DESIGN.md`).

pub mod ops;
pub mod partitioner;

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::config::SparkConf;
use crate::data::Element;
use crate::partial::{
    AsF64, BoundedDouble, CountEvaluator, Erased, ErasedEvaluator, GroupedCountEvaluator,
    MeanEvaluator, PartialResult, Stat, SumEvaluator,
};
use crate::rpc::AnyMsg;
use crate::shuffle::MapStatus;
use crate::task::TaskContext;

use ops::*;
use partitioner::{HashPartitioner, Partitioner, RangePartitioner};

/// What a task hands back to the driver.
pub enum TaskOutput {
    /// A map task's output registration.
    Map(MapStatus),
    /// A result task's partition result.
    Result(AnyMsg),
    /// The task could not fetch shuffle blocks (Spark's
    /// `FetchFailedException`); the scheduler recomputes the lost map
    /// outputs via lineage and retries.
    FetchFailed {
        /// Shuffle whose blocks were unreachable.
        shuffle_id: u32,
        /// Executor that failed to serve them (`None`: the map-output
        /// *metadata* lookup failed, nobody to quarantine).
        exec_id: Option<usize>,
        /// First implicated map output, when the failed block is known.
        map_id: Option<u32>,
    },
}

/// A schedulable unit of work.
pub trait TaskRunner: Send + Sync + 'static {
    /// Execute against `ctx`.
    fn run(&self, ctx: &TaskContext) -> TaskOutput;
}

/// Type-erased shuffle dependency: everything the DAG scheduler needs to
/// build and run the corresponding `ShuffleMapStage`.
pub trait ShuffleDepMeta: Send + Sync + 'static {
    /// The shuffle's id.
    fn shuffle_id(&self) -> u32;
    /// Number of map tasks (parent partitions).
    fn num_maps(&self) -> usize;
    /// Number of reduce partitions.
    fn num_reduces(&self) -> usize;
    /// Build the map task for `part`.
    fn make_map_task(&self, part: usize) -> Arc<dyn TaskRunner>;
    /// Shuffle dependencies of the map-side lineage.
    fn upstream(&self) -> Vec<Arc<dyn ShuffleDepMeta>>;
}

/// Adaptive view of a result stage whose terminal node is a shuffle read:
/// the operations an AQE plan's tasks need — fetch several complete buckets
/// in one pass, fetch a map-range slice of one bucket, and merge slice
/// partials back into one bucket's worth of records.
pub trait AdaptiveResultOps<T: Element>: Send + Sync + 'static {
    /// The shuffle the result stage reads.
    fn dep(&self) -> Arc<dyn ShuffleDepMeta>;
    /// Fetch `buckets` in one batched pass and post-process each; returns
    /// one `(bucket, records)` entry per requested bucket, in request order.
    fn compute_buckets(&self, ctx: &TaskContext, buckets: &[u32]) -> Vec<(u32, Vec<T>)>;
    /// Fetch map partitions `map_lo..map_hi` of `bucket` and post-process
    /// the slice — the salted pre-aggregate of two-phase aggregation.
    fn compute_slice(&self, ctx: &TaskContext, bucket: u32, map_lo: u32, map_hi: u32) -> Vec<T>;
    /// Combine slice partials (ascending map-range order) into the bucket's
    /// final records — the cheap final merge of two-phase aggregation.
    fn merge(&self, ctx: &TaskContext, partials: Vec<Vec<T>>) -> Vec<T>;
}

/// A job handed to the scheduler.
pub struct JobSpec {
    /// Shuffle stages to ensure computed, parents before children.
    pub shuffle_stages: Vec<Arc<dyn ShuffleDepMeta>>,
    /// One result task per partition, in partition order.
    pub result_tasks: Vec<Arc<dyn TaskRunner>>,
    /// Adaptive alternative to `result_tasks`, present when AQE is enabled
    /// and the terminal node supports it; the scheduler may plan the reduce
    /// side from map-output sizes instead of running `result_tasks`, and
    /// must return the same per-partition results either way.
    pub adaptive: Option<Arc<dyn crate::aqe::AdaptiveJobSpec>>,
    /// Human-readable description (`count`, `collect`, ...).
    pub action: String,
}

/// Per-job submission options — the one seam where an action attaches
/// approximate-evaluation state. [`JobOptions::default`] is the exact path:
/// no evaluator, no deadline, semantics identical to the pre-`JobHandle`
/// engine.
#[derive(Default)]
pub struct JobOptions {
    /// Folds result partitions as they complete; the source of
    /// [`JobHandle::poll`] / [`JobOutcome::partial`] answers.
    pub evaluator: Option<Box<dyn ErasedEvaluator>>,
    /// Virtual-clock budget from submission; when it expires before the
    /// job completes, the scheduler abandons the remaining work and the
    /// outcome carries the evaluator's best answer instead of exact results.
    pub timeout_ns: Option<u64>,
}

impl JobOptions {
    /// True when this submission rides the partial path (an evaluator or a
    /// deadline is attached) — the `spark.partial_*` counters only move for
    /// such jobs, keeping exact runs bit-identical to the pre-partial engine.
    pub fn is_partial(&self) -> bool {
        self.evaluator.is_some() || self.timeout_ns.is_some()
    }
}

/// Shared state of one submitted job, visible to both the scheduler (which
/// folds completions into it) and the driver's [`JobHandle`].
pub struct JobState {
    total: usize,
    partial: bool,
    eval: Mutex<Option<Box<dyn ErasedEvaluator>>>,
    seen: AtomicUsize,
    deadline_fired: AtomicBool,
    done: simt::sync::OnceCell<Option<Vec<AnyMsg>>>,
}

impl JobState {
    pub(crate) fn new(total: usize, opts: JobOptions) -> Arc<JobState> {
        let partial = opts.is_partial();
        Arc::new(JobState {
            total,
            partial,
            eval: Mutex::new(opts.evaluator),
            seen: AtomicUsize::new(0),
            deadline_fired: AtomicBool::new(false),
            done: simt::sync::OnceCell::new(),
        })
    }

    /// Fold one completed result partition. Called by the scheduler exactly
    /// once per result partition, in virtual completion order (first-finish
    /// dedup upstream); pure host arithmetic, charges no virtual time.
    pub(crate) fn observe(&self, part: usize, result: &AnyMsg, obs: &obs::Obs) {
        if let Some(eval) = self.eval.lock().as_mut() {
            eval.merge(part, result);
        }
        self.seen.fetch_add(1, Ordering::SeqCst);
        if self.partial {
            obs.registry().counter(obs::keys::SPARK_PARTIAL_PARTITIONS_SEEN).inc();
        }
    }

    /// Record that the job's deadline fired before completion.
    pub(crate) fn mark_expired(&self) {
        self.deadline_fired.store(true, Ordering::SeqCst);
    }

    /// Publish the job's terminal state: `Some(results)` on completion,
    /// `None` when the deadline cut it short.
    pub(crate) fn complete(&self, results: Option<Vec<AnyMsg>>) {
        self.done.put(results);
    }

    fn current<R: Clone + Send + Sync + 'static>(&self) -> Option<PartialResult<R>> {
        let guard = self.eval.lock();
        let eval = guard.as_ref()?;
        let seen = self.seen.load(Ordering::SeqCst);
        let msg = eval.current(seen, self.total);
        let value = msg.downcast_ref::<R>().expect("evaluator output type").clone();
        Some(PartialResult {
            value,
            partitions_seen: seen,
            total_partitions: self.total,
            is_final: seen >= self.total,
        })
    }
}

/// A submitted job. Await it with [`wait`](JobHandle::wait), or observe it
/// while it runs: [`poll`](JobHandle::poll) reads the evaluator's running
/// answer, the counters report progress. The handle does not cancel on
/// drop — an abandoned job runs to completion (or to its deadline).
pub struct JobHandle {
    state: Arc<JobState>,
}

impl JobHandle {
    pub(crate) fn new(state: Arc<JobState>) -> JobHandle {
        JobHandle { state }
    }

    /// Block (in virtual time) until the job completes or its deadline
    /// fires, whichever comes first.
    pub fn wait(self) -> JobOutcome {
        let results = self.state.done.take();
        JobOutcome { state: self.state, results }
    }

    /// The evaluator's answer over the partitions folded so far. `None`
    /// when the job was submitted without an evaluator.
    pub fn poll<R: Clone + Send + Sync + 'static>(&self) -> Option<PartialResult<R>> {
        self.state.current::<R>()
    }

    /// Result partitions folded so far.
    pub fn partitions_seen(&self) -> usize {
        self.state.seen.load(Ordering::SeqCst)
    }

    /// Result partitions the job computes in full.
    pub fn total_partitions(&self) -> usize {
        self.state.total
    }

    /// True once the deadline fired (the job will not produce exact results).
    pub fn deadline_fired(&self) -> bool {
        self.state.deadline_fired.load(Ordering::SeqCst)
    }

    /// True once the job reached a terminal state (completed or expired).
    pub fn is_complete(&self) -> bool {
        self.state.done.is_ready()
    }
}

/// Terminal state of a job: exact per-partition results when it ran to
/// completion, or the evaluator's best partial answer when the deadline
/// fired first.
pub struct JobOutcome {
    state: Arc<JobState>,
    results: Option<Vec<AnyMsg>>,
}

impl JobOutcome {
    /// Exact per-partition results, in partition order; `None` when the
    /// deadline fired before completion.
    pub fn results(&self) -> Option<&Vec<AnyMsg>> {
        self.results.as_ref()
    }

    /// Unwrap exact results — the path every blocking action takes (no
    /// deadline attached, so completion is the only terminal state).
    pub fn into_results(self) -> Vec<AnyMsg> {
        self.results.expect("job ran to completion (no deadline attached)")
    }

    /// True when the deadline fired before completion.
    pub fn deadline_fired(&self) -> bool {
        self.state.deadline_fired.load(Ordering::SeqCst)
    }

    /// Result partitions folded into the evaluator.
    pub fn partitions_seen(&self) -> usize {
        self.state.seen.load(Ordering::SeqCst)
    }

    /// Result partitions the job would compute in full.
    pub fn total_partitions(&self) -> usize {
        self.state.total
    }

    /// The evaluator's answer — exact when the job completed, a confidence
    /// interval over `{partitions_seen, total}` when the deadline fired.
    pub fn partial<R: Clone + Send + Sync + 'static>(&self) -> PartialResult<R> {
        self.state.current::<R>().expect("approximate job submitted with an evaluator")
    }
}

/// Executes jobs (implemented by the DAG scheduler; test harnesses may
/// substitute a local runner).
pub trait JobRunner: Send + Sync + 'static {
    /// Submit a job; returns immediately with a handle. Exact actions wait
    /// on the handle; approximate actions attach an evaluator and a
    /// deadline through `opts`.
    fn submit_job(&self, job: JobSpec, opts: JobOptions) -> JobHandle;
}

/// Application-level shared state: id generators, configuration, and the
/// job runner (held by every RDD so actions can submit jobs).
pub struct AppCore {
    /// Engine configuration.
    pub conf: SparkConf,
    /// Default partition count (total cores, as the paper configures).
    pub default_parallelism: usize,
    next_rdd: AtomicU64,
    next_shuffle: AtomicU32,
    runner: Arc<dyn JobRunner>,
}

impl AppCore {
    /// New application state.
    pub fn new(
        conf: SparkConf,
        default_parallelism: usize,
        runner: Arc<dyn JobRunner>,
    ) -> Arc<Self> {
        Arc::new(AppCore {
            conf,
            default_parallelism,
            next_rdd: AtomicU64::new(1),
            next_shuffle: AtomicU32::new(0),
            runner,
        })
    }

    pub(crate) fn new_rdd_id(&self) -> u64 {
        self.next_rdd.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn new_shuffle_id(&self) -> u32 {
        self.next_shuffle.fetch_add(1, Ordering::Relaxed)
    }

    /// Submit a job with options (the one submission seam).
    pub fn submit(&self, job: JobSpec, opts: JobOptions) -> JobHandle {
        self.runner.submit_job(job, opts)
    }

    /// Submit on the exact path and block until completion.
    pub fn run(&self, job: JobSpec) -> Vec<AnyMsg> {
        self.submit(job, JobOptions::default()).wait().into_results()
    }
}

/// Lineage node interface.
pub trait RddOps<T: Element>: Send + Sync + 'static {
    /// Unique RDD id.
    fn id(&self) -> u64;
    /// Partition count.
    fn num_partitions(&self) -> usize;
    /// Materialize partition `part`.
    fn compute(&self, part: usize, ctx: &TaskContext) -> Vec<T>;
    /// Direct shuffle dependencies.
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepMeta>>;
    /// Adaptive view of this node, when it is a shuffle read that supports
    /// plan-driven execution (coalesce/split). `None` (the default) keeps
    /// the node on the static path.
    fn adaptive(&self) -> Option<Arc<dyn AdaptiveResultOps<T>>> {
        None
    }
}

/// A resilient distributed dataset of `T` records.
pub struct Rdd<T: Element> {
    pub(crate) core: Arc<AppCore>,
    pub(crate) ops: Arc<dyn RddOps<T>>,
}

impl<T: Element> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd { core: self.core.clone(), ops: self.ops.clone() }
    }
}

/// Collect the transitive shuffle dependencies, parents first, deduplicated.
pub fn topo_shuffle_deps(direct: Vec<Arc<dyn ShuffleDepMeta>>) -> Vec<Arc<dyn ShuffleDepMeta>> {
    fn visit(
        dep: Arc<dyn ShuffleDepMeta>,
        seen: &mut BTreeSet<u32>,
        out: &mut Vec<Arc<dyn ShuffleDepMeta>>,
    ) {
        if !seen.insert(dep.shuffle_id()) {
            return;
        }
        for up in dep.upstream() {
            visit(up, seen, out);
        }
        out.push(dep);
    }
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for d in direct {
        visit(d, &mut seen, &mut out);
    }
    out
}

impl<T: Element> Rdd<T> {
    /// This RDD's id.
    pub fn id(&self) -> u64 {
        self.ops.id()
    }

    /// Partition count.
    pub fn num_partitions(&self) -> usize {
        self.ops.num_partitions()
    }

    // --- narrow transformations -----------------------------------------

    /// Element-wise transformation.
    pub fn map<U: Element>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        let f = Arc::new(f);
        self.map_partitions(move |ctx: &TaskContext, v: Vec<T>| {
            let n = v.len() as u64;
            let bytes: u64 = v.iter().map(Element::virtual_size).sum();
            ctx.charge(ctx.cost().map(n, bytes));
            v.into_iter().map(|x| f(x)).collect()
        })
    }

    /// Element-wise one-to-many transformation.
    pub fn flat_map<U: Element>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Rdd<U> {
        let f = Arc::new(f);
        self.map_partitions(move |ctx: &TaskContext, v: Vec<T>| {
            let n = v.len() as u64;
            let bytes: u64 = v.iter().map(Element::virtual_size).sum();
            ctx.charge(ctx.cost().map(n, bytes));
            v.into_iter().flat_map(|x| f(x)).collect()
        })
    }

    /// Keep records satisfying `f`.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        let f = Arc::new(f);
        self.map_partitions(move |ctx: &TaskContext, v: Vec<T>| {
            ctx.charge(ctx.cost().map(v.len() as u64, 0));
            v.into_iter().filter(|x| f(x)).collect()
        })
    }

    /// Whole-partition transformation; `f` is responsible for charging its
    /// own compute (the element-wise wrappers above charge the map cost).
    pub fn map_partitions<U: Element>(
        &self,
        f: impl Fn(&TaskContext, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        Rdd {
            core: self.core.clone(),
            ops: Arc::new(MapPartitionsRdd {
                id: self.core.new_rdd_id(),
                parent: self.ops.clone(),
                f: Arc::new(f),
            }),
        }
    }

    /// Mark for caching: the first computation of each partition stores it
    /// in the executor's block manager; later jobs reuse it (`Rdd.cache()`).
    pub fn cache(&self) -> Rdd<T> {
        Rdd {
            core: self.core.clone(),
            ops: Arc::new(CachedRdd { id: self.core.new_rdd_id(), parent: self.ops.clone() }),
        }
    }

    /// Concatenate with `other`: partitions of `self` first, then `other`'s
    /// (a narrow dependency; no shuffle).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        Rdd {
            core: self.core.clone(),
            ops: Arc::new(UnionRdd {
                id: self.core.new_rdd_id(),
                parents: vec![self.ops.clone(), other.ops.clone()],
            }),
        }
    }

    /// Deterministic Bernoulli sample of roughly `fraction` of the records.
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        assert!((0.0..=1.0).contains(&fraction));
        let threshold = (fraction * u64::MAX as f64) as u64;
        self.map_partitions(move |ctx, v| {
            ctx.charge(ctx.cost().map(v.len() as u64, 0));
            let mut state = seed ^ (ctx.partition as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            v.into_iter()
                .filter(|_| {
                    // SplitMix64 step: cheap, deterministic, well mixed.
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    (z ^ (z >> 31)) < threshold
                })
                .collect()
        })
    }

    // --- actions ----------------------------------------------------------

    /// Submit a job running `f` over every partition's records — **the**
    /// job-submission seam. Every action (blocking or approximate) funnels
    /// through here; blocking actions pass `JobOptions::default()` and wait,
    /// approximate actions attach an evaluator and a deadline.
    pub fn submit_job<R: Send + Sync + 'static>(
        &self,
        action: &str,
        f: impl Fn(&TaskContext, Vec<T>) -> R + Send + Sync + 'static,
        opts: JobOptions,
    ) -> JobHandle {
        let f = Arc::new(f);
        let result_tasks: Vec<Arc<dyn TaskRunner>> = (0..self.num_partitions())
            .map(|p| {
                Arc::new(ResultTask { ops: self.ops.clone(), f: f.clone(), part: p })
                    as Arc<dyn TaskRunner>
            })
            .collect();
        // With AQE on and a shuffle read as the terminal node, also offer
        // the scheduler a plan-driven alternative to the fixed task list.
        let adaptive = if self.core.conf.aqe.enabled {
            self.ops.adaptive().map(|ops| {
                Arc::new(AdaptiveResultJob { ops, f: f.clone() })
                    as Arc<dyn crate::aqe::AdaptiveJobSpec>
            })
        } else {
            None
        };
        let job = JobSpec {
            shuffle_stages: topo_shuffle_deps(self.ops.shuffle_deps()),
            result_tasks,
            adaptive,
            action: action.to_string(),
        };
        self.core.submit(job, opts)
    }

    /// Run `f` over every partition's records; returns per-partition values.
    pub fn run_partitions<R: Send + Sync + 'static>(
        &self,
        action: &str,
        f: impl Fn(&TaskContext, Vec<T>) -> R + Send + Sync + 'static,
    ) -> Vec<Arc<R>> {
        self.submit_job(action, f, JobOptions::default())
            .wait()
            .into_results()
            .into_iter()
            .map(|r| r.downcast::<R>().expect("result type"))
            .collect()
    }

    /// Resolve an optional per-call confidence against the conf default.
    fn confidence(&self, confidence: impl Into<Option<f64>>) -> f64 {
        confidence.into().unwrap_or(self.core.conf.partial.default_confidence)
    }

    /// Number of records.
    pub fn count(&self) -> u64 {
        self.run_partitions("count", |_ctx, v| v.len() as u64).iter().map(|x| **x).sum()
    }

    /// Materialize everything at the driver.
    pub fn collect(&self) -> Vec<T> {
        self.run_partitions("collect", |_ctx, v| v)
            .into_iter()
            .flat_map(|p| p.as_ref().clone())
            .collect()
    }

    /// Fold all records with an associative combiner.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Option<T> {
        let f = Arc::new(f);
        let f2 = f.clone();
        let partials =
            self.run_partitions("reduce", move |_ctx, v| v.into_iter().reduce(|a, b| f2(a, b)));
        partials.into_iter().filter_map(|p| p.as_ref().clone()).reduce(|a, b| f(a, b))
    }

    /// First `n` records (partition order).
    pub fn take(&self, n: usize) -> Vec<T> {
        // One pass over all partitions (no incremental scan — fine at
        // simulation scale).
        self.collect().into_iter().take(n).collect()
    }

    // --- approximate actions ----------------------------------------------

    /// Approximate record count with a virtual-clock budget: if the job has
    /// not completed after `timeout_ns`, the answer is a confidence
    /// interval extrapolated from the partitions seen so far
    /// (`confidence: None` uses `partial.default_confidence`).
    ///
    /// With `partial.enabled == false` this degrades to the exact `count`
    /// job — same spec, same action label, same timings.
    pub fn count_approx(
        &self,
        timeout_ns: u64,
        confidence: impl Into<Option<f64>>,
    ) -> PartialResult<BoundedDouble> {
        let f = |_ctx: &TaskContext, v: Vec<T>| v.len() as u64;
        if !self.core.conf.partial.enabled {
            let total = self.num_partitions();
            let n: u64 = self.run_partitions("count", f).iter().map(|x| **x).sum();
            return PartialResult {
                value: BoundedDouble::exact(n as f64),
                partitions_seen: total,
                total_partitions: total,
                is_final: true,
            };
        }
        let evaluator = Erased::boxed(CountEvaluator::new(self.confidence(confidence)));
        let opts = JobOptions { evaluator: Some(evaluator), timeout_ns: Some(timeout_ns) };
        self.submit_job("count_approx", f, opts).wait().partial::<BoundedDouble>()
    }
}

impl<T: Element + AsF64> Rdd<T> {
    /// Per-partition numeric summary task shared by the `sum`/`mean`
    /// approximations: one narrow pass projecting each record to `f64`.
    fn stat_task() -> impl Fn(&TaskContext, Vec<T>) -> Stat + Send + Sync + 'static {
        |ctx: &TaskContext, v: Vec<T>| {
            ctx.charge(ctx.cost().map(v.len() as u64, 0));
            Stat::of(v.iter().map(AsF64::as_f64))
        }
    }

    /// Approximate sum under a virtual-clock deadline; see
    /// [`count_approx`](Rdd::count_approx) for the timeout/confidence
    /// semantics. Disabled partial conf degrades to the exact sum.
    pub fn sum_approx(
        &self,
        timeout_ns: u64,
        confidence: impl Into<Option<f64>>,
    ) -> PartialResult<BoundedDouble> {
        if !self.core.conf.partial.enabled {
            let total = self.num_partitions();
            let sum: f64 =
                self.run_partitions("sum", Self::stat_task()).iter().map(|s| s.sum).sum();
            return PartialResult {
                value: BoundedDouble::exact(sum),
                partitions_seen: total,
                total_partitions: total,
                is_final: true,
            };
        }
        let evaluator = Erased::boxed(SumEvaluator::new(self.confidence(confidence)));
        let opts = JobOptions { evaluator: Some(evaluator), timeout_ns: Some(timeout_ns) };
        self.submit_job("sum_approx", Self::stat_task(), opts).wait().partial::<BoundedDouble>()
    }

    /// Approximate mean under a virtual-clock deadline; see
    /// [`count_approx`](Rdd::count_approx) for the timeout/confidence
    /// semantics. Disabled partial conf degrades to the exact mean.
    pub fn mean_approx(
        &self,
        timeout_ns: u64,
        confidence: impl Into<Option<f64>>,
    ) -> PartialResult<BoundedDouble> {
        if !self.core.conf.partial.enabled {
            let total = self.num_partitions();
            let mut pooled = Stat::default();
            for s in self.run_partitions("mean", Self::stat_task()) {
                pooled.n += s.n;
                pooled.sum += s.sum;
                pooled.sum_sq += s.sum_sq;
            }
            let mean = if pooled.n == 0 { f64::NAN } else { pooled.sum / pooled.n as f64 };
            return PartialResult {
                value: BoundedDouble::exact(mean),
                partitions_seen: total,
                total_partitions: total,
                is_final: true,
            };
        }
        let evaluator = Erased::boxed(MeanEvaluator::new(self.confidence(confidence)));
        let opts = JobOptions { evaluator: Some(evaluator), timeout_ns: Some(timeout_ns) };
        self.submit_job("mean_approx", Self::stat_task(), opts).wait().partial::<BoundedDouble>()
    }
}

// --- pair-RDD operations ---------------------------------------------------

impl<K, V> Rdd<(K, V)>
where
    K: Element + Hash + Eq + Ord,
    V: Element,
{
    fn shuffle_to<M: Element, U: Element>(
        &self,
        parent: Arc<dyn RddOps<(K, M)>>,
        partitioner: Arc<dyn Partitioner<K>>,
        map_side: Option<MapSideCombine<K, M>>,
        post: PostShuffle<K, M, U>,
        merge: Option<MergeFn<U>>,
    ) -> Rdd<U> {
        let dep = Arc::new(ShuffleDep {
            shuffle_id: self.core.new_shuffle_id(),
            parent: parent.clone(),
            partitioner: partitioner.clone(),
            upstream: topo_shuffle_deps(parent.shuffle_deps()),
            map_side_combine: map_side,
        });
        Rdd {
            core: self.core.clone(),
            ops: Arc::new(ShuffleReadRdd { id: self.core.new_rdd_id(), dep, post, merge }),
        }
    }

    /// Group values per key (wide dependency; no map-side combine — the
    /// OHB GroupByTest workload).
    pub fn group_by_key(&self, parts: usize) -> Rdd<(K, Vec<V>)> {
        self.shuffle_to::<V, (K, Vec<V>)>(
            self.ops.clone(),
            Arc::new(HashPartitioner::new(parts)),
            None,
            Arc::new(|ctx, pairs| crate::shuffle::group_pairs(ctx, pairs)),
            // Slice partials arrive pre-grouped per map range; concatenating
            // each key's groups in slice (= map-range) order reproduces the
            // static grouping exactly, at record-count cost only — the
            // two-phase win that makes splitting a hot bucket pay off.
            Some(Arc::new(|ctx: &TaskContext, partials: Vec<Vec<(K, Vec<V>)>>| {
                let n: u64 = partials.iter().map(|p| p.len() as u64).sum();
                ctx.charge(ctx.cost().group(n, 0));
                let mut merged: std::collections::BTreeMap<K, Vec<V>> =
                    std::collections::BTreeMap::new();
                for partial in partials {
                    for (k, mut vs) in partial {
                        merged.entry(k).or_default().append(&mut vs);
                    }
                }
                merged.into_iter().collect()
            })),
        )
    }

    /// Reduce values per key with map-side combining (Spark's default for
    /// `reduceByKey`).
    pub fn reduce_by_key(
        &self,
        parts: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)> {
        let f = Arc::new(f);
        let f_map = f.clone();
        let combine: MapSideCombine<K, V> = Arc::new(move |ctx, pairs| {
            let grouped = crate::shuffle::group_pairs(ctx, pairs);
            grouped
                .into_iter()
                .map(|(k, vs)| {
                    let v = vs.into_iter().reduce(|a, b| f_map(a, b)).expect("non-empty group");
                    (k, v)
                })
                .collect()
        });
        let f_red = f.clone();
        let f_merge = f.clone();
        self.shuffle_to::<V, (K, V)>(
            self.ops.clone(),
            Arc::new(HashPartitioner::new(parts)),
            Some(combine),
            Arc::new(move |ctx, pairs| {
                let grouped = crate::shuffle::group_pairs(ctx, pairs);
                grouped
                    .into_iter()
                    .map(|(k, vs)| {
                        let v = vs.into_iter().reduce(|a, b| f_red(a, b)).expect("non-empty");
                        (k, v)
                    })
                    .collect()
            }),
            // Slice partials are already reduced per map range; the final
            // merge folds at most one value per key per slice.
            Some(Arc::new(move |ctx: &TaskContext, partials: Vec<Vec<(K, V)>>| {
                let n: u64 = partials.iter().map(|p| p.len() as u64).sum();
                ctx.charge(ctx.cost().group(n, 0));
                let mut merged: std::collections::BTreeMap<K, V> =
                    std::collections::BTreeMap::new();
                for partial in partials {
                    for (k, v) in partial {
                        match merged.entry(k) {
                            std::collections::btree_map::Entry::Vacant(e) => {
                                e.insert(v);
                            }
                            std::collections::btree_map::Entry::Occupied(mut e) => {
                                let prev = e.get().clone();
                                e.insert(f_merge(prev, v));
                            }
                        }
                    }
                }
                merged.into_iter().collect()
            })),
        )
    }

    /// Repartition by key with an explicit partitioner; records pass
    /// through unchanged.
    pub fn partition_by(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, V)> {
        self.shuffle_to::<V, (K, V)>(
            self.ops.clone(),
            partitioner,
            None,
            Arc::new(|_ctx, pairs| pairs),
            // Records pass through unchanged; merging is concatenation in
            // map-range order.
            Some(Arc::new(|ctx: &TaskContext, partials: Vec<Vec<(K, V)>>| {
                let n: u64 = partials.iter().map(|p| p.len() as u64).sum();
                ctx.charge(ctx.cost().map(n, 0));
                partials.into_iter().flatten().collect()
            })),
        )
    }

    /// Co-group with another pair RDD sharing the key type.
    pub fn cogroup<W: Element>(
        &self,
        other: &Rdd<(K, W)>,
        parts: usize,
    ) -> Rdd<(K, (Vec<V>, Vec<W>))> {
        let partitioner: Arc<dyn Partitioner<K>> = Arc::new(HashPartitioner::new(parts));
        let dep_a = Arc::new(ShuffleDep {
            shuffle_id: self.core.new_shuffle_id(),
            parent: self.ops.clone(),
            partitioner: partitioner.clone(),
            upstream: topo_shuffle_deps(self.ops.shuffle_deps()),
            map_side_combine: None,
        });
        let dep_b = Arc::new(ShuffleDep {
            shuffle_id: self.core.new_shuffle_id(),
            parent: other.ops.clone(),
            partitioner: partitioner.clone(),
            upstream: topo_shuffle_deps(other.ops.shuffle_deps()),
            map_side_combine: None,
        });
        Rdd {
            core: self.core.clone(),
            ops: Arc::new(CoGroupRdd { id: self.core.new_rdd_id(), dep_a, dep_b }),
        }
    }

    /// Inner join.
    pub fn join<W: Element>(&self, other: &Rdd<(K, W)>, parts: usize) -> Rdd<(K, (V, W))> {
        self.cogroup(other, parts).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::with_capacity(vs.len() * ws.len());
            for v in &vs {
                for w in &ws {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
            out
        })
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Element + Hash + Eq + Ord,
    V: Element,
{
    /// Sort by key into `parts` range partitions. Eagerly runs a sampling
    /// job to build the range partitioner — the extra job visible in the
    /// paper's SortByTest stage breakdown (Job1 samples, Job2 sorts).
    pub fn sort_by_key(&self, parts: usize) -> Rdd<(K, V)> {
        // Sampling job: ~20 keys per output partition.
        let per_part = ((20 * parts) / self.num_partitions().max(1)).max(1);
        let sample: Vec<K> = self
            .run_partitions("sortByKey-sample", move |ctx, v| {
                ctx.charge(ctx.cost().map(v.len() as u64, 0));
                let step = (v.len() / per_part).max(1);
                v.iter().step_by(step).map(|(k, _)| k.clone()).collect::<Vec<K>>()
            })
            .into_iter()
            .flat_map(|p| p.as_ref().clone())
            .collect();
        let partitioner = Arc::new(RangePartitioner::from_sample(sample, parts));
        self.shuffle_to::<V, (K, V)>(
            self.ops.clone(),
            partitioner,
            None,
            Arc::new(|ctx: &TaskContext, mut pairs: Vec<(K, V)>| {
                let bytes: u64 = pairs.iter().map(crate::data::Element::virtual_size).sum();
                ctx.charge(ctx.cost().sort(pairs.len() as u64, bytes));
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                pairs
            }),
            // Slice partials arrive sorted; a stable merge-by-concatenation
            // plus re-sort costs record-count terms only (no byte charge —
            // the heavy byte-proportional sort already ran in the slices).
            Some(Arc::new(|ctx: &TaskContext, partials: Vec<Vec<(K, V)>>| {
                let n: u64 = partials.iter().map(|p| p.len() as u64).sum();
                ctx.charge(ctx.cost().sort(n, 0));
                let mut merged: Vec<(K, V)> = partials.into_iter().flatten().collect();
                merged.sort_by(|a, b| a.0.cmp(&b.0));
                merged
            })),
        )
    }
}

impl<T: Element + Hash + Eq + Ord> Rdd<T> {
    /// Remove duplicate records (shuffle on the record itself).
    pub fn distinct(&self, parts: usize) -> Rdd<T> {
        self.map(|x| (x, 1u8)).reduce_by_key(parts, |a, _| a).map(|(x, _)| x)
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Element + Hash + Eq + Ord,
    V: Element,
{
    /// Count records per key at the driver.
    pub fn count_by_key(&self) -> Vec<(K, u64)> {
        self.map(|(k, _)| (k, 1u64))
            .reduce_by_key(self.num_partitions().max(1), |a, b| a + b)
            .collect()
    }

    /// Per-partition key histogram task shared by the `count_by_key`
    /// approximation: local aggregation only, no shuffle (Spark's
    /// `countByKeyApprox` shape), so every completed partition refines
    /// every key's interval.
    fn key_histogram_task(
    ) -> impl Fn(&TaskContext, Vec<(K, V)>) -> Vec<(K, u64)> + Send + Sync + 'static {
        |ctx: &TaskContext, v: Vec<(K, V)>| {
            ctx.charge(ctx.cost().group(v.len() as u64, 0));
            let mut hist: BTreeMap<K, u64> = BTreeMap::new();
            for (k, _) in v {
                *hist.entry(k).or_insert(0) += 1;
            }
            hist.into_iter().collect()
        }
    }

    /// Approximate per-key counts under a virtual-clock deadline: each
    /// key's total is a [`BoundedDouble`] extrapolated from the partitions
    /// seen (see [`count_approx`](Rdd::count_approx) for timeout/confidence
    /// semantics). Disabled partial conf degrades to exact local counting.
    pub fn count_by_key_approx(
        &self,
        timeout_ns: u64,
        confidence: impl Into<Option<f64>>,
    ) -> PartialResult<Vec<(K, BoundedDouble)>> {
        if !self.core.conf.partial.enabled {
            let total = self.num_partitions();
            let mut merged: BTreeMap<K, u64> = BTreeMap::new();
            for part in self.run_partitions("count_by_key_local", Self::key_histogram_task()) {
                for (k, c) in part.iter() {
                    *merged.entry(k.clone()).or_insert(0) += c;
                }
            }
            return PartialResult {
                value: merged
                    .into_iter()
                    .map(|(k, c)| (k, BoundedDouble::exact(c as f64)))
                    .collect(),
                partitions_seen: total,
                total_partitions: total,
                is_final: true,
            };
        }
        let evaluator = Erased::boxed(GroupedCountEvaluator::<K>::new(self.confidence(confidence)));
        let opts = JobOptions { evaluator: Some(evaluator), timeout_ns: Some(timeout_ns) };
        self.submit_job("count_by_key_approx", Self::key_histogram_task(), opts)
            .wait()
            .partial::<Vec<(K, BoundedDouble)>>()
    }

    /// The keys.
    pub fn keys(&self) -> Rdd<K> {
        self.map(|(k, _)| k)
    }

    /// The values.
    pub fn values(&self) -> Rdd<V> {
        self.map(|(_, v)| v)
    }

    /// Apply `f` to every value, keeping keys and partitioning intent.
    pub fn map_values<W: Element>(
        &self,
        f: impl Fn(V) -> W + Send + Sync + 'static,
    ) -> Rdd<(K, W)> {
        self.map(move |(k, v)| (k, f(v)))
    }
}

impl<T: Element> Rdd<T> {
    /// Redistribute records evenly over `parts` partitions (pure shuffle —
    /// the HiBench Repartition micro-benchmark).
    pub fn repartition(&self, parts: usize) -> Rdd<T> {
        let counter = std::sync::atomic::AtomicU64::new(0);
        let keyed: Rdd<(u64, T)> = self.map_partitions(move |ctx, v| {
            ctx.charge(ctx.cost().map(v.len() as u64, 0));
            v.into_iter().map(|x| (counter.fetch_add(1, Ordering::Relaxed), x)).collect()
        });
        keyed.partition_by(Arc::new(HashPartitioner::new(parts))).map(|(_, x)| x)
    }
}
