//! Concrete lineage nodes and task runners.

use std::hash::Hash;
use std::sync::Arc;

use crate::aqe::{AdaptiveJobSpec, BucketResults, PlanTask, SlicePartial};
use crate::data::Element;
use crate::rdd::partitioner::Partitioner;
use crate::rdd::{AdaptiveResultOps, RddOps, ShuffleDepMeta, TaskOutput, TaskRunner};
use crate::rpc::AnyMsg;
use crate::shuffle::{read_shuffle, read_shuffle_buckets, write_shuffle};
use crate::storage::{BlockId, StoredBlock};
use crate::task::TaskContext;

/// Map-side combine hook (`reduceByKey` aggregation before the write).
pub type MapSideCombine<K, M> = Arc<dyn Fn(&TaskContext, Vec<(K, M)>) -> Vec<(K, M)> + Send + Sync>;

/// Reduce-side post-processing (grouping, reducing, sorting, identity).
pub type PostShuffle<K, M, U> = Arc<dyn Fn(&TaskContext, Vec<(K, M)>) -> Vec<U> + Send + Sync>;

/// Combine per-map-range slice partials (each already post-processed) into
/// one bucket's final records — the cheap second phase of AQE's two-phase
/// aggregation. `None` keeps the operator on the static path under AQE.
pub type MergeFn<U> = Arc<dyn Fn(&TaskContext, Vec<Vec<U>>) -> Vec<U> + Send + Sync>;

// --- sources ---------------------------------------------------------------

/// Lazily generated source (workload datagen). Generation cost is charged
/// from the produced records' virtual sizes.
pub struct GenerateRdd<T: Element> {
    /// RDD id.
    pub id: u64,
    /// Partition count.
    pub parts: usize,
    /// Generator.
    pub f: Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>,
}

impl<T: Element> RddOps<T> for GenerateRdd<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parts
    }
    fn compute(&self, part: usize, ctx: &TaskContext) -> Vec<T> {
        let v = (self.f)(part);
        let bytes: u64 = v.iter().map(Element::virtual_size).sum();
        ctx.charge(ctx.cost().gen(v.len() as u64, bytes));
        v
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepMeta>> {
        Vec::new()
    }
}

/// Pre-materialized source (`parallelize`).
pub struct ParallelizeRdd<T: Element> {
    /// RDD id.
    pub id: u64,
    /// Records per partition.
    pub data: Arc<Vec<Vec<T>>>,
}

impl<T: Element> RddOps<T> for ParallelizeRdd<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.data.len()
    }
    fn compute(&self, part: usize, _ctx: &TaskContext) -> Vec<T> {
        self.data[part].clone()
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepMeta>> {
        Vec::new()
    }
}

// --- narrow ------------------------------------------------------------------

/// Whole-partition transformation node.
pub struct MapPartitionsRdd<U: Element, T: Element> {
    /// RDD id.
    pub id: u64,
    /// Upstream node.
    pub parent: Arc<dyn RddOps<U>>,
    /// The transformation.
    pub f: Arc<dyn Fn(&TaskContext, Vec<U>) -> Vec<T> + Send + Sync>,
}

impl<U: Element, T: Element> RddOps<T> for MapPartitionsRdd<U, T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, part: usize, ctx: &TaskContext) -> Vec<T> {
        let input = self.parent.compute(part, ctx);
        (self.f)(ctx, input)
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepMeta>> {
        self.parent.shuffle_deps()
    }
}

/// Caching node: first computation stores the partition in the executor's
/// block manager (typed cache + virtual accounting); later computations hit
/// the cache.
pub struct CachedRdd<T: Element> {
    /// RDD id (cache key).
    pub id: u64,
    /// Upstream node.
    pub parent: Arc<dyn RddOps<T>>,
}

impl<T: Element> RddOps<T> for CachedRdd<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, part: usize, ctx: &TaskContext) -> Vec<T> {
        let bm = &ctx.services.block_manager;
        if let Some(hit) = bm.cache_get::<T>(self.id, part as u32) {
            // Reading from the in-memory cache: a memory-scan charge.
            let bytes: u64 = hit.iter().map(Element::virtual_size).sum();
            ctx.charge(ctx.cost().map(hit.len() as u64, bytes));
            return hit.as_ref().clone();
        }
        let data = self.parent.compute(part, ctx);
        let bytes: u64 = data.iter().map(Element::virtual_size).sum();
        bm.cache_put(self.id, part as u32, Arc::new(data.clone()));
        bm.put(
            BlockId::Rdd { rdd_id: self.id, partition: part as u32 },
            StoredBlock {
                data: bytes::Bytes::new(),
                virtual_len: bytes,
                records: data.len() as u64,
            },
        );
        data
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepMeta>> {
        self.parent.shuffle_deps()
    }
}

/// Concatenation node: partition `i` comes from the parent owning it.
pub struct UnionRdd<T: Element> {
    /// RDD id.
    pub id: u64,
    /// Parents, concatenated in order.
    pub parents: Vec<Arc<dyn RddOps<T>>>,
}

impl<T: Element> RddOps<T> for UnionRdd<T> {
    fn id(&self) -> u64 {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }
    fn compute(&self, part: usize, ctx: &TaskContext) -> Vec<T> {
        let mut offset = part;
        for parent in &self.parents {
            if offset < parent.num_partitions() {
                return parent.compute(offset, ctx);
            }
            offset -= parent.num_partitions();
        }
        panic!("union partition {part} out of range");
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepMeta>> {
        self.parents.iter().flat_map(|p| p.shuffle_deps()).collect()
    }
}

// --- wide -----------------------------------------------------------------

/// A shuffle dependency: map-side records `(K, M)` partitioned by `K`.
pub struct ShuffleDep<K, M>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
{
    /// The shuffle's id.
    pub shuffle_id: u32,
    /// Map-side lineage.
    pub parent: Arc<dyn RddOps<(K, M)>>,
    /// Reduce partitioning.
    pub partitioner: Arc<dyn Partitioner<K>>,
    /// Upstream shuffle stages (already topologically ordered).
    pub upstream: Vec<Arc<dyn ShuffleDepMeta>>,
    /// Optional map-side combine.
    pub map_side_combine: Option<MapSideCombine<K, M>>,
}

/// Map task for one `ShuffleDep` partition.
struct ShuffleMapTask<K, M>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
{
    dep: Arc<ShuffleDep<K, M>>,
    part: usize,
}

impl<K, M> TaskRunner for ShuffleMapTask<K, M>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
{
    fn run(&self, ctx: &TaskContext) -> TaskOutput {
        let mut records = self.dep.parent.compute(self.part, ctx);
        if let Some(combine) = &self.dep.map_side_combine {
            records = combine(ctx, records);
        }
        let partitioner = self.dep.partitioner.clone();
        let status = write_shuffle(
            ctx,
            self.dep.shuffle_id,
            self.part as u32,
            partitioner.num_partitions(),
            records,
            move |(k, _): &(K, M)| partitioner.partition(k),
        );
        TaskOutput::Map(status)
    }
}

impl<K, M> ShuffleDepMeta for ShuffleDep<K, M>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
{
    fn shuffle_id(&self) -> u32 {
        self.shuffle_id
    }
    fn num_maps(&self) -> usize {
        self.parent.num_partitions()
    }
    fn num_reduces(&self) -> usize {
        self.partitioner.num_partitions()
    }
    fn make_map_task(&self, part: usize) -> Arc<dyn TaskRunner> {
        Arc::new(ShuffleMapTask { dep: self_arc(self), part })
    }
    fn upstream(&self) -> Vec<Arc<dyn ShuffleDepMeta>> {
        self.upstream.clone()
    }
}

/// `ShuffleDepMeta::make_map_task` needs an `Arc<ShuffleDep>`, but trait
/// methods only see `&self`. The deps are always constructed into `Arc`s and
/// registered in lineage nodes; reconstruct a cheap Arc by cloning fields.
fn self_arc<K, M>(dep: &ShuffleDep<K, M>) -> Arc<ShuffleDep<K, M>>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
{
    Arc::new(ShuffleDep {
        shuffle_id: dep.shuffle_id,
        parent: dep.parent.clone(),
        partitioner: dep.partitioner.clone(),
        upstream: dep.upstream.clone(),
        map_side_combine: dep.map_side_combine.clone(),
    })
}

/// Reduce-side node: reads the shuffle and applies `post`.
pub struct ShuffleReadRdd<K, M, U>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
    U: Element,
{
    /// RDD id.
    pub id: u64,
    /// The dependency read from.
    pub dep: Arc<ShuffleDep<K, M>>,
    /// Reduce-side processing.
    pub post: PostShuffle<K, M, U>,
    /// Slice-partial merge for adaptive execution; `None` opts the operator
    /// out of AQE (e.g. cogroup inputs).
    pub merge: Option<MergeFn<U>>,
}

impl<K, M, U> ShuffleReadRdd<K, M, U>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
    U: Element,
{
    /// Cheap `Arc` of self by cloning fields (same pattern as `self_arc`:
    /// trait methods only see `&self`).
    fn arc_clone(&self) -> Arc<Self> {
        Arc::new(ShuffleReadRdd {
            id: self.id,
            dep: self.dep.clone(),
            post: self.post.clone(),
            merge: self.merge.clone(),
        })
    }
}

impl<K, M, U> RddOps<U> for ShuffleReadRdd<K, M, U>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
    U: Element,
{
    fn id(&self) -> u64 {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.dep.partitioner.num_partitions()
    }
    fn compute(&self, part: usize, ctx: &TaskContext) -> Vec<U> {
        let pairs = read_shuffle::<(K, M)>(ctx, self.dep.shuffle_id, part as u32);
        (self.post)(ctx, pairs)
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepMeta>> {
        vec![self.dep.clone()]
    }
    fn adaptive(&self) -> Option<Arc<dyn AdaptiveResultOps<U>>> {
        self.merge.is_some().then(|| self.arc_clone() as Arc<dyn AdaptiveResultOps<U>>)
    }
}

impl<K, M, U> AdaptiveResultOps<U> for ShuffleReadRdd<K, M, U>
where
    K: Element + Hash + Eq + Ord,
    M: Element,
    U: Element,
{
    fn dep(&self) -> Arc<dyn ShuffleDepMeta> {
        self.dep.clone() as Arc<dyn ShuffleDepMeta>
    }
    fn compute_buckets(&self, ctx: &TaskContext, buckets: &[u32]) -> Vec<(u32, Vec<U>)> {
        read_shuffle_buckets::<(K, M)>(ctx, self.dep.shuffle_id, buckets, None)
            .into_iter()
            .map(|(b, pairs)| (b, (self.post)(ctx, pairs)))
            .collect()
    }
    fn compute_slice(&self, ctx: &TaskContext, bucket: u32, map_lo: u32, map_hi: u32) -> Vec<U> {
        let mut slices = read_shuffle_buckets::<(K, M)>(
            ctx,
            self.dep.shuffle_id,
            &[bucket],
            Some((map_lo, map_hi)),
        );
        (self.post)(ctx, slices.pop().expect("one bucket requested").1)
    }
    fn merge(&self, ctx: &TaskContext, partials: Vec<Vec<U>>) -> Vec<U> {
        (self.merge.as_ref().expect("adaptive ops require a merge"))(ctx, partials)
    }
}

/// Two-input co-group node.
pub struct CoGroupRdd<K, V, W>
where
    K: Element + Hash + Eq + Ord,
    V: Element,
    W: Element,
{
    /// RDD id.
    pub id: u64,
    /// Left dependency.
    pub dep_a: Arc<ShuffleDep<K, V>>,
    /// Right dependency.
    pub dep_b: Arc<ShuffleDep<K, W>>,
}

impl<K, V, W> RddOps<(K, (Vec<V>, Vec<W>))> for CoGroupRdd<K, V, W>
where
    K: Element + Hash + Eq + Ord,
    V: Element,
    W: Element,
{
    fn id(&self) -> u64 {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.dep_a.partitioner.num_partitions()
    }
    fn compute(&self, part: usize, ctx: &TaskContext) -> Vec<(K, (Vec<V>, Vec<W>))> {
        use std::collections::BTreeMap;
        let a = read_shuffle::<(K, V)>(ctx, self.dep_a.shuffle_id, part as u32);
        let b = read_shuffle::<(K, W)>(ctx, self.dep_b.shuffle_id, part as u32);
        ctx.charge(ctx.cost().group((a.len() + b.len()) as u64, 0));
        let mut table: BTreeMap<K, (Vec<V>, Vec<W>)> = BTreeMap::new();
        for (k, v) in a {
            table.entry(k).or_default().0.push(v);
        }
        for (k, w) in b {
            table.entry(k).or_default().1.push(w);
        }
        table.into_iter().collect()
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepMeta>> {
        vec![self.dep_a.clone(), self.dep_b.clone()]
    }
}

// --- result tasks -------------------------------------------------------------

/// Result-stage task: compute the partition and apply the action function.
pub struct ResultTask<T: Element, R: Send + Sync + 'static> {
    /// Lineage to compute.
    pub ops: Arc<dyn RddOps<T>>,
    /// Per-partition action.
    pub f: Arc<dyn Fn(&TaskContext, Vec<T>) -> R + Send + Sync>,
    /// The partition.
    pub part: usize,
}

impl<T: Element, R: Send + Sync + 'static> TaskRunner for ResultTask<T, R> {
    fn run(&self, ctx: &TaskContext) -> TaskOutput {
        let data = self.ops.compute(self.part, ctx);
        ctx.metrics.counter(obs::keys::TASK_RECORDS_OUT).add(data.len() as u64);
        TaskOutput::Result(Arc::new((self.f)(ctx, data)))
    }
}

// --- adaptive result tasks --------------------------------------------------

/// The typed end of [`AdaptiveJobSpec`]: holds the adaptive shuffle-read ops
/// and the action closure, and stamps them into plan-task runners for the
/// scheduler's type-erased side.
pub struct AdaptiveResultJob<T: Element, R: Send + Sync + 'static> {
    /// Adaptive view of the terminal shuffle read.
    pub ops: Arc<dyn AdaptiveResultOps<T>>,
    /// Per-partition action.
    pub f: Arc<dyn Fn(&TaskContext, Vec<T>) -> R + Send + Sync>,
}

impl<T: Element, R: Send + Sync + 'static> AdaptiveJobSpec for AdaptiveResultJob<T, R> {
    fn dep(&self) -> Arc<dyn ShuffleDepMeta> {
        self.ops.dep()
    }
    fn make_task(&self, task: &PlanTask) -> Arc<dyn TaskRunner> {
        match task {
            PlanTask::Buckets { buckets } => Arc::new(AqeBucketsTask {
                ops: self.ops.clone(),
                f: self.f.clone(),
                buckets: buckets.clone(),
            }),
            PlanTask::Slice { bucket, map_lo, map_hi } => Arc::new(AqeSliceTask {
                ops: self.ops.clone(),
                bucket: *bucket,
                map_lo: *map_lo,
                map_hi: *map_hi,
            }),
        }
    }
    fn make_merge_task(&self, bucket: u32, partials: Vec<AnyMsg>) -> Arc<dyn TaskRunner> {
        Arc::new(AqeMergeTask { ops: self.ops.clone(), f: self.f.clone(), bucket, partials })
    }
}

/// Adaptive task over complete buckets: one fetch pass, then post + action
/// per bucket (preserving the job's per-partition result arity).
struct AqeBucketsTask<T: Element, R: Send + Sync + 'static> {
    ops: Arc<dyn AdaptiveResultOps<T>>,
    f: Arc<dyn Fn(&TaskContext, Vec<T>) -> R + Send + Sync>,
    buckets: Vec<u32>,
}

impl<T: Element, R: Send + Sync + 'static> TaskRunner for AqeBucketsTask<T, R> {
    fn run(&self, ctx: &TaskContext) -> TaskOutput {
        let mut out = Vec::with_capacity(self.buckets.len());
        for (bucket, data) in self.ops.compute_buckets(ctx, &self.buckets) {
            ctx.metrics.counter(obs::keys::TASK_RECORDS_OUT).add(data.len() as u64);
            out.push((bucket, Arc::new((self.f)(ctx, data)) as AnyMsg));
        }
        TaskOutput::Result(Arc::new(BucketResults(out)))
    }
}

/// Adaptive task over one map-range slice of a split bucket: fetch + post
/// only (the salted pre-aggregate); the action runs in the merge task.
struct AqeSliceTask<T: Element> {
    ops: Arc<dyn AdaptiveResultOps<T>>,
    bucket: u32,
    map_lo: u32,
    map_hi: u32,
}

impl<T: Element> TaskRunner for AqeSliceTask<T> {
    fn run(&self, ctx: &TaskContext) -> TaskOutput {
        let data = self.ops.compute_slice(ctx, self.bucket, self.map_lo, self.map_hi);
        ctx.metrics.counter(obs::keys::TASK_RECORDS_OUT).add(data.len() as u64);
        TaskOutput::Result(Arc::new(SlicePartial {
            bucket: self.bucket,
            map_lo: self.map_lo,
            data: Arc::new(data) as AnyMsg,
        }))
    }
}

/// Final merge of one split bucket's slice partials, then the action.
struct AqeMergeTask<T: Element, R: Send + Sync + 'static> {
    ops: Arc<dyn AdaptiveResultOps<T>>,
    f: Arc<dyn Fn(&TaskContext, Vec<T>) -> R + Send + Sync>,
    bucket: u32,
    /// Type-erased `Vec<T>` partials in ascending map-range order.
    partials: Vec<AnyMsg>,
}

impl<T: Element, R: Send + Sync + 'static> TaskRunner for AqeMergeTask<T, R> {
    fn run(&self, ctx: &TaskContext) -> TaskOutput {
        let partials: Vec<Vec<T>> = self
            .partials
            .iter()
            .map(|p| p.clone().downcast::<Vec<T>>().expect("slice partial type").as_ref().clone())
            .collect();
        let data = self.ops.merge(ctx, partials);
        ctx.metrics.counter(obs::keys::TASK_RECORDS_OUT).add(data.len() as u64);
        TaskOutput::Result(Arc::new(BucketResults(vec![(
            self.bucket,
            Arc::new((self.f)(ctx, data)) as AnyMsg,
        )])))
    }
}
