//! Partitioners: hash (groupBy/reduceBy/join) and range (sortByKey).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Maps keys to reduce partitions.
pub trait Partitioner<K>: Send + Sync + 'static {
    /// Number of reduce partitions.
    fn num_partitions(&self) -> usize;
    /// Partition of `key`; must be `< num_partitions()`.
    fn partition(&self, key: &K) -> usize;
}

/// Spark's `HashPartitioner`.
pub struct HashPartitioner {
    parts: usize,
}

impl HashPartitioner {
    /// Hash partitioner over `parts` partitions.
    pub fn new(parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        HashPartitioner { parts }
    }
}

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.parts
    }

    fn partition(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.parts as u64) as usize
    }
}

/// Spark's `RangePartitioner`: keys ≤ `bounds[i]` go to partition `i`;
/// larger keys to the last partition. Built from a sampled key set by
/// `sort_by_key` (the sampling job is the extra job the paper's SortByTest
/// breakdown shows).
pub struct RangePartitioner<K> {
    bounds: Vec<K>,
}

impl<K: Ord + Clone> RangePartitioner<K> {
    /// Build bounds from a sample: `parts - 1` quantile split points.
    pub fn from_sample(mut sample: Vec<K>, parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        sample.sort();
        let mut bounds = Vec::with_capacity(parts.saturating_sub(1));
        if !sample.is_empty() {
            for i in 1..parts {
                let idx = (i * sample.len()) / parts;
                bounds.push(sample[idx.min(sample.len() - 1)].clone());
            }
        }
        bounds.dedup();
        RangePartitioner { bounds }
    }

    /// The split points.
    pub fn bounds(&self) -> &[K] {
        &self.bounds
    }

    /// Total partitions (bounds + 1).
    pub fn parts(&self) -> usize {
        self.bounds.len() + 1
    }
}

impl<K: Ord + Clone + Send + Sync + 'static> Partitioner<K> for RangePartitioner<K> {
    fn num_partitions(&self) -> usize {
        self.bounds.len() + 1
    }

    fn partition(&self, key: &K) -> usize {
        match self.bounds.binary_search(key) {
            Ok(i) => i,
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_covers_and_is_deterministic() {
        let p = HashPartitioner::new(7);
        for k in 0u64..1000 {
            let a = Partitioner::<u64>::partition(&p, &k);
            let b = Partitioner::<u64>::partition(&p, &k);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = HashPartitioner::new(0);
    }

    #[test]
    fn range_partitioner_orders_partitions() {
        let sample: Vec<u64> = (0..1000).collect();
        let p = RangePartitioner::from_sample(sample, 4);
        assert_eq!(p.num_partitions(), 4);
        // Keys in ascending order land in non-decreasing partitions.
        let mut last = 0;
        for k in 0u64..1000 {
            let part = p.partition(&k);
            assert!(part >= last);
            last = part;
        }
        assert_eq!(p.partition(&0), 0);
        assert_eq!(p.partition(&u64::MAX), 3);
    }

    #[test]
    fn range_partitioner_roughly_balances() {
        let sample: Vec<u64> = (0..10_000).map(|i| i * 13 % 10_000).collect();
        let p = RangePartitioner::from_sample(sample, 8);
        let mut counts = vec![0usize; p.num_partitions()];
        for k in 0u64..10_000 {
            counts[p.partition(&k)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < min * 3 + 10, "unbalanced: {counts:?}");
    }

    #[test]
    fn range_partitioner_empty_sample_degenerates_to_one() {
        let p = RangePartitioner::<u64>::from_sample(vec![], 4);
        assert_eq!(p.partition(&123), 0);
    }

    #[test]
    fn range_partitioner_duplicate_heavy_sample() {
        let sample = vec![5u64; 1000];
        let p = RangePartitioner::from_sample(sample, 4);
        // All bounds collapse to one: keys ≤ 5 → 0, keys > 5 → 1.
        assert_eq!(p.partition(&1), 0);
        assert_eq!(p.partition(&5), 0);
        assert!(p.partition(&6) >= 1);
    }
}
