//! Broadcast variables (Spark's `Broadcast<T>`).
//!
//! The driver registers a value; each executor fetches it **once** on first
//! use (over `StreamRequest`/`StreamResponse` — under MPI4Spark-Optimized
//! the body travels via MPI, §VI-E) and caches it for every later task.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::Payload;
use parking_lot::Mutex;

use crate::task::TaskContext;

/// Driver-side registry of broadcast values, shared with the driver
/// environment's stream manager.
#[derive(Default)]
pub struct BroadcastRegistry {
    values: Mutex<BTreeMap<u64, Payload>>,
    next_id: AtomicU64,
}

impl BroadcastRegistry {
    /// Register a value; returns its broadcast id.
    pub fn register<T: Any + Send + Sync>(&self, value: Arc<T>, virtual_size: u64) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.values.lock().insert(id, Payload::control_arc(value, virtual_size.max(8)));
        id
    }

    /// Serve a broadcast stream (`/broadcast/{id}`).
    pub fn open(&self, id: u64) -> Result<Payload, String> {
        self.values.lock().get(&id).cloned().ok_or_else(|| format!("no broadcast with id {id}"))
    }

    /// Drop a broadcast (Spark's `Broadcast.destroy`).
    pub fn destroy(&self, id: u64) {
        self.values.lock().remove(&id);
    }
}

/// A handle to a broadcast value, cheap to capture in task closures.
pub struct Broadcast<T: Any + Send + Sync> {
    id: u64,
    virtual_size: u64,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Any + Send + Sync> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            id: self.id,
            virtual_size: self.virtual_size,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Any + Send + Sync> Broadcast<T> {
    pub(crate) fn new(id: u64, virtual_size: u64) -> Self {
        Broadcast { id, virtual_size, _marker: std::marker::PhantomData }
    }

    /// Broadcast id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Declared wire size.
    pub fn virtual_size(&self) -> u64 {
        self.virtual_size
    }

    /// The value, fetched from the driver on this executor's first access
    /// and served from the executor-local cache afterwards. Concurrent
    /// first accesses single-flight: one task fetches, the rest wait on the
    /// cache (Spark's TorrentBroadcast holds the same per-executor lock).
    pub fn get(&self, ctx: &TaskContext) -> Arc<T> {
        loop {
            let claimed = {
                let mut cache = ctx.services.broadcast_cache.lock();
                match cache.get(&self.id) {
                    Some(crate::task::BroadcastSlot::Ready(v)) => {
                        return v.clone().downcast::<T>().expect("broadcast type")
                    }
                    Some(crate::task::BroadcastSlot::Fetching) => false,
                    None => {
                        cache.insert(self.id, crate::task::BroadcastSlot::Fetching);
                        true
                    }
                }
            };
            if claimed {
                let payload = ctx
                    .services
                    .fetch_driver_stream(&format!("/broadcast/{}", self.id))
                    .expect("broadcast reachable on the driver");
                let value = payload.value.clone().expect("broadcast carries a value");
                ctx.services
                    .broadcast_cache
                    .lock()
                    .insert(self.id, crate::task::BroadcastSlot::Ready(value.clone()));
                return value.downcast::<T>().expect("broadcast type");
            }
            simt::sleep(simt::time::micros(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip_and_destroy() {
        let reg = BroadcastRegistry::default();
        let id = reg.register(Arc::new(vec![1u64, 2, 3]), 1 << 20);
        let p = reg.open(id).unwrap();
        assert_eq!(p.virtual_len, 1 << 20);
        let v = p.value_as::<Vec<u64>>().unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        reg.destroy(id);
        assert!(reg.open(id).is_err());
    }

    #[test]
    fn ids_are_unique() {
        let reg = BroadcastRegistry::default();
        let a = reg.register(Arc::new(1u8), 8);
        let b = reg.register(Arc::new(2u8), 8);
        assert_ne!(a, b);
    }
}
