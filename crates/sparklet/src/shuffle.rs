//! The shuffle: map-output tracking, the sort-based writer, and the
//! batched block fetcher (`ShuffleBlockFetcherIterator`).
//!
//! This module generates exactly the message sequences the paper's Fig. 4
//! walks through: a reduce task resolves block locations from the
//! `MapOutputTracker`, serves local blocks straight from its
//! `BlockManager`, and fetches remote blocks through the
//! `BlockTransferService` with `maxBytesInFlight` batching.

use std::collections::BTreeMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::PortAddr;
use parking_lot::Mutex;
use simt::queue::Queue;

use crate::data::{decode_batch, encode_batch, Element};
use crate::rpc::{AnyMsg, ReplyFn, RpcEndpoint, RpcRef};
use crate::storage::{BlockId, StoredBlock};
use crate::task::TaskContext;
use crate::transfer::FetchResult;

/// Panic payload thrown by [`read_shuffle`] when remote blocks cannot be
/// fetched. The executor's task wrapper catches it and reports
/// `TaskOutput::FetchFailed` to the driver, which triggers lineage-based
/// recomputation of the lost map outputs (Spark's `FetchFailedException`
/// path).
#[derive(Debug, Clone, Copy)]
pub struct FetchFailedSignal {
    /// Shuffle whose blocks were unreachable.
    pub shuffle_id: u32,
    /// Executor that failed to serve them; `None` when the failure was a
    /// map-output *metadata* lookup (tracker unreachable), in which case no
    /// executor is quarantined and the partition is simply retried.
    pub exec_id: Option<usize>,
    /// First map output implicated by the failed block, when known.
    pub map_id: Option<u32>,
}

/// Throw a [`FetchFailedSignal`] out of the current task. The signal is
/// control flow, not a bug — the executor's task wrapper always catches it —
/// so the global panic printer is taught (once) to stay quiet about this
/// payload type while still reporting every other panic.
fn throw_fetch_failed(signal: FetchFailedSignal) -> ! {
    static SILENCE: std::sync::Once = std::sync::Once::new();
    SILENCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FetchFailedSignal>().is_none() {
                prev(info);
            }
        }));
    });
    std::panic::panic_any(signal)
}

/// Location and sizes of one map task's output (Spark's `MapStatus`).
#[derive(Debug, Clone)]
pub struct MapStatus {
    /// Map partition that produced the output.
    pub map_id: u32,
    /// Executor holding the blocks.
    pub exec_id: usize,
    /// Address of that executor's shuffle service.
    pub shuffle_addr: PortAddr,
    /// Virtual bytes per reduce partition.
    pub sizes: Arc<Vec<u64>>,
    /// Records per reduce partition.
    pub records: Arc<Vec<u64>>,
}

/// Tracker request: map statuses for one shuffle.
pub struct GetMapOutputs {
    /// Shuffle of interest.
    pub shuffle_id: u32,
}

/// Tracker reply: the statuses plus the epoch they were read under, so
/// executor caches can order their contents against invalidations.
pub struct MapOutputsReply {
    /// Tracker epoch at read time.
    pub epoch: u64,
    /// One status per map partition.
    pub statuses: Arc<Vec<MapStatus>>,
}

/// Driver-side map output registry (Spark's `MapOutputTrackerMaster`).
///
/// State is *epoch-versioned*: every loss of map outputs (executor removal)
/// bumps a monotonic epoch. Task launches carry the current epoch, executor
/// caches are keyed by it, and late completions from attempts launched under
/// an older epoch are discarded by the scheduler.
#[derive(Default)]
pub struct MapOutputTrackerMaster {
    outputs: Mutex<BTreeMap<u32, Vec<Option<MapStatus>>>>,
    epoch: AtomicU64,
}

impl MapOutputTrackerMaster {
    /// Prepare a shuffle with `num_maps` slots.
    pub fn register_shuffle(&self, shuffle_id: u32, num_maps: usize) {
        self.outputs.lock().entry(shuffle_id).or_insert_with(|| vec![None; num_maps]);
    }

    /// Record one finished map task's status.
    pub fn register_map_output(&self, shuffle_id: u32, status: MapStatus) {
        let mut o = self.outputs.lock();
        let slots = o.get_mut(&shuffle_id).expect("shuffle registered before outputs");
        let idx = status.map_id as usize;
        slots[idx] = Some(status);
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advance the epoch after map outputs were lost; returns the new value.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Remove all statuses for an executor (fault injection / recovery);
    /// returns the map ids that must be recomputed per shuffle. Bumps the
    /// epoch when anything was lost.
    pub fn remove_executor(&self, exec_id: usize) -> Vec<(u32, Vec<u32>)> {
        let mut lost = Vec::new();
        for (shuffle, slots) in self.outputs.lock().iter_mut() {
            let mut maps = Vec::new();
            for s in slots.iter_mut() {
                if let Some(st) = s {
                    if st.exec_id == exec_id {
                        maps.push(st.map_id);
                        *s = None;
                    }
                }
            }
            if !maps.is_empty() {
                lost.push((*shuffle, maps));
            }
        }
        if !lost.is_empty() {
            self.bump_epoch();
        }
        lost
    }

    /// True when every map slot is filled.
    pub fn is_complete(&self, shuffle_id: u32) -> bool {
        self.outputs.lock().get(&shuffle_id).is_some_and(|slots| slots.iter().all(Option::is_some))
    }

    /// Map ids of `shuffle_id` with no registered output (empty when
    /// complete; all of them right after registration).
    pub fn missing_maps(&self, shuffle_id: u32) -> Vec<u32> {
        let o = self.outputs.lock();
        let slots = o.get(&shuffle_id).expect("shuffle registered");
        slots.iter().enumerate().filter_map(|(i, s)| s.is_none().then_some(i as u32)).collect()
    }

    /// Per-map size rows for a *complete* shuffle — the AQE planner's input
    /// — plus the epoch they were read under. The epoch is re-checked after
    /// the read: if a concurrent executor removal bumped it mid-read, the
    /// snapshot is discarded and re-taken, so a returned matrix is always
    /// internally consistent with its epoch.
    pub fn size_matrix(&self, shuffle_id: u32) -> (u64, Vec<Arc<Vec<u64>>>) {
        loop {
            let epoch = self.epoch();
            let rows: Vec<Arc<Vec<u64>>> = {
                let o = self.outputs.lock();
                let slots = o.get(&shuffle_id).expect("shuffle registered");
                slots
                    .iter()
                    .map(|s| s.as_ref().expect("shuffle complete before planning").sizes.clone())
                    .collect()
            };
            if self.epoch() == epoch {
                return (epoch, rows);
            }
        }
    }

    fn statuses(&self, shuffle_id: u32) -> Arc<Vec<MapStatus>> {
        let o = self.outputs.lock();
        let slots = o.get(&shuffle_id).expect("shuffle registered");
        Arc::new(
            slots
                .iter()
                .map(|s| s.clone().expect("all map outputs registered before reads"))
                .collect(),
        )
    }
}

impl RpcEndpoint for MapOutputTrackerMaster {
    fn receive(&self, msg: AnyMsg, reply: Option<ReplyFn>) {
        let Ok(req) = msg.downcast::<GetMapOutputs>() else {
            return;
        };
        if let Some(reply) = reply {
            // Read the epoch before the statuses: a concurrent bump then
            // yields a stale epoch with fresh statuses, which only makes the
            // client re-fetch — never serve stale locations as current.
            let epoch = self.epoch();
            reply(Arc::new(MapOutputsReply { epoch, statuses: self.statuses(req.shuffle_id) }));
        }
    }
}

/// One cached map-output table with the epoch it was fetched under.
struct CachedOutputs {
    epoch: u64,
    statuses: Arc<Vec<MapStatus>>,
}

/// Executor-side tracker client with an epoch-aware per-shuffle cache.
#[derive(Clone)]
pub struct MapOutputClient {
    tracker: RpcRef,
    cache: Arc<Mutex<BTreeMap<u32, CachedOutputs>>>,
    /// Highest epoch this executor has observed (from task launches or
    /// invalidations); cached tables older than it are dropped.
    seen_epoch: Arc<AtomicU64>,
    /// Wait between tracker lookup retries before giving up (virtual ns).
    retry_wait_ns: u64,
}

impl MapOutputClient {
    /// Tracker lookup attempts before the failure surfaces as a
    /// metadata-level [`FetchFailedSignal`].
    const ASK_ATTEMPTS: u32 = 3;

    /// Client talking to the driver's tracker endpoint.
    pub fn new(tracker: RpcRef) -> Self {
        MapOutputClient {
            tracker,
            cache: Arc::default(),
            seen_epoch: Arc::default(),
            retry_wait_ns: simt::time::millis(50),
        }
    }

    /// Statuses for `shuffle_id` (cached after the first fetch — Spark
    /// executors do the same, which matters because every reduce task on
    /// the executor needs the same table). Entries fetched under an epoch
    /// older than the executor's observed one are refreshed. An unreachable
    /// tracker is retried a few times, then reported as a metadata fetch
    /// failure (`exec_id: None`) so the scheduler retries the partition
    /// without quarantining anyone.
    pub fn get(&self, shuffle_id: u32) -> Arc<Vec<MapStatus>> {
        let floor = self.seen_epoch.load(Ordering::SeqCst);
        if let Some(c) = self.cache.lock().get(&shuffle_id) {
            if c.epoch >= floor {
                return c.statuses.clone();
            }
        }
        let mut attempt = 0;
        let reply = loop {
            match self.tracker.ask::<MapOutputsReply>(GetMapOutputs { shuffle_id }) {
                Ok(r) => break r,
                Err(_) => {
                    attempt += 1;
                    if attempt >= Self::ASK_ATTEMPTS {
                        throw_fetch_failed(FetchFailedSignal {
                            shuffle_id,
                            exec_id: None,
                            map_id: None,
                        });
                    }
                    simt::sleep(self.retry_wait_ns);
                }
            }
        };
        let statuses = reply.statuses.clone();
        self.cache
            .lock()
            .insert(shuffle_id, CachedOutputs { epoch: reply.epoch, statuses: statuses.clone() });
        statuses
    }

    /// Raise the observed epoch (from a task launch or an invalidation
    /// broadcast); tables cached under older epochs will be re-fetched.
    pub fn observe_epoch(&self, epoch: u64) {
        self.seen_epoch.fetch_max(epoch, Ordering::SeqCst);
    }

    /// Drop a cached table because its locations changed as of `epoch`
    /// (the scheduler's `InvalidateShuffle` broadcast).
    pub fn invalidate_as_of(&self, shuffle_id: u32, epoch: u64) {
        self.observe_epoch(epoch);
        let mut cache = self.cache.lock();
        if cache.get(&shuffle_id).is_some_and(|c| c.epoch < epoch) {
            cache.remove(&shuffle_id);
        }
    }

    /// Drop a cached table unconditionally (local fetch-failure path: the
    /// retry must re-resolve locations whatever the epoch).
    pub fn invalidate(&self, shuffle_id: u32) {
        self.cache.lock().remove(&shuffle_id);
    }
}

// --- shuffle write ---------------------------------------------------------

/// Partition, serialize, and store one map task's output; returns the
/// `MapStatus`. `partition_of` maps each record to its reduce partition.
pub fn write_shuffle<T: Element>(
    ctx: &TaskContext,
    shuffle_id: u32,
    map_id: u32,
    num_reduces: usize,
    records: Vec<T>,
    partition_of: impl Fn(&T) -> usize,
) -> MapStatus {
    let mut buckets: Vec<Vec<T>> = (0..num_reduces).map(|_| Vec::new()).collect();
    let mut total_bytes = 0u64;
    let n_records = records.len() as u64;
    for r in records {
        total_bytes += r.virtual_size();
        let p = partition_of(&r);
        debug_assert!(p < num_reduces, "partitioner out of range");
        buckets[p].push(r);
    }
    // Bucketing + serialization cost (the sort-based writer's write path).
    let cost = ctx.cost();
    ctx.charge(cost.group(n_records, 0) + cost.ser(n_records, total_bytes));

    let bm = &ctx.services.block_manager;
    let mut sizes = Vec::with_capacity(num_reduces);
    let mut counts = Vec::with_capacity(num_reduces);
    for (reduce_id, bucket) in buckets.into_iter().enumerate() {
        let (bytes, virt) = encode_batch(&bucket);
        sizes.push(virt);
        counts.push(bucket.len() as u64);
        bm.put(
            BlockId::Shuffle { shuffle_id, map_id, reduce_id: reduce_id as u32 },
            StoredBlock { data: bytes, virtual_len: virt, records: bucket.len() as u64 },
        );
    }
    MapStatus {
        map_id,
        exec_id: ctx.services.exec_id,
        shuffle_addr: ctx.services.shuffle_addr,
        sizes: Arc::new(sizes),
        records: Arc::new(counts),
    }
}

// --- shuffle read ----------------------------------------------------------

/// Read every block of `reduce_id`, local blocks directly and remote blocks
/// through the batched fetcher. Returns the decoded records.
pub fn read_shuffle<T: Element>(ctx: &TaskContext, shuffle_id: u32, reduce_id: u32) -> Vec<T> {
    let obs = ctx.services.net.obs().clone();
    let _span = obs.is_traced().then(|| {
        obs.span("spark.shuffle.fetch", obs::kv! {"shuffle" => shuffle_id, "reduce" => reduce_id})
    });
    let mut buckets = read_shuffle_buckets(ctx, shuffle_id, &[reduce_id], None);
    buckets.pop().expect("one bucket requested").1
}

/// Generalized shuffle read behind both the static and the adaptive paths:
/// fetch any set of reduce buckets, optionally restricted to map partitions
/// `map_lo..map_hi` (an AQE slice of one split bucket), in *one* batched
/// fetch pass. Returns one `(reduce_id, records)` entry per requested bucket
/// in request order (empty buckets included).
///
/// With a single bucket and no map range this is byte-for-byte the classic
/// `read_shuffle`: same status walk, same request packing, same charge
/// order, same metrics — the static path merely wraps it.
pub fn read_shuffle_buckets<T: Element>(
    ctx: &TaskContext,
    shuffle_id: u32,
    reduce_ids: &[u32],
    map_range: Option<(u32, u32)>,
) -> Vec<(u32, Vec<T>)> {
    let statuses = ctx.services.map_outputs.get(shuffle_id);
    let conf = &ctx.services.conf;
    let cost = ctx.cost();
    let my_exec = ctx.services.exec_id;
    let bm = ctx.services.block_manager.clone();

    // Split local vs remote, grouping remote blocks per serving executor.
    let mut local: Vec<BlockId> = Vec::new();
    let mut remote: BTreeMap<usize, (PortAddr, Vec<(BlockId, u64)>)> = BTreeMap::new();
    for st in statuses.iter() {
        if let Some((lo, hi)) = map_range {
            if st.map_id < lo || st.map_id >= hi {
                continue; // outside this slice's map range
            }
        }
        for &reduce_id in reduce_ids {
            let size = st.sizes[reduce_id as usize];
            if st.records[reduce_id as usize] == 0 && size == 0 {
                continue; // empty bucket: Spark skips zero-size blocks
            }
            let id = BlockId::Shuffle { shuffle_id, map_id: st.map_id, reduce_id };
            if st.exec_id == my_exec {
                local.push(id);
            } else {
                remote
                    .entry(st.exec_id)
                    .or_insert_with(|| (st.shuffle_addr, Vec::new()))
                    .1
                    .push((id, size));
            }
        }
    }

    // Build fetch requests ≤ target_request_size per request (Spark's
    // grouping inside ShuffleBlockFetcherIterator).
    struct Request {
        addr: PortAddr,
        exec_id: usize,
        blocks: Vec<BlockId>,
        bytes: u64,
    }
    let mut requests: Vec<Request> = Vec::new();
    // BTreeMap iteration is already ordered by executor id — deterministic.
    for (exec_id, (addr, blocks)) in remote {
        let mut cur = Request { addr, exec_id, blocks: Vec::new(), bytes: 0 };
        for (id, size) in blocks {
            if cur.bytes > 0 && cur.bytes + size > conf.target_request_size {
                requests.push(std::mem::replace(
                    &mut cur,
                    Request { addr, exec_id, blocks: Vec::new(), bytes: 0 },
                ));
            }
            cur.blocks.push(id);
            cur.bytes += size;
        }
        if !cur.blocks.is_empty() {
            requests.push(cur);
        }
    }
    // Block id -> serving executor, for failure attribution.
    let exec_of: BTreeMap<BlockId, usize> =
        requests.iter().flat_map(|r| r.blocks.iter().map(move |b| (*b, r.exec_id))).collect();

    // One output vector per requested bucket; decoded blocks are routed by
    // the `reduce_id` their `BlockId` carries.
    let mut outs: Vec<(u32, Vec<T>)> = reduce_ids.iter().map(|r| (*r, Vec::new())).collect();
    let slot: BTreeMap<u32, usize> = reduce_ids.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    let bucket_of = |id: &BlockId| -> usize {
        match id {
            BlockId::Shuffle { reduce_id, .. } => slot[reduce_id],
            BlockId::Rdd { .. } => unreachable!("shuffle fetch returned an RDD block"),
        }
    };
    let mut fetch_wait = 0u64;
    let mut remote_bytes = 0u64;
    let mut local_bytes = 0u64;

    // Issue requests keeping at most max_bytes_in_flight outstanding. The
    // accounting is chunk-granular: each arriving chunk immediately frees
    // its decoded bytes from the budget, so follow-on requests depart while
    // the rest of the same request's chunks are still on the wire — exactly
    // Spark's ShuffleBlockFetcherIterator, which releases budget per landed
    // buffer, not per request.
    let sink: Queue<FetchResult> = Queue::new();
    let mut next_req = 0usize;
    let mut in_flight_bytes = 0u64;
    let mut open_reqs = 0usize;
    let transfer = ctx.services.transfer.clone();
    while next_req < requests.len()
        && (in_flight_bytes == 0
            || in_flight_bytes + requests[next_req].bytes <= conf.max_bytes_in_flight)
    {
        let r = &requests[next_req];
        transfer.fetch_blocks(r.addr, r.blocks.clone(), sink.clone());
        in_flight_bytes += r.bytes;
        open_reqs += 1;
        next_req += 1;
    }

    // Drain local blocks while remote fetches are in flight (Spark reads
    // local blocks first for the same reason).
    for id in local {
        let b = bm.get(id).expect("local shuffle block present");
        local_bytes += b.virtual_len;
        ctx.charge(cost.deser(b.records, b.virtual_len));
        outs[bucket_of(&id)].1.extend(decode_batch::<T>(&b.data));
    }

    while open_reqs > 0 {
        let t0 = simt::now();
        let res = sink.recv().expect("fetch sink open");
        fetch_wait += simt::now() - t0;
        let blocks = match res.result {
            Ok(b) => b,
            Err(_e) => {
                let first = res.blocks.first();
                let exec_id = first.and_then(|b| exec_of.get(b)).copied();
                let map_id = first.and_then(|b| match b {
                    BlockId::Shuffle { map_id, .. } => Some(*map_id),
                    BlockId::Rdd { .. } => None,
                });
                // Invalidate the cached map-output table so the retry sees
                // the recomputed locations.
                ctx.services.map_outputs.invalidate(shuffle_id);
                throw_fetch_failed(FetchFailedSignal { shuffle_id, exec_id, map_id });
            }
        };
        if res.last {
            open_reqs -= 1;
        }
        let mut freed = 0u64;
        for (id, b) in res.blocks.iter().zip(blocks) {
            freed += b.virtual_len;
            remote_bytes += b.virtual_len;
            ctx.charge(cost.deser(b.records, b.virtual_len));
            outs[bucket_of(id)].1.extend(decode_batch::<T>(&b.data));
        }
        in_flight_bytes = in_flight_bytes.saturating_sub(freed);
        while next_req < requests.len()
            && (in_flight_bytes == 0
                || in_flight_bytes + requests[next_req].bytes <= conf.max_bytes_in_flight)
        {
            let r = &requests[next_req];
            transfer.fetch_blocks(r.addr, r.blocks.clone(), sink.clone());
            in_flight_bytes += r.bytes;
            open_reqs += 1;
            next_req += 1;
        }
    }

    ctx.metrics.counter(obs::keys::TASK_FETCH_WAIT_NS).add(fetch_wait);
    ctx.metrics.counter(obs::keys::TASK_REMOTE_BYTES).add(remote_bytes);
    ctx.metrics.counter(obs::keys::TASK_LOCAL_BYTES).add(local_bytes);
    outs
}

/// Group `(K, V)` records into `(K, Vec<V>)` with hash-aggregation costs
/// charged (reduce side of `groupByKey`).
pub fn group_pairs<K: Element + Hash + Eq + Ord, V: Element>(
    ctx: &TaskContext,
    pairs: Vec<(K, V)>,
) -> Vec<(K, Vec<V>)> {
    let n = pairs.len() as u64;
    let bytes: u64 = pairs.iter().map(|p| p.1.virtual_size()).sum();
    ctx.charge(ctx.cost().group(n, bytes));
    let mut map: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for (k, v) in pairs {
        map.entry(k).or_default().push(v);
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(map_id: u32, exec: usize, sizes: Vec<u64>) -> MapStatus {
        MapStatus {
            map_id,
            exec_id: exec,
            shuffle_addr: PortAddr { node: exec, port: 1 },
            records: Arc::new(sizes.iter().map(|s| s / 8).collect()),
            sizes: Arc::new(sizes),
        }
    }

    #[test]
    fn tracker_registers_and_serves() {
        let t = MapOutputTrackerMaster::default();
        t.register_shuffle(1, 2);
        assert!(!t.is_complete(1));
        t.register_map_output(1, status(0, 0, vec![8, 16]));
        t.register_map_output(1, status(1, 1, vec![24, 0]));
        assert!(t.is_complete(1));
        let s = t.statuses(1);
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].exec_id, 1);
    }

    #[test]
    fn remove_executor_clears_its_outputs() {
        let t = MapOutputTrackerMaster::default();
        t.register_shuffle(1, 3);
        t.register_map_output(1, status(0, 0, vec![8]));
        t.register_map_output(1, status(1, 1, vec![8]));
        t.register_map_output(1, status(2, 0, vec![8]));
        let lost = t.remove_executor(0);
        assert_eq!(lost, vec![(1, vec![0, 2])]);
        assert!(!t.is_complete(1));
    }
}
