//! Adaptive query execution: size- and skew-aware reduce planning.
//!
//! At the map→reduce stage boundary the scheduler knows, from the
//! registered [`MapStatus`](crate::shuffle::MapStatus) sizes, exactly how
//! many virtual bytes every `(map, reduce)` cell of the shuffle holds.
//! [`plan`] turns that matrix into a [`ReducePlan`]:
//!
//! * runs of adjacent *tiny* reduce buckets are **coalesced** into one task
//!   (fewer task overheads, fewer fetch requests);
//! * a **skewed** bucket — larger than `skew_factor ×` the median non-empty
//!   bucket and above the coalesce target — is **split** by map range, so
//!   several reducers each fetch and pre-aggregate a disjoint slice of the
//!   same bucket (the "salt" is the map range itself), followed by one
//!   final merge task per split bucket;
//! * everything else passes through as a singleton task.
//!
//! The planner is a *pure function* of the size matrix and the
//! [`AqeConf`](crate::config::AqeConf): identical inputs always produce an
//! identical plan, which is what makes adaptive execution replayable and
//! lets recovery re-derive the same plan after an epoch bump (recomputed
//! map outputs carry identical sizes — the data is deterministic).
//!
//! The plan is a **partition of the reduce space**: every `(map, reduce)`
//! cell is covered by exactly one task ([`ReducePlan::verify_partition_of_space`]
//! machine-checks it, and a proptest in `tests/aqe_tests.rs` pins it for
//! arbitrary matrices).

use std::sync::Arc;

use crate::config::AqeConf;
use crate::rdd::{ShuffleDepMeta, TaskRunner};
use crate::rpc::AnyMsg;

/// One schedulable unit of an adaptive reduce stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanTask {
    /// Fetch and reduce a contiguous run of *complete* reduce buckets in
    /// one pass. A singleton run is the static behaviour; a longer run is a
    /// coalesce of adjacent tiny buckets.
    Buckets {
        /// The reduce buckets, ascending and contiguous.
        buckets: Vec<u32>,
    },
    /// Fetch map partitions `map_lo..map_hi` of one oversized bucket and
    /// pre-aggregate the slice; a final merge task combines the slices.
    Slice {
        /// The split bucket.
        bucket: u32,
        /// First map partition of the slice (inclusive).
        map_lo: u32,
        /// One past the last map partition of the slice.
        map_hi: u32,
    },
}

/// The adaptive reduce plan for one shuffle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducePlan {
    /// Map partition count of the planned shuffle.
    pub num_maps: u32,
    /// Reduce bucket count of the planned shuffle.
    pub num_reduces: u32,
    /// The tasks, in ascending bucket order (slices of one bucket in
    /// ascending `map_lo` order).
    pub tasks: Vec<PlanTask>,
    /// Buckets that were split and therefore need a merge phase, ascending.
    pub split_buckets: Vec<u32>,
}

impl ReducePlan {
    /// Check that every `(map, reduce)` cell is covered by exactly one
    /// task — the invariant adaptive correctness rests on.
    pub fn verify_partition_of_space(&self) -> Result<(), String> {
        let (m, r) = (self.num_maps as usize, self.num_reduces as usize);
        let mut cover = vec![0u32; m * r];
        for t in &self.tasks {
            match t {
                PlanTask::Buckets { buckets } => {
                    for &b in buckets {
                        if b as usize >= r {
                            return Err(format!("bucket {b} out of range {r}"));
                        }
                        for map in 0..m {
                            cover[map * r + b as usize] += 1;
                        }
                    }
                }
                PlanTask::Slice { bucket, map_lo, map_hi } => {
                    if *bucket as usize >= r {
                        return Err(format!("slice bucket {bucket} out of range {r}"));
                    }
                    if map_lo >= map_hi || *map_hi as usize > m {
                        return Err(format!("bad slice range {map_lo}..{map_hi} over {m} maps"));
                    }
                    for map in *map_lo..*map_hi {
                        cover[map as usize * r + *bucket as usize] += 1;
                    }
                }
            }
        }
        for (i, c) in cover.iter().enumerate() {
            if *c != 1 {
                return Err(format!(
                    "cell (map {}, reduce {}) covered {c} times",
                    i / r.max(1),
                    i % r.max(1)
                ));
            }
        }
        Ok(())
    }

    /// Number of slice tasks across all split buckets.
    pub fn slice_count(&self) -> usize {
        self.tasks.iter().filter(|t| matches!(t, PlanTask::Slice { .. })).count()
    }

    /// Number of coalesced tasks (runs of more than one bucket).
    pub fn coalesced_count(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t, PlanTask::Buckets { buckets } if buckets.len() > 1))
            .count()
    }
}

/// Build the adaptive reduce plan for a shuffle whose `(map, reduce)` cell
/// sizes are `sizes[map][reduce]` virtual bytes. Pure and deterministic:
/// equal inputs yield equal plans.
pub fn plan<S: AsRef<[u64]>>(sizes: &[S], conf: &AqeConf) -> ReducePlan {
    let num_maps = sizes.len() as u32;
    let num_reduces = sizes.first().map_or(0, |s| s.as_ref().len()) as u32;
    debug_assert!(
        sizes.iter().all(|s| s.as_ref().len() == num_reduces as usize),
        "ragged size matrix"
    );

    // Per-bucket totals.
    let mut bucket_bytes = vec![0u64; num_reduces as usize];
    for row in sizes {
        for (r, sz) in row.as_ref().iter().enumerate() {
            bucket_bytes[r] += *sz;
        }
    }

    // Median of the non-empty buckets anchors the skew test; an empty
    // shuffle (or one bucket) can never be skewed.
    let mut nonzero: Vec<u64> = bucket_bytes.iter().copied().filter(|b| *b > 0).collect();
    nonzero.sort_unstable();
    let median = if nonzero.is_empty() { 0 } else { nonzero[nonzero.len() / 2] };

    let is_split = |bytes: u64| -> bool {
        num_maps >= 2
            && median > 0
            && bytes > conf.target_bytes
            && (bytes as f64) > conf.skew_factor * median as f64
    };

    let mut tasks = Vec::new();
    let mut split_buckets = Vec::new();
    let mut run: Vec<u32> = Vec::new();
    let mut run_bytes = 0u64;
    let flush = |run: &mut Vec<u32>, run_bytes: &mut u64, tasks: &mut Vec<PlanTask>| {
        if !run.is_empty() {
            tasks.push(PlanTask::Buckets { buckets: std::mem::take(run) });
            *run_bytes = 0;
        }
    };

    for r in 0..num_reduces {
        let bytes = bucket_bytes[r as usize];
        if is_split(bytes) {
            // Close the pending coalesce run, then emit map-range slices.
            flush(&mut run, &mut run_bytes, &mut tasks);
            let want = bytes.div_ceil(conf.target_bytes.max(1));
            let k =
                want.min(u64::from(conf.max_slices.max(2))).min(u64::from(num_maps)).max(2) as u32;
            if k < 2 {
                tasks.push(PlanTask::Buckets { buckets: vec![r] });
                continue;
            }
            split_buckets.push(r);
            // Greedy byte-balanced contiguous map ranges: close a slice once
            // it reaches its fair share, keeping one map per pending slice.
            let per_slice = bytes.div_ceil(u64::from(k));
            let mut lo = 0u32;
            let mut acc = 0u64;
            let mut emitted = 0u32;
            for map in 0..num_maps {
                acc += sizes[map as usize].as_ref()[r as usize];
                let maps_left = num_maps - map - 1;
                let slices_left = k - emitted - 1;
                let must_close = maps_left <= slices_left;
                if (acc >= per_slice || must_close) && emitted + 1 < k {
                    tasks.push(PlanTask::Slice { bucket: r, map_lo: lo, map_hi: map + 1 });
                    lo = map + 1;
                    acc = 0;
                    emitted += 1;
                }
            }
            tasks.push(PlanTask::Slice { bucket: r, map_lo: lo, map_hi: num_maps });
            continue;
        }
        // Coalesce path: extend the current run unless the bucket would push
        // it past the target (an oversized-but-not-skewed bucket rides as a
        // singleton run).
        if !run.is_empty() && run_bytes + bytes > conf.target_bytes {
            flush(&mut run, &mut run_bytes, &mut tasks);
        }
        run.push(r);
        run_bytes += bytes;
        if run_bytes >= conf.target_bytes {
            flush(&mut run, &mut run_bytes, &mut tasks);
        }
    }
    flush(&mut run, &mut run_bytes, &mut tasks);

    let p = ReducePlan { num_maps, num_reduces, tasks, split_buckets };
    debug_assert_eq!(p.verify_partition_of_space(), Ok(()));
    p
}

// --- adaptive job bridge ----------------------------------------------------
//
// The scheduler is type-erased; the RDD layer is typed. `AdaptiveJobSpec`
// is the seam: the RDD layer builds one per adaptive job (capturing the
// element type and the action closure), and the scheduler only ever asks it
// for task runners. Outputs ride back through `TaskOutput::Result` wrapped
// in the two marker types below so the scheduler can route them without
// knowing the element type.

/// Result of an adaptive task covering complete buckets: one action result
/// per bucket, in the task's bucket order.
pub struct BucketResults(pub Vec<(u32, AnyMsg)>);

/// Partial result of one map-range slice of a split bucket, to be merged.
pub struct SlicePartial {
    /// The split bucket.
    pub bucket: u32,
    /// First map partition of the slice (orders the merge deterministically).
    pub map_lo: u32,
    /// Type-erased `Vec<U>` partial.
    pub data: AnyMsg,
}

/// Everything the scheduler needs to run one job adaptively.
pub trait AdaptiveJobSpec: Send + Sync + 'static {
    /// The shuffle the reduce plan is built over.
    fn dep(&self) -> Arc<dyn ShuffleDepMeta>;
    /// Build the runner for one plan task. `Buckets` runners return
    /// [`BucketResults`]; `Slice` runners return [`SlicePartial`].
    fn make_task(&self, task: &PlanTask) -> Arc<dyn TaskRunner>;
    /// Build the merge runner for one split bucket over its slice partials
    /// (ascending `map_lo` order). Returns [`BucketResults`] with one entry.
    fn make_merge_task(&self, bucket: u32, partials: Vec<AnyMsg>) -> Arc<dyn TaskRunner>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AqeConf;

    fn conf(target: u64, skew: f64) -> AqeConf {
        AqeConf { enabled: true, target_bytes: target, skew_factor: skew, max_slices: 4 }
    }

    /// sizes[map][reduce] from per-bucket totals, spread evenly over maps.
    fn even(maps: usize, buckets: &[u64]) -> Vec<Vec<u64>> {
        (0..maps).map(|_| buckets.iter().map(|b| b / maps as u64).collect()).collect()
    }

    #[test]
    fn uniform_buckets_pass_through_as_singletons() {
        let sizes = even(4, &[100, 100, 100, 100]);
        let p = plan(&sizes, &conf(100, 4.0));
        assert_eq!(p.tasks.len(), 4);
        assert!(p.split_buckets.is_empty());
        assert_eq!(p.verify_partition_of_space(), Ok(()));
    }

    #[test]
    fn tiny_buckets_coalesce_up_to_target() {
        let sizes = even(2, &[10, 10, 10, 10, 10, 10]);
        let p = plan(&sizes, &conf(30, 4.0));
        assert_eq!(p.verify_partition_of_space(), Ok(()));
        assert_eq!(p.tasks.len(), 2, "{:?}", p.tasks);
        assert_eq!(p.tasks[0], PlanTask::Buckets { buckets: vec![0, 1, 2] });
        assert_eq!(p.tasks[1], PlanTask::Buckets { buckets: vec![3, 4, 5] });
    }

    #[test]
    fn empty_buckets_fold_into_neighbouring_runs() {
        let sizes = even(2, &[0, 0, 8, 0, 0, 0, 8, 0]);
        let p = plan(&sizes, &conf(16, 4.0));
        assert_eq!(p.verify_partition_of_space(), Ok(()));
        // Zero-byte buckets ride along with their neighbours; the run
        // closes when it reaches the target (buckets 0..=6 hold 16 bytes),
        // leaving the trailing empty bucket in a second run.
        assert_eq!(p.tasks.len(), 2, "{:?}", p.tasks);
        assert_eq!(p.tasks[0], PlanTask::Buckets { buckets: (0..7).collect() });
        assert_eq!(p.tasks[1], PlanTask::Buckets { buckets: vec![7] });
    }

    #[test]
    fn skewed_bucket_splits_by_map_range() {
        let sizes = even(4, &[1000, 10, 10, 10]);
        let p = plan(&sizes, &conf(100, 4.0));
        assert_eq!(p.verify_partition_of_space(), Ok(()));
        assert_eq!(p.split_buckets, vec![0]);
        let slices: Vec<_> =
            p.tasks.iter().filter(|t| matches!(t, PlanTask::Slice { .. })).collect();
        assert_eq!(slices.len(), 4, "{:?}", p.tasks);
        assert_eq!(slices[0], &PlanTask::Slice { bucket: 0, map_lo: 0, map_hi: 1 });
        assert_eq!(slices[3], &PlanTask::Slice { bucket: 0, map_lo: 3, map_hi: 4 });
    }

    #[test]
    fn oversized_but_even_buckets_do_not_split() {
        // Every bucket over target, none skewed relative to the median.
        let sizes = even(4, &[400, 400, 400, 400]);
        let p = plan(&sizes, &conf(100, 4.0));
        assert!(p.split_buckets.is_empty());
        assert_eq!(p.tasks.len(), 4);
    }

    #[test]
    fn single_map_never_splits() {
        let sizes = even(1, &[1000, 10]);
        let p = plan(&sizes, &conf(100, 2.0));
        assert!(p.split_buckets.is_empty());
        assert_eq!(p.verify_partition_of_space(), Ok(()));
    }

    #[test]
    fn empty_matrix_yields_one_task_per_nothing() {
        let sizes: Vec<Vec<u64>> = vec![];
        let p = plan(&sizes, &conf(100, 4.0));
        assert_eq!(p.tasks.len(), 0);
        assert_eq!(p.verify_partition_of_space(), Ok(()));
    }

    #[test]
    fn all_zero_buckets_coalesce_to_one_task() {
        let sizes = even(3, &[0, 0, 0, 0]);
        let p = plan(&sizes, &conf(100, 4.0));
        assert_eq!(p.tasks.len(), 1);
        assert_eq!(p.tasks[0], PlanTask::Buckets { buckets: vec![0, 1, 2, 3] });
    }

    #[test]
    fn plan_is_deterministic() {
        let sizes = even(5, &[7, 900, 3, 0, 42, 42, 900, 1]);
        let c = conf(50, 3.0);
        assert_eq!(plan(&sizes, &c), plan(&sizes, &c));
    }
}
