//! Engine configuration and the compute cost model.

/// CPU cost model for task execution. Costs are dominated by per-*virtual*-
/// byte terms (so benchmark workloads can shrink real record counts without
/// distorting ratios) with small per-record terms on top.
///
/// Baseline figures approximate a ~2.5 GHz Xeon running JVM Spark: record
/// generation ≈ cheap PRNG + object churn, ser/deser ≈ Kryo-class
/// throughput, grouping ≈ hash-map inserts, sorting ≈ TimSort. They are
/// deliberately transport-independent: the paper's datagen/write stages are
/// nearly identical across Vanilla/RDMA/MPI, and only the shuffle-read stage
/// differs (§VII-E) — which is exactly what emerges from charging identical
/// compute everywhere and letting the fabric model differentiate.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Data generation per record (ns).
    pub gen_record_ns: f64,
    /// Data generation per virtual byte (ns/B).
    pub gen_byte_ns: f64,
    /// Narrow transformation (map/filter) per record (ns).
    pub map_record_ns: f64,
    /// Narrow transformation per virtual byte (ns/B).
    pub map_byte_ns: f64,
    /// Serialization per record (ns).
    pub ser_record_ns: f64,
    /// Serialization per virtual byte (ns/B).
    pub ser_byte_ns: f64,
    /// Deserialization per record (ns).
    pub deser_record_ns: f64,
    /// Deserialization per virtual byte (ns/B).
    pub deser_byte_ns: f64,
    /// Hash-aggregation insert per record (ns).
    pub group_record_ns: f64,
    /// Hash-aggregation per virtual byte (ns/B).
    pub group_byte_ns: f64,
    /// Sort cost per record per log2(n) (ns).
    pub sort_record_ns: f64,
    /// Sort cost per virtual byte (ns/B) — JVM comparison-sorting of
    /// 100-byte-class records runs well under memory bandwidth, which is
    /// why the paper's TeraSort shows near-parity across transports while
    /// GroupBy (cheap reduce side) shows 4x.
    pub sort_byte_ns: f64,
    /// Fixed per-task overhead: scheduling, JVM task setup (ns).
    pub task_overhead_ns: u64,
    /// Floating-point work per element of an ML kernel inner loop (ns).
    pub flop_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gen_record_ns: 50.0,
            gen_byte_ns: 13.0,
            map_record_ns: 20.0,
            map_byte_ns: 0.3,
            ser_record_ns: 30.0,
            ser_byte_ns: 9.0,
            deser_record_ns: 35.0,
            deser_byte_ns: 0.4,
            group_record_ns: 30.0,
            group_byte_ns: 0.2,
            sort_record_ns: 40.0,
            sort_byte_ns: 0.8,
            task_overhead_ns: 2_000_000,
            flop_ns: 1.0,
        }
    }
}

impl CostModel {
    /// Generation cost for `records` records of `bytes` total virtual size.
    pub fn gen(&self, records: u64, bytes: u64) -> u64 {
        (self.gen_record_ns * records as f64 + self.gen_byte_ns * bytes as f64) as u64
    }

    /// Narrow-op cost.
    pub fn map(&self, records: u64, bytes: u64) -> u64 {
        (self.map_record_ns * records as f64 + self.map_byte_ns * bytes as f64) as u64
    }

    /// Serialization cost.
    pub fn ser(&self, records: u64, bytes: u64) -> u64 {
        (self.ser_record_ns * records as f64 + self.ser_byte_ns * bytes as f64) as u64
    }

    /// Deserialization cost.
    pub fn deser(&self, records: u64, bytes: u64) -> u64 {
        (self.deser_record_ns * records as f64 + self.deser_byte_ns * bytes as f64) as u64
    }

    /// Hash-aggregation cost.
    pub fn group(&self, records: u64, bytes: u64) -> u64 {
        (self.group_record_ns * records as f64 + self.group_byte_ns * bytes as f64) as u64
    }

    /// Sort cost for `records` records spanning `bytes` virtual bytes.
    pub fn sort(&self, records: u64, bytes: u64) -> u64 {
        let byte_cost = self.sort_byte_ns * bytes as f64;
        if records < 2 {
            return byte_cost as u64;
        }
        (self.sort_record_ns * records as f64 * (records as f64).log2() + byte_cost) as u64
    }
}

/// Straggler-speculation policy (`spark.speculation.*` analogs).
///
/// The scheduler's event loop wakes every `interval_ns` of virtual time;
/// once at least `quantile` of a stage's tasks have finished, any task
/// running longer than `multiplier × median(finished task durations)`
/// (floored at `min_runtime_ns`) gets one speculative copy launched on a
/// different healthy executor. First finish wins; the duplicate's late
/// result is dropped by the (stage, partition, epoch) dedup check.
#[derive(Debug, Clone, Copy)]
pub struct SpeculationConf {
    /// Master switch (`spark.speculation`). Off by default: clean-fabric
    /// benchmark timelines stay identical to the non-speculative engine.
    pub enabled: bool,
    /// Virtual period of the speculation check (`spark.speculation.interval`).
    pub interval_ns: u64,
    /// How many times slower than the median a task must be
    /// (`spark.speculation.multiplier`).
    pub multiplier: f64,
    /// Fraction of tasks that must finish before the median is trusted
    /// (`spark.speculation.quantile`). Spark defaults to 0.75; the engine
    /// defaults to 0.5 so a crashed executor holding up to half a stage's
    /// tasks cannot starve the estimator.
    pub quantile: f64,
    /// Tasks faster than this are never speculated, whatever the median
    /// (`spark.speculation.minTaskRuntime`).
    pub min_runtime_ns: u64,
}

impl Default for SpeculationConf {
    fn default() -> Self {
        SpeculationConf {
            enabled: false,
            interval_ns: simt::time::millis(100),
            multiplier: 1.5,
            quantile: 0.5,
            min_runtime_ns: simt::time::millis(100),
        }
    }
}

/// Adaptive query execution policy (`spark.sql.adaptive.*` analogs), consumed
/// by [`aqe::plan`](crate::aqe::plan) at the map→reduce stage boundary.
///
/// Off by default: with `enabled: false` the scheduler never consults the
/// planner and every run is bit-identical to the static engine — the
/// acceptance bar for this knob.
#[derive(Debug, Clone, Copy)]
pub struct AqeConf {
    /// Master switch (`spark.sql.adaptive.enabled`).
    pub enabled: bool,
    /// Target post-shuffle task input in virtual bytes
    /// (`spark.sql.adaptive.advisoryPartitionSizeInBytes`): runs of adjacent
    /// buckets below it coalesce into one task, and a skewed bucket splits
    /// into roughly this many bytes per slice.
    pub target_bytes: u64,
    /// A bucket is skewed when it exceeds `skew_factor ×` the median
    /// non-empty bucket *and* `target_bytes`
    /// (`spark.sql.adaptive.skewJoin.skewedPartitionFactor`).
    pub skew_factor: f64,
    /// Cap on map-range slices per split bucket.
    pub max_slices: u32,
}

impl Default for AqeConf {
    fn default() -> Self {
        AqeConf { enabled: false, target_bytes: 4 * 1024 * 1024, skew_factor: 4.0, max_slices: 8 }
    }
}

/// Partial/approximate result policy for deadline-bounded actions
/// (`count_approx` and friends; Spark's `spark.partial.*` analogs).
///
/// Off by default: with `enabled: false` the approximate actions degrade to
/// their exact counterparts — no deadline timer is armed, no evaluator is
/// attached at submission, and every run is bit-identical to the engine
/// without this subsystem (the acceptance bar shared with speculation and
/// AQE).
#[derive(Debug, Clone, Copy)]
pub struct PartialConf {
    /// Master switch for deadline-bounded evaluation.
    pub enabled: bool,
    /// Confidence level used when an approximate action does not pass one
    /// explicitly (`count_approx(timeout)` → bounds at this level).
    pub default_confidence: f64,
}

impl Default for PartialConf {
    fn default() -> Self {
        PartialConf { enabled: false, default_confidence: 0.95 }
    }
}

/// Engine configuration (the `spark.*` properties the paper tunes, §VII-C).
#[derive(Debug, Clone, Copy)]
pub struct SparkConf {
    /// Cap on in-flight remote shuffle bytes per reduce task
    /// (`spark.reducer.maxSizeInFlight`, default 48 MiB).
    pub max_bytes_in_flight: u64,
    /// Target size of one fetch request (Spark: `maxBytesInFlight / 5`).
    pub target_request_size: u64,
    /// Serve one merged chunk per fetch request (`false` = one chunk per
    /// block, Spark-faithful but quadratic in message count; merged requests
    /// charge per-block protocol CPU instead — see `shuffle`).
    pub merge_chunks_per_request: bool,
    /// Task slots per executor (`spark_executor_cores`; the paper sets this
    /// to the node's hardware thread count).
    pub executor_cores: u32,
    /// Executor memory in GiB (`spark_executor_memory`, 120 GB in §VII-C);
    /// the block manager warns when virtual storage exceeds it.
    pub executor_mem_gb: u32,
    /// RPC request timeout (ns).
    pub request_timeout_ns: u64,
    /// Connection timeout (ns).
    pub connect_timeout_ns: u64,
    /// Per-block fetch retries after the first attempt
    /// (`spark.shuffle.io.maxRetries`-analog; 0 disables retry).
    pub fetch_max_retries: u32,
    /// Base delay before the first fetch retry (ns); doubles per attempt
    /// (`spark.shuffle.io.retryWait`-analog).
    pub fetch_retry_base_ns: u64,
    /// Ceiling on the exponential fetch backoff (ns).
    pub fetch_retry_max_ns: u64,
    /// Progress timeout for one fetch attempt: if no chunk arrives for this
    /// long the attempt is abandoned and the missing blocks re-requested.
    pub fetch_timeout_ns: u64,
    /// Consecutive plane-level fetch failures (connect/timeout/closed)
    /// before an accelerated data plane falls back to sockets.
    pub plane_failure_threshold: u32,
    /// Seed for retry jitter; combined with process identity so executors
    /// don't retry in lockstep, yet every run with the same seed replays
    /// identically.
    pub retry_seed: u64,
    /// Straggler-speculation policy.
    pub speculation: SpeculationConf,
    /// Adaptive query execution policy.
    pub aqe: AqeConf,
    /// Partial/approximate result policy for deadline-bounded actions.
    pub partial: PartialConf,
    /// Cap on attempts of one stage (first run + resubmissions after
    /// `FetchFailed`); exceeding it panics the job, mirroring Spark's
    /// `spark.stage.maxConsecutiveAttempts` abort.
    pub max_stage_attempts: u32,
    /// Record tracing spans during the run and export a deterministic
    /// Chrome-trace timeline (virtual-time ticks). Off by default: spans
    /// cost host memory, never virtual time, so enabling it does not
    /// perturb simulated results.
    pub trace_timeline: bool,
    /// Compute cost model.
    pub cost: CostModel,
}

impl Default for SparkConf {
    fn default() -> Self {
        let max_bytes_in_flight = 48 * 1024 * 1024;
        SparkConf {
            max_bytes_in_flight,
            target_request_size: max_bytes_in_flight / 5,
            merge_chunks_per_request: true,
            executor_cores: 4,
            executor_mem_gb: 120,
            request_timeout_ns: simt::time::secs(120),
            connect_timeout_ns: simt::time::secs(10),
            fetch_max_retries: 2,
            fetch_retry_base_ns: simt::time::millis(100),
            fetch_retry_max_ns: simt::time::secs(5),
            fetch_timeout_ns: simt::time::secs(120),
            plane_failure_threshold: 3,
            retry_seed: 0,
            speculation: SpeculationConf::default(),
            aqe: AqeConf::default(),
            partial: PartialConf::default(),
            max_stage_attempts: 4,
            trace_timeline: false,
            cost: CostModel::default(),
        }
    }
}

impl SparkConf {
    /// Paper §VII-C settings scaled onto a node with `cores` hardware
    /// threads.
    pub fn paper_defaults(cores: u32) -> Self {
        SparkConf { executor_cores: cores, ..Default::default() }
    }

    /// Replace the speculation policy (builder style).
    pub fn with_speculation(mut self, speculation: SpeculationConf) -> Self {
        self.speculation = speculation;
        self
    }

    /// Replace the AQE policy (builder style).
    pub fn with_aqe(mut self, aqe: AqeConf) -> Self {
        self.aqe = aqe;
        self
    }

    /// Replace the partial-result policy (builder style).
    pub fn with_partial(mut self, partial: PartialConf) -> Self {
        self.partial = partial;
        self
    }

    /// Enable deadline-bounded evaluation with the default confidence.
    pub fn with_partial_enabled(self) -> Self {
        self.with_partial(PartialConf { enabled: true, ..PartialConf::default() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_request_size_is_a_fifth() {
        let c = SparkConf::default();
        assert_eq!(c.target_request_size, c.max_bytes_in_flight / 5);
    }

    #[test]
    fn costs_scale_monotonically() {
        let m = CostModel::default();
        assert!(m.gen(1000, 1 << 20) > m.gen(10, 1 << 10));
        assert!(m.ser(100, 0) > 0);
        assert!(m.sort(1_000_000, 0) > m.sort(1_000, 0));
        assert_eq!(m.sort(1, 0), 0);
        assert!(m.sort(1, 1 << 20) > 0);
    }

    #[test]
    fn paper_defaults_set_cores() {
        let c = SparkConf::paper_defaults(56);
        assert_eq!(c.executor_cores, 56);
    }

    #[test]
    fn partial_is_off_by_default_and_builders_compose() {
        let c = SparkConf::default();
        assert!(!c.partial.enabled);
        assert_eq!(c.partial.default_confidence, 0.95);
        let c = SparkConf::default()
            .with_partial_enabled()
            .with_aqe(AqeConf { enabled: true, ..AqeConf::default() })
            .with_speculation(SpeculationConf { enabled: true, ..SpeculationConf::default() });
        assert!(c.partial.enabled && c.aqe.enabled && c.speculation.enabled);
    }
}
