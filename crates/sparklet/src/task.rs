//! Task-side execution context: the services an executor exposes to its
//! running tasks, and per-task metrics.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use fabric::{Net, Payload, PortAddr};
use parking_lot::Mutex;
use simt::Cpu;

use crate::config::SparkConf;
use crate::rpc::RpcEnv;
use crate::shuffle::MapOutputClient;
use crate::storage::BlockManager;
use crate::transfer::BlockTransferService;

/// Everything a task can reach on its executor (Spark's `SparkEnv`).
pub struct ExecutorServices {
    /// Executor id within the application.
    pub exec_id: usize,
    /// The fabric (disk writes, diagnostics).
    pub net: Net,
    /// Node the executor runs on.
    pub node: usize,
    /// The node's shared CPU (compute charging).
    pub cpu: Cpu,
    /// Engine configuration.
    pub conf: SparkConf,
    /// Local block store.
    pub block_manager: Arc<BlockManager>,
    /// Shuffle-plane client.
    pub transfer: Arc<dyn BlockTransferService>,
    /// Map-output location client (caches driver responses).
    pub map_outputs: MapOutputClient,
    /// Address of this executor's shuffle service (advertised in
    /// `MapStatus`).
    pub shuffle_addr: PortAddr,
    /// This executor's RPC environment (driver stream fetches).
    pub rpc_env: Arc<RpcEnv>,
    /// The driver's environment address.
    pub driver_addr: PortAddr,
    /// Executor-local cache of fetched broadcast values.
    pub broadcast_cache: Mutex<BTreeMap<u64, BroadcastSlot>>,
}

/// State of one broadcast id on an executor.
pub enum BroadcastSlot {
    /// A task is fetching it from the driver; wait for `Ready`.
    Fetching,
    /// Cached value.
    Ready(Arc<dyn Any + Send + Sync>),
}

impl ExecutorServices {
    /// Fetch a named stream from the driver (jars, broadcasts).
    pub fn fetch_driver_stream(&self, name: &str) -> Result<Payload, String> {
        self.rpc_env.fetch_stream(self.driver_addr, name).map_err(|e| e.to_string())
    }
}

/// Context handed to a running task.
pub struct TaskContext {
    /// Executor services.
    pub services: Arc<ExecutorServices>,
    /// Partition this task computes.
    pub partition: usize,
    /// Attempt number (0 on first try).
    pub attempt: u32,
    /// True when this is a straggler-speculation duplicate; first finish
    /// wins at the scheduler, so task code treats both copies identically.
    pub speculative: bool,
    /// Per-task metrics registry. Task code records through typed handles
    /// under the `task.*` keys in [`obs::keys`]; the executor snapshots the
    /// registry when the task finishes and ships the
    /// [`obs::MetricsSnapshot`] to the scheduler, which merges snapshots
    /// per stage.
    pub metrics: obs::Registry,
}

impl TaskContext {
    /// Build a context for `partition`.
    pub fn new(services: Arc<ExecutorServices>, partition: usize, attempt: u32) -> Self {
        TaskContext {
            services,
            partition,
            attempt,
            speculative: false,
            metrics: obs::Registry::new(),
        }
    }

    /// Mark the context as a speculative duplicate (builder-style).
    pub fn speculative(mut self, speculative: bool) -> Self {
        self.speculative = speculative;
        self
    }

    /// Charge `work_ns` of compute against the executor's node CPU.
    pub fn charge(&self, work_ns: u64) {
        self.services.cpu.execute(work_ns);
    }

    /// The cost model.
    pub fn cost(&self) -> crate::config::CostModel {
        self.services.conf.cost
    }
}
