//! Task-side execution context: the services an executor exposes to its
//! running tasks, and per-task metrics.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use fabric::{Net, Payload, PortAddr};
use parking_lot::Mutex;
use simt::Cpu;

use crate::config::SparkConf;
use crate::rpc::RpcEnv;
use crate::shuffle::MapOutputClient;
use crate::storage::BlockManager;
use crate::transfer::BlockTransferService;

/// Everything a task can reach on its executor (Spark's `SparkEnv`).
pub struct ExecutorServices {
    /// Executor id within the application.
    pub exec_id: usize,
    /// The fabric (disk writes, diagnostics).
    pub net: Net,
    /// Node the executor runs on.
    pub node: usize,
    /// The node's shared CPU (compute charging).
    pub cpu: Cpu,
    /// Engine configuration.
    pub conf: SparkConf,
    /// Local block store.
    pub block_manager: Arc<BlockManager>,
    /// Shuffle-plane client.
    pub transfer: Arc<dyn BlockTransferService>,
    /// Map-output location client (caches driver responses).
    pub map_outputs: MapOutputClient,
    /// Address of this executor's shuffle service (advertised in
    /// `MapStatus`).
    pub shuffle_addr: PortAddr,
    /// This executor's RPC environment (driver stream fetches).
    pub rpc_env: Arc<RpcEnv>,
    /// The driver's environment address.
    pub driver_addr: PortAddr,
    /// Executor-local cache of fetched broadcast values.
    pub broadcast_cache: Mutex<BTreeMap<u64, BroadcastSlot>>,
}

/// State of one broadcast id on an executor.
pub enum BroadcastSlot {
    /// A task is fetching it from the driver; wait for `Ready`.
    Fetching,
    /// Cached value.
    Ready(Arc<dyn Any + Send + Sync>),
}

impl ExecutorServices {
    /// Fetch a named stream from the driver (jars, broadcasts).
    pub fn fetch_driver_stream(&self, name: &str) -> Result<Payload, String> {
        self.rpc_env.fetch_stream(self.driver_addr, name).map_err(|e| e.to_string())
    }
}

/// Metrics accumulated by one task.
#[derive(Debug, Default, Clone, Copy)]
pub struct TaskMetrics {
    /// Time spent blocked waiting for remote shuffle data (ns).
    pub shuffle_fetch_wait_ns: u64,
    /// Virtual bytes fetched from remote executors.
    pub remote_bytes: u64,
    /// Virtual bytes read from local shuffle blocks.
    pub local_bytes: u64,
    /// Fetch re-requests the retry layer spent completing this task's
    /// shuffle reads (0 on a healthy run).
    pub fetch_retries: u64,
    /// Records produced by the task.
    pub records_out: u64,
    /// Virtual size of the task's result value (charged on the wire when
    /// the completion message travels back to the driver; ML aggregations
    /// set this to their partial-aggregate size).
    pub result_bytes: u64,
    /// Total task wall time (ns), filled by the executor.
    pub run_ns: u64,
}

/// Context handed to a running task.
pub struct TaskContext {
    /// Executor services.
    pub services: Arc<ExecutorServices>,
    /// Partition this task computes.
    pub partition: usize,
    /// Attempt number (0 on first try).
    pub attempt: u32,
    /// Mutable task metrics.
    pub metrics: Mutex<TaskMetrics>,
}

impl TaskContext {
    /// Build a context for `partition`.
    pub fn new(services: Arc<ExecutorServices>, partition: usize, attempt: u32) -> Self {
        TaskContext { services, partition, attempt, metrics: Mutex::new(TaskMetrics::default()) }
    }

    /// Charge `work_ns` of compute against the executor's node CPU.
    pub fn charge(&self, work_ns: u64) {
        self.services.cpu.execute(work_ns);
    }

    /// The cost model.
    pub fn cost(&self) -> crate::config::CostModel {
        self.services.conf.cost
    }
}
