//! Block storage: `BlockId`, the per-executor `BlockManager`, and the typed
//! RDD cache.
//!
//! Shuffle map outputs live here between the write and read stages (the
//! paper's clusters keep them on a RAM disk — §VII-C — so memory residency
//! is faithful). The typed cache backs `Rdd::cache()`: job 0 of the OHB
//! benchmarks generates and caches data that job 1's shuffle-map stage then
//! reads (paper Fig. 10 stage naming).

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

/// Identifies a stored block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockId {
    /// Output of shuffle `shuffle_id`'s map task `map_id` destined for
    /// reduce partition `reduce_id` (Spark's `shuffle_X_Y_Z`).
    Shuffle {
        /// The shuffle.
        shuffle_id: u32,
        /// Map partition that produced the block.
        map_id: u32,
        /// Reduce partition the block belongs to.
        reduce_id: u32,
    },
    /// A cached RDD partition (Spark's `rdd_X_Y`).
    Rdd {
        /// The RDD.
        rdd_id: u64,
        /// The partition.
        partition: u32,
    },
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockId::Shuffle { shuffle_id, map_id, reduce_id } => {
                write!(f, "shuffle_{shuffle_id}_{map_id}_{reduce_id}")
            }
            BlockId::Rdd { rdd_id, partition } => write!(f, "rdd_{rdd_id}_{partition}"),
        }
    }
}

/// A stored block: real encoded bytes plus the virtual size cost models use.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// Encoded data.
    pub data: Bytes,
    /// Virtual byte count.
    pub virtual_len: u64,
    /// Number of records encoded (metrics & cost accounting).
    pub records: u64,
}

/// Per-executor block store.
pub struct BlockManager {
    blocks: Mutex<BTreeMap<BlockId, StoredBlock>>,
    /// Typed in-memory cache for `Rdd::cache()` partitions: values are
    /// `Arc<Vec<T>>` behind `Any`.
    cache: Mutex<BTreeMap<(u64, u32), Arc<dyn Any + Send + Sync>>>,
    stored_virtual: Mutex<u64>,
    capacity_virtual: u64,
}

impl BlockManager {
    /// A block manager with `capacity_gb` GiB of virtual capacity.
    pub fn new(capacity_gb: u32) -> Self {
        BlockManager {
            blocks: Mutex::new(BTreeMap::new()),
            cache: Mutex::new(BTreeMap::new()),
            stored_virtual: Mutex::new(0),
            capacity_virtual: u64::from(capacity_gb) << 30,
        }
    }

    /// Store a block, replacing any previous content under the same id.
    /// Returns `false` when the store exceeds its virtual capacity (callers
    /// may treat that as an OOM-to-disk spill point; the benchmarks size
    /// executors so it never triggers, as the paper's 120 GB configs do).
    pub fn put(&self, id: BlockId, block: StoredBlock) -> bool {
        let mut total = self.stored_virtual.lock();
        let mut blocks = self.blocks.lock();
        if let Some(old) = blocks.remove(&id) {
            *total -= old.virtual_len;
        }
        *total += block.virtual_len;
        blocks.insert(id, block);
        *total <= self.capacity_virtual
    }

    /// Fetch a block.
    pub fn get(&self, id: BlockId) -> Option<StoredBlock> {
        self.blocks.lock().get(&id).cloned()
    }

    /// Remove a block, returning whether it existed.
    pub fn remove(&self, id: BlockId) -> bool {
        let mut blocks = self.blocks.lock();
        if let Some(b) = blocks.remove(&id) {
            *self.stored_virtual.lock() -= b.virtual_len;
            true
        } else {
            false
        }
    }

    /// Drop all blocks of one shuffle (post-job cleanup).
    pub fn remove_shuffle(&self, shuffle: u32) {
        let mut blocks = self.blocks.lock();
        let mut total = self.stored_virtual.lock();
        blocks.retain(|id, b| match id {
            BlockId::Shuffle { shuffle_id, .. } if *shuffle_id == shuffle => {
                *total -= b.virtual_len;
                false
            }
            _ => true,
        });
    }

    /// Total virtual bytes stored.
    pub fn stored_virtual(&self) -> u64 {
        *self.stored_virtual.lock()
    }

    /// Number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.lock().len()
    }

    /// Store a typed cached partition.
    pub fn cache_put<T: Send + Sync + 'static>(
        &self,
        rdd_id: u64,
        partition: u32,
        data: Arc<Vec<T>>,
    ) {
        self.cache.lock().insert((rdd_id, partition), data);
    }

    /// Fetch a typed cached partition.
    pub fn cache_get<T: Send + Sync + 'static>(
        &self,
        rdd_id: u64,
        partition: u32,
    ) -> Option<Arc<Vec<T>>> {
        self.cache
            .lock()
            .get(&(rdd_id, partition))
            .cloned()
            .and_then(|v| v.downcast::<Vec<T>>().ok())
    }

    /// True when the typed cache holds this partition.
    pub fn cache_contains(&self, rdd_id: u64, partition: u32) -> bool {
        self.cache.lock().contains_key(&(rdd_id, partition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(v: u64) -> StoredBlock {
        StoredBlock { data: Bytes::from_static(b"x"), virtual_len: v, records: 1 }
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let bm = BlockManager::new(1);
        let id = BlockId::Shuffle { shuffle_id: 1, map_id: 2, reduce_id: 3 };
        assert!(bm.put(id, blk(100)));
        assert_eq!(bm.get(id).unwrap().virtual_len, 100);
        assert_eq!(bm.stored_virtual(), 100);
        assert!(bm.remove(id));
        assert!(!bm.remove(id));
        assert_eq!(bm.stored_virtual(), 0);
    }

    #[test]
    fn replacement_adjusts_accounting() {
        let bm = BlockManager::new(1);
        let id = BlockId::Rdd { rdd_id: 1, partition: 0 };
        bm.put(id, blk(100));
        bm.put(id, blk(40));
        assert_eq!(bm.stored_virtual(), 40);
        assert_eq!(bm.block_count(), 1);
    }

    #[test]
    fn capacity_overflow_is_reported() {
        let bm = BlockManager::new(1); // 1 GiB
        let id = BlockId::Rdd { rdd_id: 1, partition: 0 };
        assert!(!bm.put(id, blk(2 << 30)));
    }

    #[test]
    fn remove_shuffle_only_touches_that_shuffle() {
        let bm = BlockManager::new(1);
        bm.put(BlockId::Shuffle { shuffle_id: 1, map_id: 0, reduce_id: 0 }, blk(10));
        bm.put(BlockId::Shuffle { shuffle_id: 2, map_id: 0, reduce_id: 0 }, blk(20));
        bm.put(BlockId::Rdd { rdd_id: 9, partition: 0 }, blk(30));
        bm.remove_shuffle(1);
        assert_eq!(bm.block_count(), 2);
        assert_eq!(bm.stored_virtual(), 50);
    }

    #[test]
    fn typed_cache_roundtrip() {
        let bm = BlockManager::new(1);
        bm.cache_put(5, 0, Arc::new(vec![1u64, 2, 3]));
        assert!(bm.cache_contains(5, 0));
        let v = bm.cache_get::<u64>(5, 0).unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        // Wrong type yields None, not a panic.
        assert!(bm.cache_get::<String>(5, 0).is_none());
        assert!(bm.cache_get::<u64>(5, 1).is_none());
    }

    #[test]
    fn block_id_display() {
        assert_eq!(
            BlockId::Shuffle { shuffle_id: 3, map_id: 1, reduce_id: 7 }.to_string(),
            "shuffle_3_1_7"
        );
        assert_eq!(BlockId::Rdd { rdd_id: 2, partition: 9 }.to_string(), "rdd_2_9");
    }
}
