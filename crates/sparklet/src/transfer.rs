//! Block transfer: the shuffle-plane service and client
//! (Spark's `BlockTransferService` / `OneForOneStreamManager`).
//!
//! Data flow (paper Fig. 4): the reducer's `ShuffleBlockFetcherIterator`
//! sends an `OpenBlocks` RPC naming the blocks it wants; the serving
//! executor registers a stream over those blocks and replies with a stream
//! handle; the reducer then issues `ChunkFetchRequest`s and the server
//! answers with `ChunkFetchSuccess` messages carrying the block data — the
//! message type whose body MPI4Spark-Optimized routes over MPI.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use fabric::{Net, Payload, PortAddr};
use netz::buf::{ByteReader, ByteWriter};
use netz::{ChannelCore, NetzError, RetryPolicy, StreamManager, TransportClient, TransportContext};
use parking_lot::Mutex;
use simt::queue::{Queue, RecvError};
use simt::SeededRng;

use crate::config::SparkConf;
use crate::net_backend::{NetworkBackend, ProcIdentity};
use crate::storage::{BlockId, BlockManager, StoredBlock};

/// RPC opening a stream over named blocks.
pub struct OpenBlocks {
    /// Blocks requested, in fetch order.
    pub blocks: Vec<BlockId>,
}

/// Reply to [`OpenBlocks`].
#[derive(Debug, Clone, Copy)]
pub struct StreamHandle {
    /// Stream to fetch chunks from.
    pub stream_id: u64,
    /// Number of chunks in the stream.
    pub chunks: u32,
}

/// Why a fetch failed, classified for the retry layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchError {
    /// Human-readable description.
    pub message: String,
    /// True when the failure indicts the communication *plane* (connect
    /// failure, dead channel, silent timeout) rather than this particular
    /// request. Consecutive plane failures trigger transport fallback.
    pub plane: bool,
}

impl FetchError {
    /// Request-scoped failure (bad reply, decode error): retrying on the
    /// same plane is reasonable.
    pub fn request(message: impl Into<String>) -> Self {
        FetchError { message: message.into(), plane: false }
    }

    /// Plane-scoped failure: counts toward transport fallback.
    pub fn plane(message: impl Into<String>) -> Self {
        FetchError { message: message.into(), plane: true }
    }

    fn from_netz(e: &NetzError) -> Self {
        FetchError { message: e.to_string(), plane: e.is_plane_failure() }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// One fetched chunk of a block group (or a failure for the blocks it
/// covers).
///
/// A `fetch_blocks` call yields one `FetchResult` *per chunk*, streamed as
/// each chunk arrives — Spark's `ShuffleBlockFetcherIterator` behaviour,
/// where every landed buffer immediately frees `maxBytesInFlight` budget.
/// The result with [`FetchResult::last`] set retires the request. Failure
/// is per-chunk, never whole-group: an `Err` covers exactly the blocks in
/// [`FetchResult::blocks`], so one corrupted chunk cannot poison its
/// siblings.
pub struct FetchResult {
    /// Blocks covered by *this chunk* (all requested blocks in merged mode).
    pub blocks: Vec<BlockId>,
    /// Index of the chunk within the request's stream.
    pub chunk_index: u32,
    /// True on the final result of the originating `fetch_blocks` call.
    pub last: bool,
    /// Decoded per-block data, ordered as `blocks`.
    pub result: Result<Vec<StoredBlock>, FetchError>,
}

/// Shuffle-plane client interface. Implementations: the Netty-based default
/// below; RDMA-Spark and MPI4Spark reuse it with different transports, which
/// is faithful — both systems keep this layer and swap what is underneath.
pub trait BlockTransferService: Send + Sync + 'static {
    /// Fetch `blocks` from the shuffle service at `remote`; push the result
    /// into `sink` when it arrives (does not block for the data).
    fn fetch_blocks(&self, remote: PortAddr, blocks: Vec<BlockId>, sink: Queue<FetchResult>);

    /// Close cached connections.
    fn close(&self);
}

// --- encoding of merged block groups -------------------------------------

/// Encode a group of stored blocks into one chunk body.
pub fn encode_block_group(blocks: &[StoredBlock]) -> (Bytes, u64) {
    let mut w = ByteWriter::with_capacity(64 + blocks.iter().map(|b| b.data.len()).sum::<usize>());
    w.put_u32(blocks.len() as u32);
    let mut virt = 4u64;
    for b in blocks {
        w.put_u32(b.data.len() as u32);
        w.put_u64(b.virtual_len);
        w.put_u64(b.records);
        w.put_slice(&b.data);
        virt += b.virtual_len + 20;
    }
    (w.freeze(), virt)
}

/// Decode a chunk body produced by [`encode_block_group`]. Zero-copy: each
/// block's `data` is a slice *sharing* the chunk body's allocation, so the
/// buffer that arrived from the wire is never duplicated.
pub fn decode_block_group(data: &Bytes) -> Result<Vec<StoredBlock>, String> {
    let mut r = ByteReader::new(data.clone());
    let n = r.get_u32().ok_or("truncated group header")? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.get_u32().ok_or("truncated block length")? as usize;
        let virtual_len = r.get_u64().ok_or("truncated virtual length")?;
        let records = r.get_u64().ok_or("truncated record count")?;
        let data = r.get_bytes(len).ok_or("truncated block data")?;
        out.push(StoredBlock { data, virtual_len, records });
    }
    Ok(out)
}

// --- server side ----------------------------------------------------------

struct StreamState {
    chunks: Vec<Vec<BlockId>>,
    served: usize,
}

/// The serving side of the shuffle plane: an RPC handler + stream manager
/// over the executor's block manager.
pub struct ShuffleService {
    block_manager: Arc<BlockManager>,
    streams: Mutex<BTreeMap<u64, StreamState>>,
    next_stream: AtomicU64,
    conf: SparkConf,
    /// Served-bytes counter (reports).
    pub bytes_served: AtomicU64,
}

impl ShuffleService {
    /// Start the service on `identity`'s node; returns the handler and the
    /// bound endpoint.
    pub fn start(
        identity: &ProcIdentity,
        net: &Net,
        backend: &Arc<dyn NetworkBackend>,
        block_manager: Arc<BlockManager>,
        conf: SparkConf,
    ) -> (Arc<ShuffleService>, netz::Endpoint) {
        let svc = Arc::new(ShuffleService {
            block_manager,
            streams: Mutex::new(BTreeMap::new()),
            next_stream: AtomicU64::new(1),
            conf,
            bytes_served: AtomicU64::new(0),
        });
        let ctx: TransportContext =
            backend.shuffle_context(identity, net, Arc::new(SvcHandler { svc: svc.clone() }));
        let ep = ctx.create_client_endpoint(format!("shuffle:{}", identity.name), identity.node);
        (svc, ep)
    }

    fn open(&self, blocks: Vec<BlockId>) -> StreamHandle {
        let chunks: Vec<Vec<BlockId>> = if self.conf.merge_chunks_per_request {
            vec![blocks]
        } else {
            blocks.into_iter().map(|b| vec![b]).collect()
        };
        let id = self.next_stream.fetch_add(1, Ordering::Relaxed);
        let n = chunks.len() as u32;
        self.streams.lock().insert(id, StreamState { chunks, served: 0 });
        StreamHandle { stream_id: id, chunks: n }
    }
}

/// RPC-handler wrapper installed on the shuffle endpoint; forwards
/// `OpenBlocks` to the service and exposes it as the stream manager.
struct SvcHandler {
    svc: Arc<ShuffleService>,
}

impl netz::RpcHandler for SvcHandler {
    fn receive(
        &self,
        _chan: &Arc<ChannelCore>,
        body: Payload,
        reply: netz::context::RpcResponseCallback,
    ) {
        let Some(open) = body.value_as::<OpenBlocks>() else {
            reply(Err("shuffle service only accepts OpenBlocks".into()));
            return;
        };
        let handle = self.svc.open(open.blocks.clone());
        reply(Ok(Payload::control(handle, 64)));
    }

    fn stream_manager(&self) -> Arc<dyn StreamManager> {
        self.svc.clone()
    }
}

impl StreamManager for ShuffleService {
    fn get_chunk(&self, stream_id: u64, chunk_index: u32) -> Result<Payload, String> {
        let block_ids = {
            let streams = self.streams.lock();
            let st =
                streams.get(&stream_id).ok_or_else(|| format!("unknown stream {stream_id}"))?;
            st.chunks
                .get(chunk_index as usize)
                .cloned()
                .ok_or_else(|| format!("chunk {chunk_index} out of range"))?
        };
        let mut blocks = Vec::with_capacity(block_ids.len());
        for id in &block_ids {
            let b = self.block_manager.get(*id).ok_or_else(|| format!("block {id} not found"))?;
            blocks.push(b);
        }
        let (bytes, virt) = encode_block_group(&blocks);
        self.bytes_served.fetch_add(virt, Ordering::Relaxed);
        // Stream bookkeeping: drop fully served streams.
        {
            let mut streams = self.streams.lock();
            if let Some(st) = streams.get_mut(&stream_id) {
                st.served += 1;
                if st.served >= st.chunks.len() {
                    streams.remove(&stream_id);
                }
            }
        }
        let real = bytes.len() as u64;
        Ok(Payload::bytes_scaled(bytes, virt.max(real)))
    }

    fn chunk_fetch_cpu_ns(&self) -> u64 {
        2_000
    }
}

// --- client side ------------------------------------------------------------

/// Default shuffle-plane client: netz channels to remote shuffle services.
pub struct NettyBlockTransferService {
    endpoint: netz::Endpoint,
    clients: Mutex<BTreeMap<PortAddr, TransportClient>>,
}

impl NettyBlockTransferService {
    /// Build the client side on `identity`'s node using the backend's
    /// shuffle-plane transport.
    pub fn new(identity: &ProcIdentity, net: &Net, backend: &Arc<dyn NetworkBackend>) -> Arc<Self> {
        let ctx = backend.shuffle_context(identity, net, Arc::new(netz::NoOpRpcHandler));
        Self::with_context(ctx, identity, "fetch")
    }

    /// Build the client side from an already-constructed transport context
    /// (used to stand up the degraded-mode fallback service next to the
    /// primary one).
    pub fn with_context(ctx: TransportContext, identity: &ProcIdentity, label: &str) -> Arc<Self> {
        let endpoint =
            ctx.create_client_endpoint(format!("{label}:{}", identity.name), identity.node);
        Arc::new(NettyBlockTransferService { endpoint, clients: Mutex::new(BTreeMap::new()) })
    }

    fn client(&self, addr: PortAddr) -> Result<TransportClient, NetzError> {
        {
            let cache = self.clients.lock();
            if let Some(c) = cache.get(&addr) {
                if c.is_active() {
                    return Ok(c.clone());
                }
            }
        }
        let c = self.endpoint.connect(addr)?;
        self.clients.lock().insert(addr, c.clone());
        Ok(c)
    }
}

impl BlockTransferService for NettyBlockTransferService {
    fn fetch_blocks(&self, remote: PortAddr, blocks: Vec<BlockId>, sink: Queue<FetchResult>) {
        // Failures before any stream exists (connect, OpenBlocks) have no
        // per-chunk structure: one `Err` covering the whole request is the
        // honest report, and the retry layer above re-requests per block.
        let fail = |sink: &Queue<FetchResult>, blocks: Vec<BlockId>, e: FetchError| {
            sink.send(FetchResult { blocks, chunk_index: 0, last: true, result: Err(e) });
        };
        let client = match self.client(remote) {
            Ok(c) => c,
            Err(e) => {
                fail(&sink, blocks, FetchError::from_netz(&e));
                return;
            }
        };
        let handle = match client.send_rpc(Payload::control(
            OpenBlocks { blocks: blocks.clone() },
            64 + 16 * blocks.len() as u64,
        )) {
            Ok(reply) => match reply.value_as::<StreamHandle>() {
                Some(h) => *h,
                None => {
                    fail(&sink, blocks, FetchError::request("bad OpenBlocks reply"));
                    return;
                }
            },
            Err(e) => {
                fail(&sink, blocks, FetchError::from_netz(&e));
                return;
            }
        };
        // One callback per chunk; chunks cover `blocks` in order (a single
        // chunk covers all of them in merged mode). Each chunk is delivered
        // the moment it lands — no aggregation buffer — so the reader can
        // free in-flight budget and issue follow-on requests per chunk. The
        // counter only tracks completion to flag the last result. A chunk
        // that fails reports `Err` for *its own* covered blocks only;
        // sibling chunks keep streaming.
        let n_chunks = handle.chunks as usize;
        let per_block = n_chunks == blocks.len();
        let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let blocks = Arc::new(blocks);
        for i in 0..n_chunks {
            let sink = sink.clone();
            let done = done.clone();
            let blocks = blocks.clone();
            client.fetch_chunk_async(
                handle.stream_id,
                i as u32,
                Box::new(move |res| {
                    let result = match res {
                        Ok(payload) => {
                            decode_block_group(&payload.bytes).map_err(FetchError::request)
                        }
                        Err(e) => Err(FetchError::from_netz(&e)),
                    };
                    let covered = if per_block { vec![blocks[i]] } else { blocks.as_ref().clone() };
                    let last = done.fetch_add(1, Ordering::Relaxed) + 1 == n_chunks;
                    sink.send(FetchResult { blocks: covered, chunk_index: i as u32, last, result });
                }),
            );
        }
    }

    fn close(&self) {
        // Snapshot under the lock, close outside it: `close()` blocks on the
        // virtual clock to ship the FIN frame, and an expired job's in-flight
        // reduce tasks still fetch through this cache during teardown.
        let clients: Vec<TransportClient> =
            std::mem::take(&mut *self.clients.lock()).into_values().collect();
        for c in clients {
            c.close();
        }
        self.endpoint.shutdown();
    }
}

// --- retrying layer ---------------------------------------------------------

/// Retry configuration for [`RetryingBlockFetcher`], derived from
/// [`SparkConf`].
#[derive(Debug, Clone, Copy)]
pub struct RetryConf {
    /// Re-requests per fetch after the first attempt.
    pub max_retries: u32,
    /// Exponential backoff between attempts.
    pub policy: RetryPolicy,
    /// Progress timeout: an attempt that delivers nothing for this long is
    /// abandoned and its missing blocks re-requested.
    pub fetch_timeout_ns: u64,
    /// Consecutive plane-level failures before switching to the fallback
    /// service.
    pub plane_failure_threshold: u32,
    /// Jitter seed (combined with a per-process salt by the constructor).
    pub seed: u64,
}

impl RetryConf {
    /// Derive the retry schedule from the engine configuration.
    pub fn from_spark(conf: &SparkConf) -> Self {
        RetryConf {
            max_retries: conf.fetch_max_retries,
            policy: RetryPolicy {
                max_retries: conf.fetch_max_retries,
                base_delay_ns: conf.fetch_retry_base_ns,
                max_delay_ns: conf.fetch_retry_max_ns,
                jitter_frac: 0.2,
            },
            fetch_timeout_ns: conf.fetch_timeout_ns,
            plane_failure_threshold: conf.plane_failure_threshold,
            seed: conf.retry_seed,
        }
    }
}

struct RetryInner {
    primary: Arc<dyn BlockTransferService>,
    fallback: Option<Arc<dyn BlockTransferService>>,
    conf: RetryConf,
    /// Sticky: once the plane is declared degraded every later fetch uses
    /// the fallback service.
    degraded: AtomicBool,
    consecutive_plane_failures: AtomicU32,
    obs: obs::Obs,
    retries: obs::Counter,
    rng: Mutex<SeededRng>,
}

/// Spark's `RetryingBlockTransferor` analog: wraps a
/// [`BlockTransferService`] with per-block retry, exponential backoff with
/// seeded jitter, progress timeouts that re-request only the still-missing
/// blocks, and graceful degradation to a fallback (socket-plane) service
/// after consecutive plane-level failures.
pub struct RetryingBlockFetcher {
    inner: Arc<RetryInner>,
}

impl RetryingBlockFetcher {
    /// Wrap `primary`. `fallback`, when present, is an independent service
    /// on the degraded plane (plain sockets); `salt` decorrelates this
    /// process's jitter stream from its peers' without breaking seed replay.
    /// Re-requests are counted on `obs`'s registry under
    /// [`obs::keys::SPARK_FETCH_RETRIES`] (and traced as
    /// `spark.fetch.retry` events).
    pub fn new(
        primary: Arc<dyn BlockTransferService>,
        fallback: Option<Arc<dyn BlockTransferService>>,
        conf: RetryConf,
        salt: u64,
        obs: obs::Obs,
    ) -> Arc<Self> {
        let rng = SeededRng::from_seed(conf.seed).fork(salt);
        let retries = obs.registry().counter(obs::keys::SPARK_FETCH_RETRIES);
        Arc::new(RetryingBlockFetcher {
            inner: Arc::new(RetryInner {
                primary,
                fallback,
                conf,
                degraded: AtomicBool::new(false),
                consecutive_plane_failures: AtomicU32::new(0),
                obs,
                retries,
                rng: Mutex::new(rng),
            }),
        })
    }

    /// True once the primary plane has been abandoned for the fallback.
    pub fn degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Relaxed)
    }
}

impl RetryInner {
    fn service(&self) -> &Arc<dyn BlockTransferService> {
        if self.degraded.load(Ordering::Relaxed) {
            self.fallback.as_ref().unwrap_or(&self.primary)
        } else {
            &self.primary
        }
    }

    fn note_plane_failure(&self) {
        let n = self.consecutive_plane_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.plane_threshold() && self.fallback.is_some() {
            self.degraded.store(true, Ordering::Relaxed);
        }
    }

    fn plane_threshold(&self) -> u32 {
        self.conf.plane_failure_threshold.max(1)
    }

    /// Drive one fetch to completion: attempt, drain, re-request what's
    /// missing, and forward results to `sink` with recomputed `last`/
    /// `retries` so the consumer sees one coherent request.
    fn run(&self, remote: PortAddr, blocks: Vec<BlockId>, sink: Queue<FetchResult>) {
        let mut missing = blocks;
        let mut retries = 0u32;
        let mut last_error = FetchError::request("fetch failed");
        loop {
            let attempt_sink: Queue<FetchResult> = Queue::new();
            self.service().fetch_blocks(remote, missing.clone(), attempt_sink.clone());
            let mut progressed = false;
            let mut plane_failed = false;
            // Idle-reset deadline: each arriving chunk proves the attempt is
            // alive, so only a *stall* of fetch_timeout_ns abandons it.
            loop {
                let res = match attempt_sink
                    .recv_deadline(simt::now().saturating_add(self.conf.fetch_timeout_ns))
                {
                    Ok(r) => r,
                    Err(RecvError::Timeout) => {
                        plane_failed = true;
                        last_error = FetchError::plane("fetch attempt stalled");
                        break;
                    }
                    Err(RecvError::Closed) => break,
                };
                let attempt_done = res.last;
                match res.result {
                    Ok(data) => {
                        progressed = true;
                        missing.retain(|b| !res.blocks.contains(b));
                        let finished = missing.is_empty();
                        sink.send(FetchResult {
                            blocks: res.blocks,
                            chunk_index: res.chunk_index,
                            last: finished,
                            result: Ok(data),
                        });
                        if finished {
                            self.consecutive_plane_failures.store(0, Ordering::Relaxed);
                            return;
                        }
                    }
                    Err(e) => {
                        plane_failed |= e.plane;
                        last_error = e;
                    }
                }
                if attempt_done {
                    break;
                }
            }
            // Attempt over, blocks still missing.
            if progressed {
                self.consecutive_plane_failures.store(0, Ordering::Relaxed);
            }
            if plane_failed {
                self.note_plane_failure();
            }
            if retries >= self.conf.max_retries {
                // Budget exhausted: every still-missing block surfaces a
                // terminal error to the reader, which raises FetchFailed to
                // the scheduler — this is the handoff from fetch-level
                // retry to stage-level recovery.
                let n = missing.len();
                self.obs.registry().counter(obs::keys::SPARK_FETCH_EXHAUSTED).add(n as u64);
                self.obs.event(
                    "spark.fetch.exhausted",
                    obs::kv! {"remote" => remote.node,
                    "missing" => n,
                    "retries" => retries},
                );
                for (i, b) in missing.into_iter().enumerate() {
                    sink.send(FetchResult {
                        blocks: vec![b],
                        chunk_index: 0,
                        last: i + 1 == n,
                        result: Err(last_error.clone()),
                    });
                }
                return;
            }
            let backoff = {
                let mut rng = self.rng.lock();
                self.conf.policy.backoff_ns(retries, &mut rng)
            };
            simt::sleep(backoff);
            retries += 1;
            self.retries.inc();
            self.obs.event(
                "spark.fetch.retry",
                obs::kv! {"remote" => remote.node,
                "attempt" => retries,
                "missing" => missing.len(),
                "degraded" => self.degraded.load(Ordering::Relaxed)},
            );
        }
    }
}

impl BlockTransferService for RetryingBlockFetcher {
    fn fetch_blocks(&self, remote: PortAddr, blocks: Vec<BlockId>, sink: Queue<FetchResult>) {
        let inner = self.inner.clone();
        // The controller blocks (inner fetches, backoff sleeps), so it runs
        // on its own daemon thread; the caller returns immediately, as the
        // trait contract requires.
        simt::spawn_daemon("fetch-retry", move || {
            inner.run(remote, blocks, sink);
        });
    }

    fn close(&self) {
        self.inner.primary.close();
        if let Some(f) = &self.inner.fallback {
            f.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_group_roundtrip() {
        let blocks = vec![
            StoredBlock { data: Bytes::from_static(b"alpha"), virtual_len: 1000, records: 3 },
            StoredBlock { data: Bytes::from_static(b""), virtual_len: 0, records: 0 },
            StoredBlock { data: Bytes::from_static(b"z"), virtual_len: 1 << 20, records: 7 },
        ];
        let (bytes, virt) = encode_block_group(&blocks);
        assert!(virt >= 1000 + (1 << 20));
        let back = decode_block_group(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(&back[0].data[..], b"alpha");
        assert_eq!(back[0].records, 3);
        assert_eq!(back[2].virtual_len, 1 << 20);
    }

    #[test]
    fn decode_garbage_errors() {
        assert!(decode_block_group(&Bytes::from_static(&[1, 2])).is_err());
        // Claims 5 blocks but has no data.
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let b = w.freeze();
        assert!(decode_block_group(&b).is_err());
    }

    #[test]
    fn decoded_blocks_share_the_chunk_allocation() {
        let blocks = vec![
            StoredBlock { data: Bytes::from_static(b"first-block"), virtual_len: 11, records: 1 },
            StoredBlock { data: Bytes::from_static(b"second"), virtual_len: 6, records: 1 },
        ];
        let (bytes, _) = encode_block_group(&blocks);
        let lo = bytes.as_ptr() as usize;
        let hi = lo + bytes.len();
        let back = decode_block_group(&bytes).unwrap();
        // Zero-copy: every decoded block's data points INSIDE the chunk
        // body's allocation rather than into a fresh copy.
        for b in &back {
            let p = b.data.as_ptr() as usize;
            assert!(p >= lo && p + b.data.len() <= hi, "block data was copied out of the chunk");
        }
        assert_eq!(&back[0].data[..], b"first-block");
        assert_eq!(&back[1].data[..], b"second");
    }
}
